//! Dispute resolution: a cheating organisation is defeated by evidence.
//!
//! Paper §3.1: "the guarantee is that trusted interceptors will support
//! the conclusion of dispute resolution in favour of honest parties."
//!
//! Scenario: a dealer orders a car; later the manufacturer *denies ever
//! receiving the order* and submits a doctored evidence window. Both
//! organisations run the **batched commitment pipeline** (one signature
//! seals a whole epoch of evidence) and submit `snapshot_range` *windows*
//! plus their chain heads — never a clone of the full log. The
//! adjudicator (i) catches the tampering via the chain and the epoch's
//! batch proof, and (ii) establishes the manufacturer's receipt from the
//! dealer's window alone.
//!
//! Run with: `cargo run --example dispute_resolution`

use std::error::Error;
use std::sync::Arc;

use nonrep::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    // Both organisations batch their evidence: one MSS signature per
    // sealed epoch instead of one per record.
    let dealer = OrgMiddleware::builder("dealer", bus.clone(), dir.clone(), clock.clone())
        .commitment(CommitmentMode::batched(8))
        .build();
    let manufacturer = OrgMiddleware::builder("manufacturer", bus, dir.clone(), clock)
        .commitment(CommitmentMode::batched(8))
        .build();

    manufacturer.deploy(
        DeploymentDescriptor::new("urn:cars", [MethodName::new("order")])
            .with_non_repudiation(NrConfig::protocol("direct")),
        Arc::new(FnComponent::new().method("order", |_args| {
            Ok(Value::map([("status", Value::from("accepted"))]))
        })),
    )?;

    // Some ordinary business before and after the disputed order, so the
    // manufacturer's log has history around it (erasing the middle of a
    // hash chain is detectable; truncating the very end would not be —
    // which is exactly why windows carry the chain head and are
    // cross-checked against counterparties).
    let proxy = dealer.nr_proxy(manufacturer.org(), "urn:cars");
    proxy.invoke("order", Value::map([("model", Value::from("Roadster"))]))?;

    // The interaction that will later be disputed.
    let order = proxy.invoke("order", Value::map([("model", Value::from("GT-Special"))]))?;
    println!("order placed: {order}");
    let run_id = dealer.log().snapshot_range(5..6)[0].draft.run_id;

    // Later business.
    proxy.invoke("order", Value::map([("model", Value::from("Estate"))]))?;

    // Seal any pending evidence so every record is covered by an epoch
    // commitment (a batch proof) before submission.
    dealer.flush_evidence()?;
    manufacturer.flush_evidence()?;

    // --- The dispute -----------------------------------------------------
    // Each side submits a *window* of its log plus its chain head — the
    // epoch-commitment records inside the window are the batch proofs.
    // The manufacturer doctors its window to erase the order: it drops
    // the records of this run before submitting.
    let honest = manufacturer.submit_full_window();
    let doctored = WindowSubmission {
        submitter: OrgId::new("manufacturer"),
        records: honest
            .records
            .iter()
            .filter(|r| r.draft.run_id != run_id)
            .cloned()
            .collect(),
        head: honest.head,
        shard: None,
    };
    println!(
        "\nmanufacturer submits a doctored window ({} of {} records)",
        doctored.records.len(),
        manufacturer.log().len()
    );

    let adjudicator = Adjudicator::new(dir as Arc<dyn KeyDirectory>);
    let verdict = adjudicator.adjudicate_windows(run_id, &[dealer.submit_full_window(), doctored]);
    println!("{verdict}");

    // 1. The doctored window fails verification: the chain has gaps and
    //    the sealed epoch's batch proof no longer covers its records.
    assert_eq!(
        verdict.suspect_submitters(),
        vec![OrgId::new("manufacturer")]
    );
    println!("=> the manufacturer's submission is flagged as tampered");

    // 2. The dealer's window alone proves the manufacturer's signed
    //    receipt: the denial is refuted.
    assert!(verdict.cannot_deny(&OrgId::new("manufacturer"), TokenKind::NrrReq));
    assert!(verdict.cannot_deny(&OrgId::new("manufacturer"), TokenKind::NroResp));
    println!("=> the manufacturer cannot deny receiving the order (NRR_req verified)");
    println!("=> the manufacturer cannot deny producing the response (NRO_resp verified)");

    // 3. Symmetrically, the dealer cannot deny having placed the order.
    assert!(verdict.cannot_deny(&OrgId::new("dealer"), TokenKind::NroReq));
    println!("=> the dealer cannot deny having placed the order (NRO_req verified)");

    println!("\ndispute resolved in favour of the honest party");
    Ok(())
}
