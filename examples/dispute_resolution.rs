//! Dispute resolution: a cheating organisation is defeated by evidence.
//!
//! Paper §3.1: "the guarantee is that trusted interceptors will support
//! the conclusion of dispute resolution in favour of honest parties."
//!
//! Scenario: a dealer orders a car; later the manufacturer *denies ever
//! receiving the order* and submits a doctored log. The adjudicator
//! (i) catches the tampering via the hash chain, and (ii) establishes the
//! manufacturer's receipt from the dealer's log alone.
//!
//! Run with: `cargo run --example dispute_resolution`

use std::error::Error;
use std::sync::Arc;

use nonrep::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let dealer = OrgMiddleware::builder("dealer", bus.clone(), dir.clone(), clock.clone()).build();
    let manufacturer =
        OrgMiddleware::builder("manufacturer", bus, dir.clone(), clock).build();

    manufacturer.deploy(
        DeploymentDescriptor::new("urn:cars", [MethodName::new("order")])
            .with_non_repudiation(NrConfig::protocol("direct")),
        Arc::new(FnComponent::new().method("order", |_args| {
            Ok(Value::map([("status", Value::from("accepted"))]))
        })),
    )?;

    // Some ordinary business before and after the disputed order, so the
    // manufacturer's log has history around it (erasing the middle of a
    // hash chain is detectable; truncating the very end would not be —
    // which is exactly why logs are cross-checked against counterparties).
    let proxy = dealer.nr_proxy(manufacturer.org(), "urn:cars");
    proxy.invoke("order", Value::map([("model", Value::from("Roadster"))]))?;

    // The interaction that will later be disputed.
    let order = proxy.invoke("order", Value::map([("model", Value::from("GT-Special"))]))?;
    println!("order placed: {order}");
    let run_id = dealer.log().snapshot_range(4..5)[0].draft.run_id;

    // Later business.
    proxy.invoke("order", Value::map([("model", Value::from("Estate"))]))?;

    // --- The dispute -----------------------------------------------------
    // The manufacturer doctors its log to erase the order: it drops the
    // records of this run before submitting.
    let doctored: Vec<_> = manufacturer
        .log()
        .records()
        .into_iter()
        .filter(|r| r.draft.run_id != run_id)
        .collect();
    println!(
        "\nmanufacturer submits a doctored log ({} of {} records)",
        doctored.len(),
        manufacturer.log().len()
    );

    let adjudicator = Adjudicator::new(dir as Arc<dyn KeyDirectory>);
    let verdict = adjudicator.adjudicate(
        run_id,
        &[
            (OrgId::new("dealer"), dealer.log().records()),
            (OrgId::new("manufacturer"), doctored),
        ],
    );
    println!("{verdict}");

    // 1. The doctored log fails chain verification (records removed).
    assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("manufacturer")]);
    println!("=> the manufacturer's submission is flagged as tampered");

    // 2. The dealer's log alone proves the manufacturer's signed receipt:
    //    the denial is refuted.
    assert!(verdict.cannot_deny(&OrgId::new("manufacturer"), TokenKind::NrrReq));
    assert!(verdict.cannot_deny(&OrgId::new("manufacturer"), TokenKind::NroResp));
    println!("=> the manufacturer cannot deny receiving the order (NRR_req verified)");
    println!("=> the manufacturer cannot deny producing the response (NRO_resp verified)");

    // 3. Symmetrically, the dealer cannot deny having placed the order.
    assert!(verdict.cannot_deny(&OrgId::new("dealer"), TokenKind::NroReq));
    println!("=> the dealer cannot deny having placed the order (NRO_req verified)");

    println!("\ndispute resolved in favour of the honest party");
    Ok(())
}
