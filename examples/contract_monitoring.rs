//! Contract-monitored information sharing (paper §6 future work).
//!
//! A verified contract FSM governs the lifecycle of a shared purchase
//! order. Updates to the shared object are validated for contract
//! compliance: a compliant update is unanimously agreed; an update that
//! would breach the contract is vetoed with a signed, attributable reason.
//!
//! Run with: `cargo run --example contract_monitoring`

use std::collections::BTreeSet;
use std::error::Error;
use std::sync::Arc;

use nonrep::contract::{ContractMonitor, ContractSpec, ContractValidator};
use nonrep::prelude::*;

/// Purchase-order contract: draft → confirmed → shipped, with
/// cancellation allowed only while drafting.
fn purchase_order_contract() -> ContractSpec {
    ContractSpec::new("purchase-order", "draft")
        .state("confirmed")
        .state("shipped")
        .state("cancelled")
        .breach_state("breached")
        .transition("draft", "po.confirm", "confirmed")
        .transition("draft", "po.cancel", "cancelled")
        .transition("draft", "po.edit", "draft")
        .transition("confirmed", "po.ship", "shipped")
        .transition("confirmed", "po.cancel", "breached") // late cancel = breach
}

/// Derives the contract event from the proposed state's `status=` field.
fn extract_event(object: &str, _current: Option<&[u8]>, proposed: &[u8]) -> Option<String> {
    if object != "purchase-order" {
        return None;
    }
    let text = String::from_utf8_lossy(proposed);
    let status = text.split("status=").nth(1)?.split(';').next()?;
    Some(match status {
        "draft" => "po.edit".to_string(),
        "confirmed" => "po.confirm".to_string(),
        "shipped" => "po.ship".to_string(),
        "cancelled" => "po.cancel".to_string(),
        other => format!("po.{other}"),
    })
}

fn main() -> Result<(), Box<dyn Error>> {
    // Verify the contract before deploying it (the paper's model-checking
    // step).
    let spec = purchase_order_contract();
    let issues = spec.check();
    assert!(
        issues.is_empty(),
        "contract failed verification: {issues:?}"
    );
    println!("contract '{}' statically verified: no defects", spec.name());

    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let buyer = OrgMiddleware::builder("buyer", bus.clone(), dir.clone(), clock.clone()).build();
    let seller = OrgMiddleware::builder("seller", bus, dir, clock).build();

    let group = GroupId::new("po-group");
    let members: BTreeSet<OrgId> = [buyer.org().clone(), seller.org().clone()].into();
    buyer.install_group(group.clone(), members.clone());
    seller.install_group(group.clone(), members);

    // The *seller* enforces the contract on every proposal it validates,
    // and advances its monitor when updates are applied.
    let monitor = Arc::new(ContractMonitor::new(purchase_order_contract()));
    let validator = ContractValidator::new(monitor.clone(), extract_event);
    seller.add_validator(validator);

    let propose = |state: &str| -> Result<bool, Box<dyn Error>> {
        let out = buyer.propose_update(&group, "purchase-order", state.as_bytes().to_vec())?;
        if out.accepted {
            // Advance the seller's monitor to mirror the applied update.
            if let Some(event) = extract_event("purchase-order", None, state.as_bytes()) {
                let _ = monitor.observe(&event);
            }
            println!("accepted: {state}");
        } else {
            let veto = out
                .votes
                .iter()
                .find(|v| !v.accept)
                .expect("vetoed round has a veto");
            println!(
                "VETOED:   {state}\n          by {} — {}",
                veto.voter, veto.reason
            );
        }
        Ok(out.accepted)
    };

    // Compliant lifecycle.
    assert!(propose("po=42;status=draft;qty=10;")?);
    assert!(propose("po=42;status=draft;qty=12;")?); // edit while drafting: fine
    assert!(propose("po=42;status=confirmed;qty=12;")?);

    // Late cancellation would breach the contract: vetoed, replicas keep
    // the confirmed state.
    assert!(!propose("po=42;status=cancelled;qty=12;")?);
    assert_eq!(
        buyer.current_state("purchase-order").unwrap(),
        b"po=42;status=confirmed;qty=12;"
    );

    // Shipping is the compliant continuation.
    assert!(propose("po=42;status=shipped;qty=12;")?);
    assert_eq!(monitor.state().as_str(), "shipped");

    // The veto is in the evidence logs, signed by the seller.
    let vetoes = buyer
        .log()
        .count_where(&|r| r.draft.kind == "vote" && r.draft.actor == *seller.org());
    println!("\nbuyer holds {vetoes} signed seller votes (incl. the contract veto)");
    buyer.log().verify()?;
    seller.log().verify()?;
    println!("contract-monitored sharing complete");
    Ok(())
}
