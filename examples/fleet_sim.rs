//! Adversarial fleet smoke run.
//!
//! Builds the showcase scenario (every byzantine role on stage) from
//! `NONREP_SIM_SEED` (default 1), executes it under two different
//! schedules, and checks the three fleet invariants: schedule-invariant
//! verdicts, every byzantine submitter detected, zero false accusations.
//!
//! With `NONREP_SIM_DISPUTE=1` it instead sweeps the *seeded family* for
//! scenarios that field a defecting fair-offline server, and checks that
//! every one of them convicts the defector from the sealed dispute
//! evidence — schedule-invariantly and with zero false accusations.
//!
//! With `NONREP_SIM_STALL=1` it drives the hundred-organisation
//! *metropolis* fleet under two schedules: every stalled run must
//! terminate in a timeout abort that attributes the staller (and only
//! the staller), the stalling server must be convicted by the TTP's
//! dispute decision, and the slow-but-honest peer must come through
//! unaccused.
//!
//! Replay a failure reported by CI or the property sweep with:
//!
//! ```sh
//! NONREP_SIM_SEED=<seed> cargo run --release --example fleet_sim
//! ```

use std::process::ExitCode;

use nonrep_sim::engine::run_fleet;
use nonrep_sim::scenario::{Role, Scenario};

fn main() -> ExitCode {
    let seed: u64 = std::env::var("NONREP_SIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    if std::env::var("NONREP_SIM_DISPUTE").is_ok_and(|v| v != "0") {
        return dispute_sweep(seed);
    }
    if std::env::var("NONREP_SIM_STALL").is_ok_and(|v| v != "0") {
        return stall_sweep(seed);
    }
    let scenario = Scenario::showcase(seed);
    println!(
        "fleet seed {seed}: {} orgs (+ttp{}), {} byzantine, {} work items",
        scenario.regular.len(),
        if scenario.exhausted.is_some() {
            ", +exhausted"
        } else {
            ""
        },
        scenario.byzantine.len(),
        scenario.items.len(),
    );

    let scratch = std::env::temp_dir().join(format!("nonrep-fleet-sim-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let base = match run_fleet(&scenario, 0, &scratch.join("base")) {
        Ok(out) => out,
        Err(e) => return fail(seed, &format!("base fleet errored: {e}")),
    };
    let permuted = match run_fleet(&scenario, seed ^ 0x5eed, &scratch.join("permuted")) {
        Ok(out) => out,
        Err(e) => return fail(seed, &format!("permuted fleet errored: {e}")),
    };

    for run in &base.runs {
        println!(
            "  run {:>2} [{:>12}] completed={} aborted={} facts={} suspects={:?} \
             defectors={:?} stalled={:?}",
            run.index,
            run.variant,
            run.completed,
            run.aborted,
            run.facts.len(),
            run.suspects,
            run.defectors,
            run.stalled,
        );
    }

    if !base.verdicts_match(&permuted) {
        return fail(seed, "verdicts diverged under schedule permutation");
    }
    for (org, role) in &scenario.byzantine {
        if !base.detected(org) {
            return fail(
                seed,
                &format!("byzantine {org} ({}) escaped detection", role.name()),
            );
        }
    }
    for org in scenario.honest_orgs() {
        if base.detected(&org) {
            return fail(seed, &format!("honest {org} falsely accused"));
        }
    }
    println!(
        "ok: verdicts schedule-invariant, {} byzantine org(s) detected ({:?}), no false accusations",
        scenario.byzantine.len(),
        base.all_suspects(),
    );
    ExitCode::SUCCESS
}

fn fail(seed: u64, what: &str) -> ExitCode {
    eprintln!("FLEET VIOLATION: {what}");
    eprintln!("repro: NONREP_SIM_SEED={seed} cargo run --release --example fleet_sim");
    ExitCode::FAILURE
}

/// Sweeps the seeded family from `base_seed` upward for scenarios that
/// draw a [`Role::DefectingServer`], and drives the first four of them
/// under two schedules each: the defector must be convicted from the
/// sealed dispute evidence in both executions, the verdicts must match,
/// and no honest organisation may be accused.
fn dispute_sweep(base_seed: u64) -> ExitCode {
    let scratch = std::env::temp_dir().join(format!("nonrep-fleet-dispute-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut checked = 0u32;
    let mut seed = base_seed.max(1);
    while checked < 4 {
        let scenario = Scenario::from_seed(seed);
        let defectors: Vec<_> = scenario
            .byzantine
            .iter()
            .filter(|(_, r)| *r == Role::DefectingServer)
            .map(|(o, _)| o.clone())
            .collect();
        if defectors.is_empty() {
            seed += 1;
            continue;
        }
        println!("==> dispute seed {seed}: defecting server(s) {defectors:?}");
        let base = match run_fleet(&scenario, 0, &scratch.join(format!("{seed}-base"))) {
            Ok(out) => out,
            Err(e) => return fail(seed, &format!("dispute base fleet errored: {e}")),
        };
        let permuted = match run_fleet(
            &scenario,
            seed ^ 0x5eed,
            &scratch.join(format!("{seed}-perm")),
        ) {
            Ok(out) => out,
            Err(e) => return fail(seed, &format!("dispute permuted fleet errored: {e}")),
        };
        if !base.verdicts_match(&permuted) {
            return fail(seed, "dispute verdicts diverged under schedule permutation");
        }
        for org in &defectors {
            let convicted = base.runs.iter().any(|r| r.defectors.contains(org.as_str()));
            if !convicted {
                return fail(seed, &format!("defecting server {org} not convicted"));
            }
        }
        for org in scenario.honest_orgs() {
            if base.detected(&org) {
                return fail(seed, &format!("honest {org} accused in dispute scenario"));
            }
        }
        checked += 1;
        seed += 1;
    }
    println!(
        "ok: {checked} dispute scenarios convicted their defectors under permuted schedules, \
         no false accusations"
    );
    ExitCode::SUCCESS
}

/// Drives the hundred-organisation metropolis fleet under two schedules
/// and checks the timeout-supervision invariants at scale: every run
/// terminates, the stalled run ends in a TTP abort attributing exactly
/// the staller, the stalling server is convicted by dispute decision,
/// and neither the slow peer nor any other honest organisation is ever
/// accused.
fn stall_sweep(seed: u64) -> ExitCode {
    let scenario = Scenario::metropolis(seed);
    println!(
        "metropolis seed {seed}: {} orgs (+ttp), {} byzantine ({}), {} work items",
        scenario.regular.len(),
        scenario.byzantine.len(),
        scenario
            .byzantine
            .iter()
            .map(|(o, r)| format!("{o}={}", r.name()))
            .collect::<Vec<_>>()
            .join(", "),
        scenario.items.len(),
    );
    let scratch = std::env::temp_dir().join(format!("nonrep-fleet-stall-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let base = match run_fleet(&scenario, 0, &scratch.join("base")) {
        Ok(out) => out,
        Err(e) => return stall_fail(seed, &format!("metropolis base fleet errored: {e}")),
    };
    let permuted = match run_fleet(&scenario, seed ^ 0x5eed, &scratch.join("permuted")) {
        Ok(out) => out,
        Err(e) => return stall_fail(seed, &format!("metropolis permuted fleet errored: {e}")),
    };
    for run in base
        .runs
        .iter()
        .filter(|r| r.aborted || !r.completed || !r.stalled.is_empty() || !r.defectors.is_empty())
    {
        println!(
            "  run {:>2} [{:>12}] completed={} aborted={} defectors={:?} stalled={:?}",
            run.index, run.variant, run.completed, run.aborted, run.defectors, run.stalled,
        );
    }
    if !base.verdicts_match(&permuted) {
        return stall_fail(
            seed,
            "metropolis verdicts diverged under schedule permutation",
        );
    }
    for (org, role) in &scenario.byzantine {
        if !base.detected(org) {
            return stall_fail(
                seed,
                &format!(
                    "byzantine {org} ({}) escaped detection at fleet scale",
                    role.name()
                ),
            );
        }
    }
    for org in scenario.honest_orgs() {
        if base.detected(&org) {
            return stall_fail(
                seed,
                &format!("honest {org} falsely accused at fleet scale"),
            );
        }
    }
    let aborted: Vec<_> = base.runs.iter().filter(|r| r.aborted).collect();
    if aborted.len() != 1 || aborted[0].stalled.len() != 1 {
        return stall_fail(
            seed,
            "expected exactly one abort-closed run naming one staller",
        );
    }
    let incomplete = base.runs.iter().filter(|r| !r.completed).count();
    if incomplete != 1 {
        return stall_fail(
            seed,
            &format!("{incomplete} runs failed to terminate with an outcome (expected 1)"),
        );
    }
    println!(
        "ok: {} orgs, {} runs all terminated; timeout abort attributed {:?}; \
         verdicts schedule-invariant; no false accusations",
        scenario.regular.len(),
        base.runs.len(),
        aborted[0].stalled,
    );
    ExitCode::SUCCESS
}

fn stall_fail(seed: u64, what: &str) -> ExitCode {
    eprintln!("STALL SWEEP VIOLATION: {what}");
    eprintln!(
        "repro: NONREP_SIM_STALL=1 NONREP_SIM_SEED={seed} cargo run --release --example fleet_sim"
    );
    ExitCode::FAILURE
}
