//! Adversarial fleet smoke run.
//!
//! Builds the showcase scenario (every byzantine role on stage) from
//! `NONREP_SIM_SEED` (default 1), executes it under two different
//! schedules, and checks the three fleet invariants: schedule-invariant
//! verdicts, every byzantine submitter detected, zero false accusations.
//!
//! Replay a failure reported by CI or the property sweep with:
//!
//! ```sh
//! NONREP_SIM_SEED=<seed> cargo run --release --example fleet_sim
//! ```

use std::process::ExitCode;

use nonrep_sim::engine::run_fleet;
use nonrep_sim::scenario::Scenario;

fn main() -> ExitCode {
    let seed: u64 = std::env::var("NONREP_SIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let scenario = Scenario::showcase(seed);
    println!(
        "fleet seed {seed}: {} orgs (+ttp{}), {} byzantine, {} work items",
        scenario.regular.len(),
        if scenario.exhausted.is_some() {
            ", +exhausted"
        } else {
            ""
        },
        scenario.byzantine.len(),
        scenario.items.len(),
    );

    let scratch = std::env::temp_dir().join(format!("nonrep-fleet-sim-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let base = match run_fleet(&scenario, 0, &scratch.join("base")) {
        Ok(out) => out,
        Err(e) => return fail(seed, &format!("base fleet errored: {e}")),
    };
    let permuted = match run_fleet(&scenario, seed ^ 0x5eed, &scratch.join("permuted")) {
        Ok(out) => out,
        Err(e) => return fail(seed, &format!("permuted fleet errored: {e}")),
    };

    for run in &base.runs {
        println!(
            "  run {:>2} [{:>12}] completed={} facts={} suspects={:?}",
            run.index,
            run.variant,
            run.completed,
            run.facts.len(),
            run.suspects,
        );
    }

    if !base.verdicts_match(&permuted) {
        return fail(seed, "verdicts diverged under schedule permutation");
    }
    for (org, role) in &scenario.byzantine {
        if !base.detected(org) {
            return fail(
                seed,
                &format!("byzantine {org} ({}) escaped detection", role.name()),
            );
        }
    }
    for org in scenario.honest_orgs() {
        if base.detected(&org) {
            return fail(seed, &format!("honest {org} falsely accused"));
        }
    }
    println!(
        "ok: verdicts schedule-invariant, {} byzantine org(s) detected ({:?}), no false accusations",
        scenario.byzantine.len(),
        base.all_suspects(),
    );
    ExitCode::SUCCESS
}

fn fail(seed: u64, what: &str) -> ExitCode {
    eprintln!("FLEET VIOLATION: {what}");
    eprintln!("repro: NONREP_SIM_SEED={seed} cargo run --release --example fleet_sim");
    ExitCode::FAILURE
}
