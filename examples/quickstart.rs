//! Quickstart: one non-repudiable invocation between two organisations.
//!
//! Reproduces paper Fig 4(b): the client's request travels with its
//! `NRO_req` token; the server answers with the response, `NRR_req` and
//! `NRO_resp`; the client returns `NRR_resp`. Both evidence logs end up
//! with the complete, verifiable token set.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;
use std::sync::Arc;

use nonrep::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // Shared world: in-process bus, key directory, logical clock.
    let bus = LocalBus::new();
    let directory = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();

    // Two organisations, each with its own trusted-interceptor stack.
    let dealer =
        OrgMiddleware::builder("dealer", bus.clone(), directory.clone(), clock.clone()).build();
    let manufacturer = OrgMiddleware::builder("manufacturer", bus, directory, clock).build();

    // The manufacturer deploys a quoting component and declares, in its
    // deployment descriptor, that invocations require non-repudiation.
    manufacturer.deploy(
        DeploymentDescriptor::new("urn:parts", [MethodName::new("quote")])
            .with_non_repudiation(NrConfig::protocol("direct")),
        Arc::new(FnComponent::new().method("quote", |args| {
            let part = args
                .get("part")
                .and_then(Value::as_str)
                .unwrap_or("unknown");
            let price = match part {
                "gearbox" => 4200i64,
                "chassis" => 10500,
                _ => 999,
            };
            Ok(Value::map([
                ("part", Value::from(part)),
                ("price", Value::from(price)),
            ]))
        })),
    )?;

    // The dealer invokes through a non-repudiable proxy (direct domain).
    let proxy = dealer.nr_proxy(manufacturer.org(), "urn:parts");
    let quote = proxy.invoke("quote", Value::map([("part", Value::from("gearbox"))]))?;
    println!("quote received: {quote}");

    // Inspect the evidence both parties now hold.
    for (name, mw) in [("dealer", &dealer), ("manufacturer", &manufacturer)] {
        println!("\n{name} evidence log ({} records):", mw.log().len());
        mw.log().for_each(&mut |record| {
            println!(
                "  #{} {:<9} by {:<12} subject {}…",
                record.seq,
                record.draft.kind,
                record.draft.actor,
                &record.draft.content_digest.to_hex()[..12]
            );
        });
        mw.log().verify()?;
        println!("  hash chain: OK");
    }

    // Neither party can now deny its part: run the adjudicator over both
    // parties' evidence as a dispute-resolution dry run. Each submits a
    // `snapshot_range` *window* of its log plus its chain head — handles
    // into the Arc-backed store, never a clone of the record set.
    let run_id = dealer.log().snapshot_range(0..1)[0].draft.run_id;
    let adjudicator = Adjudicator::new(dealer.directory().clone() as Arc<dyn KeyDirectory>);
    let verdict = adjudicator.adjudicate_windows(
        run_id,
        &[
            dealer.submit_full_window(),
            manufacturer.submit_full_window(),
        ],
    );
    println!("\n{verdict}");
    assert!(verdict.cannot_deny(&OrgId::new("dealer"), TokenKind::NroReq));
    assert!(verdict.cannot_deny(&OrgId::new("manufacturer"), TokenKind::NrrReq));
    assert!(verdict.cannot_deny(&OrgId::new("manufacturer"), TokenKind::NroResp));
    assert!(verdict.cannot_deny(&OrgId::new("dealer"), TokenKind::NrrResp));
    println!("all four §3.2 assurances established — quickstart OK");
    Ok(())
}
