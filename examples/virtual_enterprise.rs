//! The paper's motivating example (Fig 1): a virtual enterprise building a
//! specialist car.
//!
//! Five organisations — a car dealer, a specialist manufacturer and three
//! part suppliers — collaborate:
//!
//! 1. the dealer places a car order with the manufacturer
//!    (NR-invocation);
//! 2. the manufacturer requests quotes from all three suppliers
//!    (NR-invocation);
//! 3. manufacturer + suppliers A and B share the component specification
//!    and negotiate it (NR-sharing with validation, including a veto and a
//!    renegotiation);
//! 4. supplier C is brought into the sharing group later (connect
//!    protocol).
//!
//! The manufacturer — the busiest party — runs its evidence on a
//! **group-commit** file log: epochs of evidence are sealed by one
//! signature and handed to a dedicated sync thread, so its append path
//! never waits on an fsync, and its deployment descriptor *declares*
//! that requirement (`EvidenceDurability::GroupCommit`) so a
//! misconfigured stack refuses to deploy.
//!
//! Run with: `cargo run --example virtual_enterprise`

use std::collections::BTreeSet;
use std::error::Error;
use std::sync::Arc;

use nonrep::prelude::*;

fn org_stack(
    name: &str,
    bus: &Arc<LocalBus>,
    dir: &Arc<StaticKeyDirectory>,
    clock: &LogicalClock,
) -> Arc<OrgMiddleware> {
    OrgMiddleware::builder(name, bus.clone(), dir.clone(), clock.clone()).build()
}

fn main() -> Result<(), Box<dyn Error>> {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();

    let dealer = org_stack("dealer", &bus, &dir, &clock);
    // The manufacturer's evidence goes to a durable, group-committed
    // file log: batched commitments (one signature per 8-record epoch),
    // each sealed epoch enqueued to the log's sync thread instead of
    // fsyncing inline.
    let log_path = std::env::temp_dir().join(format!("nonrep-ve-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let manufacturer_builder =
        OrgMiddleware::builder("manufacturer", bus.clone(), dir.clone(), clock.clone());
    let manufacturer = manufacturer_builder
        .commitment(CommitmentMode::batched(8))
        .evidence_file(&log_path, SyncPolicy::GroupCommit)?
        .build();
    let supplier_a = org_stack("supplier-a", &bus, &dir, &clock);
    let supplier_b = org_stack("supplier-b", &bus, &dir, &clock);
    let supplier_c = org_stack("supplier-c", &bus, &dir, &clock);

    // ---- Services ---------------------------------------------------
    manufacturer.deploy(
        DeploymentDescriptor::new("urn:cars", [MethodName::new("order")]).with_non_repudiation(
            // Declarative: this component requires the async
            // group-commit durability class — deploying it on a
            // middleware without one is a configuration error.
            NrConfig::protocol("direct").with_evidence_durability(EvidenceDurability::GroupCommit),
        ),
        Arc::new(FnComponent::new().method("order", |args| {
            let model = args.get("model").and_then(Value::as_str).unwrap_or("?");
            Ok(Value::map([
                ("order_id", Value::from(1001u64)),
                ("model", Value::from(model)),
                ("status", Value::from("accepted")),
            ]))
        })),
    )?;
    for (mw, base) in [
        (&supplier_a, 700i64),
        (&supplier_b, 850),
        (&supplier_c, 620),
    ] {
        mw.deploy(
            DeploymentDescriptor::new("urn:parts", [MethodName::new("quote")])
                .with_non_repudiation(NrConfig::protocol("direct")),
            Arc::new(FnComponent::new().method("quote", move |args| {
                let part = args.get("part").and_then(Value::as_str).unwrap_or("?");
                Ok(Value::map([
                    ("part", Value::from(part)),
                    ("price", Value::from(base)),
                ]))
            })),
        )?;
    }

    // ---- 1. Dealer orders a car --------------------------------------
    let order = dealer
        .nr_proxy(manufacturer.org(), "urn:cars")
        .invoke("order", Value::map([("model", Value::from("GT-Special"))]))?;
    println!("dealer order: {order}");

    // ---- 2. Manufacturer collects quotes ------------------------------
    for supplier in [&supplier_a, &supplier_b, &supplier_c] {
        let quote = manufacturer
            .nr_proxy(supplier.org(), "urn:parts")
            .invoke("quote", Value::map([("part", Value::from("gearbox"))]))?;
        println!("quote from {}: {quote}", supplier.org());
    }

    // ---- 3. Shared component specification ---------------------------
    let group = GroupId::new("gearbox-spec");
    let members: BTreeSet<OrgId> = [
        manufacturer.org().clone(),
        supplier_a.org().clone(),
        supplier_b.org().clone(),
    ]
    .into();
    for mw in [&manufacturer, &supplier_a, &supplier_b] {
        mw.install_group(group.clone(), members.clone());
    }
    // Supplier B refuses specifications with a delivery time over 90 days.
    supplier_b.add_validator(Arc::new(
        |_obj: &str, _cur: Option<&[u8]>, proposed: &[u8]| {
            let text = String::from_utf8_lossy(proposed);
            if let Some(days) = text
                .split("delivery_days=")
                .nth(1)
                .and_then(|s| s.split(';').next())
                .and_then(|s| s.parse::<u32>().ok())
            {
                if days > 90 {
                    return Err(format!("delivery of {days} days exceeds the 90-day limit"));
                }
            }
            Ok(())
        },
    ));

    // First proposal: too slow — supplier B vetoes.
    let slow = b"part=gearbox;ratio=4.1;delivery_days=120;".to_vec();
    let outcome = manufacturer.propose_update(&group, "spec", slow)?;
    println!("\nproposal 1 accepted: {}", outcome.accepted);
    for vote in &outcome.votes {
        println!(
            "  vote by {:<12} accept={} reason={:?}",
            vote.voter, vote.accept, vote.reason
        );
    }
    assert!(!outcome.accepted);
    assert!(
        manufacturer.current_state("spec").is_none(),
        "veto leaves replicas untouched"
    );

    // Renegotiated proposal: accepted unanimously and applied everywhere.
    let fast = b"part=gearbox;ratio=4.1;delivery_days=60;".to_vec();
    let outcome = manufacturer.propose_update(&group, "spec", fast.clone())?;
    println!("proposal 2 accepted: {}", outcome.accepted);
    assert!(outcome.accepted);
    for mw in [&manufacturer, &supplier_a, &supplier_b] {
        assert_eq!(mw.current_state("spec").unwrap(), fast);
    }

    // ---- 4. Supplier C joins the sharing group ------------------------
    let joined = manufacturer.connect(&group, supplier_c.org())?;
    println!("supplier-c connect accepted: {}", joined.accepted);
    assert!(joined.accepted);
    assert_eq!(manufacturer.group_members(&group)?.len(), 4);
    assert_eq!(supplier_c.group_members(&group)?.len(), 4);

    // Supplier C can immediately propose (and the others validate).
    let outcome = supplier_c.propose_update(
        &group,
        "spec",
        b"part=gearbox;ratio=4.3;delivery_days=45;".to_vec(),
    )?;
    println!("supplier-c proposal accepted: {}", outcome.accepted);
    assert!(outcome.accepted);

    // ---- Audit summary -------------------------------------------------
    // Seal + wait out the manufacturer's device barrier: after this,
    // every record of its history is on stable storage.
    manufacturer.flush_evidence()?;
    println!("\nevidence held:");
    for mw in [
        &dealer,
        &manufacturer,
        &supplier_a,
        &supplier_b,
        &supplier_c,
    ] {
        mw.log().verify()?;
        println!(
            "  {:<12} {:>3} records, {:>6} bytes, chain OK",
            mw.org().to_string(),
            mw.log().len(),
            mw.log().total_bytes()
        );
    }
    // The manufacturer's durable log survives this process: prove it by
    // reopening the file strictly and re-verifying the chain.
    let manufacturer_records = manufacturer.log().len();
    drop(manufacturer);
    let reopened = FileLog::open(&log_path)?;
    assert_eq!(reopened.len(), manufacturer_records);
    reopened
        .verify()
        .map_err(nonrep::store::StoreError::Chain)?;
    println!(
        "\nmanufacturer log reopened from disk: {} records, chain OK",
        reopened.len()
    );
    drop(reopened);
    let _ = std::fs::remove_file(&log_path);
    println!("\nvirtual enterprise scenario complete");
    Ok(())
}
