//! The same interaction under the three trust-domain deployments of paper
//! Fig 3 (plus the voluntary baseline and the fair-exchange hardening),
//! comparing messages, bytes and simulated WAN latency.
//!
//! Run with: `cargo run --example trust_domains`

use std::error::Error;
use std::sync::Arc;

use nonrep::prelude::*;

struct World {
    bus: Arc<LocalBus>,
    client: Arc<OrgMiddleware>,
    server: Arc<OrgMiddleware>,
}

/// Builds a fresh world (bus + orgs + TTPs) for one deployment.
fn world(domain: TrustDomain) -> Result<World, Box<dyn Error>> {
    let bus = LocalBus::with_config(FaultPlan::none(), LatencyModel::Wan, 42);
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = bus.clock();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .domain(domain.clone())
        .build();
    let mut server_builder =
        OrgMiddleware::builder("server", bus.clone(), dir.clone(), clock.clone());
    if let TrustDomain::FairOffline { ttp } = &domain {
        server_builder = server_builder.offline_ttp(ttp.clone());
    }
    let server = server_builder.build();
    match &domain {
        TrustDomain::InlineTtp { first_hop } if first_hop.as_str() == "ttp-a" => {
            // Distributed inline TTPs (Fig 3(b)): ttp-a relays to ttp-b.
            let ttp_a =
                OrgMiddleware::builder("ttp-a", bus.clone(), dir.clone(), clock.clone()).build();
            ttp_a.serve_as_inline_ttp(Some(OrgId::new("ttp-b")));
            let ttp_b =
                OrgMiddleware::builder("ttp-b", bus.clone(), dir.clone(), clock.clone()).build();
            ttp_b.serve_as_inline_ttp(None);
        }
        TrustDomain::InlineTtp { first_hop } => {
            let ttp =
                OrgMiddleware::builder(first_hop.clone(), bus.clone(), dir.clone(), clock).build();
            ttp.serve_as_inline_ttp(None);
        }
        TrustDomain::FairOffline { ttp } => {
            let t = OrgMiddleware::builder(ttp.clone(), bus.clone(), dir.clone(), clock).build();
            t.serve_as_offline_ttp();
        }
        _ => {}
    }
    server.deploy(
        DeploymentDescriptor::new("urn:svc", [MethodName::new("work")])
            .with_non_repudiation(NrConfig::protocol("direct")),
        Arc::new(FnComponent::new().method("work", |args| Ok(args.clone()))),
    )?;
    Ok(World {
        bus,
        client,
        server,
    })
}

fn main() -> Result<(), Box<dyn Error>> {
    println!(
        "{:<28} {:>9} {:>10} {:>12} {:>10}",
        "deployment", "messages", "bytes", "latency(ms)", "evidence"
    );
    let deployments: Vec<(&str, TrustDomain)> = vec![
        ("plain (no NR)", TrustDomain::Direct), // plain handled specially below
        ("voluntary (ref [23])", TrustDomain::Voluntary),
        ("direct (Fig 3c)", TrustDomain::Direct),
        (
            "inline TTP (Fig 3a)",
            TrustDomain::InlineTtp {
                first_hop: OrgId::new("ttp"),
            },
        ),
        (
            "distributed TTP (Fig 3b)",
            TrustDomain::InlineTtp {
                first_hop: OrgId::new("ttp-a"),
            },
        ),
        (
            "fair offline TTP",
            TrustDomain::FairOffline {
                ttp: OrgId::new("ttp"),
            },
        ),
    ];
    for (i, (label, domain)) in deployments.into_iter().enumerate() {
        let w = world(domain)?;
        let started = w.bus.now();
        let value = Value::map([("payload", Value::from("x".repeat(64)))]);
        let result = if i == 0 {
            // Baseline: the plain, un-evidenced proxy.
            w.client
                .plain_proxy(w.server.org(), "urn:svc")
                .invoke("work", value)?
        } else {
            w.client
                .nr_proxy(w.server.org(), "urn:svc")
                .invoke("work", value)?
        };
        assert!(result.get("payload").is_some());
        let stats = w.bus.stats();
        let latency = w.bus.now().since(started);
        let evidence = w.client.log().len() + w.server.log().len();
        println!(
            "{label:<28} {:>9} {:>10} {:>12} {:>10}",
            stats.delivered, stats.bytes, latency, evidence
        );
    }
    println!(
        "\nShape check (paper §3.1): the direct domain needs the fewest hops;\n\
         inline TTPs pay extra hops for stronger mediation; the offline TTP\n\
         pays escrow messages only, keeping the TTP out of the data path."
    );
    Ok(())
}
