#!/usr/bin/env bash
# Adversarial fleet smoke sweep: runs the seeded fleet simulator
# (examples/fleet_sim.rs) over a seed range and fails loudly with a
# one-line repro command if any seed violates the fleet invariants
# (schedule-invariant verdicts, all byzantine submitters detected, zero
# false accusations). A final dispute sweep then walks the seeded
# family for scenarios with a defecting fair-offline server and checks
# that every one convicts the defector from the sealed dispute
# evidence, and a stalling sweep drives the hundred-organisation
# metropolis fleet: every stalled run must terminate in a timeout abort
# that attributes exactly the staller, with zero false accusations.
#
#   scripts/sim.sh                 # seeds 1..8, release build
#   scripts/sim.sh 5               # seeds 1..5
#   scripts/sim.sh 3 12            # seeds 3..12
#   NONREP_SIM_DEBUG=1 scripts/sim.sh   # dev profile (faster build)
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

LO=1
HI=8
if [[ $# -eq 1 ]]; then
    HI="$1"
elif [[ $# -ge 2 ]]; then
    LO="$1"
    HI="$2"
fi

PROFILE_FLAG="--release"
if [[ "${NONREP_SIM_DEBUG:-0}" == "1" ]]; then
    PROFILE_FLAG=""
fi

# Build once up front so per-seed runs are pure execution time.
# shellcheck disable=SC2086  # PROFILE_FLAG is intentionally word-split
cargo build $PROFILE_FLAG --quiet --example fleet_sim

for seed in $(seq "$LO" "$HI"); do
    echo "==> fleet seed $seed"
    # shellcheck disable=SC2086
    if ! NONREP_SIM_SEED="$seed" cargo run $PROFILE_FLAG --quiet --example fleet_sim; then
        echo "sim.sh: FLEET INVARIANT VIOLATION at seed $seed" >&2
        echo "repro: NONREP_SIM_SEED=$seed cargo run --release --example fleet_sim" >&2
        exit 1
    fi
done

echo "==> dispute sweep (seeded family, defecting servers)"
# shellcheck disable=SC2086
if ! NONREP_SIM_DISPUTE=1 NONREP_SIM_SEED="$LO" cargo run $PROFILE_FLAG --quiet --example fleet_sim; then
    echo "sim.sh: DISPUTE SWEEP VIOLATION (base seed $LO)" >&2
    echo "repro: NONREP_SIM_DISPUTE=1 NONREP_SIM_SEED=$LO cargo run --release --example fleet_sim" >&2
    exit 1
fi

echo "==> stalling-adversary sweep (metropolis fleet, timeout aborts)"
# shellcheck disable=SC2086
if ! NONREP_SIM_STALL=1 NONREP_SIM_SEED="$LO" cargo run $PROFILE_FLAG --quiet --example fleet_sim; then
    echo "sim.sh: STALL SWEEP VIOLATION (base seed $LO)" >&2
    echo "repro: NONREP_SIM_STALL=1 NONREP_SIM_SEED=$LO cargo run --release --example fleet_sim" >&2
    exit 1
fi

echo "sim.sh: seeds $LO..$HI green (incl. dispute + stall sweeps)"
