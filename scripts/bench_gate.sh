#!/usr/bin/env bash
# Bench-regression gate: compares the newest BENCH_<N>.json "after"
# numbers against its checked-in baseline
# (scripts/bench_baseline_<N>.jsonl) and fails on a >25% regression on
# the headline perf paths (e1_invocation, e11_batch, e12_durability,
# e13_group_commit, e14_multibuffer, e15_sharded, e16_rollover,
# e17_supervisor). The disk-bound rows
# among these are best-of-3 numbers (scripts/bench.sh runs e12/e13/e15
# three times), so a trip means a real slowdown, not fsync drift. See
# docs/BENCHMARKS.md.
#
#   scripts/bench_gate.sh                      # newest BENCH_*.json vs its baseline
#   scripts/bench_gate.sh BENCH_4.json         # explicit report (baseline inferred)
#   scripts/bench_gate.sh BENCH_4.json base.jsonl
#   scripts/bench_gate.sh --self-test          # gate trips on a synthetic 30% regression
#
# BENCH_GATE_THRESHOLD overrides the allowed after/baseline ratio
# (default 1.25 = 25% slower).
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

THRESHOLD="${BENCH_GATE_THRESHOLD:-1.25}"

run_gate() {
    # $1 = BENCH json, $2 = baseline jsonl
    python3 - "$1" "$2" "$THRESHOLD" <<'PY'
import json, sys

bench_path, baseline_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
HEADLINE = {"e1_invocation", "e11_batch", "e12_durability", "e13_group_commit",
            "e14_multibuffer", "e15_sharded", "e16_rollover", "e17_supervisor"}

baseline = {}
with open(baseline_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        baseline[f"{row['group']}/{row['bench']}"] = row["ns_per_iter"]

with open(bench_path) as f:
    benches = json.load(f)["benches"]

regressions, checked, unguarded = [], 0, []
for key, entry in sorted(benches.items()):
    group = key.split("/", 1)[0]
    if group not in HEADLINE or "after_ns" not in entry:
        continue
    if key not in baseline or baseline[key] <= 0:
        unguarded.append(key)
        continue
    checked += 1
    ratio = entry["after_ns"] / baseline[key]
    status = "REGRESSION" if ratio > threshold else "ok"
    print(f"  {status:>10}  {key}: {entry['after_ns']:.0f} ns vs baseline "
          f"{baseline[key]:.0f} ns (x{ratio:.2f}, limit x{threshold:.2f})")
    if ratio > threshold:
        regressions.append(key)

for key in unguarded:
    print(f"  unguarded   {key}: no baseline entry")
if checked == 0:
    print("bench_gate: no guarded headline benches found", file=sys.stderr)
    sys.exit(2)
if regressions:
    print(f"bench_gate: {len(regressions)} regression(s) beyond "
          f"{(threshold - 1) * 100:.0f}%: {', '.join(regressions)}", file=sys.stderr)
    sys.exit(1)
print(f"bench_gate: {checked} headline benches within x{threshold} of baseline")
PY
}

if [[ "${1:-}" == "--self-test" ]]; then
    # The gate must trip on a synthetic 30% regression and pass on a
    # within-threshold fixture built from the same baseline.
    tmp="$(mktemp -d /tmp/nonrep-bench-gate-XXXX)"
    trap 'rm -rf "$tmp"' EXIT
    printf '%s\n' \
        '{"group":"e1_invocation","bench":"direct_16KiB","ns_per_iter":100000.0,"iters":100}' \
        '{"group":"e13_group_commit","bench":"append_4x64/group_commit","ns_per_iter":1000000.0,"iters":10}' \
        '{"group":"e15_sharded","bench":"adjudicate_run_16x32/shards_16","ns_per_iter":30000.0,"iters":1000}' \
        >"$tmp/baseline.jsonl"
    printf '%s\n' \
        '{"benches":{"e1_invocation/direct_16KiB":{"after_ns":130000.0},"e13_group_commit/append_4x64/group_commit":{"after_ns":900000.0},"e15_sharded/adjudicate_run_16x32/shards_16":{"after_ns":31000.0}}}' \
        >"$tmp/regressed.json"
    printf '%s\n' \
        '{"benches":{"e1_invocation/direct_16KiB":{"after_ns":110000.0},"e13_group_commit/append_4x64/group_commit":{"after_ns":1200000.0},"e15_sharded/adjudicate_run_16x32/shards_16":{"after_ns":31000.0}}}' \
        >"$tmp/clean.json"
    echo "==> self-test: synthetic 30% regression must fail"
    if run_gate "$tmp/regressed.json" "$tmp/baseline.jsonl"; then
        echo "bench_gate self-test FAILED: regression fixture passed" >&2
        exit 1
    fi
    echo "==> self-test: within-threshold fixture must pass"
    run_gate "$tmp/clean.json" "$tmp/baseline.jsonl"
    echo "bench_gate: self-test passed"
    exit 0
fi

BENCH="${1:-}"
if [[ -z "$BENCH" ]]; then
    BENCH="$(find . -maxdepth 1 -name 'BENCH_*.json' -printf '%f\n' | sort -V | tail -1)"
fi
if [[ -z "$BENCH" || ! -f "$BENCH" ]]; then
    echo "bench_gate: no BENCH_*.json found (run scripts/bench.sh first)" >&2
    exit 2
fi
N="$(basename "$BENCH" | sed -E 's/^BENCH_([0-9]+)\.json$/\1/')"
BASELINE="${2:-scripts/bench_baseline_${N}.jsonl}"
if [[ ! -f "$BASELINE" ]]; then
    echo "bench_gate: baseline $BASELINE not found" >&2
    exit 2
fi
echo "==> bench gate: $BENCH vs $BASELINE"
run_gate "$BENCH" "$BASELINE"
