#!/usr/bin/env bash
# Runs the full perf-tracked experiment suite (e1–e3, e5–e17) and writes
# BENCH_<N>.json at the repo root with before/after numbers, where
# "before" is the checked-in baseline (scripts/bench_baseline_<N>.jsonl —
# seed-implementation numbers carried forward, plus regression-guard
# rows for post-seed benches). See docs/BENCHMARKS.md; the regression
# gate over the result is scripts/bench_gate.sh.
#
# The disk-bound suites (e12/e13/e15) run three times and the merge
# keeps each row's best run: their numbers ride on fsync latency, which
# drifts with host load far more than the CPU-bound suites (BENCH_5
# showed 0.87–0.92× swings on e12/e13 from noise alone), and the best
# of three is the stable estimate of what the code can do.
#
# Usage: scripts/bench.sh [N]    (default N=7)
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
N="${1:-7}"
BASELINE="scripts/bench_baseline_${N}.jsonl"
CURRENT="$(mktemp /tmp/nonrep-bench-XXXX.jsonl)"
trap 'rm -f "$CURRENT"' EXIT

DISK_BOUND=" e12_durability e13_group_commit e15_sharded "
for bench in e1_invocation e2_sharing e3_trust_domains e5_container e6_crypto \
             e7_evidence_space e8_messages e9_faults e10_group_size e11_batch_commit \
             e12_durability e13_group_commit e14_multibuffer e15_sharded \
             e16_rollover e17_supervisor; do
    runs=1
    [[ "$DISK_BOUND" == *" $bench "* ]] && runs=3
    for ((r = 0; r < runs; r++)); do
        NONREP_BENCH_JSON="$CURRENT" cargo bench -p nonrep_bench --bench "$bench"
    done
done

python3 - "$BASELINE" "$CURRENT" "BENCH_${N}.json" <<'PY'
import json, sys, platform, subprocess

baseline_path, current_path, out_path = sys.argv[1:4]

def load(path):
    rows = {}
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                # Best (minimum) run of a bench wins: the disk-bound
                # suites append three runs per row (see the loop above).
                key = f"{row['group']}/{row['bench']}"
                rows[key] = min(rows.get(key, row["ns_per_iter"]), row["ns_per_iter"])
    except FileNotFoundError:
        pass
    return rows

before = load(baseline_path)
after = load(current_path)

benches = {}
for key in sorted(set(before) | set(after)):
    entry = {}
    if key in before:
        entry["before_ns"] = before[key]
    if key in after:
        entry["after_ns"] = after[key]
    if key in before and key in after and after[key] > 0:
        entry["speedup"] = round(before[key] / after[key], 2)
    benches[key] = entry

try:
    cpu = subprocess.run(
        ["sh", "-c", "grep -m1 'model name' /proc/cpuinfo | cut -d: -f2"],
        capture_output=True, text=True, check=False,
    ).stdout.strip() or platform.processor()
    cores = subprocess.run(["nproc"], capture_output=True, text=True, check=False).stdout.strip()
except OSError:
    cpu, cores = platform.processor(), "?"

doc = {
    "description": (
        "Before/after benchmark numbers (ns per iteration). 'before' is the "
        "seed implementation baseline captured in scripts/bench_baseline_%s"
        ".jsonl; 'after' is the current tree. Regenerate with scripts/bench.sh."
    ) % out_path.split("_")[1].split(".")[0],
    "host": {"cpu": cpu, "cores": cores, "sha_ni": "sha_ni" in open("/proc/cpuinfo").read()},
    "benches": benches,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(benches)} benches)")
PY
