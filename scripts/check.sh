#!/usr/bin/env bash
# CI gate: tier-1 verification plus formatting, lint, doc and example
# checks. This script IS the CI definition — .github/workflows/ci.yml
# just runs it, so the gate cannot drift from what developers run
# locally.
#
#   scripts/check.sh           # build + tests + fmt + clippy + rustdoc + examples
#   scripts/check.sh --fast    # skip the release build and example smoke tests
#   scripts/check.sh --bench   # additionally run the bench-regression gate
#                              # (self-test + newest BENCH_*.json vs baseline)
#
# Tier-1 (ROADMAP): cargo build --release && cargo test -q
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1

FAST=0
BENCH=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        --bench) BENCH=1 ;;
        *)
            echo "check.sh: unknown option '$arg' (expected --fast or --bench)" >&2
            exit 2
            ;;
    esac
done

if [[ "$FAST" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

# Session-type conformance: the suite walks every legal trace of every
# choreography against live fixtures (it already ran inside the full
# test pass above; this explicit invocation keeps the gate loud if the
# suite is ever renamed or filtered out).
echo "==> cargo test -q -p nonrep_protocols --test conformance"
cargo test -q -p nonrep_protocols --test conformance

# SIMD bugs must not hide behind a fast host: the crypto differential
# suite (multi-buffer vs sequential hashing, W-OTS tier equivalence)
# re-runs with dispatch pinned to the portable kernel. The hss suite is
# named explicitly: the hierarchical lifecycle (subtree walks, rollover
# certs, chained verification) leans on the same lane-batched kernels,
# so it must stay green on the portable path too.
echo "==> NONREP_DISPATCH=scalar cargo test -q -p nonrep_crypto"
NONREP_DISPATCH=scalar cargo test -q -p nonrep_crypto
echo "==> NONREP_DISPATCH=scalar cargo test -q -p nonrep_crypto hss"
NONREP_DISPATCH=scalar cargo test -q -p nonrep_crypto hss

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

if command -v shellcheck >/dev/null 2>&1; then
    echo "==> shellcheck scripts/*.sh"
    shellcheck scripts/*.sh
else
    echo "==> shellcheck not installed; skipping (CI runs it)"
fi

if [[ "$FAST" -eq 0 ]]; then
    echo "==> example smoke tests"
    for example in quickstart dispute_resolution contract_monitoring trust_domains \
                   virtual_enterprise; do
        echo "--> cargo run --release --example $example"
        cargo run --release --quiet --example "$example" >/dev/null
    done

    # Adversarial fleet sweep: seeded byzantine scenarios replayed under
    # permuted schedules; prints a NONREP_SIM_SEED repro line on failure.
    echo "==> adversarial fleet sweep (scripts/sim.sh)"
    scripts/sim.sh 4
fi

if [[ "$BENCH" -eq 1 ]]; then
    echo "==> bench-regression gate"
    scripts/bench_gate.sh --self-test
    scripts/bench_gate.sh
fi

echo "check.sh: all green"
