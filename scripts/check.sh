#!/usr/bin/env bash
# CI gate: tier-1 verification plus formatting, lint and doc checks.
#
#   scripts/check.sh           # build + tests + fmt + clippy + rustdoc
#   scripts/check.sh --fast    # skip the release build (tests only)
#
# Tier-1 (ROADMAP): cargo build --release && cargo test -q
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

if [[ "$FAST" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "check.sh: all green"
