//! E12 integration: contract-FSM validation of shared-information updates
//! through the full middleware (paper §6 future work).

use std::collections::BTreeSet;
use std::sync::Arc;

use nonrep::contract::{ContractMonitor, ContractSpec, ContractValidator};
use nonrep::prelude::*;

fn contract() -> ContractSpec {
    ContractSpec::new("negotiation", "open")
        .state("agreed")
        .breach_state("withdrawn-after-agreement")
        .transition("open", "spec.revise", "open")
        .transition("open", "spec.agree", "agreed")
        .transition("agreed", "spec.withdraw", "withdrawn-after-agreement")
}

fn event_of(object: &str, _cur: Option<&[u8]>, proposed: &[u8]) -> Option<String> {
    if object != "spec" {
        return None;
    }
    let text = String::from_utf8_lossy(proposed);
    let verb = text.split(';').next()?;
    Some(format!("spec.{verb}"))
}

struct World {
    a: Arc<OrgMiddleware>,
    b: Arc<OrgMiddleware>,
    group: GroupId,
    monitor: Arc<ContractMonitor>,
}

fn world() -> World {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let a = OrgMiddleware::builder("a", bus.clone(), dir.clone(), clock.clone()).build();
    let b = OrgMiddleware::builder("b", bus, dir, clock).build();
    let group = GroupId::new("g");
    let set: BTreeSet<OrgId> = [OrgId::new("a"), OrgId::new("b")].into();
    a.install_group(group.clone(), set.clone());
    b.install_group(group.clone(), set);
    let monitor = Arc::new(ContractMonitor::new(contract()));
    b.add_validator(ContractValidator::new(monitor.clone(), event_of));
    World {
        a,
        b,
        group,
        monitor,
    }
}

#[test]
fn contract_is_verified_before_use() {
    assert!(contract().check().is_empty());
}

#[test]
fn compliant_updates_flow_and_monitor_advances() {
    let w = world();
    for (state, event) in [
        (&b"revise;v=1"[..], "spec.revise"),
        (b"revise;v=2", "spec.revise"),
        (b"agree;v=2", "spec.agree"),
    ] {
        let out =
            w.a.propose_update(&w.group, "spec", state.to_vec())
                .unwrap();
        assert!(out.accepted, "{event}");
        w.monitor.observe(event).unwrap();
    }
    assert_eq!(w.monitor.state().as_str(), "agreed");
    assert_eq!(w.b.current_state("spec").unwrap(), b"agree;v=2");
}

#[test]
fn breaching_update_is_vetoed_with_signed_reason() {
    let w = world();
    w.a.propose_update(&w.group, "spec", b"agree;v=1".to_vec())
        .unwrap();
    w.monitor.observe("spec.agree").unwrap();
    // Withdrawing after agreement would breach: vetoed.
    let out =
        w.a.propose_update(&w.group, "spec", b"withdraw;v=1".to_vec())
            .unwrap();
    assert!(!out.accepted);
    let veto = out.votes.iter().find(|v| !v.accept).unwrap();
    assert!(veto.reason.contains("contract violation"));
    // Replicas keep the agreed state; the monitor never advanced.
    assert_eq!(w.b.current_state("spec").unwrap(), b"agree;v=1");
    assert_eq!(w.monitor.state().as_str(), "agreed");
    // The veto is in A's evidence log, attributable to B.
    let veto_records =
        w.a.log()
            .count_where(&|r| r.draft.kind == "vote" && r.draft.actor == OrgId::new("b"));
    assert!(veto_records >= 1);
}

#[test]
fn out_of_scope_objects_are_not_contract_checked() {
    let w = world();
    let out =
        w.a.propose_update(&w.group, "other-doc", b"anything".to_vec())
            .unwrap();
    assert!(out.accepted);
}

#[test]
fn unknown_contract_event_is_rejected() {
    let w = world();
    let out =
        w.a.propose_update(&w.group, "spec", b"explode;v=1".to_vec())
            .unwrap();
    assert!(!out.accepted);
    assert!(out.votes[0].reason.contains("spec.explode"));
}
