//! E5/§3.5 integration: PKI-backed credentials drive event-based role
//! activation, and the access-control interceptor enforces the result on
//! the container invocation path.

use std::sync::Arc;

use nonrep::access::{
    AccessPolicy, Action, CredentialRoleMapper, Permission, Role, SessionManager,
};
use nonrep::container::interceptor::AccessControlInterceptor;
use nonrep::pki::{CertificateAuthority, CredentialManager};
use nonrep::prelude::*;

struct PkiWorld {
    ca: CertificateAuthority,
    manager: CredentialManager,
    sessions: Arc<SessionManager>,
    clock: LogicalClock,
}

fn pki_world() -> PkiWorld {
    let clock = LogicalClock::new();
    let ca_keys = KeyPair::generate(
        SignatureScheme::Mss { height: 6 },
        &mut SecureRandom::from_seed(1),
    );
    let ca = CertificateAuthority::new(OrgId::new("root-ca"), ca_keys, Arc::new(clock.clone()));
    let manager = CredentialManager::new(Arc::new(clock.clone()));
    manager
        .add_anchor(ca.self_signed(1_000_000).unwrap())
        .unwrap();
    let mapper = CredentialRoleMapper::new()
        .map_attribute("supplier", Role::new("supplier"))
        .baseline_role(Role::new("member"));
    let policy = AccessPolicy::new()
        .grant(
            Role::new("supplier"),
            Permission::new("urn:parts.*", Action::Invoke),
        )
        .grant(
            Role::new("member"),
            Permission::new("urn:info.read", Action::Invoke),
        );
    let sessions = Arc::new(
        SessionManager::new(mapper, policy).deactivate_on("contract.breach", Role::new("supplier")),
    );
    PkiWorld {
        ca,
        manager,
        sessions,
        clock,
    }
}

fn guarded_container(sessions: Arc<SessionManager>) -> Arc<Container> {
    let c = Container::new("server");
    c.deploy(
        DeploymentDescriptor::new("urn:parts", [MethodName::new("order")]),
        Arc::new(FnComponent::new().method("order", |_| Ok(Value::from("ordered")))),
    )
    .unwrap();
    c.deploy(
        DeploymentDescriptor::new("urn:info", [MethodName::new("read")]),
        Arc::new(FnComponent::new().method("read", |_| Ok(Value::from("info")))),
    )
    .unwrap();
    c.add_first_interceptor(Arc::new(AccessControlInterceptor::new(sessions)));
    c
}

#[test]
fn certificate_to_invocation_pipeline() {
    let w = pki_world();
    // Supplier-a presents a CA-issued certificate with the supplier role.
    let subject_keys =
        KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(2));
    let cert =
        w.ca.issue(
            OrgId::new("supplier-a"),
            subject_keys.verifying_key(),
            vec!["supplier".into()],
            10_000,
        )
        .unwrap();
    w.manager.add_certificate(cert.clone());
    // Verify through the credential manager before activation (§3.5).
    w.manager.verify_certificate(&cert).unwrap();
    w.sessions.activate(&cert);

    let container = guarded_container(w.sessions.clone());
    let order = container.invoke(nonrep::container::Invocation::new(
        "supplier-a",
        "urn:parts",
        "order",
        Value::Null,
    ));
    assert_eq!(order.unwrap(), Value::from("ordered"));
    // Baseline member role also granted.
    assert!(container
        .invoke(nonrep::container::Invocation::new(
            "supplier-a",
            "urn:info",
            "read",
            Value::Null
        ))
        .is_ok());
}

#[test]
fn unknown_caller_denied() {
    let w = pki_world();
    let container = guarded_container(w.sessions.clone());
    let err = container
        .invoke(nonrep::container::Invocation::new(
            "ghost",
            "urn:parts",
            "order",
            Value::Null,
        ))
        .unwrap_err();
    assert!(matches!(err, ContainerError::AccessDenied(_)));
}

#[test]
fn breach_event_deactivates_role_mid_session() {
    let w = pki_world();
    let subject_keys =
        KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(3));
    let cert =
        w.ca.issue(
            OrgId::new("supplier-a"),
            subject_keys.verifying_key(),
            vec!["supplier".into()],
            10_000,
        )
        .unwrap();
    w.manager.add_certificate(cert.clone());
    w.sessions.activate(&cert);
    let container = guarded_container(w.sessions.clone());
    let inv =
        || nonrep::container::Invocation::new("supplier-a", "urn:parts", "order", Value::Null);
    assert!(container.invoke(inv()).is_ok());
    // A contract breach event strips the supplier role (OASIS-style).
    w.sessions
        .on_event(&OrgId::new("supplier-a"), "contract.breach");
    assert!(matches!(
        container.invoke(inv()),
        Err(ContainerError::AccessDenied(_))
    ));
    // The baseline member role survives.
    assert!(container
        .invoke(nonrep::container::Invocation::new(
            "supplier-a",
            "urn:info",
            "read",
            Value::Null
        ))
        .is_ok());
}

#[test]
fn revoked_certificate_cannot_activate() {
    let w = pki_world();
    let subject_keys =
        KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(4));
    let cert =
        w.ca.issue(
            OrgId::new("supplier-b"),
            subject_keys.verifying_key(),
            vec!["supplier".into()],
            10_000,
        )
        .unwrap();
    w.manager.add_certificate(cert.clone());
    let crl = w.ca.issue_crl(vec![cert.serial]).unwrap();
    w.manager.add_crl(crl).unwrap();
    // Verification fails; a compliant deployment therefore never activates.
    assert!(w.manager.verify_certificate(&cert).is_err());
}

#[test]
fn expired_certificate_rejected_by_clock() {
    let w = pki_world();
    let subject_keys =
        KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(5));
    let cert =
        w.ca.issue(
            OrgId::new("supplier-c"),
            subject_keys.verifying_key(),
            vec![],
            100,
        )
        .unwrap();
    w.manager.add_certificate(cert.clone());
    w.manager.verify_certificate(&cert).unwrap();
    w.clock.advance(500);
    assert!(w.manager.verify_certificate(&cert).is_err());
}
