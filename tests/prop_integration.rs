//! Cross-crate property tests: middleware invariants under generated
//! workloads.

use std::collections::BTreeSet;
use std::sync::Arc;

use nonrep::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

fn world() -> (Arc<LocalBus>, Arc<StaticKeyDirectory>, LogicalClock) {
    (
        LocalBus::new(),
        Arc::new(StaticKeyDirectory::new()),
        LogicalClock::new(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sequence of successful NR invocations leaves both logs with
    /// 4 records per invocation and intact chains.
    #[test]
    fn evidence_grows_linearly_and_chains_hold(payloads in vec(vec(any::<u8>(), 0..64), 1..6)) {
        let (bus, dir, clock) = world();
        let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone()).build();
        let server = OrgMiddleware::builder("server", bus, dir, clock).build();
        server.deploy(
            DeploymentDescriptor::new("urn:svc", [MethodName::new("work")])
                .with_non_repudiation(NrConfig::protocol("direct")),
            Arc::new(FnComponent::new().method("work", |args| Ok(args.clone()))),
        ).unwrap();
        let proxy = client.nr_proxy(server.org(), "urn:svc");
        for p in &payloads {
            let v = Value::Bytes(p.clone());
            prop_assert_eq!(proxy.invoke("work", v.clone()).unwrap(), v);
        }
        prop_assert_eq!(client.log().len(), 4 * payloads.len() as u64);
        prop_assert_eq!(server.log().len(), 4 * payloads.len() as u64);
        client.log().verify().unwrap();
        server.log().verify().unwrap();
    }

    /// Replicas of a shared object are identical across members after any
    /// sequence of proposals from arbitrary members, and version history
    /// length equals the number of accepted rounds.
    #[test]
    fn replicas_never_diverge(updates in vec((0usize..3, vec(any::<u8>(), 1..32)), 1..8)) {
        let (bus, dir, clock) = world();
        let orgs: Vec<Arc<OrgMiddleware>> = ["a", "b", "c"]
            .iter()
            .map(|n| OrgMiddleware::builder(*n, bus.clone(), dir.clone(), clock.clone()).build())
            .collect();
        let group = GroupId::new("g");
        let set: BTreeSet<OrgId> = ["a", "b", "c"].iter().map(|n| OrgId::new(*n)).collect();
        for mw in &orgs {
            mw.install_group(group.clone(), set.clone());
        }
        let mut accepted = 0u64;
        for (who, state) in &updates {
            let out = orgs[*who].propose_update(&group, "obj", state.clone()).unwrap();
            if out.accepted {
                accepted += 1;
            }
        }
        prop_assert_eq!(accepted, updates.len() as u64, "no validator ⇒ all accepted");
        let reference = orgs[0].current_state("obj");
        for mw in &orgs[1..] {
            let state = mw.current_state("obj");
            prop_assert_eq!(state, reference.clone());
            prop_assert_eq!(mw.store().history("obj").len() as u64, accepted);
        }
    }

    /// Under arbitrary bounded loss, invocations still complete and
    /// execute exactly once each.
    #[test]
    fn liveness_under_bounded_loss(loss_pct in 0u32..60, n in 1usize..6, seed in any::<u64>()) {
        let bus = LocalBus::with_config(
            FaultPlan::lossy(f64::from(loss_pct) / 100.0, 3, seed)
                .with_response_drop_share(0.5),
            LatencyModel::Zero,
            0,
        );
        let dir = Arc::new(StaticKeyDirectory::new());
        let clock = LogicalClock::new();
        let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
            .retry(RetryPolicy::new(8))
            .build();
        let server = OrgMiddleware::builder("server", bus, dir, clock).build();
        let hits = Arc::new(std::sync::Mutex::new(0u32));
        let counter = Arc::clone(&hits);
        server.deploy(
            DeploymentDescriptor::new("urn:svc", [MethodName::new("work")])
                .with_non_repudiation(NrConfig::protocol("direct")),
            Arc::new(FnComponent::new().method("work", move |args| {
                *counter.lock().unwrap() += 1;
                Ok(args.clone())
            })),
        ).unwrap();
        let proxy = client.nr_proxy(server.org(), "urn:svc");
        for i in 0..n {
            proxy.invoke("work", Value::from(i as u64)).unwrap();
        }
        prop_assert_eq!(*hits.lock().unwrap(), n as u32);
    }
}
