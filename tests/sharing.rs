//! E2 integration: non-repudiable information sharing (paper Fig 5) plus
//! membership connect/disconnect, through the full middleware stack.

use std::collections::BTreeSet;
use std::sync::Arc;

use nonrep::prelude::*;

fn orgs(names: &[&str]) -> Vec<Arc<OrgMiddleware>> {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    names
        .iter()
        .map(|n| OrgMiddleware::builder(*n, bus.clone(), dir.clone(), clock.clone()).build())
        .collect()
}

fn with_group(names: &[&str]) -> (Vec<Arc<OrgMiddleware>>, GroupId) {
    let mws = orgs(names);
    let group = GroupId::new("ve");
    let set: BTreeSet<OrgId> = names.iter().map(|n| OrgId::new(*n)).collect();
    for mw in &mws {
        mw.install_group(group.clone(), set.clone());
    }
    (mws, group)
}

#[test]
fn unanimous_update_reaches_every_replica() {
    let (mws, group) = with_group(&["a", "b", "c", "d"]);
    let out = mws[0]
        .propose_update(&group, "spec", b"v1".to_vec())
        .unwrap();
    assert!(out.accepted);
    assert_eq!(out.votes.len(), 3);
    for mw in &mws {
        assert_eq!(mw.current_state("spec").unwrap(), b"v1");
    }
}

#[test]
fn any_member_can_propose_and_versions_stay_in_lockstep() {
    let (mws, group) = with_group(&["a", "b", "c"]);
    for (i, state) in [b"s0".as_slice(), b"s1", b"s2", b"s3", b"s4", b"s5"]
        .iter()
        .enumerate()
    {
        let proposer = &mws[i % 3];
        let out = proposer
            .propose_update(&group, "doc", state.to_vec())
            .unwrap();
        assert!(out.accepted);
        assert_eq!(out.version, Some(i as u64));
    }
    for mw in &mws {
        assert_eq!(mw.store().history("doc").len(), 6);
        assert_eq!(mw.current_state("doc").unwrap(), b"s5");
    }
}

#[test]
fn veto_is_attributable_and_blocks_everywhere() {
    let (mws, group) = with_group(&["a", "b", "c"]);
    mws[0]
        .propose_update(&group, "spec", b"good".to_vec())
        .unwrap();
    mws[2].add_validator(Arc::new(|_: &str, _: Option<&[u8]>, p: &[u8]| {
        if p.starts_with(b"evil") {
            Err("rejected by policy".to_string())
        } else {
            Ok(())
        }
    }));
    let out = mws[1]
        .propose_update(&group, "spec", b"evil update".to_vec())
        .unwrap();
    assert!(!out.accepted);
    let veto = out.votes.iter().find(|v| !v.accept).unwrap();
    assert_eq!(veto.voter, OrgId::new("c"));
    assert_eq!(veto.reason, "rejected by policy");
    for mw in &mws {
        assert_eq!(mw.current_state("spec").unwrap(), b"good");
    }
    // The veto vote is signed, stored by the proposer, and verifiable.
    let c_key = mws[1].directory().key_of(&OrgId::new("c")).unwrap();
    assert!(veto.verify(&c_key, out.run_id));
}

#[test]
fn connect_transfers_state_and_extends_membership() {
    // A world with three orgs where only a+b start in the group.
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let a = OrgMiddleware::builder("a", bus.clone(), dir.clone(), clock.clone()).build();
    let b = OrgMiddleware::builder("b", bus.clone(), dir.clone(), clock.clone()).build();
    let c = OrgMiddleware::builder("c", bus, dir, clock).build();
    let group = GroupId::new("ve");
    let set: BTreeSet<OrgId> = [OrgId::new("a"), OrgId::new("b")].into();
    a.install_group(group.clone(), set.clone());
    b.install_group(group.clone(), set);
    a.propose_update(&group, "spec", b"v0".to_vec()).unwrap();
    b.propose_update(&group, "spec", b"v1".to_vec()).unwrap();

    let out = a.connect(&group, c.org()).unwrap();
    assert!(out.accepted);
    // c received the group, the spec history, and the latest state.
    assert_eq!(c.group_members(&group).unwrap().len(), 3);
    assert_eq!(c.current_state("spec").unwrap(), b"v1");
    assert_eq!(c.store().history("spec").len(), 2);
    // And can propose immediately.
    let update = c
        .propose_update(&group, "spec", b"v2-from-c".to_vec())
        .unwrap();
    assert!(update.accepted);
    assert_eq!(a.current_state("spec").unwrap(), b"v2-from-c");
}

#[test]
fn disconnect_shrinks_the_group_everywhere() {
    let (mws, group) = with_group(&["a", "b", "c"]);
    let out = mws[0].disconnect(&group, &OrgId::new("c")).unwrap();
    assert!(out.accepted);
    for mw in &mws[..2] {
        assert_eq!(mw.group_members(&group).unwrap().len(), 2);
    }
    // A subsequent update involves only the remaining members.
    let update = mws[1]
        .propose_update(&group, "doc", b"post-leave".to_vec())
        .unwrap();
    assert!(update.accepted);
    assert_eq!(update.votes.len(), 1);
}

#[test]
fn evidence_of_rounds_is_complete_and_verifiable() {
    let (mws, group) = with_group(&["a", "b", "c"]);
    let out = mws[0]
        .propose_update(&group, "spec", b"v".to_vec())
        .unwrap();
    // Proposer: proposal + 2 votes + decision.
    assert_eq!(mws[0].log().by_run(&out.run_id).len(), 4);
    // Validators: proposal + own vote + decision.
    for mw in &mws[1..] {
        assert_eq!(mw.log().by_run(&out.run_id).len(), 3);
        mw.log().verify().unwrap();
    }
}

#[test]
fn concurrent_object_histories_are_independent() {
    let (mws, group) = with_group(&["a", "b"]);
    mws[0]
        .propose_update(&group, "alpha", b"a1".to_vec())
        .unwrap();
    mws[1]
        .propose_update(&group, "beta", b"b1".to_vec())
        .unwrap();
    mws[0]
        .propose_update(&group, "alpha", b"a2".to_vec())
        .unwrap();
    assert_eq!(mws[1].store().history("alpha").len(), 2);
    assert_eq!(mws[1].store().history("beta").len(), 1);
}
