//! E1 integration: non-repudiable service invocation through the full
//! middleware stack (container → proxy → NR interceptor → protocol →
//! coordinator → bus → remote container).

use std::sync::Arc;

use nonrep::prelude::*;

fn world() -> (Arc<LocalBus>, Arc<StaticKeyDirectory>, LogicalClock) {
    (
        LocalBus::new(),
        Arc::new(StaticKeyDirectory::new()),
        LogicalClock::new(),
    )
}

fn deploy_parts(server: &OrgMiddleware) {
    server
        .deploy(
            DeploymentDescriptor::new(
                "urn:parts",
                [MethodName::new("quote"), MethodName::new("fail")],
            )
            .with_non_repudiation(NrConfig::protocol("direct")),
            Arc::new(
                FnComponent::new()
                    .method("quote", |args| {
                        let part = args.get("part").and_then(Value::as_str).unwrap_or("?");
                        Ok(Value::map([
                            ("part", Value::from(part)),
                            ("price", Value::from(100i64)),
                        ]))
                    })
                    .method("fail", |_| {
                        Err(ContainerError::Application("out of stock".into()))
                    }),
            ),
        )
        .unwrap();
}

#[test]
fn full_exchange_produces_symmetric_evidence() {
    let (bus, dir, clock) = world();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone()).build();
    let server = OrgMiddleware::builder("server", bus, dir, clock).build();
    deploy_parts(&server);

    let proxy = client.nr_proxy(server.org(), "urn:parts");
    let quote = proxy
        .invoke("quote", Value::map([("part", Value::from("gearbox"))]))
        .unwrap();
    assert_eq!(quote.get("price").and_then(Value::as_i64), Some(100));

    for mw in [&client, &server] {
        let mut kinds: Vec<String> = Vec::new();
        mw.log().for_each(&mut |r| kinds.push(r.draft.kind.clone()));
        assert_eq!(
            kinds,
            vec!["NRO_req", "NRR_req", "NRO_resp", "NRR_resp"],
            "{}",
            mw.org()
        );
        mw.log().verify().unwrap();
    }
}

#[test]
fn business_failure_is_evidenced_not_swallowed() {
    let (bus, dir, clock) = world();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone()).build();
    let server = OrgMiddleware::builder("server", bus, dir, clock).build();
    deploy_parts(&server);

    let proxy = client.nr_proxy(server.org(), "urn:parts");
    let err = proxy.invoke("fail", Value::Null).unwrap_err();
    assert!(matches!(err, ContainerError::Application(msg) if msg.contains("out of stock")));
    // The failed invocation still produced the full evidence set: the
    // paper's "interceptor-generated evidence that the request failed".
    assert_eq!(client.log().len(), 4);
    assert_eq!(server.log().len(), 4);
}

#[test]
fn at_most_once_under_lossy_channel() {
    use nonrep::container::descriptor::{DeploymentDescriptor, NrConfig};
    use std::sync::Mutex;

    let bus = LocalBus::with_config(
        FaultPlan::lossy(0.4, 3, 2024).with_response_drop_share(0.5),
        LatencyModel::Zero,
        0,
    );
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .retry(RetryPolicy::new(8))
        .build();
    let server = OrgMiddleware::builder("server", bus.clone(), dir, clock).build();
    let executions = Arc::new(Mutex::new(0u32));
    let counter = Arc::clone(&executions);
    server
        .deploy(
            DeploymentDescriptor::new("urn:once", [MethodName::new("inc")])
                .with_non_repudiation(NrConfig::protocol("direct")),
            Arc::new(FnComponent::new().method("inc", move |_| {
                *counter.lock().unwrap() += 1;
                Ok(Value::Null)
            })),
        )
        .unwrap();

    let proxy = client.nr_proxy(server.org(), "urn:once");
    for _ in 0..25 {
        proxy.invoke("inc", Value::Null).unwrap();
    }
    assert_eq!(
        *executions.lock().unwrap(),
        25,
        "retries must not re-execute"
    );
    assert!(bus.stats().dropped > 0, "loss must actually have occurred");
}

#[test]
fn voluntary_baseline_gives_client_nothing() {
    let (bus, dir, clock) = world();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .domain(TrustDomain::Voluntary)
        .build();
    let server = OrgMiddleware::builder("server", bus, dir, clock).build();
    deploy_parts(&server);
    let proxy = client.nr_proxy(server.org(), "urn:parts");
    proxy
        .invoke("quote", Value::map([("part", Value::from("hub"))]))
        .unwrap();
    // Asymmetry (E11): the server holds the client's NRO; the client holds
    // nothing *about the server*.
    let mut server_kinds: Vec<String> = Vec::new();
    server
        .log()
        .for_each(&mut |r| server_kinds.push(r.draft.kind.clone()));
    assert_eq!(server_kinds, vec!["NRO_req"]);
    assert_eq!(
        client
            .log()
            .count_where(&|r| r.draft.actor == *server.org()),
        0
    );
}

#[test]
fn plain_and_nr_coexist_on_one_bus() {
    let (bus, dir, clock) = world();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone()).build();
    let server = OrgMiddleware::builder("server", bus, dir, clock).build();
    deploy_parts(&server);
    let plain = client.plain_proxy(server.org(), "urn:parts");
    let nr = client.nr_proxy(server.org(), "urn:parts");
    assert!(plain
        .invoke("quote", Value::map([("part", Value::from("x"))]))
        .is_ok());
    assert!(nr
        .invoke("quote", Value::map([("part", Value::from("x"))]))
        .is_ok());
    // Only the NR invocation left evidence.
    assert_eq!(client.log().len(), 4);
}

#[test]
fn caller_identity_comes_from_the_protocol_not_the_payload() {
    // A client cannot impersonate another org by writing a different
    // caller into the serialized invocation: the executor overrides it
    // with the protocol-authenticated sender.
    use std::sync::Mutex;
    let (bus, dir, clock) = world();
    let client = OrgMiddleware::builder("mallory", bus.clone(), dir.clone(), clock.clone()).build();
    let server = OrgMiddleware::builder("server", bus, dir, clock).build();
    let seen = Arc::new(Mutex::new(Vec::<String>::new()));
    let seen2 = Arc::clone(&seen);
    server
        .deploy(
            DeploymentDescriptor::new("urn:who", [MethodName::new("whoami")])
                .with_non_repudiation(NrConfig::protocol("direct")),
            Arc::new(FnComponent::new().method("whoami", move |_args| Ok(Value::Null))),
        )
        .unwrap();
    // Observe callers via a logging interceptor on the server chain.
    struct Spy(Arc<Mutex<Vec<String>>>);
    impl nonrep::container::Interceptor for Spy {
        fn invoke(
            &self,
            inv: nonrep::container::Invocation,
            chain: &nonrep::container::Chain<'_>,
        ) -> Result<Value, ContainerError> {
            self.0.lock().unwrap().push(inv.caller.to_string());
            chain.proceed(inv)
        }
    }
    server.container().add_interceptor(Arc::new(Spy(seen2)));
    let proxy = client.nr_proxy(server.org(), "urn:who");
    proxy.invoke("whoami", Value::Null).unwrap();
    assert_eq!(seen.lock().unwrap().as_slice(), &["mallory".to_string()]);
}
