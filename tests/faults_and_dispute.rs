//! E9 integration: behaviour under failures (crash, partition, loss) and
//! dispute resolution from the surviving evidence.

use std::sync::Arc;

use nonrep::prelude::*;

fn deploy_echo(mw: &OrgMiddleware) {
    mw.deploy(
        DeploymentDescriptor::new("urn:svc", [MethodName::new("work")])
            .with_non_repudiation(NrConfig::protocol("direct")),
        Arc::new(FnComponent::new().method("work", |args| Ok(args.clone()))),
    )
    .unwrap();
}

#[test]
fn crashed_server_fails_cleanly_and_recovers() {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .retry(RetryPolicy::new(2))
        .build();
    let server = OrgMiddleware::builder("server", bus.clone(), dir, clock).build();
    deploy_echo(&server);
    let proxy = client.nr_proxy(server.org(), "urn:svc");

    bus.fault_plan().crash(server.org());
    // The b2b endpoint is a separate bus identity; crash it too.
    bus.fault_plan()
        .crash(&nonrep::core::b2b_address(server.org()));
    let err = proxy.invoke("work", Value::from(1i64)).unwrap_err();
    assert!(matches!(err, ContainerError::Protocol(_)));
    // Only the client's own NRO is logged — nothing from the server.
    assert_eq!(client.log().len(), 1);

    bus.fault_plan().recover(server.org());
    bus.fault_plan()
        .recover(&nonrep::core::b2b_address(server.org()));
    assert!(proxy.invoke("work", Value::from(2i64)).is_ok());
}

#[test]
fn partition_blocks_but_evidence_stays_consistent() {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .retry(RetryPolicy::new(2))
        .build();
    let server = OrgMiddleware::builder("server", bus.clone(), dir, clock).build();
    deploy_echo(&server);
    let proxy = client.nr_proxy(server.org(), "urn:svc");
    proxy.invoke("work", Value::from(1i64)).unwrap();

    bus.fault_plan().partition(
        &OrgId::new("client"),
        &nonrep::core::b2b_address(server.org()),
    );
    assert!(proxy.invoke("work", Value::from(2i64)).is_err());
    bus.fault_plan().heal(
        &OrgId::new("client"),
        &nonrep::core::b2b_address(server.org()),
    );
    proxy.invoke("work", Value::from(3i64)).unwrap();

    // Two completed exchanges: 8 records each side, chains intact.
    assert_eq!(server.log().len(), 8);
    client.log().verify().unwrap();
    server.log().verify().unwrap();
}

#[test]
fn sharing_round_survives_lossy_links() {
    use std::collections::BTreeSet;
    let bus = LocalBus::with_config(
        FaultPlan::lossy(0.3, 3, 555).with_response_drop_share(0.0),
        LatencyModel::Zero,
        0,
    );
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let a = OrgMiddleware::builder("a", bus.clone(), dir.clone(), clock.clone()).build();
    let b = OrgMiddleware::builder("b", bus.clone(), dir.clone(), clock.clone()).build();
    let c = OrgMiddleware::builder("c", bus.clone(), dir, clock).build();
    let group = GroupId::new("ve");
    let set: BTreeSet<OrgId> = [OrgId::new("a"), OrgId::new("b"), OrgId::new("c")].into();
    for mw in [&a, &b, &c] {
        mw.install_group(group.clone(), set.clone());
    }
    for i in 0..10u8 {
        let out = a.propose_update(&group, "doc", vec![i; 16]).unwrap();
        assert!(out.accepted, "round {i}");
    }
    assert!(bus.stats().dropped > 0);
    for mw in [&a, &b, &c] {
        assert_eq!(mw.store().history("doc").len(), 10);
    }
}

#[test]
fn adjudication_after_interrupted_exchange_favours_the_honest_party() {
    // The response is lost after execution: the client retries and
    // completes; both logs agree. Then the server denies having executed —
    // refuted by the client's verified NRO_resp.
    let bus = LocalBus::with_config(
        FaultPlan::lossy(0.6, 2, 99).with_response_drop_share(1.0),
        LatencyModel::Zero,
        0,
    );
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .retry(RetryPolicy::new(10))
        .build();
    let server = OrgMiddleware::builder("server", bus, dir.clone(), clock).build();
    deploy_echo(&server);
    let proxy = client.nr_proxy(server.org(), "urn:svc");
    proxy.invoke("work", Value::from(1i64)).unwrap();

    let run = client.log().snapshot_range(0..1)[0].draft.run_id;
    let adjudicator = Adjudicator::new(dir as Arc<dyn KeyDirectory>);
    let verdict = adjudicator.adjudicate_logs(run, &[(OrgId::new("client"), &**client.log())]);
    assert!(verdict.cannot_deny(&OrgId::new("server"), TokenKind::NroResp));
    assert!(verdict.cannot_deny(&OrgId::new("server"), TokenKind::NrrReq));
}

#[test]
fn fair_exchange_defeats_defecting_server_end_to_end() {
    use nonrep::protocols::invocation::fair_offline::ServerConduct;
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let ttp_org = OrgId::new("ttp");
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .domain(TrustDomain::FairOffline {
            ttp: ttp_org.clone(),
        })
        .build();
    let server = OrgMiddleware::builder("server", bus.clone(), dir.clone(), clock.clone())
        .offline_ttp(ttp_org.clone())
        .server_conduct(ServerConduct::WithholdKey)
        .build();
    let ttp = OrgMiddleware::builder("ttp", bus, dir, clock).build();
    ttp.serve_as_offline_ttp();
    deploy_echo(&server);
    // Despite the server withholding the key, the client gets the result
    // (resolved through the TTP).
    let proxy = client.nr_proxy(server.org(), "urn:svc");
    let out = proxy.invoke("work", Value::from(5i64)).unwrap();
    assert_eq!(out, Value::from(5i64));
    // The TTP logged the resolution.
    assert_eq!(ttp.log().count_where(&|r| r.draft.kind == "resolve"), 1);
}
