//! E3 integration: the same invocation under every trust-domain deployment
//! of paper Fig 3, with message-count shape assertions.

use std::sync::Arc;

use nonrep::prelude::*;

struct Case {
    bus: Arc<LocalBus>,
    client: Arc<OrgMiddleware>,
    server: Arc<OrgMiddleware>,
}

fn build(domain: TrustDomain) -> Case {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .domain(domain.clone())
        .build();
    let mut sb = OrgMiddleware::builder("server", bus.clone(), dir.clone(), clock.clone());
    if let TrustDomain::FairOffline { ttp } = &domain {
        sb = sb.offline_ttp(ttp.clone());
    }
    let server = sb.build();
    match &domain {
        TrustDomain::InlineTtp { first_hop } if first_hop.as_str() == "ttp-a" => {
            let a =
                OrgMiddleware::builder("ttp-a", bus.clone(), dir.clone(), clock.clone()).build();
            a.serve_as_inline_ttp(Some(OrgId::new("ttp-b")));
            let b = OrgMiddleware::builder("ttp-b", bus.clone(), dir.clone(), clock).build();
            b.serve_as_inline_ttp(None);
        }
        TrustDomain::InlineTtp { first_hop } => {
            let t =
                OrgMiddleware::builder(first_hop.clone(), bus.clone(), dir.clone(), clock).build();
            t.serve_as_inline_ttp(None);
        }
        TrustDomain::FairOffline { ttp } => {
            let t = OrgMiddleware::builder(ttp.clone(), bus.clone(), dir.clone(), clock).build();
            t.serve_as_offline_ttp();
        }
        _ => {}
    }
    server
        .deploy(
            DeploymentDescriptor::new("urn:svc", [MethodName::new("work")])
                .with_non_repudiation(NrConfig::protocol("direct")),
            Arc::new(FnComponent::new().method("work", |args| Ok(args.clone()))),
        )
        .unwrap();
    Case {
        bus,
        client,
        server,
    }
}

fn messages_for(domain: TrustDomain) -> u64 {
    let case = build(domain);
    let proxy = case.client.nr_proxy(case.server.org(), "urn:svc");
    assert_eq!(
        proxy.invoke("work", Value::from(1i64)).unwrap(),
        Value::from(1i64)
    );
    case.bus.stats().delivered
}

#[test]
fn every_domain_delivers_the_correct_result() {
    for domain in [
        TrustDomain::Direct,
        TrustDomain::Voluntary,
        TrustDomain::InlineTtp {
            first_hop: OrgId::new("ttp"),
        },
        TrustDomain::InlineTtp {
            first_hop: OrgId::new("ttp-a"),
        },
        TrustDomain::FairOffline {
            ttp: OrgId::new("ttp"),
        },
    ] {
        let case = build(domain.clone());
        let proxy = case.client.nr_proxy(case.server.org(), "urn:svc");
        assert_eq!(
            proxy.invoke("work", Value::from(7i64)).unwrap(),
            Value::from(7i64),
            "domain {domain}"
        );
    }
}

#[test]
fn message_counts_follow_the_paper_shape() {
    let voluntary = messages_for(TrustDomain::Voluntary);
    let direct = messages_for(TrustDomain::Direct);
    let inline = messages_for(TrustDomain::InlineTtp {
        first_hop: OrgId::new("ttp"),
    });
    let distributed = messages_for(TrustDomain::InlineTtp {
        first_hop: OrgId::new("ttp-a"),
    });
    let fair = messages_for(TrustDomain::FairOffline {
        ttp: OrgId::new("ttp"),
    });

    // Shape (paper §3.1/Fig 3): voluntary < direct < fair-offline,
    // direct < single inline TTP < distributed inline TTPs.
    assert!(
        voluntary < direct,
        "voluntary {voluntary} vs direct {direct}"
    );
    assert!(direct < inline, "direct {direct} vs inline {inline}");
    assert!(
        inline < distributed,
        "inline {inline} vs distributed {distributed}"
    );
    assert!(direct < fair, "direct {direct} vs fair {fair}");
}

#[test]
fn inline_ttp_holds_the_full_audit_trail() {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .domain(TrustDomain::InlineTtp {
            first_hop: OrgId::new("ttp"),
        })
        .build();
    let server = OrgMiddleware::builder("server", bus.clone(), dir.clone(), clock.clone()).build();
    let ttp = OrgMiddleware::builder("ttp", bus, dir, clock).build();
    ttp.serve_as_inline_ttp(None);
    server
        .deploy(
            DeploymentDescriptor::new("urn:svc", [MethodName::new("work")])
                .with_non_repudiation(NrConfig::protocol("inline-ttp")),
            Arc::new(FnComponent::new().method("work", |args| Ok(args.clone()))),
        )
        .unwrap();
    client
        .nr_proxy(server.org(), "urn:svc")
        .invoke("work", Value::from(1i64))
        .unwrap();
    // TTP: client NRO + own 2 receipts + 4 tokens of the inner direct leg.
    assert_eq!(ttp.log().len(), 7);
    ttp.log().verify().unwrap();
    // Server still produced the standard direct-protocol evidence.
    assert_eq!(server.log().len(), 4);
}

#[test]
fn per_interaction_domain_override() {
    // One client talks to the same server directly *and* via a TTP,
    // choosing per proxy — the paper's "one part of an interaction may
    // deploy interceptors at trusted third parties while another uses
    // interceptors hosted within each organisation".
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone()).build();
    let server = OrgMiddleware::builder("server", bus.clone(), dir.clone(), clock.clone()).build();
    let ttp = OrgMiddleware::builder("ttp", bus, dir, clock).build();
    ttp.serve_as_inline_ttp(None);
    server
        .deploy(
            DeploymentDescriptor::new("urn:svc", [MethodName::new("work")])
                .with_non_repudiation(NrConfig::protocol("direct")),
            Arc::new(FnComponent::new().method("work", |args| Ok(args.clone()))),
        )
        .unwrap();
    let direct = client.nr_proxy(server.org(), "urn:svc");
    let via_ttp = client.nr_proxy_in(
        TrustDomain::InlineTtp {
            first_hop: OrgId::new("ttp"),
        },
        server.org(),
        "urn:svc",
    );
    assert!(direct.invoke("work", Value::from(1i64)).is_ok());
    assert!(via_ttp.invoke("work", Value::from(2i64)).is_ok());
    assert!(!ttp.log().is_empty());
}
