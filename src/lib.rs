//! `nonrep` — component middleware for non-repudiable service interactions.
//!
//! A from-scratch Rust reproduction of Cook, Robinson & Shrivastava,
//! *Component Middleware to Support Non-repudiable Service Interactions*
//! (DSN 2004 / Newcastle CS-TR-834). This facade crate re-exports the
//! workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`types`] | ids, dynamic values, canonical codec |
//! | [`crypto`] | SHA-256, HMAC, Merkle trees, forward-secure signatures, timestamping |
//! | [`net`] | in-process bus, fault injection, latency models, simulator |
//! | [`store`] | hash-chained evidence logs (epoch-grouped durability), state store |
//! | [`pki`] | certificates, CAs, CRLs, credential management |
//! | [`access`] | roles, policies, event-driven sessions |
//! | [`container`] | components, descriptors, interceptor chains, proxies |
//! | [`protocols`] | NR-invocation & NR-sharing protocol suite, coordinator |
//! | [`core`] | trusted interceptors, org middleware, trust domains, adjudication |
//! | [`contract`] | contract FSMs, monitoring, contract validators |
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use nonrep::prelude::*;
//!
//! // Shared world: bus, key directory, clock.
//! let bus = LocalBus::new();
//! let dir = Arc::new(StaticKeyDirectory::new());
//! let clock = LogicalClock::new();
//!
//! // Two organisations.
//! let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone()).build();
//! let server = OrgMiddleware::builder("server", bus, dir.clone(), clock).build();
//!
//! // The server deploys a component requiring non-repudiation.
//! server.deploy(
//!     DeploymentDescriptor::new("urn:quote", [MethodName::new("quote")])
//!         .with_non_repudiation(NrConfig::protocol("direct")),
//!     Arc::new(FnComponent::new().method("quote", |args| {
//!         Ok(Value::map([("part", args.clone()), ("price", Value::from(100i64))]))
//!     })),
//! )?;
//!
//! // The client invokes it through its trusted interceptor.
//! let proxy = client.nr_proxy(server.org(), "urn:quote");
//! let quote = proxy.invoke("quote", Value::from("gearbox"))?;
//! assert_eq!(quote.get("price").and_then(Value::as_i64), Some(100));
//!
//! // Both sides now hold the full §3.2 evidence set, hash-chained.
//! assert_eq!(client.log().len(), 4);
//! assert_eq!(server.log().len(), 4);
//! client.log().verify()?;
//!
//! // Dispute-resolution dry run: each party submits a *window* of its
//! // log (Arc-backed handles plus its chain head — never a deep copy)
//! // and the adjudicator derives the facts neither side can deny.
//! let run = client.log().snapshot_range(0..1)[0].draft.run_id;
//! let adjudicator = Adjudicator::new(dir.clone() as std::sync::Arc<dyn KeyDirectory>);
//! let verdict = adjudicator.adjudicate_windows(
//!     run,
//!     &[client.submit_full_window(), server.submit_full_window()],
//! );
//! assert!(verdict.suspect_submitters().is_empty());
//! assert!(verdict.cannot_deny(client.org(), TokenKind::NroReq));
//! assert!(verdict.cannot_deny(server.org(), TokenKind::NroResp));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! For high-throughput deployments the evidence pipeline is tunable per
//! organisation, without changing any of the above: batched evidence
//! commitments (`MiddlewareBuilder::commitment`, one signature per epoch
//! instead of per token, sealed on size and/or a time deadline) and
//! disk-backed durability grouped at the same epoch boundary
//! (`MiddlewareBuilder::evidence_log` with a
//! `store::SyncPolicy::PerEpoch` file log — one fsync per sealed epoch).
//! See `docs/ARCHITECTURE.md` for the full map from the paper's concepts
//! to these crates.

pub use nonrep_access as access;
pub use nonrep_container as container;
pub use nonrep_contract as contract;
pub use nonrep_core as core;
pub use nonrep_crypto as crypto;
pub use nonrep_net as net;
pub use nonrep_pki as pki;
pub use nonrep_protocols as protocols;
pub use nonrep_store as store;
pub use nonrep_types as types;

/// The most common imports for applications built on the middleware.
pub mod prelude {
    pub use nonrep_container::component::FnComponent;
    pub use nonrep_container::descriptor::{
        DeploymentDescriptor, EvidenceDurability, NrConfig, SharedObjectConfig,
    };
    pub use nonrep_container::{ClientProxy, Component, Container, ContainerError};
    pub use nonrep_core::{
        b2b_address, Adjudicator, ClientNrInterceptor, OrgMiddleware, TrustDomain, WindowSubmission,
    };
    pub use nonrep_crypto::sig::{KeyPair, SignatureScheme};
    pub use nonrep_crypto::SecureRandom;
    pub use nonrep_net::bus::LocalBus;
    pub use nonrep_net::fault::FaultPlan;
    pub use nonrep_net::latency::LatencyModel;
    pub use nonrep_net::retry::RetryPolicy;
    pub use nonrep_protocols::party::{KeyDirectory, Party, StaticKeyDirectory};
    pub use nonrep_protocols::scheduler::{BatchPolicy, CommitmentMode, DeadlineSealer};
    pub use nonrep_protocols::tokens::TokenKind;
    pub use nonrep_protocols::ProtocolError;
    pub use nonrep_store::{
        DurabilityClass, DurabilityTicket, EvidenceLog, FileLog, MemoryLog, StateStore, SyncPolicy,
    };
    pub use nonrep_types::ids::{GroupId, MethodName, OrgId, RunId, ServiceUri};
    pub use nonrep_types::time::{Clock, LogicalClock, Timestamp};
    pub use nonrep_types::value::Value;
}
