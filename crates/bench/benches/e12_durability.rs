//! E12: epoch-grouped durability on disk-backed evidence logs.
//!
//! Measures what PR 3's `SyncPolicy` is for: making the epoch the
//! durability unit. Both contenders push 16 records per iteration
//! through a batch-16 commitment scheduler over a `FileLog`, so each
//! iteration ends with an epoch seal; the only difference is *when the
//! bytes hit the platter*:
//!
//! * `append_x16/fsync_per_append` — [`SyncPolicy::WriteThrough`]: every
//!   append writes and fsyncs (17 fsyncs per iteration, counting the
//!   epoch record).
//! * `append_x16/fsync_per_epoch` — [`SyncPolicy::PerEpoch`]: appends
//!   buffer in memory; the epoch seal lands one contiguous write + one
//!   fsync for the whole batch.
//!
//! `append_x16/memory` is the no-disk reference (same scheduler work on
//! a `MemoryLog`), so the two file numbers decompose into sign/hash cost
//! vs disk cost. Signatures use the arbitrated (HMAC) scheme to keep the
//! signing term small — the fsync policy is the variable under test; the
//! MSS signing cost of the same pipeline is measured in `e11_batch`.
//!
//! Logs live under the OS temp dir. Numbers are meaningless on a tmpfs
//! temp dir (no real sync cost) — the checked-in BENCH numbers come from
//! an ext4 host; see docs/BENCHMARKS.md.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use nonrep_crypto::digest::sha256;
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, SignatureScheme};
use nonrep_protocols::scheduler::{CommitmentMode, CommitmentScheduler};
use nonrep_store::{EvidenceLog, FileLog, MemoryLog, RecordDraft, SyncPolicy};
use nonrep_types::ids::{OrgId, RunId};
use nonrep_types::time::LogicalClock;

fn scheduler_over(log: Arc<dyn EvidenceLog>) -> CommitmentScheduler {
    let keys = Arc::new(KeyPair::generate(
        SignatureScheme::Arbitrated,
        &mut SecureRandom::from_seed(12),
    ));
    CommitmentScheduler::new(
        keys,
        log,
        OrgId::new("org"),
        Arc::new(LogicalClock::new()),
        CommitmentMode::batched(16),
    )
}

/// Appends 16 records through the scheduler; the 16th triggers the epoch
/// seal (and, per sync policy, the fsync(s)).
fn push16(s: &CommitmentScheduler, round: u64) {
    for i in 0..16u64 {
        let n = round * 16 + i;
        s.record(RecordDraft {
            run_id: RunId::from_u128(u128::from(round) + 1),
            kind: "NRO_req".into(),
            actor: OrgId::new("org"),
            at: nonrep_types::time::Timestamp(n),
            content_digest: sha256(&n.to_le_bytes()),
            payload: vec![n as u8; 64],
        })
        .unwrap();
    }
}

fn temp_log(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nonrep-e12-{}-{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn bench_durability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_durability");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    {
        let path = temp_log("write-through");
        let log: Arc<dyn EvidenceLog> = Arc::new(FileLog::open(&path).unwrap());
        let s = scheduler_over(log);
        let mut round = 0u64;
        group.bench_function("append_x16/fsync_per_append", |b| {
            b.iter(|| {
                push16(&s, round);
                round += 1;
            })
        });
        let _ = std::fs::remove_file(&path);
    }
    {
        let path = temp_log("per-epoch");
        let log: Arc<dyn EvidenceLog> =
            Arc::new(FileLog::open_with(&path, SyncPolicy::PerEpoch).unwrap());
        let s = scheduler_over(log);
        let mut round = 0u64;
        group.bench_function("append_x16/fsync_per_epoch", |b| {
            b.iter(|| {
                push16(&s, round);
                round += 1;
            })
        });
        let _ = std::fs::remove_file(&path);
    }
    {
        let s = scheduler_over(Arc::new(MemoryLog::new()) as Arc<dyn EvidenceLog>);
        let mut round = 0u64;
        group.bench_function("append_x16/memory", |b| {
            b.iter(|| {
                push16(&s, round);
                round += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
