//! E9 (paper §3.1 liveness): exchange completion under bounded temporary
//! failures — cost of the retry machinery as loss probability rises.
//!
//! Expected shape: completion is *always* achieved (drops are bounded and
//! retries exceed the bound — the paper's liveness argument), with
//! wall-time growing with the drop rate as retransmissions are consumed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonrep_bench::{deploy_echo, lossy_bus, payload, World};
use std::time::Duration;

fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_faults");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for loss in [0u32, 20, 50] {
        let w = World::with_bus(lossy_bus(f64::from(loss) / 100.0, 3, 1234));
        let client = w.org("client");
        let server = w.org("server");
        deploy_echo(&server);
        let proxy = client.nr_proxy(server.org(), "urn:svc");
        let args = payload(64);
        group.bench_with_input(BenchmarkId::new("direct_loss_pct", loss), &loss, |b, _| {
            b.iter(|| proxy.invoke("work", args.clone()).unwrap())
        });
    }
    group.finish();

    // Liveness + at-most-once report under heavy loss.
    let w = World::with_bus(lossy_bus(0.5, 3, 99));
    let client = w.org("client");
    let server = w.org("server");
    deploy_echo(&server);
    let proxy = client.nr_proxy(server.org(), "urn:svc");
    let mut completed = 0;
    for _ in 0..200 {
        if proxy.invoke("work", payload(64)).is_ok() {
            completed += 1;
        }
    }
    let stats = w.bus.stats();
    println!(
        "\nE9 report — 200 invocations at 50% loss (bound 3): {completed}/200 completed, \
         {} deliveries, {} drops\n",
        stats.delivered, stats.dropped
    );
    assert_eq!(
        completed, 200,
        "bounded faults + retries must guarantee liveness"
    );
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
