//! E13: group-commit durability under concurrent appenders.
//!
//! Measures what PR 4's `SyncPolicy::GroupCommit` is for: decoupling
//! append latency from disk latency. Every contender pushes 4 appender
//! threads × 64 records each (= 256 records, 16 sealed epochs) through
//! ONE batch-16 commitment scheduler over the same log type; the
//! difference is *where the epoch fsync runs*:
//!
//! * `append_4x64/fsync_inline_per_epoch` — [`SyncPolicy::PerEpoch`]:
//!   the sealing append executes the contiguous write + fsync inline,
//!   holding the scheduler/log locks, so all four appenders stall for
//!   every one of the 16 device barriers.
//! * `append_4x64/group_commit` — [`SyncPolicy::GroupCommit`]: the
//!   sealing append enqueues the batch to the dedicated sync thread and
//!   returns; appenders keep running while the disk syncs, and epochs
//!   sealed while a barrier is in flight coalesce into one fsync. The
//!   iteration ends with a `flush()` barrier so both sides finish fully
//!   durable — the comparison is append+seal *throughput to stable
//!   storage*, not deferred work.
//! * `append_4x64/memory` — the no-disk reference (same scheduler work
//!   on a `MemoryLog`), isolating sign/hash/lock cost from disk cost.
//!
//! Signatures use the arbitrated (HMAC) scheme as in e12: the fsync
//! schedule is the variable under test. Logs live under the OS temp dir;
//! numbers are meaningless on tmpfs (no real sync cost) — see
//! docs/BENCHMARKS.md.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use nonrep_crypto::digest::sha256;
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, SignatureScheme};
use nonrep_protocols::scheduler::{CommitmentMode, CommitmentScheduler};
use nonrep_store::{EvidenceLog, FileLog, MemoryLog, RecordDraft, SyncPolicy};
use nonrep_types::ids::{OrgId, RunId};
use nonrep_types::time::LogicalClock;

const THREADS: u64 = 4;
const RECORDS_PER_THREAD: u64 = 64;

fn scheduler_over(log: Arc<dyn EvidenceLog>) -> Arc<CommitmentScheduler> {
    let keys = Arc::new(KeyPair::generate(
        SignatureScheme::Arbitrated,
        &mut SecureRandom::from_seed(13),
    ));
    Arc::new(CommitmentScheduler::new(
        keys,
        log,
        OrgId::new("org"),
        Arc::new(LogicalClock::new()),
        CommitmentMode::batched(16),
    ))
}

/// One iteration: 4 threads push 64 records each through the shared
/// scheduler (auto-sealing every 16), then a final barrier makes the
/// whole iteration durable on whatever backend is under test.
fn push_concurrent(s: &Arc<CommitmentScheduler>, round: u64) {
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let s = Arc::clone(s);
            scope.spawn(move || {
                for i in 0..RECORDS_PER_THREAD {
                    let n = (round * THREADS + t) * RECORDS_PER_THREAD + i;
                    s.record(RecordDraft {
                        run_id: RunId::from_u128(u128::from(round * THREADS + t) + 1),
                        kind: "NRO_req".into(),
                        actor: OrgId::new("org"),
                        at: nonrep_types::time::Timestamp(n),
                        content_digest: sha256(&n.to_le_bytes()),
                        payload: vec![n as u8; 64],
                    })
                    .unwrap();
                }
            });
        }
    });
    // Seal any unsealed remainder and wait out the device barrier: both
    // contenders end the iteration with every record on stable storage.
    s.seal_durable().unwrap();
}

fn temp_log(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nonrep-e13-{}-{name}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn bench_group_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_group_commit");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    {
        let path = temp_log("per-epoch");
        let log: Arc<dyn EvidenceLog> =
            Arc::new(FileLog::open_with(&path, SyncPolicy::PerEpoch).unwrap());
        let s = scheduler_over(log);
        let mut round = 0u64;
        group.bench_function("append_4x64/fsync_inline_per_epoch", |b| {
            b.iter(|| {
                push_concurrent(&s, round);
                round += 1;
            })
        });
        let _ = std::fs::remove_file(&path);
    }
    {
        let path = temp_log("group-commit");
        let log: Arc<dyn EvidenceLog> =
            Arc::new(FileLog::open_with(&path, SyncPolicy::GroupCommit).unwrap());
        let s = scheduler_over(log);
        let mut round = 0u64;
        group.bench_function("append_4x64/group_commit", |b| {
            b.iter(|| {
                push_concurrent(&s, round);
                round += 1;
            })
        });
        let _ = std::fs::remove_file(&path);
    }
    {
        let s = scheduler_over(Arc::new(MemoryLog::new()) as Arc<dyn EvidenceLog>);
        let mut round = 0u64;
        group.bench_function("append_4x64/memory", |b| {
            b.iter(|| {
                push_concurrent(&s, round);
                round += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_group_commit);
criterion_main!(benches);
