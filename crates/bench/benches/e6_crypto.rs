//! E6 (paper §6): "the computational overhead of cryptographic
//! algorithms" — hash throughput, token signing/verification under both
//! schemes, key generation.
//!
//! Expected shape: arbitrated HMAC tags are ~2 hash compressions; MSS
//! signatures cost hundreds of compressions to sign/verify and are the
//! dominant cost of every NR protocol message; MSS key generation is
//! linear in capacity.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use nonrep_crypto::digest::{mb, sha256, sha256_pair, sha256_short, Digest};
use nonrep_crypto::hmac::hmac_sha256;
use nonrep_crypto::merkle::MerkleTree;
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, SignatureScheme};
use std::time::Duration;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_crypto");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Hashing throughput.
    for size in [64usize, 1024, 65536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &size, |b, _| {
            b.iter(|| sha256(&data))
        });
    }
    group.throughput(Throughput::Elements(1));

    // HMAC.
    {
        let key = [7u8; 32];
        let msg = vec![0u8; 256];
        group.bench_function("hmac_sha256_256B", |b| b.iter(|| hmac_sha256(&key, &msg)));
    }

    // Arbitrated scheme: sign + verify.
    {
        let kp = KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(1));
        group.bench_function("arbitrated_sign", |b| {
            b.iter(|| kp.sign(b"message").unwrap())
        });
        let sig = kp.sign(b"message").unwrap();
        let vk = kp.verifying_key();
        group.bench_function("arbitrated_verify", |b| {
            b.iter(|| assert!(vk.verify(b"message", &sig)))
        });
    }

    // MSS: sign (fresh key per iteration so capacity never runs out;
    // keygen happens in the excluded setup phase).
    {
        group.bench_function("mss_sign_h4", |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    KeyPair::generate(
                        SignatureScheme::Mss { height: 4 },
                        &mut SecureRandom::from_seed(seed),
                    )
                },
                |kp| kp.sign(b"message").unwrap(),
                BatchSize::PerIteration,
            )
        });
        // MSS verify (stateless; one signature reused).
        let kp = KeyPair::generate(
            SignatureScheme::Mss { height: 4 },
            &mut SecureRandom::from_seed(99),
        );
        let sig = kp.sign(b"message").unwrap();
        let vk = kp.verifying_key();
        group.bench_function("mss_verify", |b| {
            b.iter(|| assert!(vk.verify(b"message", &sig)))
        });
    }

    // The multi-buffer engine vs the single-lane path on the same work:
    // 16 chain-step-shaped messages, lane-batched and one at a time.
    // The active dispatch is host-dependent (see e14 for forced tiers).
    {
        let msgs: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 36]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        group.bench_function("mb_hash_lanes_16x36B", |b| b.iter(|| mb::hash_lanes(&refs)));
        group.bench_function("sha256_short_16x36B", |b| {
            b.iter(|| refs.iter().map(|m| sha256_short(m)).collect::<Vec<_>>())
        });
    }

    // The Merkle-node pair hash (every tree node and chain link pays this).
    {
        let left = sha256(b"left");
        let right = sha256(b"right");
        group.bench_function("sha256_pair", |b| {
            b.iter(|| sha256_pair(1, left.as_bytes(), right.as_bytes()))
        });
    }

    // Merkle-tree construction over pre-hashed leaves: pure sha256_pair
    // (the leaf clone happens in the untimed setup phase).
    {
        let leaves: Vec<Digest> = (0u64..4096).map(|i| sha256(&i.to_le_bytes())).collect();
        group.bench_function("merkle_build_4096", |b| {
            b.iter_batched(
                || leaves.clone(),
                MerkleTree::from_leaf_hashes,
                BatchSize::SmallInput,
            )
        });
    }

    // Digest hex rendering (logging / adjudication reports).
    {
        let d = sha256(b"hex");
        group.bench_function("digest_to_hex", |b| b.iter(|| d.to_hex()));
    }

    // MSS keygen across capacities (2^h signatures).
    for height in [4u8, 6, 8] {
        group.bench_with_input(BenchmarkId::new("mss_keygen", height), &height, |b, &h| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                KeyPair::generate(
                    SignatureScheme::Mss { height: h },
                    &mut SecureRandom::from_seed(seed),
                )
            })
        });
    }
    group.finish();

    // Signature size report.
    let arb = KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(1));
    let mss = KeyPair::generate(
        SignatureScheme::Mss { height: 8 },
        &mut SecureRandom::from_seed(2),
    );
    println!(
        "\nE6 report — signature material sizes: arbitrated {} B, MSS(h=8) {} B\n",
        arb.sign(b"m").unwrap().byte_len(),
        mss.sign(b"m").unwrap().byte_len()
    );
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
