//! E5 (paper Fig 6/7): cost of the container invocation path itself —
//! interceptor-chain depth sweep, local vs remote (bus) dispatch.
//!
//! Expected shape: per-interceptor cost is tens of nanoseconds (an Arc
//! clone and a dynamic call); the chain is *not* where NR overhead comes
//! from — the crypto is (see e6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonrep_container::component::FnComponent;
use nonrep_container::descriptor::DeploymentDescriptor;
use nonrep_container::interceptor::{Chain, Interceptor, Invocation, MetricsInterceptor};
use nonrep_container::proxy::{BusTransport, ClientProxy, ContainerEndpoint};
use nonrep_container::Container;
use nonrep_net::bus::LocalBus;
use nonrep_types::ids::{MethodName, OrgId};
use nonrep_types::value::Value;
use std::sync::Arc;
use std::time::Duration;

fn container_with_chain(depth: usize) -> Arc<Container> {
    let c = Container::new("server");
    c.deploy(
        DeploymentDescriptor::new("urn:svc", [MethodName::new("work")]),
        Arc::new(FnComponent::new().method("work", |args| Ok(args.clone()))),
    )
    .unwrap();
    for _ in 0..depth {
        c.add_interceptor(Arc::new(MetricsInterceptor::new()));
    }
    c
}

fn bench_container(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_container");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Chain-depth sweep on local invocation.
    for depth in [0usize, 1, 4, 8, 16] {
        let container = container_with_chain(depth);
        group.bench_with_input(BenchmarkId::new("local_chain", depth), &depth, |b, _| {
            b.iter(|| {
                container
                    .invoke(Invocation::new(
                        "client",
                        "urn:svc",
                        "work",
                        Value::from(1i64),
                    ))
                    .unwrap()
            })
        });
    }

    // Remote dispatch through proxy + bus (serialisation included).
    {
        let bus = LocalBus::new();
        let container = container_with_chain(4);
        bus.register(
            OrgId::new("server"),
            Arc::new(ContainerEndpoint::new(container)),
        );
        let transport = Arc::new(BusTransport::new(bus, OrgId::new("client")));
        let proxy = ClientProxy::new("client", "server", "urn:svc", transport);
        group.bench_function("remote_dispatch", |b| {
            b.iter(|| proxy.invoke("work", Value::from(1i64)).unwrap())
        });
    }

    // Raw chain mechanics (no container lookup).
    {
        let interceptors: Vec<Arc<dyn Interceptor>> = (0..8)
            .map(|_| Arc::new(MetricsInterceptor::new()) as Arc<dyn Interceptor>)
            .collect();
        let target = |inv: Invocation| Ok(inv.args);
        group.bench_function("raw_chain_8", |b| {
            b.iter(|| {
                let chain = Chain::new(&interceptors, &target);
                chain
                    .proceed(Invocation::new("c", "s", "m", Value::from(1i64)))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_container);
criterion_main!(benches);
