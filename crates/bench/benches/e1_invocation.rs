//! E1 (paper Fig 4): cost of a service invocation — plain vs voluntary vs
//! the full non-repudiable direct exchange, across payload sizes.
//!
//! Expected shape: NR adds a near-constant overhead per invocation
//! (token generation/verification + the extra receipt round trip);
//! voluntary sits between plain and direct.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonrep_bench::{deploy_echo, payload, World};
use nonrep_core::TrustDomain;
use std::time::Duration;

fn bench_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_invocation");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for size in [64usize, 1024, 16 * 1024] {
        // Plain baseline (Fig 4(a)).
        {
            let w = World::new();
            let client = w.org("client");
            let server = w.org("server");
            deploy_echo(&server);
            let proxy = client.plain_proxy(server.org(), "urn:svc");
            let args = payload(size);
            group.bench_with_input(BenchmarkId::new("plain", size), &size, |b, _| {
                b.iter(|| proxy.invoke("work", args.clone()).unwrap())
            });
        }
        // Voluntary (asymmetric baseline, ref [23]).
        {
            let w = World::new();
            let client = w.org_in("client", TrustDomain::Voluntary);
            let server = w.org("server");
            deploy_echo(&server);
            let proxy = client.nr_proxy(server.org(), "urn:svc");
            let args = payload(size);
            group.bench_with_input(BenchmarkId::new("voluntary", size), &size, |b, _| {
                b.iter(|| proxy.invoke("work", args.clone()).unwrap())
            });
        }
        // Direct NR exchange (Fig 4(b)).
        {
            let w = World::new();
            let client = w.org("client");
            let server = w.org("server");
            deploy_echo(&server);
            let proxy = client.nr_proxy(server.org(), "urn:svc");
            let args = payload(size);
            group.bench_with_input(BenchmarkId::new("direct", size), &size, |b, _| {
                b.iter(|| proxy.invoke("work", args.clone()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_invocation);
criterion_main!(benches);
