//! E17: timeout supervision on the no-timeout fast path.
//!
//! The exchange supervisor buys liveness (every stalled run terminates
//! in an abort or a sealed fault) — this bench guards what that costs
//! an exchange where *nothing goes wrong*:
//!
//! * `fair_16/bare` vs `fair_16/supervised` — sixteen complete
//!   fair-offline exchanges against an honest server, without and with
//!   a receipt-window watch armed per run (armed on step 2, discharged
//!   by the receipt, never fired). The acceptance bound is
//!   supervised ≤ 1.05× bare: supervision on the fast path is two
//!   `BTreeMap` operations per run and must stay invisible next to the
//!   signature work.
//! * `watch_discharge` — the raw bookkeeping pair (`watch_for` +
//!   `complete`) in isolation.
//! * `sweep_idle_64` — one sweep over sixty-four armed, unexpired
//!   watches: the periodic scan a deployment pays while everything is
//!   healthy.
//!
//! The regression gate (`scripts/bench_gate.sh`) guards these rows via
//! `scripts/bench_baseline_7.jsonl`; see docs/BENCHMARKS.md.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use nonrep_net::bus::LocalBus;
use nonrep_net::retry::{ReliableRequester, RetryPolicy};
use nonrep_protocols::invocation::fair_offline::{
    FairClient, FairServerHandler, FairServerRuntime, OfflineTtpHandler, ServerConduct,
};
use nonrep_protocols::invocation::RequestExecutor;
use nonrep_protocols::party::{Party, StaticKeyDirectory};
use nonrep_protocols::{B2BCoordinator, EscalationAction, EscalationOutcome, ExchangeSupervisor};
use nonrep_types::ids::{OrgId, ProtocolId, RunId};
use nonrep_types::time::LogicalClock;
use std::time::Duration;

/// Receipt window far beyond anything the bench advances the clock by:
/// the watch is armed and discharged but can never fire.
const WINDOW_MS: u64 = 60_000;

/// Exchanges per measured batch — comfortably inside the MSS `2^8`
/// signature budget of each freshly generated party.
const RUNS: usize = 16;

struct World {
    client: FairClient,
    client_party: Arc<Party>,
    server: OrgId,
}

fn world(supervised: bool) -> World {
    let bus = LocalBus::new();
    let clock = LogicalClock::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let client_party = Party::quick("client", 1, &clock, &dir);
    let server_party = Party::quick("server", 2, &clock, &dir);
    let ttp_party = Party::quick("ttp", 3, &clock, &dir);

    let mk = |org: &str| {
        let c = B2BCoordinator::new(
            org,
            ReliableRequester::new(bus.clone(), RetryPolicy::new(4)),
        );
        bus.register(OrgId::new(org), c.clone());
        c
    };
    let client_coord = mk("client");
    let server_coord = mk("server");
    let ttp_coord = mk("ttp");

    let echo: Arc<dyn RequestExecutor> =
        Arc::new(|_: &OrgId, req: &[u8]| Ok([b"res:".as_slice(), req].concat()));
    let runtime = if supervised {
        FairServerRuntime {
            supervision: Some((ExchangeSupervisor::new(Arc::new(clock.clone())), WINDOW_MS)),
            journal: None,
        }
    } else {
        FairServerRuntime::default()
    };
    server_coord.register_handler(FairServerHandler::with_runtime(
        server_party,
        server_coord.clone(),
        echo,
        OrgId::new("ttp"),
        ServerConduct::Honest,
        runtime,
    ));
    ttp_coord.register_handler(OfflineTtpHandler::new(ttp_party));

    let client = FairClient::new(
        client_party.clone(),
        client_coord.clone(),
        OrgId::new("ttp"),
    );
    World {
        client,
        client_party,
        server: OrgId::new("server"),
    }
}

fn drive(w: &World) {
    for _ in 0..RUNS {
        let run = w.client_party.new_run_id();
        w.client
            .invoke_with(run, &w.server, b"payload".to_vec())
            .unwrap();
    }
}

/// A do-nothing escalation for the micro rows; the fast path never
/// fires it, so its body is irrelevant to what is being measured.
struct Noop;

impl EscalationAction for Noop {
    fn escalate(&self, _run: RunId) -> EscalationOutcome {
        EscalationOutcome::AlreadyComplete
    }
}

fn bench_supervisor(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_supervisor");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Sixteen complete fair exchanges, bare vs supervised. Fresh
    // parties per batch (setup excluded) keep the one-time signature
    // budget honest; the supervised row arms and discharges one watch
    // per exchange and must track the bare row within 5%.
    for supervised in [false, true] {
        let name = if supervised { "supervised" } else { "bare" };
        group.bench_with_input(
            BenchmarkId::new(format!("fair_{RUNS}"), name),
            &supervised,
            |b, &supervised| {
                b.iter_batched(|| world(supervised), |w| drive(&w), BatchSize::PerIteration)
            },
        );
    }

    // The raw bookkeeping pair a supervised run adds: register a watch
    // against the shared clock, discharge it when the awaited message
    // lands.
    {
        let clock = LogicalClock::new();
        let supervisor = ExchangeSupervisor::new(Arc::new(clock));
        let variant = ProtocolId::new("fair_offline");
        let action: Arc<dyn EscalationAction> = Arc::new(Noop);
        let mut n = 0u128;
        group.bench_function("watch_discharge", |b| {
            b.iter(|| {
                n += 1;
                let run = RunId::from_u128(n);
                supervisor.watch_for(run, &variant, 3, WINDOW_MS, action.clone());
                assert!(supervisor.complete(run));
            })
        });
    }

    // One idle sweep over a fleet's worth of armed watches, none
    // expired: the steady-state cost of the periodic liveness scan.
    {
        let clock = LogicalClock::new();
        let supervisor = ExchangeSupervisor::new(Arc::new(clock));
        let variant = ProtocolId::new("fair_offline");
        let action: Arc<dyn EscalationAction> = Arc::new(Noop);
        for i in 0..64u128 {
            supervisor.watch_for(RunId::from_u128(i), &variant, 3, WINDOW_MS, action.clone());
        }
        group.bench_function("sweep_idle_64", |b| {
            b.iter(|| {
                let fired = supervisor.sweep();
                assert!(fired.is_empty());
            })
        });
    }
    group.finish();

    println!(
        "\nE17 report — supervision fast path: fair_{RUNS}/supervised must stay within \
         1.05x of fair_{RUNS}/bare (the gate holds both rows to the checked-in \
         baseline); watch_discharge and sweep_idle_64 are the absolute costs.\n"
    );
}

criterion_group!(benches, bench_supervisor);
criterion_main!(benches);
