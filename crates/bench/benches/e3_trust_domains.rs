//! E3 (paper Fig 3): the same invocation under each trust-domain
//! deployment. Criterion measures wall time; the bench additionally prints
//! the message/byte/simulated-WAN-latency table (who pays how many hops).
//!
//! Expected shape: direct < fair-offline < inline TTP < distributed TTP in
//! both message count and end-to-end latency; plain and voluntary below
//! all of them.

use criterion::{criterion_group, criterion_main, Criterion};
use nonrep_bench::{deploy_echo, payload, World};
use nonrep_core::{OrgMiddleware, TrustDomain};
use nonrep_net::bus::LocalBus;
use nonrep_net::fault::FaultPlan;
use nonrep_net::latency::LatencyModel;
use nonrep_types::ids::OrgId;
use std::sync::Arc;
use std::time::Duration;

struct Deployment {
    label: &'static str,
    world: World,
    client: Arc<OrgMiddleware>,
    server: Arc<OrgMiddleware>,
    plain: bool,
}

fn deployments(latency: LatencyModel) -> Vec<Deployment> {
    let mk_world = || World::with_bus(LocalBus::with_config(FaultPlan::none(), latency, 42));
    let mut out = Vec::new();
    // plain
    {
        let w = mk_world();
        let client = w.org("client");
        let server = w.org("server");
        deploy_echo(&server);
        out.push(Deployment {
            label: "plain",
            world: w,
            client,
            server,
            plain: true,
        });
    }
    // voluntary
    {
        let w = mk_world();
        let client = w.org_in("client", TrustDomain::Voluntary);
        let server = w.org("server");
        deploy_echo(&server);
        out.push(Deployment {
            label: "voluntary",
            world: w,
            client,
            server,
            plain: false,
        });
    }
    // direct
    {
        let w = mk_world();
        let client = w.org("client");
        let server = w.org("server");
        deploy_echo(&server);
        out.push(Deployment {
            label: "direct",
            world: w,
            client,
            server,
            plain: false,
        });
    }
    // inline ttp (Fig 3a)
    {
        let w = mk_world();
        let client = w.org_in(
            "client",
            TrustDomain::InlineTtp {
                first_hop: OrgId::new("ttp"),
            },
        );
        let server = w.org("server");
        let ttp = w.org("ttp");
        ttp.serve_as_inline_ttp(None);
        deploy_echo(&server);
        out.push(Deployment {
            label: "inline-ttp",
            world: w,
            client,
            server,
            plain: false,
        });
    }
    // distributed inline ttp (Fig 3b)
    {
        let w = mk_world();
        let client = w.org_in(
            "client",
            TrustDomain::InlineTtp {
                first_hop: OrgId::new("ttp-a"),
            },
        );
        let server = w.org("server");
        let ttp_a = w.org("ttp-a");
        ttp_a.serve_as_inline_ttp(Some(OrgId::new("ttp-b")));
        let ttp_b = w.org("ttp-b");
        ttp_b.serve_as_inline_ttp(None);
        deploy_echo(&server);
        out.push(Deployment {
            label: "distributed-ttp",
            world: w,
            client,
            server,
            plain: false,
        });
    }
    // fair offline
    {
        let w = mk_world();
        let client = w.org_in(
            "client",
            TrustDomain::FairOffline {
                ttp: OrgId::new("ttp"),
            },
        );
        let server = w.org_in(
            "server",
            TrustDomain::FairOffline {
                ttp: OrgId::new("ttp"),
            },
        );
        let ttp = w.org("ttp");
        ttp.serve_as_offline_ttp();
        deploy_echo(&server);
        out.push(Deployment {
            label: "fair-offline",
            world: w,
            client,
            server,
            plain: false,
        });
    }
    out
}

fn report_table() {
    println!(
        "\nE3 report — one 64B invocation per deployment (WAN latency model):\n{:<18} {:>9} {:>9} {:>12}",
        "deployment", "messages", "bytes", "latency(ms)"
    );
    for d in deployments(LatencyModel::Wan) {
        let started = d.world.bus.now();
        let proxy = if d.plain {
            d.client.plain_proxy(d.server.org(), "urn:svc")
        } else {
            d.client.nr_proxy(d.server.org(), "urn:svc")
        };
        proxy.invoke("work", payload(64)).unwrap();
        let stats = d.world.bus.stats();
        println!(
            "{:<18} {:>9} {:>9} {:>12}",
            d.label,
            stats.delivered,
            stats.bytes,
            d.world.bus.now().since(started)
        );
    }
    println!();
}

fn bench_domains(c: &mut Criterion) {
    report_table();
    let mut group = c.benchmark_group("e3_trust_domains");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for d in deployments(LatencyModel::Zero) {
        let proxy = if d.plain {
            d.client.plain_proxy(d.server.org(), "urn:svc")
        } else {
            d.client.nr_proxy(d.server.org(), "urn:svc")
        };
        let args = payload(64);
        group.bench_function(d.label, |b| {
            b.iter(|| proxy.invoke("work", args.clone()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_domains);
criterion_main!(benches);
