//! E7 (paper §6): "the space overhead of evidence generated" — evidence
//! bytes per invocation and per sharing round, per protocol, per scheme;
//! linear log growth; log-append cost.
//!
//! Expected shape: evidence volume is constant per interaction (4 tokens
//! per direct invocation, 1 for voluntary, N+2 per sharing round for N
//! validators); the signature scheme dominates record size (MSS tokens
//! are ~2.3 KB vs ~100 B arbitrated).

use criterion::{criterion_group, criterion_main, Criterion};
use nonrep_bench::{deploy_echo, install_group, payload, World};
use nonrep_core::{OrgMiddleware, TrustDomain};
use nonrep_crypto::digest::sha256;
use nonrep_crypto::sig::SignatureScheme;
use nonrep_store::record::RecordDraft;
use nonrep_store::{EvidenceLog, MemoryLog};
use nonrep_types::ids::{GroupId, OrgId, RunId};
use nonrep_types::time::Timestamp;
use std::time::Duration;

fn report() {
    println!("\nE7 report — evidence space per interaction:");
    println!(
        "{:<26} {:>8} {:>12} {:>14}",
        "interaction", "records", "client B", "server B"
    );
    // Direct invocation, arbitrated scheme.
    {
        let w = World::new();
        let client = w.org("client");
        let server = w.org("server");
        deploy_echo(&server);
        client
            .nr_proxy(server.org(), "urn:svc")
            .invoke("work", payload(64))
            .unwrap();
        println!(
            "{:<26} {:>8} {:>12} {:>14}",
            "direct (arbitrated)",
            client.log().len() + server.log().len(),
            client.log().total_bytes(),
            server.log().total_bytes()
        );
    }
    // Direct invocation, MSS scheme.
    {
        let w = World::new();
        let client = nonrep_core::OrgMiddleware::builder(
            "client",
            w.bus.clone(),
            w.dir.clone(),
            w.clock.clone(),
        )
        .scheme(SignatureScheme::Mss { height: 4 })
        .build();
        let server = nonrep_core::OrgMiddleware::builder(
            "server",
            w.bus.clone(),
            w.dir.clone(),
            w.clock.clone(),
        )
        .scheme(SignatureScheme::Mss { height: 4 })
        .build();
        deploy_echo(&server);
        client
            .nr_proxy(server.org(), "urn:svc")
            .invoke("work", payload(64))
            .unwrap();
        println!(
            "{:<26} {:>8} {:>12} {:>14}",
            "direct (MSS h=4)",
            client.log().len() + server.log().len(),
            client.log().total_bytes(),
            server.log().total_bytes()
        );
    }
    // Voluntary.
    {
        let w = World::new();
        let client = w.org_in("client", TrustDomain::Voluntary);
        let server = w.org("server");
        deploy_echo(&server);
        client
            .nr_proxy(server.org(), "urn:svc")
            .invoke("work", payload(64))
            .unwrap();
        println!(
            "{:<26} {:>8} {:>12} {:>14}",
            "voluntary (arbitrated)",
            client.log().len() + server.log().len(),
            client.log().total_bytes(),
            server.log().total_bytes()
        );
    }
    // Sharing round (3 orgs).
    {
        let w = World::new();
        let a = w.org("a");
        let b = w.org("b");
        let c = w.org("c");
        let group = GroupId::new("g");
        install_group(&[("a", &a), ("b", &b), ("c", &c)], &group);
        a.propose_update(&group, "obj", vec![0u8; 64]).unwrap();
        println!(
            "{:<26} {:>8} {:>12} {:>14}",
            "sharing 3-org (arb.)",
            a.log().len() + b.log().len() + c.log().len(),
            a.log().total_bytes(),
            b.log().total_bytes()
        );
    }
    // Linear growth over n invocations.
    {
        let w = World::new();
        let client = w.org("client");
        let server = w.org("server");
        deploy_echo(&server);
        let proxy = client.nr_proxy(server.org(), "urn:svc");
        print!("growth (client log bytes after n invocations): ");
        for n in [1usize, 10, 100] {
            while (client.log().len() as usize) < n * 4 {
                proxy.invoke("work", payload(64)).unwrap();
            }
            print!("n={n}:{}B ", client.log().total_bytes());
        }
        println!("\n");
    }
}

fn log_growth(client: &OrgMiddleware) -> u64 {
    client.log().total_bytes()
}

fn bench_space(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("e7_evidence_space");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    // Log append cost (memory backend, chained hashing included).
    {
        let log = MemoryLog::new();
        let mut n = 0u64;
        group.bench_function("log_append", |b| {
            b.iter(|| {
                n += 1;
                log.append(RecordDraft {
                    run_id: RunId::from_u128(u128::from(n)),
                    kind: "NRO_req".into(),
                    actor: OrgId::new("org"),
                    at: Timestamp(n),
                    content_digest: sha256(&n.to_le_bytes()),
                    payload: vec![0u8; 128],
                })
                .unwrap()
            })
        });
    }
    // Chain verification cost over a 1k-record log.
    {
        let log = MemoryLog::new();
        for n in 0..1000u64 {
            log.append(RecordDraft {
                run_id: RunId::from_u128(u128::from(n)),
                kind: "NRO_req".into(),
                actor: OrgId::new("org"),
                at: Timestamp(n),
                content_digest: sha256(&n.to_le_bytes()),
                payload: vec![0u8; 128],
            })
            .unwrap();
        }
        group.bench_function("chain_verify_1k", |b| b.iter(|| log.verify().unwrap()));
    }
    // Per-run retrieval and full-snapshot cost over a 1k-record log with
    // 50 interleaved protocol runs (the dispute/audit query shape).
    {
        let log = MemoryLog::new();
        for n in 0..1000u64 {
            log.append(RecordDraft {
                run_id: RunId::from_u128(u128::from(n % 50)),
                kind: "NRO_req".into(),
                actor: OrgId::new("org"),
                at: Timestamp(n),
                content_digest: sha256(&n.to_le_bytes()),
                payload: vec![0u8; 128],
            })
            .unwrap();
        }
        let target = RunId::from_u128(17);
        group.bench_function("by_run_1k", |b| b.iter(|| log.by_run(&target)));
        group.bench_function("records_snapshot_1k", |b| b.iter(|| log.records()));
    }
    // Keep the helper used (silence dead-code in some configs).
    let w = World::new();
    let client = w.org("client");
    let _ = log_growth(&client);
    group.finish();
}

criterion_group!(benches, bench_space);
criterion_main!(benches);
