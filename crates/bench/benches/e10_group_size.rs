//! E10 (paper §3.3/[5]): NR-sharing coordination cost vs sharing-group
//! size.
//!
//! Expected shape: linear in the number of validators — the proposer runs
//! one request/response pair per member for votes and another for the
//! decision, and every member verifies every vote.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonrep_bench::{install_group, World};
use nonrep_core::OrgMiddleware;
use nonrep_types::ids::GroupId;
use std::sync::Arc;
use std::time::Duration;

fn bench_group_size(c: &mut Criterion) {
    let mut group_bench = c.benchmark_group("e10_group_size");
    group_bench
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    println!("\nE10 report — messages per accepted round by group size:");
    for n in [2usize, 4, 8, 12] {
        let w = World::new();
        let orgs: Vec<Arc<OrgMiddleware>> = (0..n).map(|i| w.org(&format!("org-{i}"))).collect();
        let named: Vec<(String, &Arc<OrgMiddleware>)> = orgs
            .iter()
            .enumerate()
            .map(|(i, o)| (format!("org-{i}"), o))
            .collect();
        let borrowed: Vec<(&str, &Arc<OrgMiddleware>)> =
            named.iter().map(|(s, o)| (s.as_str(), *o)).collect();
        let group = GroupId::new("ve");
        install_group(&borrowed, &group);
        // One measured accepted round.
        w.bus.reset_stats();
        orgs[0]
            .propose_update(&group, "warm", vec![1u8; 64])
            .unwrap();
        let msgs = w.bus.stats().delivered;
        println!("  n={n:<3} messages per round = {msgs}");
        group_bench.bench_with_input(BenchmarkId::new("accepted_round", n), &n, |b, _| {
            b.iter(|| {
                let out = orgs[0]
                    .propose_update(&group, "obj", vec![7u8; 64])
                    .unwrap();
                assert!(out.accepted);
            })
        });
    }
    println!();
    group_bench.finish();
}

criterion_group!(benches, bench_group_size);
criterion_main!(benches);
