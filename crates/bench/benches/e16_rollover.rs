//! E16: the hierarchical key lifecycle under sustained signing.
//!
//! Measures what certified subtree rollover costs relative to a single
//! flat tree of equal capacity:
//!
//! * `sign/*` — one steady-state leaf signature per scheme (fresh key
//!   each iteration, keygen excluded): the per-signature price of the
//!   hierarchy when no rollover fires.
//! * `verify/*` — one signature verified through the ordinary
//!   `VerifyingKey` path: the chained-cert walk an HSS signature adds.
//! * `rollover_cycle/hss` — five signatures crossing exactly one
//!   subtree exhaustion: the throughput dip at the rollover boundary,
//!   amortised over the cycle.
//! * `sustained_60/*` — sixty signatures straight through: the HSS
//!   signer crosses fourteen subtree exhaustions (2^2-leaf subtrees)
//!   while the flat 2^6 tree never rolls. The gate guards this row:
//!   "never stop signing" must not mean "sign slowly".
//!
//! The regression gate (`scripts/bench_gate.sh`) guards these rows via
//! `scripts/bench_baseline_7.jsonl`; see docs/BENCHMARKS.md.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, SignatureScheme};
use std::time::Duration;

const HSS: SignatureScheme = SignatureScheme::Hss {
    root_height: 4,
    subtree_height: 2,
};
const MSS: SignatureScheme = SignatureScheme::Mss { height: 6 };

fn scheme_name(scheme: SignatureScheme) -> &'static str {
    match scheme {
        SignatureScheme::Hss { .. } => "hss_4x2",
        SignatureScheme::Mss { .. } => "mss_h6",
        _ => "other",
    }
}

fn bench_rollover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_rollover");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Steady-state sign: fresh key per iteration (setup excluded), one
    // leaf signature, no rollover in the measured path.
    for scheme in [HSS, MSS] {
        group.bench_with_input(
            BenchmarkId::new("sign", scheme_name(scheme)),
            &scheme,
            |b, &scheme| {
                let mut seed = 0u64;
                b.iter_batched(
                    || {
                        seed += 1;
                        KeyPair::generate(scheme, &mut SecureRandom::from_seed(seed))
                    },
                    |kp| kp.sign(b"message").unwrap(),
                    BatchSize::PerIteration,
                )
            },
        );
    }

    // Verify through the ordinary VerifyingKey path: the HSS row walks
    // signature -> subtree root -> rollover cert -> registered root.
    for scheme in [HSS, MSS] {
        let kp = KeyPair::generate(scheme, &mut SecureRandom::from_seed(99));
        let sig = kp.sign(b"message").unwrap();
        let vk = kp.verifying_key();
        group.bench_with_input(
            BenchmarkId::new("verify", scheme_name(scheme)),
            &(),
            |b, _| b.iter(|| assert!(vk.verify(b"message", &sig))),
        );
    }

    // The rollover boundary: five signatures on a fresh hierarchy of
    // 2^2-leaf subtrees — four exhaust the first subtree, the fifth
    // lands on the freshly certified second generation. The dip the
    // cycle pays (cert signature + subtree activation) is amortised
    // into this row; compare against 5x the sign/hss_4x2 row.
    group.bench_function("rollover_cycle/hss", |b| {
        let mut seed = 1000u64;
        b.iter_batched(
            || {
                seed += 1;
                KeyPair::generate(HSS, &mut SecureRandom::from_seed(seed))
            },
            |kp| {
                for _ in 0..5 {
                    kp.sign(b"message").unwrap();
                }
                assert_eq!(kp.generation(), 1);
            },
            BatchSize::PerIteration,
        )
    });

    // Sustained issuance: sixty signatures straight through one key.
    // The hierarchical signer crosses fourteen subtree exhaustions
    // (well past the acceptance bar of four); the flat tree of equal
    // capacity never rolls. Same work, so the rows compare directly.
    for scheme in [HSS, MSS] {
        group.bench_with_input(
            BenchmarkId::new("sustained_60", scheme_name(scheme)),
            &scheme,
            |b, &scheme| {
                let mut seed = 2000u64;
                b.iter_batched(
                    || {
                        seed += 1;
                        KeyPair::generate(scheme, &mut SecureRandom::from_seed(seed))
                    },
                    |kp| {
                        for i in 0..60u8 {
                            kp.sign(&[i]).unwrap();
                        }
                        if matches!(scheme, SignatureScheme::Hss { .. }) {
                            assert!(kp.generation() >= 14);
                        }
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();

    println!(
        "\nE16 report — hierarchical lifecycle: compare sign/hss_4x2 vs sign/mss_h6 \
         (steady state), rollover_cycle/hss vs 5x sign (boundary dip), and \
         sustained_60 rows (14 rollovers vs none over equal capacity).\n"
    );
}

criterion_group!(benches, bench_rollover);
criterion_main!(benches);
