//! E11: the batched evidence-commitment pipeline.
//!
//! Measures what the PR-2 refactor is for: amortizing MSS signatures over
//! evidence batches. `evidence_x16/per_record` signs and appends 16
//! records with one signature each (the PR-1 pipeline);
//! `evidence_x16/batched_16` pushes the same 16 records through the
//! commitment scheduler with batch size 16 — one signature for the token
//! batch plus one sealing the epoch. Same work, ⌈N/16⌉·2 signatures
//! instead of N.
//!
//! `submit_window_1k` measures building a windowed adjudication
//! submission over a 1k-record batched log: `Arc` handle clones plus the
//! chain head, never a deep copy of the record set.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use nonrep_core::WindowSubmission;
use nonrep_crypto::digest::sha256;
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, SignatureScheme};
use nonrep_protocols::scheduler::{CommitmentMode, CommitmentScheduler, TokenSpec};
use nonrep_protocols::tokens::TokenKind;
use nonrep_store::{EvidenceLog, MemoryLog};
use nonrep_types::codec::Encode;
use nonrep_types::ids::{OrgId, RunId};
use nonrep_types::time::LogicalClock;

fn scheduler(mode: CommitmentMode, scheme: SignatureScheme, seed: u64) -> CommitmentScheduler {
    let keys = Arc::new(KeyPair::generate(
        scheme,
        &mut SecureRandom::from_seed(seed),
    ));
    CommitmentScheduler::new(
        keys,
        Arc::new(MemoryLog::new()) as Arc<dyn EvidenceLog>,
        OrgId::new("org"),
        Arc::new(LogicalClock::new()),
        mode,
    )
}

/// Issue + store 16 evidence records through `s` (the per-record
/// evidence cost unit: sign + append, ×16).
fn push16(s: &CommitmentScheduler, round: u64) {
    let run = RunId::from_u128(u128::from(round) + 1);
    let specs: Vec<TokenSpec> = (0..16u64)
        .map(|i| {
            TokenSpec::new(
                TokenKind::NroReq,
                run,
                sha256(&(round * 16 + i).to_le_bytes()),
            )
        })
        .collect();
    let tokens = s.issue(&specs).expect("key sized for the bench window");
    for t in tokens {
        s.record(nonrep_store::RecordDraft {
            run_id: t.run_id,
            kind: t.kind.label().to_string(),
            actor: t.issuer.clone(),
            at: t.at,
            content_digest: t.subject,
            payload: t.encode_to_vec(),
        })
        .unwrap();
    }
}

fn bench_batch_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_batch");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));

    // MSS height 16: 65 536 one-time leaves — enough for the whole
    // measurement window in per-record mode (~16 signatures per iter).
    let mss = SignatureScheme::Mss { height: 16 };
    {
        let s = scheduler(CommitmentMode::PerRecord, mss, 1);
        let mut round = 0u64;
        group.bench_function("evidence_x16/per_record", |b| {
            b.iter(|| {
                push16(&s, round);
                round += 1;
            })
        });
    }
    {
        let s = scheduler(CommitmentMode::batched(16), mss, 2);
        let mut round = 0u64;
        group.bench_function("evidence_x16/batched_16", |b| {
            b.iter(|| {
                push16(&s, round);
                round += 1;
            })
        });
    }

    // Windowed adjudication submission over a 1k-record sealed log:
    // Arc handle clones + head, no deep copy.
    {
        let s = scheduler(CommitmentMode::batched(64), SignatureScheme::Arbitrated, 3);
        for round in 0..63u64 {
            push16(&s, round);
        }
        s.seal().unwrap();
        group.bench_function("submit_window_1k", |b| {
            b.iter(|| WindowSubmission::from_log("org", &**s.log(), 0..u64::MAX))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_commit);
criterion_main!(benches);
