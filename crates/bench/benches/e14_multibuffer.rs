//! E14: the multi-buffer SHA-256 engine under the W-OTS workloads it
//! was built for — key generation, signing and verification swept
//! across every dispatch tier the host can run.
//!
//! Tier rows use *forced* dispatch (`Dispatch::all()` filtered by
//! availability), so one run on one host compares all profiles
//! side by side:
//!
//! * `single_scalar` — the sequential scalar path: what a host without
//!   SHA-NI ran before this engine existed. The baseline the ≥ 2×
//!   multi-buffer claim is measured against.
//! * `scalar` — the portable 4-way interleaved kernel on the same
//!   machine profile: the no-SHA-NI host win.
//! * `sse2` / `avx2` — the explicit SIMD kernels (4- and 8-way).
//! * `single` — one lane through the digest module's runtime dispatch
//!   (SHA-NI here, if present): the path `auto` must never regress.
//!
//! The regression gate (`scripts/bench_gate.sh`) guards these rows via
//! `scripts/bench_baseline_6.jsonl`; see docs/BENCHMARKS.md for how to
//! read forced-tier rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonrep_crypto::digest::{mb, sha256};
use nonrep_crypto::wots::{self, WotsKeyPair};
use std::time::Duration;

fn tier_name(d: mb::Dispatch) -> &'static str {
    match d {
        mb::Dispatch::Avx2 => "avx2",
        mb::Dispatch::Sse2 => "sse2",
        mb::Dispatch::Scalar => "scalar",
        mb::Dispatch::Single => "single",
        mb::Dispatch::SingleScalar => "single_scalar",
    }
}

fn bench_multibuffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_multibuffer");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let tiers: Vec<mb::Dispatch> = mb::Dispatch::all()
        .into_iter()
        .filter(|t| t.is_available())
        .collect();
    let seed = [0x77u8; 32];
    let digest = sha256(b"e14 message");

    for &tier in &tiers {
        group.bench_with_input(
            BenchmarkId::new("wots_keygen", tier_name(tier)),
            &tier,
            |b, &t| b.iter(|| WotsKeyPair::from_seed_with(seed, t)),
        );
    }

    let kp = WotsKeyPair::from_seed(seed);
    for &tier in &tiers {
        group.bench_with_input(
            BenchmarkId::new("wots_sign", tier_name(tier)),
            &tier,
            |b, &t| b.iter(|| kp.sign_with(&digest, t)),
        );
    }

    let sig = kp.sign(&digest);
    let pk = kp.public_key();
    for &tier in &tiers {
        group.bench_with_input(
            BenchmarkId::new("wots_verify", tier_name(tier)),
            &tier,
            |b, &t| b.iter(|| assert!(wots::verify_with(&pk, &digest, &sig, t))),
        );
    }

    // The raw engine: a full 8-lane chain-step batch (one compression
    // per lane on avx2, two 4-lane batches on the narrower tiers).
    for &tier in &tiers {
        let mut blocks = [[0u8; 64]; 8];
        for (l, block) in blocks.iter_mut().enumerate() {
            for (j, byte) in block[..36].iter_mut().enumerate() {
                *byte = (l * 29 + j) as u8;
            }
            block[36] = 0x80;
            block[56..].copy_from_slice(&(36u64 * 8).to_be_bytes());
        }
        group.bench_with_input(
            BenchmarkId::new("chain_steps_8", tier_name(tier)),
            &tier,
            |b, &t| b.iter(|| mb::chain_steps_with(t, &mut blocks)),
        );
    }
    group.finish();

    let active = mb::Dispatch::active();
    println!(
        "\nE14 report — auto dispatch on this host: {} ({} lane{})\n",
        tier_name(active),
        active.lanes(),
        if active.lanes() == 1 { "" } else { "s" },
    );
}

criterion_group!(benches, bench_multibuffer);
criterion_main!(benches);
