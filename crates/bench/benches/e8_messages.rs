//! E8 (paper §6): "the communication overhead of additional messages to
//! execute protocols" — bus messages and bytes per interaction, for every
//! protocol, across payload sizes.
//!
//! Expected shape (messages per invocation): plain 2, voluntary 2,
//! direct 4 (two request/response pairs), inline TTP 8 (two legs, the
//! inner one a full direct exchange), distributed TTP 12, fair-offline 8
//! (incl. escrow); byte overhead tracks token count and scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use nonrep_bench::{deploy_echo, payload, World};
use nonrep_core::TrustDomain;
use nonrep_types::ids::OrgId;
use std::time::Duration;

fn run_case(label: &str, domain: Option<TrustDomain>, size: usize) {
    let w = World::new();
    let client = match &domain {
        Some(d) => w.org_in("client", d.clone()),
        None => w.org("client"),
    };
    let server = match &domain {
        Some(TrustDomain::FairOffline { ttp }) => {
            w.org_in("server", TrustDomain::FairOffline { ttp: ttp.clone() })
        }
        _ => w.org("server"),
    };
    match &domain {
        Some(TrustDomain::InlineTtp { first_hop }) if first_hop.as_str() == "ttp-a" => {
            w.org("ttp-a")
                .serve_as_inline_ttp(Some(OrgId::new("ttp-b")));
            w.org("ttp-b").serve_as_inline_ttp(None);
        }
        Some(TrustDomain::InlineTtp { first_hop }) => {
            w.org(first_hop.as_str()).serve_as_inline_ttp(None);
        }
        Some(TrustDomain::FairOffline { ttp }) => {
            w.org(ttp.as_str()).serve_as_offline_ttp();
        }
        _ => {}
    }
    deploy_echo(&server);
    w.bus.reset_stats();
    let proxy = match domain {
        None => client.plain_proxy(server.org(), "urn:svc"),
        Some(_) => client.nr_proxy(server.org(), "urn:svc"),
    };
    proxy.invoke("work", payload(size)).unwrap();
    let stats = w.bus.stats();
    println!(
        "{label:<18} {size:>8} {:>9} {:>10} {:>10}",
        stats.delivered,
        stats.bytes,
        stats.mean_message_bytes()
    );
}

fn report() {
    println!(
        "\nE8 report — messages & bytes per invocation:\n{:<18} {:>8} {:>9} {:>10} {:>10}",
        "protocol", "payload", "messages", "bytes", "mean/msg"
    );
    for size in [64usize, 4096] {
        run_case("plain", None, size);
        run_case("voluntary", Some(TrustDomain::Voluntary), size);
        run_case("direct", Some(TrustDomain::Direct), size);
        run_case(
            "inline-ttp",
            Some(TrustDomain::InlineTtp {
                first_hop: OrgId::new("ttp"),
            }),
            size,
        );
        run_case(
            "distributed-ttp",
            Some(TrustDomain::InlineTtp {
                first_hop: OrgId::new("ttp-a"),
            }),
            size,
        );
        run_case(
            "fair-offline",
            Some(TrustDomain::FairOffline {
                ttp: OrgId::new("ttp"),
            }),
            size,
        );
    }
    println!();
}

fn bench_messages(c: &mut Criterion) {
    report();
    // A token criterion measurement so the harness records something
    // numeric for this experiment too: message counting itself.
    let w = World::new();
    let client = w.org("client");
    let server = w.org("server");
    deploy_echo(&server);
    let proxy = client.nr_proxy(server.org(), "urn:svc");
    let mut group = c.benchmark_group("e8_messages");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("direct_with_accounting", |b| {
        b.iter(|| proxy.invoke("work", payload(64)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_messages);
criterion_main!(benches);
