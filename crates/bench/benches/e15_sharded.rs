//! E15: the sharded evidence plane under concurrent appenders.
//!
//! Measures what the `ShardedEvidenceLog`/`ShardedCommitmentPlane` pair
//! is for: removing the single `CommitmentScheduler` mutex + single hash
//! chain that every append of an organisation serializes on, while one
//! shared `GroupCommitPool` keeps the device-barrier count low and a
//! super-epoch on the meta shard restores the single global anchor.
//!
//! Every contender pushes N appender threads × M records each through a
//! batch-16 commitment pipeline to *stable storage* — each iteration
//! ends with the durable barrier (`seal_durable` / `flush_durable`, the
//! latter also cutting the super-epoch record), so the comparison is
//! fully-durable throughput, not deferred work:
//!
//! * `append_16x32/single_log` — the pre-sharding plane: ONE group-commit
//!   `FileLog` behind ONE scheduler; all 16 appenders contend on one
//!   mutex and one chain.
//! * `append_16x32/shards_{1,4,16}` — the sharded plane: per-run routing
//!   across N shards, one scheduler per shard, shared group-commit pool,
//!   super-epoch anchor per iteration. `shards_1` isolates the plane's
//!   own overhead (routing + meta shard) against `single_log`.
//! * `append_16x32/memory` — the no-disk, single-scheduler floor.
//! * `append_64x8/...` — the same story at 64 concurrent appenders.
//!
//! The second axis is the per-run evidence service — the reason the
//! sharded plane exists at "one org, millions of runs" scale:
//!
//! * `adjudicate_run_16x32/single_log` — adjudicating ONE run on the
//!   interleaved plane. Every epoch commitment mixes all runs, so the
//!   window that verifies (chain + epoch roots + head) is the *whole*
//!   log regardless of which run is disputed.
//! * `adjudicate_run_16x32/shards_16` — the same dispute on the sharded
//!   plane: the submission is the run's shard only, corroborated by the
//!   gossiped super-epoch anchors that tie that shard back to the single
//!   global anchor. Work shrinks with 1/shards.
//!
//! Each thread appends under its own run id, so records route to the
//! thread's hash-assigned shard (realistic collisions: 16 runs do not
//! cover 16 shards exactly). Signatures use the arbitrated (HMAC)
//! scheme as in e12/e13: the lock/chain/barrier schedule is the
//! variable under test, not hash-based signing. Logs live under the OS
//! temp dir; numbers are meaningless on tmpfs — see docs/BENCHMARKS.md.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nonrep_core::{Adjudicator, WindowSubmission};
use nonrep_crypto::digest::sha256;
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, SignatureScheme};
use nonrep_protocols::plane::ShardedCommitmentPlane;
use nonrep_protocols::scheduler::{CommitmentMode, CommitmentScheduler};
use nonrep_protocols::{KeyDirectory, StaticKeyDirectory};
use nonrep_store::{
    EvidenceLog, FileLog, MemoryLog, RecordDraft, ShardedEvidenceLog, SuperEpochCommitment,
    SyncPolicy,
};
use nonrep_types::ids::{OrgId, RunId};
use nonrep_types::time::LogicalClock;

const BATCH: usize = 16;

fn bench_keys() -> Arc<KeyPair> {
    Arc::new(KeyPair::generate(
        SignatureScheme::Arbitrated,
        &mut SecureRandom::from_seed(15),
    ))
}

fn draft(run: RunId, n: u64) -> RecordDraft {
    RecordDraft {
        run_id: run,
        kind: "NRO_req".into(),
        actor: OrgId::new("org"),
        at: nonrep_types::time::Timestamp(n),
        content_digest: sha256(&n.to_le_bytes()),
        payload: vec![n as u8; 64],
    }
}

/// One iteration against a single-scheduler backend: `threads` appenders
/// push `per_thread` records each (auto-sealing every [`BATCH`]), then
/// the final barrier lands everything on stable storage.
fn push_single(s: &Arc<CommitmentScheduler>, threads: u64, per_thread: u64, round: u64) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let s = Arc::clone(s);
            scope.spawn(move || {
                let run = RunId::from_u128(u128::from(round * threads + t) + 1);
                for i in 0..per_thread {
                    let n = (round * threads + t) * per_thread + i;
                    s.record(draft(run, n)).unwrap();
                }
            });
        }
    });
    s.seal_durable().unwrap();
}

/// One iteration against the sharded plane: same appender workload, but
/// records route to each run's shard; the closing `flush_durable` seals
/// every shard, cuts the super-epoch anchor, and waits out the shared
/// pool's barrier.
fn push_sharded(p: &Arc<ShardedCommitmentPlane>, threads: u64, per_thread: u64, round: u64) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let p = Arc::clone(p);
            scope.spawn(move || {
                let run = RunId::from_u128(u128::from(round * threads + t) + 1);
                for i in 0..per_thread {
                    let n = (round * threads + t) * per_thread + i;
                    p.record(draft(run, n)).unwrap();
                }
            });
        }
    });
    p.flush_durable().unwrap();
}

fn single_scheduler(log: Arc<dyn EvidenceLog>) -> Arc<CommitmentScheduler> {
    Arc::new(CommitmentScheduler::new(
        bench_keys(),
        log,
        OrgId::new("org"),
        Arc::new(LogicalClock::new()),
        CommitmentMode::batched(BATCH),
    ))
}

fn sharded_plane(dir: &PathBuf, shards: u32) -> Arc<ShardedCommitmentPlane> {
    let log = Arc::new(ShardedEvidenceLog::open(dir, shards, SyncPolicy::GroupCommit).unwrap());
    Arc::new(ShardedCommitmentPlane::new(
        log,
        bench_keys(),
        OrgId::new("org"),
        Arc::new(LogicalClock::new()),
        CommitmentMode::batched(BATCH),
    ))
}

/// The adjudicator all contenders face: one directory entry for the
/// submitting org's (deterministic, seed-15) verifying key.
fn adjudicator() -> Adjudicator {
    let dir = StaticKeyDirectory::new();
    dir.insert(OrgId::new("org"), bench_keys().verifying_key());
    Adjudicator::new(Arc::new(dir) as Arc<dyn KeyDirectory>)
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nonrep-e15-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_sharded");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for (threads, per_thread) in [(16u64, 32u64), (64, 8)] {
        let label = format!("append_{threads}x{per_thread}");

        {
            let path = temp_path(&format!("single-{threads}"));
            let log: Arc<dyn EvidenceLog> =
                Arc::new(FileLog::open_with(&path, SyncPolicy::GroupCommit).unwrap());
            let s = single_scheduler(log);
            let mut round = 0u64;
            group.bench_function(format!("{label}/single_log"), |b| {
                b.iter(|| {
                    push_single(&s, threads, per_thread, round);
                    round += 1;
                })
            });
            let _ = std::fs::remove_file(&path);
        }
        for shards in [1u32, 4, 16] {
            // 64 appenders only contrast the endpoints (single vs 16).
            if threads == 64 && shards != 16 {
                continue;
            }
            let dir = temp_path(&format!("shards-{threads}-{shards}"));
            let p = sharded_plane(&dir, shards);
            let mut round = 0u64;
            group.bench_function(format!("{label}/shards_{shards}"), |b| {
                b.iter(|| {
                    push_sharded(&p, threads, per_thread, round);
                    round += 1;
                })
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
        if threads == 16 {
            let s = single_scheduler(Arc::new(MemoryLog::new()) as Arc<dyn EvidenceLog>);
            let mut round = 0u64;
            group.bench_function(format!("{label}/memory"), |b| {
                b.iter(|| {
                    push_single(&s, threads, per_thread, round);
                    round += 1;
                })
            });
        }
    }

    // ---- per-run adjudication: the structural win of sharding ----
    //
    // Evidence is produced once in setup (16 runs × 32 records, sealed
    // and durable); each iteration then adjudicates one run, rotating
    // through all 16. On the interleaved single log the submission that
    // verifies is the whole log; on the sharded plane it is the run's
    // shard plus the gossiped super-epochs.
    let adj = adjudicator();
    let runs: Vec<RunId> = (0..16).map(|t| RunId::from_u128(t + 1)).collect();

    {
        let path = temp_path("adjudicate-single");
        let log = Arc::new(FileLog::open_with(&path, SyncPolicy::GroupCommit).unwrap());
        let s = single_scheduler(Arc::clone(&log) as Arc<dyn EvidenceLog>);
        push_single(&s, 16, 32, 0);
        let mut i = 0usize;
        group.bench_function("adjudicate_run_16x32/single_log", |b| {
            b.iter(|| {
                let run = runs[i % runs.len()];
                i += 1;
                let sub = WindowSubmission::from_log("org", &*log, 0..log.len());
                let verdict = adj.adjudicate_windows(run, &[sub]);
                assert!(verdict.reports.iter().all(|r| r.chain.is_ok()));
                black_box(verdict);
            })
        });
        let _ = std::fs::remove_file(&path);
    }
    {
        let dir = temp_path("adjudicate-shards");
        let p = sharded_plane(&dir, 16);
        push_sharded(&p, 16, 32, 0);
        let mut supers = Vec::new();
        p.log().meta().for_each(&mut |r| {
            if let Some(se) = SuperEpochCommitment::from_record(r) {
                supers.push(se);
            }
        });
        assert!(!supers.is_empty(), "setup must have cut a super-epoch");
        let gossip = BTreeMap::from([(OrgId::new("org"), supers)]);
        let mut i = 0usize;
        group.bench_function("adjudicate_run_16x32/shards_16", |b| {
            b.iter(|| {
                let run = runs[i % runs.len()];
                i += 1;
                let shard = p.shard_for(&run);
                let len = p.log().shard(shard).len();
                let sub = WindowSubmission::from_shard("org", p.log(), shard, 0..len);
                let verdict = adj.adjudicate_sharded(run, &[sub], &gossip);
                assert!(verdict
                    .reports
                    .iter()
                    .all(|r| r.chain.is_ok() && r.anchor_violation.is_none()));
                black_box(verdict);
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
