//! E2 (paper Fig 5): one NR-sharing coordination round — accepted vs
//! vetoed, across state sizes.
//!
//! Expected shape: vetoed rounds cost slightly *less* than accepted ones
//! (no replica writes), and cost grows mildly with state size (hashing +
//! transfer of the full proposed state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonrep_bench::{install_group, World};
use nonrep_types::ids::GroupId;
use std::sync::Arc;
use std::time::Duration;

fn bench_sharing(c: &mut Criterion) {
    let mut group_bench = c.benchmark_group("e2_sharing");
    group_bench
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for size in [64usize, 4096, 65536] {
        // Accepted round among 3 organisations.
        {
            let w = World::new();
            let a = w.org("a");
            let b = w.org("b");
            let c3 = w.org("c");
            let group = GroupId::new("ve");
            install_group(&[("a", &a), ("b", &b), ("c", &c3)], &group);
            let state = vec![7u8; size];
            group_bench.bench_with_input(BenchmarkId::new("accepted", size), &size, |bch, _| {
                bch.iter(|| {
                    let out = a.propose_update(&group, "obj", state.clone()).unwrap();
                    assert!(out.accepted);
                })
            });
        }
        // Vetoed round (one validator always rejects).
        {
            let w = World::new();
            let a = w.org("a");
            let b = w.org("b");
            let c3 = w.org("c");
            let group = GroupId::new("ve");
            install_group(&[("a", &a), ("b", &b), ("c", &c3)], &group);
            b.add_validator(Arc::new(|_: &str, _: Option<&[u8]>, _: &[u8]| {
                Err("always veto".to_string())
            }));
            let state = vec![7u8; size];
            group_bench.bench_with_input(BenchmarkId::new("vetoed", size), &size, |bch, _| {
                bch.iter(|| {
                    let out = a.propose_update(&group, "obj", state.clone()).unwrap();
                    assert!(!out.accepted);
                })
            });
        }
    }
    group_bench.finish();
}

criterion_group!(benches, bench_sharing);
criterion_main!(benches);
