//! Shared fixtures for the experiment benchmarks.
//!
//! Every bench builds "worlds" through these helpers so that setup is
//! uniform: organisations use the **arbitrated** signature scheme by
//! default (unbounded signing capacity — protocol benches run thousands of
//! exchanges; the *crypto cost* of the hash-based scheme is measured
//! separately and precisely in `e6_crypto`).

use std::collections::BTreeSet;
use std::sync::Arc;

use nonrep_container::component::FnComponent;
use nonrep_container::descriptor::{DeploymentDescriptor, NrConfig};
use nonrep_core::{OrgMiddleware, TrustDomain};
use nonrep_crypto::sig::SignatureScheme;
use nonrep_net::bus::LocalBus;
use nonrep_net::fault::FaultPlan;
use nonrep_net::latency::LatencyModel;
use nonrep_protocols::party::StaticKeyDirectory;
use nonrep_types::ids::{GroupId, MethodName, OrgId};
use nonrep_types::time::LogicalClock;
use nonrep_types::value::Value;

/// A bench world: shared bus plus per-organisation middleware.
pub struct World {
    /// The shared bus.
    pub bus: Arc<LocalBus>,
    /// Shared key directory.
    pub dir: Arc<StaticKeyDirectory>,
    /// Shared clock.
    pub clock: LogicalClock,
}

impl World {
    /// Creates a fault-free, zero-latency world.
    pub fn new() -> Self {
        Self::with_bus(LocalBus::new())
    }

    /// Creates a world over a configured bus.
    pub fn with_bus(bus: Arc<LocalBus>) -> Self {
        let clock = bus.clock();
        Self {
            bus,
            dir: Arc::new(StaticKeyDirectory::new()),
            clock,
        }
    }

    /// Spawns an organisation with the arbitrated (unbounded) scheme.
    pub fn org(&self, name: &str) -> Arc<OrgMiddleware> {
        self.org_in(name, TrustDomain::Direct)
    }

    /// Spawns an organisation with an explicit default trust domain.
    pub fn org_in(&self, name: &str, domain: TrustDomain) -> Arc<OrgMiddleware> {
        let mut builder =
            OrgMiddleware::builder(name, self.bus.clone(), self.dir.clone(), self.clock.clone())
                .scheme(SignatureScheme::Arbitrated)
                .domain(domain.clone());
        if let TrustDomain::FairOffline { ttp } = &domain {
            builder = builder.offline_ttp(ttp.clone());
        }
        builder.build()
    }
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

/// Deploys the standard echo service (`urn:svc` / `work`) on `mw`.
pub fn deploy_echo(mw: &OrgMiddleware) {
    mw.deploy(
        DeploymentDescriptor::new("urn:svc", [MethodName::new("work")])
            .with_non_repudiation(NrConfig::protocol("direct")),
        Arc::new(FnComponent::new().method("work", |args| Ok(args.clone()))),
    )
    .expect("deploy echo");
}

/// A payload of roughly `bytes` bytes.
pub fn payload(bytes: usize) -> Value {
    Value::map([("payload", Value::from("x".repeat(bytes)))])
}

/// Installs a sharing group of `names` on each middleware.
pub fn install_group(members: &[(&str, &Arc<OrgMiddleware>)], group: &GroupId) {
    let set: BTreeSet<OrgId> = members.iter().map(|(n, _)| OrgId::new(*n)).collect();
    for (_, mw) in members {
        mw.install_group(group.clone(), set.clone());
    }
}

/// Builds a lossy bus: `p` drop probability, bounded at `bound` consecutive
/// drops per link.
pub fn lossy_bus(p: f64, bound: u32, seed: u64) -> Arc<LocalBus> {
    LocalBus::with_config(FaultPlan::lossy(p, bound, seed), LatencyModel::Zero, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_helpers_work() {
        let w = World::new();
        let a = w.org("a");
        let b = w.org("b");
        deploy_echo(&b);
        let out = a
            .nr_proxy(b.org(), "urn:svc")
            .invoke("work", payload(16))
            .unwrap();
        assert!(out.get("payload").is_some());
        let group = GroupId::new("g");
        install_group(&[("a", &a), ("b", &b)], &group);
        assert!(
            a.propose_update(&group, "o", b"s".to_vec())
                .unwrap()
                .accepted
        );
    }
}
