//! Contract-compliance validation of shared-information updates.
//!
//! The integration the paper sketches in §6: a verified contract FSM
//! validates proposed changes to shared information. The
//! [`ContractValidator`] derives a contract event from each proposed
//! update (via an application-supplied [`EventExtractor`]) and accepts the
//! update only if the monitor accepts the event.
//!
//! Vetoes produced this way flow back through the NR-sharing protocol as
//! *signed votes*, so "update rejected: contract violation" is itself
//! non-repudiable evidence.

use std::fmt;
use std::sync::Arc;

use nonrep_protocols::sharing::coordination::UpdateValidator;

use crate::monitor::ContractMonitor;

/// Derives the contract event named by a proposed update.
///
/// Returns `None` when the update is outside the contract's scope (then
/// the validator abstains, i.e. accepts).
pub type EventExtractor = dyn Fn(&str, Option<&[u8]>, &[u8]) -> Option<String> + Send + Sync;

/// An [`UpdateValidator`] enforcing a contract monitor.
pub struct ContractValidator {
    monitor: Arc<ContractMonitor>,
    extractor: Box<EventExtractor>,
}

impl fmt::Debug for ContractValidator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContractValidator(state={})", self.monitor.state())
    }
}

impl ContractValidator {
    /// Creates a validator over `monitor`, mapping updates to events with
    /// `extractor`.
    pub fn new(
        monitor: Arc<ContractMonitor>,
        extractor: impl Fn(&str, Option<&[u8]>, &[u8]) -> Option<String> + Send + Sync + 'static,
    ) -> Arc<Self> {
        Arc::new(Self {
            monitor,
            extractor: Box::new(extractor),
        })
    }

    /// The underlying monitor (e.g. to advance it when a validated update
    /// is finally applied).
    pub fn monitor(&self) -> &Arc<ContractMonitor> {
        &self.monitor
    }
}

impl UpdateValidator for ContractValidator {
    fn validate(
        &self,
        object: &str,
        current: Option<&[u8]>,
        proposed: &[u8],
    ) -> Result<(), String> {
        match (self.extractor)(object, current, proposed) {
            None => Ok(()),
            Some(event) => {
                if self.monitor.permits(&event) {
                    Ok(())
                } else {
                    Err(format!(
                        "contract violation: event {event} not permitted in state {}",
                        self.monitor.state()
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::ContractSpec;

    fn monitor() -> Arc<ContractMonitor> {
        Arc::new(ContractMonitor::new(
            ContractSpec::new("order", "negotiating")
                .state("agreed")
                .breach_state("breached")
                .transition("negotiating", "spec.agreed", "agreed")
                .transition("agreed", "deadline.missed", "breached"),
        ))
    }

    /// Event = the update's first word, prefixed "spec." when object is
    /// "spec".
    fn extractor(object: &str, _cur: Option<&[u8]>, proposed: &[u8]) -> Option<String> {
        if object != "spec" {
            return None;
        }
        Some(format!("spec.{}", String::from_utf8_lossy(proposed)))
    }

    #[test]
    fn permitted_update_accepted() {
        let v = ContractValidator::new(monitor(), extractor);
        assert!(v.validate("spec", None, b"agreed").is_ok());
    }

    #[test]
    fn forbidden_update_rejected_with_reason() {
        let v = ContractValidator::new(monitor(), extractor);
        let err = v.validate("spec", None, b"cancelled").unwrap_err();
        assert!(err.contains("contract violation"));
        assert!(err.contains("negotiating"));
    }

    #[test]
    fn out_of_scope_objects_abstain() {
        let v = ContractValidator::new(monitor(), extractor);
        assert!(v.validate("unrelated", None, b"anything").is_ok());
    }

    #[test]
    fn validation_does_not_advance_monitor() {
        let v = ContractValidator::new(monitor(), extractor);
        v.validate("spec", None, b"agreed").unwrap();
        assert_eq!(v.monitor().state().as_str(), "negotiating");
        // Application applies the update and advances the contract:
        v.monitor().observe("spec.agreed").unwrap();
        assert_eq!(v.monitor().state().as_str(), "agreed");
    }
}
