//! Contract representation and run-time monitoring.
//!
//! Paper §6: "We intend to integrate the underlying mechanisms presented
//! here with work on run-time monitoring of contracts \[16\]. Contracts are
//! represented as executable finite state machines that can be verified
//! using model-checking tools. We will, for example, use implementations
//! of the verified state machines to validate changes to shared
//! information for contract compliance."
//!
//! * [`fsm`] — [`ContractSpec`]: a deterministic FSM over named events,
//!   with breach states, plus a static checker ([`ContractSpec::check`])
//!   for the model-level defects (unreachable states, nondeterminism,
//!   undefined targets) that the paper's model-checking step would catch.
//! * [`monitor`] — [`ContractMonitor`]: executes the verified FSM against
//!   the observed event stream; entering a breach state or receiving an
//!   event with no transition is a violation.
//! * [`validator`] — [`ContractValidator`]: plugs a monitor into the
//!   NR-sharing validation hook so that proposed updates to shared
//!   information are vetoed (with a signed, attributable reason) when they
//!   would breach the contract.

pub mod fsm;
pub mod monitor;
pub mod validator;

pub use fsm::{ContractSpec, SpecIssue, State, Transition};
pub use monitor::{ContractMonitor, ContractViolation};
pub use validator::{ContractValidator, EventExtractor};
