//! Contract finite-state machines.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A contract state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct State(String);

impl State {
    /// Creates a state.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The state name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for State {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

/// A transition: in `from`, event `event` moves the contract to `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: State,
    /// Triggering event name.
    pub event: String,
    /// Destination state.
    pub to: State,
}

/// Defects found by the static checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecIssue {
    /// A state is declared but unreachable from the initial state.
    Unreachable(State),
    /// Two transitions share `(from, event)` (nondeterminism).
    Nondeterministic {
        /// The conflicting source state.
        from: State,
        /// The conflicting event.
        event: String,
    },
    /// A transition targets or leaves an undeclared state.
    UndeclaredState(State),
    /// A breach state has outgoing transitions (breaches are terminal).
    BreachNotTerminal(State),
    /// The initial state is not declared.
    UndeclaredInitial(State),
}

impl fmt::Display for SpecIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecIssue::Unreachable(s) => write!(f, "state {s} unreachable"),
            SpecIssue::Nondeterministic { from, event } => {
                write!(f, "nondeterministic on ({from}, {event})")
            }
            SpecIssue::UndeclaredState(s) => write!(f, "undeclared state {s}"),
            SpecIssue::BreachNotTerminal(s) => write!(f, "breach state {s} has outgoing edges"),
            SpecIssue::UndeclaredInitial(s) => write!(f, "undeclared initial state {s}"),
        }
    }
}

/// An executable contract specification.
#[derive(Debug, Clone)]
pub struct ContractSpec {
    name: String,
    states: BTreeSet<State>,
    initial: State,
    breach: BTreeSet<State>,
    transitions: Vec<Transition>,
}

impl ContractSpec {
    /// Starts a contract named `name` with the given initial state.
    pub fn new(name: impl Into<String>, initial: impl Into<State>) -> Self {
        let initial = initial.into();
        let mut states = BTreeSet::new();
        states.insert(initial.clone());
        Self {
            name: name.into(),
            states,
            initial,
            breach: BTreeSet::new(),
            transitions: Vec::new(),
        }
    }

    /// Declares a state (builder).
    #[must_use]
    pub fn state(mut self, state: impl Into<State>) -> Self {
        self.states.insert(state.into());
        self
    }

    /// Declares a terminal breach state (builder).
    #[must_use]
    pub fn breach_state(mut self, state: impl Into<State>) -> Self {
        let s = state.into();
        self.states.insert(s.clone());
        self.breach.insert(s);
        self
    }

    /// Adds a transition (builder).
    #[must_use]
    pub fn transition(
        mut self,
        from: impl Into<State>,
        event: impl Into<String>,
        to: impl Into<State>,
    ) -> Self {
        self.transitions.push(Transition {
            from: from.into(),
            event: event.into(),
            to: to.into(),
        });
        self
    }

    /// The contract's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The initial state.
    pub fn initial(&self) -> &State {
        &self.initial
    }

    /// `true` if `state` is a breach state.
    pub fn is_breach(&self, state: &State) -> bool {
        self.breach.contains(state)
    }

    /// The unique successor of `(state, event)`, if defined.
    pub fn next(&self, state: &State, event: &str) -> Option<&State> {
        self.transitions
            .iter()
            .find(|t| t.from == *state && t.event == event)
            .map(|t| &t.to)
    }

    /// Event names accepted in `state`.
    pub fn enabled(&self, state: &State) -> Vec<&str> {
        self.transitions
            .iter()
            .filter(|t| t.from == *state)
            .map(|t| t.event.as_str())
            .collect()
    }

    /// Statically checks the specification (the model-checking pass).
    ///
    /// Returns all defects found; an empty vector means the contract is
    /// well-formed: deterministic, fully declared, breach states terminal,
    /// and every state reachable.
    pub fn check(&self) -> Vec<SpecIssue> {
        let mut issues = Vec::new();
        if !self.states.contains(&self.initial) {
            issues.push(SpecIssue::UndeclaredInitial(self.initial.clone()));
        }
        // Declared-state and breach-terminality checks.
        let mut seen: BTreeMap<(&State, &str), usize> = BTreeMap::new();
        for t in &self.transitions {
            for s in [&t.from, &t.to] {
                if !self.states.contains(s) {
                    issues.push(SpecIssue::UndeclaredState(s.clone()));
                }
            }
            if self.breach.contains(&t.from) {
                issues.push(SpecIssue::BreachNotTerminal(t.from.clone()));
            }
            *seen.entry((&t.from, &t.event)).or_insert(0) += 1;
        }
        for ((from, event), count) in seen {
            if count > 1 {
                issues.push(SpecIssue::Nondeterministic {
                    from: from.clone(),
                    event: event.to_string(),
                });
            }
        }
        // Reachability (BFS from initial).
        let mut reachable = BTreeSet::new();
        let mut queue = VecDeque::from([self.initial.clone()]);
        while let Some(state) = queue.pop_front() {
            if !reachable.insert(state.clone()) {
                continue;
            }
            for t in self.transitions.iter().filter(|t| t.from == state) {
                queue.push_back(t.to.clone());
            }
        }
        for state in &self.states {
            if !reachable.contains(state) {
                issues.push(SpecIssue::Unreachable(state.clone()));
            }
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: negotiate a part order.
    pub(crate) fn order_contract() -> ContractSpec {
        ContractSpec::new("part-order", "negotiating")
            .state("agreed")
            .state("delivered")
            .breach_state("breached")
            .transition("negotiating", "spec.agreed", "agreed")
            .transition("negotiating", "spec.rejected", "negotiating")
            .transition("agreed", "part.delivered", "delivered")
            .transition("agreed", "deadline.missed", "breached")
    }

    #[test]
    fn well_formed_contract_passes_check() {
        assert!(order_contract().check().is_empty());
    }

    #[test]
    fn next_and_enabled() {
        let c = order_contract();
        assert_eq!(
            c.next(&State::new("negotiating"), "spec.agreed"),
            Some(&State::new("agreed"))
        );
        assert_eq!(c.next(&State::new("agreed"), "spec.agreed"), None);
        let mut enabled = c.enabled(&State::new("agreed"));
        enabled.sort_unstable();
        assert_eq!(enabled, vec!["deadline.missed", "part.delivered"]);
        assert!(c.is_breach(&State::new("breached")));
        assert!(!c.is_breach(&State::new("agreed")));
    }

    #[test]
    fn unreachable_state_detected() {
        let c = ContractSpec::new("c", "a").state("island");
        assert!(c
            .check()
            .contains(&SpecIssue::Unreachable(State::new("island"))));
    }

    #[test]
    fn nondeterminism_detected() {
        let c = ContractSpec::new("c", "a")
            .state("b")
            .state("c")
            .transition("a", "e", "b")
            .transition("a", "e", "c");
        assert!(c
            .check()
            .iter()
            .any(|i| matches!(i, SpecIssue::Nondeterministic { .. })));
    }

    #[test]
    fn undeclared_state_detected() {
        let c = ContractSpec::new("c", "a").transition("a", "e", "ghost");
        assert!(c
            .check()
            .contains(&SpecIssue::UndeclaredState(State::new("ghost"))));
    }

    #[test]
    fn breach_must_be_terminal() {
        let c = ContractSpec::new("c", "a")
            .breach_state("bad")
            .transition("a", "e", "bad")
            .transition("bad", "undo", "a");
        assert!(c
            .check()
            .contains(&SpecIssue::BreachNotTerminal(State::new("bad"))));
    }

    #[test]
    fn issues_display() {
        for issue in ContractSpec::new("c", "a")
            .transition("a", "e", "ghost")
            .check()
        {
            assert!(!issue.to_string().is_empty());
        }
    }
}
