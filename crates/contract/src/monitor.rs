//! Run-time contract monitoring.

use std::fmt;

use parking_lot::Mutex;

use crate::fsm::{ContractSpec, State};

/// A contract violation observed at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractViolation {
    /// The event is not permitted in the current state.
    UnexpectedEvent {
        /// State the contract was in.
        state: State,
        /// The offending event.
        event: String,
    },
    /// The event moved the contract into a breach state.
    Breach {
        /// The breach state entered.
        state: State,
        /// The event that caused it.
        event: String,
    },
    /// The contract is already breached; no further events are accepted.
    AlreadyBreached(State),
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractViolation::UnexpectedEvent { state, event } => {
                write!(f, "event {event} not permitted in state {state}")
            }
            ContractViolation::Breach { state, event } => {
                write!(f, "event {event} breached the contract (state {state})")
            }
            ContractViolation::AlreadyBreached(state) => {
                write!(f, "contract already breached (state {state})")
            }
        }
    }
}

impl std::error::Error for ContractViolation {}

/// Executes a (checked) [`ContractSpec`] against the observed events.
#[derive(Debug)]
pub struct ContractMonitor {
    spec: ContractSpec,
    state: Mutex<State>,
    history: Mutex<Vec<(String, State)>>,
}

impl ContractMonitor {
    /// Creates a monitor at the contract's initial state.
    ///
    /// # Panics
    ///
    /// Panics if the specification fails its static check — running an
    /// unverified contract is a deployment error (the paper's FSMs are
    /// "verified using model-checking tools" *before* use).
    pub fn new(spec: ContractSpec) -> Self {
        let issues = spec.check();
        assert!(issues.is_empty(), "contract spec has defects: {issues:?}");
        let initial = spec.initial().clone();
        Self {
            spec,
            state: Mutex::new(initial),
            history: Mutex::new(Vec::new()),
        }
    }

    /// The current contract state.
    pub fn state(&self) -> State {
        self.state.lock().clone()
    }

    /// `true` if the contract has been breached.
    pub fn breached(&self) -> bool {
        self.spec.is_breach(&self.state())
    }

    /// The `(event, resulting state)` history.
    pub fn history(&self) -> Vec<(String, State)> {
        self.history.lock().clone()
    }

    /// Observes `event`, advancing the contract.
    ///
    /// # Errors
    ///
    /// [`ContractViolation`] if the event is not permitted, breaches the
    /// contract, or the contract was already breached. On
    /// [`ContractViolation::UnexpectedEvent`] the state does not change.
    pub fn observe(&self, event: &str) -> Result<State, ContractViolation> {
        let mut state = self.state.lock();
        if self.spec.is_breach(&state) {
            return Err(ContractViolation::AlreadyBreached(state.clone()));
        }
        let next = self.spec.next(&state, event).cloned().ok_or_else(|| {
            ContractViolation::UnexpectedEvent {
                state: state.clone(),
                event: event.to_string(),
            }
        })?;
        *state = next.clone();
        self.history.lock().push((event.to_string(), next.clone()));
        if self.spec.is_breach(&next) {
            return Err(ContractViolation::Breach {
                state: next,
                event: event.to_string(),
            });
        }
        Ok(next)
    }

    /// Checks whether `event` would be accepted, without advancing.
    pub fn permits(&self, event: &str) -> bool {
        let state = self.state.lock();
        if self.spec.is_breach(&state) {
            return false;
        }
        match self.spec.next(&state, event) {
            Some(next) => !self.spec.is_breach(next),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::ContractSpec;

    fn monitor() -> ContractMonitor {
        ContractMonitor::new(
            ContractSpec::new("part-order", "negotiating")
                .state("agreed")
                .state("delivered")
                .breach_state("breached")
                .transition("negotiating", "spec.agreed", "agreed")
                .transition("negotiating", "spec.rejected", "negotiating")
                .transition("agreed", "part.delivered", "delivered")
                .transition("agreed", "deadline.missed", "breached"),
        )
    }

    #[test]
    fn happy_path() {
        let m = monitor();
        assert_eq!(m.observe("spec.agreed").unwrap(), State::new("agreed"));
        assert_eq!(
            m.observe("part.delivered").unwrap(),
            State::new("delivered")
        );
        assert!(!m.breached());
        assert_eq!(m.history().len(), 2);
    }

    #[test]
    fn self_loop_allowed() {
        let m = monitor();
        assert_eq!(
            m.observe("spec.rejected").unwrap(),
            State::new("negotiating")
        );
        assert_eq!(m.state(), State::new("negotiating"));
    }

    #[test]
    fn unexpected_event_leaves_state_unchanged() {
        let m = monitor();
        let err = m.observe("part.delivered").unwrap_err();
        assert!(matches!(err, ContractViolation::UnexpectedEvent { .. }));
        assert_eq!(m.state(), State::new("negotiating"));
    }

    #[test]
    fn breach_is_reported_and_terminal() {
        let m = monitor();
        m.observe("spec.agreed").unwrap();
        let err = m.observe("deadline.missed").unwrap_err();
        assert!(matches!(err, ContractViolation::Breach { .. }));
        assert!(m.breached());
        assert!(matches!(
            m.observe("part.delivered").unwrap_err(),
            ContractViolation::AlreadyBreached(_)
        ));
    }

    #[test]
    fn permits_is_side_effect_free() {
        let m = monitor();
        assert!(m.permits("spec.agreed"));
        assert!(!m.permits("part.delivered"));
        assert_eq!(m.state(), State::new("negotiating"));
        m.observe("spec.agreed").unwrap();
        // deadline.missed leads to breach: permitted? No — it would breach.
        assert!(!m.permits("deadline.missed"));
        assert!(m.permits("part.delivered"));
    }

    #[test]
    #[should_panic(expected = "contract spec has defects")]
    fn defective_spec_rejected() {
        let _ = ContractMonitor::new(ContractSpec::new("bad", "a").transition("a", "e", "ghost"));
    }
}
