//! End-to-end coverage for the hierarchical key lifecycle: a
//! differential property test pinning cross-generation adjudication
//! verdicts to single-generation ground truth, the sustained-issuance
//! acceptance run (four subtree exhaustions, zero failed seals, zero
//! degraded-mode entries), and a forged-rollover conviction.

use std::sync::Arc;

use proptest::prelude::*;

use nonrep_core::{Adjudicator, WindowSubmission};
use nonrep_crypto::digest::{sha256, Digest};
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, SignatureScheme};
use nonrep_protocols::party::{KeyDirectory, Party, StaticKeyDirectory};
use nonrep_protocols::tokens::TokenKind;
use nonrep_protocols::CommitmentMode;
use nonrep_store::record::KeyRollover;
use nonrep_store::{EvidenceRecord, MemoryLog};
use nonrep_types::ids::{OrgId, RunId};
use nonrep_types::time::LogicalClock;

struct Duo {
    alice: Arc<Party>,
    bob: Arc<Party>,
    dir: Arc<StaticKeyDirectory>,
}

/// A pair of batched parties where alice's signature scheme is chosen by
/// the caller (hierarchical or flat); bob stays on a flat MSS key.
fn duo_with_alice_scheme(scheme: SignatureScheme, seed: u64, batch: usize) -> Duo {
    let clock = LogicalClock::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let party = |org: &str, scheme: SignatureScheme, seed: u64| {
        let mut rng = SecureRandom::from_seed(seed);
        let keys = Arc::new(KeyPair::generate(scheme, &mut rng));
        dir.insert(OrgId::new(org), keys.verifying_key());
        Party::with_commitment(
            org,
            keys,
            Arc::new(clock.clone()),
            Arc::new(MemoryLog::new()),
            Arc::clone(&dir) as Arc<dyn KeyDirectory>,
            rng,
            CommitmentMode::batched(batch),
        )
    };
    let alice = party("alice", scheme, seed);
    let bob = party("bob", SignatureScheme::Mss { height: 6 }, seed ^ 0x626f62);
    Duo { alice, bob, dir }
}

/// One §3.2-style exchange: alice's NRO + bob's NRR, both cross-stored.
fn exchange(d: &Duo, payload: &[u8]) -> RunId {
    let run = d.alice.new_run_id();
    let subject = sha256(payload);
    let nro = d
        .alice
        .issue_token(TokenKind::NroReq, run, subject)
        .unwrap();
    d.alice.store_token(&nro).unwrap();
    d.bob
        .verify_and_store(&nro, TokenKind::NroReq, run, Some(&subject))
        .unwrap();
    let nrr = d.bob.issue_token(TokenKind::NrrReq, run, subject).unwrap();
    d.bob.store_token(&nrr).unwrap();
    d.alice
        .verify_and_store(&nrr, TokenKind::NrrReq, run, Some(&subject))
        .unwrap();
    run
}

fn adjudicator(d: &Duo) -> Adjudicator {
    Adjudicator::new(d.dir.clone() as Arc<dyn KeyDirectory>)
}

fn full_windows(d: &Duo) -> [WindowSubmission; 2] {
    [
        WindowSubmission::from_log("alice", &**d.alice.log(), 0..u64::MAX),
        WindowSubmission::from_log("bob", &**d.bob.log(), 0..u64::MAX),
    ]
}

/// The run-independent shape of a verdict's facts, for cross-world
/// comparison (run ids differ between worlds; everything else must not).
fn fact_shape(v: &nonrep_core::Verdict) -> Vec<(String, OrgId, Digest, Vec<OrgId>)> {
    let mut out: Vec<_> = v
        .facts
        .iter()
        .map(|f| {
            let mut held = f.held_by.clone();
            held.sort();
            (
                f.kind.label().to_string(),
                f.issuer.clone(),
                f.subject,
                held,
            )
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Verdict equivalence across key generations: the same seeded
    /// workload adjudicated in an HSS world (alice's signing crosses
    /// 1–4 subtree rollovers) and in a single-generation MSS world must
    /// establish exactly the same facts, run for run — the lifecycle is
    /// invisible to adjudication outcomes.
    #[test]
    fn cross_generation_verdicts_equal_single_generation_ground_truth(
        seed in 0u64..1_000_000,
        subtree_height in 1u8..3,
        target_rollovers in 1u32..5,
    ) {
        let hss = duo_with_alice_scheme(
            SignatureScheme::Hss { root_height: 3, subtree_height },
            seed,
            2,
        );
        // Drive exchanges until alice has crossed the target number of
        // rollovers (capped well below every key's capacity).
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        let mut runs_h: Vec<RunId> = Vec::new();
        for i in 0..24u64 {
            if hss.alice.keys().generation() >= target_rollovers {
                break;
            }
            let payload = [seed.to_le_bytes(), i.to_le_bytes()].concat();
            runs_h.push(exchange(&hss, &payload));
            payloads.push(payload);
        }
        prop_assert!(hss.alice.keys().generation() >= target_rollovers);
        // Ground truth: the identical workload in a world where alice
        // holds one flat tree with enough capacity to never roll.
        let mss = duo_with_alice_scheme(SignatureScheme::Mss { height: 6 }, seed, 2);
        let runs_m: Vec<RunId> = payloads.iter().map(|p| exchange(&mss, p)).collect();
        for d in [&hss, &mss] {
            d.alice.flush_evidence().unwrap();
            d.bob.flush_evidence().unwrap();
        }
        for (run_h, run_m) in runs_h.iter().zip(&runs_m) {
            let v_h = adjudicator(&hss).adjudicate_windows(*run_h, &full_windows(&hss));
            let v_m = adjudicator(&mss).adjudicate_windows(*run_m, &full_windows(&mss));
            prop_assert_eq!(fact_shape(&v_h), fact_shape(&v_m));
            prop_assert!(v_h.suspect_submitters().is_empty());
            prop_assert!(v_m.suspect_submitters().is_empty());
            for (who, kind) in [("alice", TokenKind::NroReq), ("bob", TokenKind::NrrReq)] {
                prop_assert!(v_h.cannot_deny(&OrgId::new(who), kind));
            }
        }
        // The HSS submission carries its rollover records, all verified.
        let report = adjudicator(&hss).verify_log_in_place(OrgId::new("alice"), &**hss.alice.log());
        prop_assert!(report.clean());
        prop_assert!(report.rollovers >= target_rollovers as usize);
        prop_assert_eq!(report.rollovers_verified, report.rollovers);
    }
}

#[test]
fn sustained_issuance_crosses_four_exhaustions_with_zero_failed_seals() {
    // The acceptance run: a hierarchical org under sustained issuance
    // crosses at least 4 subtree exhaustions with zero failed seals,
    // zero degraded-mode entries, and clean cross-generation
    // adjudication at the end.
    let d = duo_with_alice_scheme(
        SignatureScheme::Hss {
            root_height: 3,
            subtree_height: 2,
        },
        42,
        2,
    );
    let mut runs = Vec::new();
    let mut i = 0u64;
    while d.alice.keys().generation() < 4 {
        runs.push(exchange(&d, &i.to_le_bytes()));
        i += 1;
        // Zero degraded-mode entries, checked after every exchange: the
        // lifecycle must never let the signer starve mid-run.
        assert!(
            !d.alice.scheduler().is_degraded(),
            "degraded mode entered at exchange {i}"
        );
        assert!(i < 64, "rollovers should arrive well within the budget");
    }
    d.alice.flush_evidence().unwrap();
    d.bob.flush_evidence().unwrap();
    assert!(!d.alice.scheduler().is_degraded());
    assert!(d.alice.keys().generation() >= 4);
    assert!(
        d.alice.keys().remaining().unwrap() > 0,
        "the hierarchy is nowhere near spent"
    );
    // Every run — first generation through fifth — adjudicates to the
    // same undeniable facts.
    for run in &runs {
        let v = adjudicator(&d).adjudicate_windows(*run, &full_windows(&d));
        assert!(v.suspect_submitters().is_empty());
        assert!(v.cannot_deny(&OrgId::new("alice"), TokenKind::NroReq));
        assert!(v.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
    }
    // The log carries one verified rollover record per generation.
    let report = adjudicator(&d).verify_log_in_place(OrgId::new("alice"), &**d.alice.log());
    assert!(report.clean());
    assert!(report.rollovers >= 4);
    assert_eq!(report.rollovers_verified, report.rollovers);
}

#[test]
fn forged_rollover_cert_convicts_the_submitter() {
    // An attacker grafting its own subtree cert into alice's history —
    // the byzantine-rollover move — is convicted: the record chains
    // cleanly, but its cert verifies only under the *attacker's* root,
    // so the report counts an unverified rollover and goes unclean.
    let d = duo_with_alice_scheme(
        SignatureScheme::Hss {
            root_height: 2,
            subtree_height: 1,
        },
        7,
        2,
    );
    exchange(&d, b"legit");
    d.alice.flush_evidence().unwrap();
    // Attacker key rolls once to mint a genuine-looking rollover event.
    let mut rng = SecureRandom::from_seed(666);
    let mut attacker = nonrep_crypto::HssSigner::generate(2, 1, &mut rng);
    for i in 0..3u8 {
        attacker.sign(&sha256(&[i])).unwrap();
    }
    let forged = KeyRollover::from_event(&attacker.rollover_history()[0]);
    // Graft it onto alice's log window with perfect chaining.
    let mut records: Vec<Arc<EvidenceRecord>> =
        d.alice.log().snapshot_range(0..d.alice.log().len());
    let last = records.last().unwrap();
    records.push(Arc::new(EvidenceRecord {
        seq: last.seq + 1,
        prev_hash: last.record_hash(),
        draft: forged.to_draft(OrgId::new("alice"), d.alice.now()),
    }));
    let report = adjudicator(&d).verify_log(OrgId::new("alice"), &records);
    assert!(
        report.chain.is_ok(),
        "the graft chains — crypto must catch it"
    );
    assert_eq!(report.rollovers, 1);
    assert_eq!(report.rollovers_verified, 0);
    assert!(!report.clean());
    // The untampered window stays clean.
    let honest = adjudicator(&d).verify_log_in_place(OrgId::new("alice"), &**d.alice.log());
    assert!(honest.clean());
}
