//! End-to-end coverage for the batched evidence pipeline: property tests
//! that tampering with any part of a sealed batch is detected by the
//! adjudicator, a differential test that batched and per-record modes
//! yield equivalent verdicts, and windowed-adjudication scenarios.

use std::sync::Arc;

use proptest::prelude::*;

use nonrep_core::{Adjudicator, WindowSubmission};
use nonrep_crypto::batch::BatchSignature;
use nonrep_crypto::digest::{sha256, Digest};
use nonrep_crypto::sig::SignaturePayload;
use nonrep_protocols::party::{KeyDirectory, Party, StaticKeyDirectory};
use nonrep_protocols::scheduler::TokenSpec;
use nonrep_protocols::tokens::{NrToken, TokenKind};
use nonrep_store::record::EpochCommitment;
use nonrep_store::EvidenceRecord;
use nonrep_types::codec::{Decode, Encode};
use nonrep_types::ids::{OrgId, RunId};
use nonrep_types::time::LogicalClock;

struct Duo {
    alice: Arc<Party>,
    bob: Arc<Party>,
    dir: Arc<StaticKeyDirectory>,
}

/// A pair of parties; `batch` selects the evidence pipeline.
fn duo(batch: Option<usize>) -> Duo {
    let clock = LogicalClock::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let (alice, bob) = match batch {
        Some(n) => (
            Party::quick_batched("alice", 1, &clock, &dir, n),
            Party::quick_batched("bob", 2, &clock, &dir, n),
        ),
        None => (
            Party::quick("alice", 1, &clock, &dir),
            Party::quick("bob", 2, &clock, &dir),
        ),
    };
    Duo { alice, bob, dir }
}

/// One §3.2-style exchange: alice's NRO + bob's NRR, both cross-stored.
fn exchange(d: &Duo, payload: &[u8]) -> RunId {
    let run = d.alice.new_run_id();
    let subject = sha256(payload);
    let nro = d
        .alice
        .issue_token(TokenKind::NroReq, run, subject)
        .unwrap();
    d.alice.store_token(&nro).unwrap();
    d.bob
        .verify_and_store(&nro, TokenKind::NroReq, run, Some(&subject))
        .unwrap();
    let nrr = d.bob.issue_token(TokenKind::NrrReq, run, subject).unwrap();
    d.bob.store_token(&nrr).unwrap();
    d.alice
        .verify_and_store(&nrr, TokenKind::NrrReq, run, Some(&subject))
        .unwrap();
    run
}

fn adjudicator(d: &Duo) -> Adjudicator {
    Adjudicator::new(d.dir.clone() as Arc<dyn KeyDirectory>)
}

#[test]
fn differential_batched_and_per_record_verdicts_agree() {
    // Same exchanges through both pipelines; the *verdicts* must agree on
    // every fact even though the batched logs contain epoch records and
    // batch signatures.
    let per_record = duo(None);
    let batched = duo(Some(4));
    for d in [&per_record, &batched] {
        for i in 0..3u8 {
            exchange(d, &[i]);
        }
        d.alice.flush_evidence().unwrap();
        d.bob.flush_evidence().unwrap();
    }
    let runs_pr: Vec<RunId> = (0..3u8)
        .map(|i| exchange(&per_record, &[100 + i]))
        .collect();
    let runs_b: Vec<RunId> = (0..3u8).map(|i| exchange(&batched, &[100 + i])).collect();
    per_record.alice.flush_evidence().unwrap();
    per_record.bob.flush_evidence().unwrap();
    batched.alice.flush_evidence().unwrap();
    batched.bob.flush_evidence().unwrap();

    for (run_pr, run_b) in runs_pr.iter().zip(&runs_b) {
        let v_pr = adjudicator(&per_record).adjudicate_windows(
            *run_pr,
            &[
                WindowSubmission::from_log("alice", &**per_record.alice.log(), 0..u64::MAX),
                WindowSubmission::from_log("bob", &**per_record.bob.log(), 0..u64::MAX),
            ],
        );
        let v_b = adjudicator(&batched).adjudicate_windows(
            *run_b,
            &[
                WindowSubmission::from_log("alice", &**batched.alice.log(), 0..u64::MAX),
                WindowSubmission::from_log("bob", &**batched.bob.log(), 0..u64::MAX),
            ],
        );
        for (who, kind) in [("alice", TokenKind::NroReq), ("bob", TokenKind::NrrReq)] {
            assert_eq!(
                v_pr.cannot_deny(&OrgId::new(who), kind),
                v_b.cannot_deny(&OrgId::new(who), kind),
                "{who}/{kind} must agree across pipelines"
            );
            assert!(v_b.cannot_deny(&OrgId::new(who), kind));
        }
        assert!(v_pr.suspect_submitters().is_empty());
        assert!(
            v_b.suspect_submitters().is_empty(),
            "batched logs must be clean"
        );
        // The batched reports actually exercised epoch verification.
        assert!(v_b.reports.iter().all(|r| r.epoch_commits > 0 && r.clean()));
        assert!(v_pr.reports.iter().all(|r| r.epoch_commits == 0));
    }
}

#[test]
fn windowed_submission_with_head_and_batch_proofs() {
    let d = duo(Some(4));
    let mut runs = Vec::new();
    for i in 0..5u8 {
        runs.push(exchange(&d, &[i]));
    }
    d.alice.flush_evidence().unwrap();
    let log = d.alice.log();
    // Submit only the tail window covering the last sealed epoch, not the
    // whole log.
    let len = log.len();
    let window = WindowSubmission::from_log("alice", &**log, len.saturating_sub(4)..len);
    assert!(window.records.len() < len as usize);
    assert_ne!(
        window.head,
        Digest::ZERO,
        "tail window carries the head claim"
    );
    let verdict = adjudicator(&d).adjudicate_windows(*runs.last().unwrap(), &[window]);
    assert!(verdict.cannot_deny(&OrgId::new("alice"), TokenKind::NroReq));
    assert!(verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
    assert!(verdict.suspect_submitters().is_empty());
}

#[test]
fn forged_head_claim_is_flagged() {
    let d = duo(Some(4));
    let run = exchange(&d, b"x");
    d.alice.flush_evidence().unwrap();
    let log = d.alice.log();
    let mut window = WindowSubmission::from_log("alice", &**log, 0..log.len());
    // Claim a head that does not match the submitted tail — e.g. hiding
    // later records while presenting an older head, or vice versa.
    window.head = sha256(b"forged head");
    let verdict = adjudicator(&d).adjudicate_windows(run, &[window]);
    assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);
}

#[test]
fn dropping_a_sealed_run_from_the_window_is_detected() {
    // The dispute_resolution scenario, windowed: the cheater drops the
    // records of one run from an otherwise contiguous window.
    let d = duo(Some(8));
    let _run1 = exchange(&d, b"one");
    let run2 = exchange(&d, b"two");
    let _run3 = exchange(&d, b"three");
    d.bob.flush_evidence().unwrap();
    let full = d.bob.log().records();
    let doctored: Vec<Arc<EvidenceRecord>> = full
        .iter()
        .filter(|r| r.draft.run_id != run2)
        .cloned()
        .collect();
    assert!(doctored.len() < full.len());
    let submission = WindowSubmission {
        submitter: OrgId::new("bob"),
        records: doctored,
        head: d.bob.log().head(),
        shard: None,
    };
    let verdict = adjudicator(&d).adjudicate_windows(run2, &[submission]);
    assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("bob")]);
}

/// Re-seal helper: tamper one field of the epoch commitment record inside
/// a window and return the doctored submission.
fn doctor_epoch(
    window: &WindowSubmission,
    f: impl FnOnce(&mut EpochCommitment),
) -> WindowSubmission {
    let mut records = window.records.clone();
    let idx = records
        .iter()
        .position(|r| r.is_epoch_commit())
        .expect("sealed window");
    let mut commitment = EpochCommitment::from_record(&records[idx]).unwrap();
    f(&mut commitment);
    let rec = Arc::make_mut(&mut records[idx]);
    rec.draft.payload = commitment.encode_to_vec();
    rec.draft.content_digest = commitment.root;
    WindowSubmission {
        submitter: window.submitter.clone(),
        records,
        // The tampered record breaks the old head claim trivially; drop
        // the claim so detection must come from the chain/epoch checks.
        head: Digest::ZERO,
        shard: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tampering any single record inside a sealed batch is detected.
    #[test]
    fn tampered_record_in_sealed_batch_detected(victim in 0usize..4, flip in any::<u8>()) {
        let d = duo(Some(4));
        let run = exchange(&d, b"payload");
        d.alice.flush_evidence().unwrap();
        let log = d.alice.log();
        let mut records = log.records();
        // Tamper an ordinary (non-epoch) record.
        let ordinary: Vec<usize> = records
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_epoch_commit())
            .map(|(i, _)| i)
            .collect();
        let idx = ordinary[victim % ordinary.len()];
        Arc::make_mut(&mut records[idx]).draft.payload.push(flip | 1);
        let submission = WindowSubmission {
            submitter: OrgId::new("alice"),
            records,
            head: Digest::ZERO,
            shard: None,
        };
        let verdict = adjudicator(&d).adjudicate_windows(run, &[submission]);
        prop_assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);
    }

    /// Tampering the epoch root or either range bound is detected.
    #[test]
    fn tampered_epoch_root_or_bounds_detected(which in 0usize..3, delta in 1u64..4) {
        let d = duo(Some(4));
        let run = exchange(&d, b"payload");
        d.alice.flush_evidence().unwrap();
        let window = WindowSubmission::from_log("alice", &**d.alice.log(), 0..u64::MAX);
        let doctored = doctor_epoch(&window, |c| match which {
            0 => c.root = sha256(&delta.to_le_bytes()),
            1 => c.lo = c.lo.wrapping_add(delta),
            _ => c.hi = c.hi.wrapping_add(delta),
        });
        let verdict = adjudicator(&d).adjudicate_windows(run, &[doctored]);
        prop_assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);
    }

    /// Tampering a batched token's authentication path is detected.
    #[test]
    fn tampered_auth_path_detected(step_byte in any::<u8>()) {
        let d = duo(Some(4));
        let run = d.bob.new_run_id();
        // A genuine two-token batch from bob (shared signature).
        let tokens = d.bob.issue_tokens(&[
            TokenSpec::new(TokenKind::NrrReq, run, sha256(b"req")),
            TokenSpec::new(TokenKind::NroResp, run, sha256(b"resp")),
        ]).unwrap();
        let mut forged = tokens[0].clone();
        if let SignaturePayload::BatchedMss(BatchSignature { auth_path, .. }) =
            &mut forged.signature.payload
        {
            auth_path.steps[0].sibling = sha256(&[step_byte]);
        } else {
            panic!("expected batched signature");
        }
        // Alice stores the forged token; her log must come up suspect and
        // the forged token must establish no fact.
        d.alice.store_token(&forged).unwrap();
        d.alice.flush_evidence().unwrap();
        let verdict = adjudicator(&d).adjudicate_windows(
            run,
            &[WindowSubmission::from_log("alice", &**d.alice.log(), 0..u64::MAX)],
        );
        prop_assert!(!verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
        prop_assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);
        // The untampered sibling token still verifies on its own.
        let bob_key = d.alice.key_of(&OrgId::new("bob")).unwrap();
        prop_assert!(tokens[1].verify(&bob_key, Some(TokenKind::NroResp), Some(run), None));
    }
}

#[test]
fn batched_tokens_survive_wire_roundtrip_and_adjudication() {
    let d = duo(Some(16));
    let run = d.alice.new_run_id();
    let tokens = d
        .alice
        .issue_tokens(&[
            TokenSpec::new(TokenKind::NroReq, run, sha256(b"a")),
            TokenSpec::new(TokenKind::NrrResp, run, sha256(b"b")),
        ])
        .unwrap();
    for t in &tokens {
        assert!(t.signature.is_batched());
        let wire = t.encode_to_vec();
        let back = NrToken::decode_from_slice(&wire).unwrap();
        // Bob verifies and stores the decoded token like any other.
        d.bob
            .verify_and_store(&back, t.kind, run, Some(&t.subject))
            .unwrap();
    }
    d.bob.flush_evidence().unwrap();
    let verdict = adjudicator(&d).adjudicate_windows(
        run,
        &[WindowSubmission::from_log(
            "bob",
            &**d.bob.log(),
            0..u64::MAX,
        )],
    );
    assert!(verdict.cannot_deny(&OrgId::new("alice"), TokenKind::NroReq));
    assert!(verdict.suspect_submitters().is_empty());
}
