//! Durability and seal-policy plumbing through the middleware, and the
//! adjudication-unaffected-by-construction guarantee: how an organisation
//! stores (memory vs file), syncs (write-through vs per-epoch) and seals
//! (per-record vs size vs size-or-time vs auto) its evidence is a local
//! deployment choice — the facts an adjudicator derives from the evidence
//! are identical across all of them.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use nonrep_container::component::FnComponent;
use nonrep_container::descriptor::{DeploymentDescriptor, NrConfig};
use nonrep_container::ContainerError;
use nonrep_core::{Adjudicator, OrgMiddleware};
use nonrep_net::bus::LocalBus;
use nonrep_protocols::party::{KeyDirectory, StaticKeyDirectory};
use nonrep_protocols::scheduler::{BatchPolicy, CommitmentMode};
use nonrep_protocols::TokenKind;
use nonrep_store::{EvidenceLog, FileLog, SyncPolicy};
use nonrep_types::ids::{MethodName, OrgId};
use nonrep_types::time::LogicalClock;
use nonrep_types::value::Value;

/// A named pipeline variant: (label, commitment mode, log backend).
type Variant = (&'static str, CommitmentMode, Option<Arc<dyn EvidenceLog>>);

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nonrep-core-dur-{}-{name}", std::process::id()));
    p
}

fn deploy_echo(mw: &OrgMiddleware) {
    mw.deploy(
        DeploymentDescriptor::new("urn:echo", [MethodName::new("echo")]),
        Arc::new(FnComponent::new().method("echo", |args| Ok(args.clone()))),
    )
    .unwrap();
}

/// One echo invocation between a fresh client/server pair; the client's
/// evidence pipeline is `mode` over `log` (None = default memory log).
/// Returns the adjudication facts: (any suspects, the four §3.2
/// cannot-deny assurances).
fn facts_for(mode: CommitmentMode, log: Option<Arc<dyn EvidenceLog>>) -> (bool, [bool; 4]) {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let mut builder =
        OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone()).commitment(mode);
    if let Some(log) = log {
        builder = builder.evidence_log(log);
    }
    let client = builder.build();
    let server = OrgMiddleware::builder("server", bus, dir, clock).build();
    deploy_echo(&server);
    let proxy = client.nr_proxy(server.org(), "urn:echo");
    assert_eq!(
        proxy.invoke("echo", Value::from(7i64)).unwrap(),
        Value::from(7i64)
    );
    // Seal (and, on buffered logs, fsync) whatever the policy left
    // pending, then adjudicate both windows.
    client.flush_evidence().unwrap();
    let run = client.log().snapshot_range(0..1)[0].draft.run_id;
    let adjudicator = Adjudicator::new(client.directory().clone() as Arc<dyn KeyDirectory>);
    let verdict = adjudicator.adjudicate_windows(
        run,
        &[client.submit_full_window(), server.submit_full_window()],
    );
    (
        verdict.suspect_submitters().is_empty(),
        [
            verdict.cannot_deny(&OrgId::new("client"), TokenKind::NroReq),
            verdict.cannot_deny(&OrgId::new("server"), TokenKind::NrrReq),
            verdict.cannot_deny(&OrgId::new("server"), TokenKind::NroResp),
            verdict.cannot_deny(&OrgId::new("client"), TokenKind::NrrResp),
        ],
    )
}

#[test]
fn adjudication_is_unaffected_by_seal_and_sync_policy() {
    let reference = facts_for(CommitmentMode::PerRecord, None);
    assert_eq!(reference, (true, [true; 4]), "clean exchange, full facts");
    let file_we = temp_path("invariance-wt.log");
    let file_pe = temp_path("invariance-pe.log");
    let _ = std::fs::remove_file(&file_we);
    let _ = std::fs::remove_file(&file_pe);
    let variants: Vec<Variant> = vec![
        ("batched-16", CommitmentMode::batched(16), None),
        (
            "size-or-time",
            CommitmentMode::Batched(BatchPolicy::size_or_time(8, 1_000)),
            None,
        ),
        ("auto", CommitmentMode::auto(1_000), None),
        (
            "file-write-through",
            CommitmentMode::batched(4),
            Some(Arc::new(FileLog::open(&file_we).unwrap()) as Arc<dyn EvidenceLog>),
        ),
        (
            "file-per-epoch",
            CommitmentMode::batched(4),
            Some(
                Arc::new(FileLog::open_with(&file_pe, SyncPolicy::PerEpoch).unwrap())
                    as Arc<dyn EvidenceLog>,
            ),
        ),
    ];
    for (name, mode, log) in variants {
        assert_eq!(
            facts_for(mode, log),
            reference,
            "facts differ under {name} — durability policy leaked into adjudication"
        );
    }
    let _ = std::fs::remove_file(&file_we);
    let _ = std::fs::remove_file(&file_pe);
}

#[test]
#[should_panic(expected = "buffers appends per epoch")]
fn per_epoch_log_with_per_record_mode_is_rejected_at_build() {
    // The store docs call this combination a misconfiguration (nothing
    // would ever be fsynced); the builder refuses to assemble it.
    let path = temp_path("misconfig.log");
    let _ = std::fs::remove_file(&path);
    let log = Arc::new(FileLog::open_with(&path, SyncPolicy::PerEpoch).unwrap());
    let _ = OrgMiddleware::builder(
        "org",
        LocalBus::new(),
        Arc::new(StaticKeyDirectory::new()),
        LogicalClock::new(),
    )
    .evidence_log(log)
    .build();
}

#[test]
fn per_epoch_file_log_through_middleware_survives_reopen() {
    let path = temp_path("mw-reopen.log");
    let _ = std::fs::remove_file(&path);
    {
        let bus = LocalBus::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let clock = LogicalClock::new();
        let log = Arc::new(FileLog::open_with(&path, SyncPolicy::PerEpoch).unwrap());
        let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
            .commitment(CommitmentMode::batched(4))
            .evidence_log(log)
            .build();
        let server = OrgMiddleware::builder("server", bus, dir, clock).build();
        deploy_echo(&server);
        let proxy = client.nr_proxy(server.org(), "urn:echo");
        proxy.invoke("echo", Value::from(1i64)).unwrap();
        // Run-end sealing covered the run: the epoch seal carried the
        // grouped fsync, so everything below is already durable.
    }
    let log = FileLog::open(&path).unwrap();
    assert_eq!(log.len(), 5, "4 tokens + 1 epoch commitment on disk");
    assert_eq!(log.count_where(&|r| r.is_epoch_commit()), 1);
    log.verify().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn deadline_sealer_covers_idle_middleware_evidence() {
    // size_or_time through the builder: run-end sealing is off and the
    // batch is far from full, so only the deadline can cover the run's
    // evidence — via the background sealer, with no further appends.
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
        .commitment(CommitmentMode::Batched(BatchPolicy::size_or_time(
            1_000, 50,
        )))
        .build();
    let server = OrgMiddleware::builder("server", bus, dir, clock.clone()).build();
    deploy_echo(&server);
    let proxy = client.nr_proxy(server.org(), "urn:echo");
    proxy.invoke("echo", Value::from(2i64)).unwrap();
    let scheduler = client.party().scheduler();
    assert!(scheduler.unsealed_len() > 0, "nothing sealed yet");
    // The deadline is measured on the middleware's LogicalClock; the
    // sealer's polling cadence is wall-clock.
    clock.advance(50);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while scheduler.unsealed_len() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(scheduler.unsealed_len(), 0, "background sealer never fired");
    assert_eq!(client.log().count_where(&|r| r.is_epoch_commit()), 1);
    client.log().verify().unwrap();
}

#[test]
fn descriptor_deadline_upgrades_to_auto_tuned_batching() {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let server = OrgMiddleware::builder("server", bus, dir, clock).build();
    assert_eq!(server.party().scheduler().mode(), CommitmentMode::PerRecord);
    server
        .deploy(
            DeploymentDescriptor::new("urn:dl", [MethodName::new("m")])
                .with_non_repudiation(NrConfig::protocol("direct").with_evidence_deadline_ms(40)),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        )
        .unwrap();
    assert_eq!(server.party().scheduler().mode(), CommitmentMode::auto(40));
    assert_eq!(
        server.party().scheduler().effective_batch_size(),
        BatchPolicy::DEFAULT_AUTO_BATCH
    );
    // Same policy again: fine. A different one: deployment conflict.
    server
        .deploy(
            DeploymentDescriptor::new("urn:same", [MethodName::new("m")])
                .with_non_repudiation(NrConfig::protocol("direct").with_evidence_deadline_ms(40)),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        )
        .unwrap();
    let conflict = server.deploy(
        DeploymentDescriptor::new("urn:conflict", [MethodName::new("m")]).with_non_repudiation(
            NrConfig::protocol("direct")
                .with_batched_evidence(8)
                .with_evidence_deadline_ms(40),
        ),
        Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
    );
    assert!(matches!(conflict, Err(ContainerError::Protocol(_))));
}

#[test]
fn descriptor_size_and_deadline_yield_size_or_time_policy() {
    let bus = LocalBus::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let clock = LogicalClock::new();
    let server = OrgMiddleware::builder("server", bus, dir, clock).build();
    server
        .deploy(
            DeploymentDescriptor::new("urn:st", [MethodName::new("m")]).with_non_repudiation(
                NrConfig::protocol("direct")
                    .with_batched_evidence(32)
                    .with_evidence_deadline_ms(250),
            ),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        )
        .unwrap();
    assert_eq!(
        server.party().scheduler().mode(),
        CommitmentMode::Batched(BatchPolicy::size_or_time(32, 250))
    );
}
