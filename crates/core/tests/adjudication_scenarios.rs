//! Additional adversarial adjudication scenarios for the dispute service
//! (complementing the unit tests in `nonrep-core::dispute`).

use std::sync::Arc;

use nonrep_core::Adjudicator;
use nonrep_crypto::digest::sha256;
use nonrep_protocols::party::{KeyDirectory, Party, StaticKeyDirectory};
use nonrep_protocols::tokens::TokenKind;
use nonrep_types::ids::{OrgId, RunId};
use nonrep_types::time::LogicalClock;

struct Duo {
    alice: Arc<Party>,
    bob: Arc<Party>,
    dir: Arc<StaticKeyDirectory>,
}

fn duo() -> Duo {
    let clock = LogicalClock::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    Duo {
        alice: Party::quick("alice", 1, &clock, &dir),
        bob: Party::quick("bob", 2, &clock, &dir),
        dir,
    }
}

fn exchange(duo: &Duo) -> RunId {
    let run = duo.alice.new_run_id();
    let subject = sha256(b"payload");
    let nro = duo
        .alice
        .issue_token(TokenKind::NroReq, run, subject)
        .unwrap();
    duo.alice.store_token(&nro).unwrap();
    duo.bob
        .verify_and_store(&nro, TokenKind::NroReq, run, Some(&subject))
        .unwrap();
    let nrr = duo
        .bob
        .issue_token(TokenKind::NrrReq, run, subject)
        .unwrap();
    duo.bob.store_token(&nrr).unwrap();
    duo.alice
        .verify_and_store(&nrr, TokenKind::NrrReq, run, Some(&subject))
        .unwrap();
    run
}

#[test]
fn replayed_records_from_another_run_do_not_pollute_the_verdict() {
    let d = duo();
    let run1 = exchange(&d);
    let run2 = exchange(&d);
    let adj = Adjudicator::new(d.dir.clone() as Arc<dyn KeyDirectory>);
    // Submitting *everything* while adjudicating run2: run1 tokens are
    // verified but contribute no facts to run2.
    let verdict = adj.adjudicate(run2, &[(OrgId::new("alice"), d.alice.log().records())]);
    assert!(verdict.facts.iter().all(|f| f.run_id == run2));
    assert_ne!(run1, run2);
}

#[test]
fn reordered_log_is_flagged_but_tokens_still_count() {
    let d = duo();
    let run = exchange(&d);
    let mut records = d.alice.log().records();
    records.swap(0, 1); // breaks seq order + chain
    let adj = Adjudicator::new(d.dir.clone() as Arc<dyn KeyDirectory>);
    let verdict = adj.adjudicate(run, &[(OrgId::new("alice"), records)]);
    assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);
    // The tokens themselves are genuine, so the facts still stand —
    // tampering with ordering does not let alice *suppress* bob's receipt.
    assert!(verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
}

#[test]
fn empty_submission_set_yields_no_facts() {
    let d = duo();
    let run = exchange(&d);
    let adj = Adjudicator::new(d.dir.clone() as Arc<dyn KeyDirectory>);
    let verdict = adj.adjudicate(run, &[]);
    assert!(verdict.facts.is_empty());
    assert!(verdict.suspect_submitters().is_empty());
}

#[test]
fn both_parties_tampering_is_both_flagged() {
    let d = duo();
    let run = exchange(&d);
    let mut a = d.alice.log().records();
    let mut b = d.bob.log().records();
    Arc::make_mut(&mut a[0]).draft.kind = "edited".into();
    Arc::make_mut(&mut b[1]).draft.payload.push(0xFF);
    let adj = Adjudicator::new(d.dir.clone() as Arc<dyn KeyDirectory>);
    let verdict = adj.adjudicate(run, &[(OrgId::new("alice"), a), (OrgId::new("bob"), b)]);
    let mut suspects = verdict.suspect_submitters();
    suspects.sort();
    assert_eq!(suspects, vec![OrgId::new("alice"), OrgId::new("bob")]);
}

#[test]
fn third_party_submission_corroborates() {
    // A TTP-like witness holding copies of the tokens corroborates facts
    // even if both principals refuse to submit.
    let d = duo();
    let clock = LogicalClock::new();
    let witness = Party::new(
        "witness",
        Arc::new(nonrep_crypto::sig::KeyPair::generate(
            nonrep_crypto::sig::SignatureScheme::Arbitrated,
            &mut nonrep_crypto::rng::SecureRandom::from_seed(9),
        )),
        Arc::new(clock),
        Arc::new(nonrep_store::MemoryLog::new()),
        d.dir.clone() as Arc<dyn KeyDirectory>,
        nonrep_crypto::rng::SecureRandom::from_seed(10),
    );
    let run = exchange(&d);
    // Witness stores copies of both parties' tokens.
    for record in d.alice.log().records() {
        use nonrep_types::codec::Decode;
        let token =
            nonrep_protocols::tokens::NrToken::decode_from_slice(&record.draft.payload).unwrap();
        witness.store_token(&token).unwrap();
    }
    let adj = Adjudicator::new(d.dir.clone() as Arc<dyn KeyDirectory>);
    let verdict = adj.adjudicate(run, &[(OrgId::new("witness"), witness.log().records())]);
    assert!(verdict.cannot_deny(&OrgId::new("alice"), TokenKind::NroReq));
    assert!(verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
    assert!(verdict.suspect_submitters().is_empty());
}
