//! NR interceptors: where non-repudiation meets the container.
//!
//! Paper §4.2: "We add an extra interceptor — the JBoss NR interceptor — to
//! both client and server invocation paths. These NR interceptors are
//! responsible for triggering execution of a non-repudiation protocol."
//!
//! * [`ClientNrInterceptor`] sits **first** in the client proxy's chain.
//!   Instead of letting the invocation reach the plain transport terminal,
//!   it serialises the invocation, runs the configured NR protocol through
//!   the organisation's coordinator, and returns the evidenced response.
//! * [`ContainerExecutor`] is the server-side counterpart: protocol
//!   handlers call it "at the appropriate point during execution of the
//!   non-repudiation protocol \[when\] the client's request is actually
//!   passed through the interceptor chain to the EJB component" — it runs
//!   the *full server chain* (access control, logging, …), so a request
//!   that arrives with valid evidence can still be denied by policy, and
//!   that denial is itself evidenced.

use std::fmt;
use std::sync::Arc;

use nonrep_container::interceptor::{Chain, Interceptor, Invocation};
use nonrep_container::{Container, ContainerError};
use nonrep_protocols::invocation::direct::DirectClient;
use nonrep_protocols::invocation::fair_offline::FairClient;
use nonrep_protocols::invocation::inline_ttp::InlineTtpClient;
use nonrep_protocols::invocation::voluntary::VoluntaryClient;
use nonrep_protocols::invocation::{RequestExecutor, ServerResponse};
use nonrep_protocols::ExchangeError;
use nonrep_types::codec::{Decode, Encode};
use nonrep_types::ids::OrgId;
use nonrep_types::value::Value;

/// The protocol client run by a [`ClientNrInterceptor`].
pub enum ProtocolClient {
    /// Three-message direct exchange (paper §3.2).
    Direct(DirectClient),
    /// Asymmetric voluntary baseline (paper §5, ref \[23\]).
    Voluntary(VoluntaryClient),
    /// Routed through inline TTP(s) (paper Fig 3(a)/(b)).
    InlineTtp(InlineTtpClient),
    /// Fair exchange with an offline TTP.
    FairOffline(FairClient),
}

impl fmt::Debug for ProtocolClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProtocolClient::Direct(_) => "direct",
            ProtocolClient::Voluntary(_) => "voluntary",
            ProtocolClient::InlineTtp(_) => "inline-ttp",
            ProtocolClient::FairOffline(_) => "fair-offline",
        };
        write!(f, "ProtocolClient({name})")
    }
}

/// Client-side NR interceptor.
///
/// Install it first in a proxy's chain
/// ([`ClientProxy::add_first_interceptor`]); it terminates the chain itself
/// (the plain transport terminal is never reached for NR services).
///
/// [`ClientProxy::add_first_interceptor`]: nonrep_container::proxy::ClientProxy::add_first_interceptor
pub struct ClientNrInterceptor {
    target: OrgId,
    client: ProtocolClient,
}

impl fmt::Debug for ClientNrInterceptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClientNrInterceptor(target={}, {:?})",
            self.target, self.client
        )
    }
}

fn map_protocol_err(e: ExchangeError) -> ContainerError {
    ContainerError::Protocol(e.to_string())
}

fn decode_response(response: ServerResponse) -> Result<Value, ContainerError> {
    match response {
        ServerResponse::Executed(bytes) => {
            Value::decode_from_slice(&bytes).map_err(|e| ContainerError::Wire(e.to_string()))
        }
        ServerResponse::Failed(msg) => Err(ContainerError::Application(msg)),
    }
}

impl ClientNrInterceptor {
    /// Creates an interceptor running `client` against `target`.
    pub fn new(target: OrgId, client: ProtocolClient) -> Arc<Self> {
        Arc::new(Self { target, client })
    }

    /// Runs the protocol for an already-serialised request.
    fn run(&self, request: Vec<u8>) -> Result<Value, ContainerError> {
        match &self.client {
            ProtocolClient::Direct(c) => {
                let out = c.invoke(&self.target, request).map_err(map_protocol_err)?;
                decode_response(out.response)
            }
            ProtocolClient::Voluntary(c) => {
                let out = c.invoke(&self.target, request).map_err(map_protocol_err)?;
                decode_response(out.response)
            }
            ProtocolClient::InlineTtp(c) => {
                let out = c.invoke(&self.target, request).map_err(map_protocol_err)?;
                decode_response(out.response)
            }
            ProtocolClient::FairOffline(c) => {
                let out = c.invoke(&self.target, request).map_err(map_protocol_err)?;
                decode_response(out.response)
            }
        }
    }
}

impl Interceptor for ClientNrInterceptor {
    fn invoke(&self, inv: Invocation, _chain: &Chain<'_>) -> Result<Value, ContainerError> {
        // The NR interceptor replaces the rest of the outgoing path: the
        // invocation travels inside the protocol messages, not over the
        // plain transport (paper §4.2: the invocation handler "replaces the
        // arguments to the service invocation with the first message of the
        // protocol").
        self.run(inv.encode_to_vec())
    }

    fn name(&self) -> &str {
        "nr-client"
    }
}

/// Server-side executor bridging protocol handlers to the container.
pub struct ContainerExecutor {
    container: Arc<Container>,
}

impl fmt::Debug for ContainerExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContainerExecutor({})", self.container.org())
    }
}

impl ContainerExecutor {
    /// Wraps `container` as a protocol-side request executor.
    pub fn new(container: Arc<Container>) -> Arc<Self> {
        Arc::new(Self { container })
    }
}

impl RequestExecutor for ContainerExecutor {
    fn execute(&self, caller: &OrgId, request: &[u8]) -> Result<Vec<u8>, String> {
        let mut inv =
            Invocation::decode_from_slice(request).map_err(|e| format!("bad request: {e}"))?;
        // The authenticated protocol-level sender overrides whatever caller
        // the serialized invocation claims: identity comes from evidence,
        // not from the payload.
        inv.caller = caller.clone();
        let value = self.container.invoke(inv).map_err(|e| e.to_string())?;
        Ok(value.encode_to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonrep_container::component::FnComponent;
    use nonrep_container::descriptor::DeploymentDescriptor;
    use nonrep_types::ids::MethodName;

    fn container() -> Arc<Container> {
        let c = Container::new("server");
        c.deploy(
            DeploymentDescriptor::new("urn:svc", [MethodName::new("who")]),
            Arc::new(
                FnComponent::new().method("who", |args| Ok(Value::map([("echo", args.clone())]))),
            ),
        )
        .unwrap();
        c
    }

    #[test]
    fn executor_roundtrips_invocations() {
        let exec = ContainerExecutor::new(container());
        let inv = Invocation::new("claimed-caller", "urn:svc", "who", Value::from(1i64));
        let out = exec
            .execute(&OrgId::new("real-caller"), &inv.encode_to_vec())
            .unwrap();
        let value = Value::decode_from_slice(&out).unwrap();
        assert_eq!(value.get("echo"), Some(&Value::from(1i64)));
    }

    #[test]
    fn executor_rejects_garbage() {
        let exec = ContainerExecutor::new(container());
        assert!(exec.execute(&OrgId::new("x"), b"junk").is_err());
    }

    #[test]
    fn executor_reports_container_errors() {
        let exec = ContainerExecutor::new(container());
        let inv = Invocation::new("c", "urn:svc", "missing", Value::Null);
        let err = exec
            .execute(&OrgId::new("c"), &inv.encode_to_vec())
            .unwrap_err();
        assert!(err.contains("missing"));
    }

    #[test]
    fn decode_response_maps_failures() {
        assert!(matches!(
            decode_response(ServerResponse::Failed("no".into())),
            Err(ContainerError::Application(_))
        ));
        let ok = decode_response(ServerResponse::Executed(Value::from(5i64).encode_to_vec()));
        assert_eq!(ok.unwrap(), Value::from(5i64));
        assert!(matches!(
            decode_response(ServerResponse::Executed(b"junk".to_vec())),
            Err(ContainerError::Wire(_))
        ));
    }
}
