//! Per-organisation middleware assembly.
//!
//! [`OrgMiddleware`] is one organisation's complete trusted-interceptor
//! stack (paper §4.2: "the NR interceptor, B2BInvocationHandler,
//! B2BProtocolHandler and B2BCoordinator comprise each party's trusted
//! interceptor"), wired over the shared bus:
//!
//! * the component **container** is registered at the organisation's plain
//!   bus address (ordinary, un-evidenced remoting stays available as the
//!   baseline);
//! * the **B2B coordinator** is registered at [`b2b_address`]
//!   (`"{org}#b2b"`), with the full protocol-handler suite.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use nonrep_container::component::Component;
use nonrep_container::descriptor::{DeploymentDescriptor, EvidenceDurability, KeyLifecycle};
use nonrep_container::proxy::{BusTransport, ClientProxy, ContainerEndpoint};
use nonrep_container::{Container, ContainerError};
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, SignatureScheme};
use nonrep_net::bus::LocalBus;
use nonrep_net::retry::{ReliableRequester, RetryPolicy};
use nonrep_protocols::invocation::direct::{DirectClient, DirectServerHandler};
use nonrep_protocols::invocation::fair_offline::{
    FairClient, FairServerHandler, OfflineTtpHandler, ServerConduct,
};
use nonrep_protocols::invocation::inline_ttp::{InlineTtpClient, InlineTtpHandler};
use nonrep_protocols::invocation::voluntary::{VoluntaryClient, VoluntaryServerHandler};
use nonrep_protocols::party::{Party, StaticKeyDirectory};
use nonrep_protocols::scheduler::{BatchPolicy, CommitmentMode, DeadlineSealer};
use nonrep_protocols::sharing::coordination::{
    CoordinationOutcome, SharingMember, UpdateValidator,
};
use nonrep_protocols::sharing::membership::{self, MembershipHandler};
use nonrep_protocols::sharing::GroupRegistry;
use nonrep_protocols::{B2BCoordinator, ProtocolError};
use nonrep_store::{
    DurabilityClass, EvidenceLog, MemoryLog, ShardedEvidenceLog, StateStore, SyncPolicy,
};
use nonrep_types::ids::{GroupId, OrgId, ServiceUri};
use nonrep_types::time::LogicalClock;

use crate::dispute::WindowSubmission;
use crate::domain::TrustDomain;
use crate::interceptor::{ClientNrInterceptor, ContainerExecutor, ProtocolClient};

/// The bus address of an organisation's B2B coordinator.
pub fn b2b_address(org: &OrgId) -> OrgId {
    OrgId::new(format!("{org}#b2b"))
}

/// Builder for [`OrgMiddleware`].
pub struct MiddlewareBuilder {
    org: OrgId,
    bus: Arc<LocalBus>,
    directory: Arc<StaticKeyDirectory>,
    clock: LogicalClock,
    seed: u64,
    scheme: SignatureScheme,
    retry: RetryPolicy,
    domain: TrustDomain,
    offline_ttp: Option<OrgId>,
    server_conduct: ServerConduct,
    commitment: CommitmentMode,
    evidence_log: Option<Arc<dyn EvidenceLog>>,
    sharded_evidence: Option<Arc<ShardedEvidenceLog>>,
}

impl fmt::Debug for MiddlewareBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MiddlewareBuilder({})", self.org)
    }
}

impl MiddlewareBuilder {
    /// Sets the random seed (keys + run ids); defaults to a per-org hash.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the signature scheme; defaults to MSS of height 8
    /// (256 signatures).
    #[must_use]
    pub fn scheme(mut self, scheme: SignatureScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the retry policy for outgoing protocol messages.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the default trust domain for outgoing NR invocations.
    #[must_use]
    pub fn domain(mut self, domain: TrustDomain) -> Self {
        self.domain = domain;
        self
    }

    /// Names the offline TTP this organisation escrows response keys with
    /// when *serving* fair-offline invocations.
    #[must_use]
    pub fn offline_ttp(mut self, ttp: OrgId) -> Self {
        self.offline_ttp = Some(ttp);
        self
    }

    /// Configures server conduct for fair-offline (tests/fault injection).
    #[must_use]
    pub fn server_conduct(mut self, conduct: ServerConduct) -> Self {
        self.server_conduct = conduct;
        self
    }

    /// Sets the evidence-commitment mode; defaults to per-record signing.
    /// [`CommitmentMode::batched`] routes this organisation's evidence
    /// through the batched pipeline: one signature per token batch, and
    /// epoch commitments sealing the log every `batch_size` records. A
    /// policy with a seal deadline ([`BatchPolicy::size_or_time`] /
    /// [`BatchPolicy::auto`]) additionally gets a background
    /// [`DeadlineSealer`], so idle evidence is sealed on time.
    #[must_use]
    pub fn commitment(mut self, mode: CommitmentMode) -> Self {
        self.commitment = mode;
        self
    }

    /// Uses `log` as this organisation's evidence backend instead of the
    /// default in-memory log — e.g. a `nonrep_store::FileLog` opened with
    /// `SyncPolicy::PerEpoch` (durability lands inline with each epoch
    /// seal) or `SyncPolicy::GroupCommit` (the seal hands the batch to a
    /// dedicated sync thread and concurrent epochs share one fsync).
    ///
    /// A buffering backend must be paired with a batched commitment mode
    /// (see [`MiddlewareBuilder::commitment`]); [`MiddlewareBuilder::build`]
    /// panics otherwise.
    #[must_use]
    pub fn evidence_log(mut self, log: Arc<dyn EvidenceLog>) -> Self {
        self.evidence_log = Some(log);
        self
    }

    /// Deploy-time selection of a durable, file-backed evidence log:
    /// opens (creating or crash-recovering) the log at `path` under
    /// `policy` and uses it as this organisation's evidence backend.
    /// Recovery semantics are those of `FileLog::open_recover_with` — a
    /// torn tail from a previous kill is dropped, mid-file tampering
    /// still refuses to open.
    ///
    /// # Errors
    ///
    /// [`nonrep_store::StoreError`] if the log cannot be opened (I/O
    /// failure, corruption, chain violation).
    pub fn evidence_file(
        self,
        path: impl AsRef<std::path::Path>,
        policy: SyncPolicy,
    ) -> Result<Self, nonrep_store::StoreError> {
        let log = nonrep_store::FileLog::open_recover_with(path, policy)?;
        Ok(self.evidence_log(Arc::new(log)))
    }

    /// Uses an already-open sharded evidence plane as this organisation's
    /// backend: appends partition across the plane's shards by run id,
    /// each shard seals its own epochs, and periodic super-epoch records
    /// on the meta shard restore the global anchor. The party's
    /// [`Party::log`] becomes the *meta* shard (global anchors for gossip
    /// and windowed adjudication); per-shard windows come from
    /// [`OrgMiddleware::submit_shard_window`].
    ///
    /// Requires a batched commitment mode, like any buffering backend
    /// (see [`MiddlewareBuilder::build`]).
    #[must_use]
    pub fn sharded_evidence(mut self, log: Arc<ShardedEvidenceLog>) -> Self {
        self.sharded_evidence = Some(log);
        self
    }

    /// Deploy-time selection of a sharded evidence plane: opens (creating
    /// or crash-recovering) `shards` data shards plus the meta shard under
    /// `dir`, all sharing one group-commit pool, and uses the plane as
    /// this organisation's evidence backend. The shard count is validated
    /// here — deploy time — and must match the directory's existing
    /// layout when reopening.
    ///
    /// # Errors
    ///
    /// [`nonrep_store::StoreError`] if the count is out of bounds, the
    /// layout mismatches, or a shard cannot be opened.
    pub fn sharded_evidence_dir(
        self,
        dir: impl AsRef<std::path::Path>,
        shards: u32,
        policy: SyncPolicy,
    ) -> Result<Self, nonrep_store::StoreError> {
        let log = ShardedEvidenceLog::open_recover(dir, shards, policy)?;
        Ok(self.sharded_evidence(Arc::new(log)))
    }

    /// Assembles the middleware and registers it on the bus.
    ///
    /// # Panics
    ///
    /// If the configured evidence log buffers its appends
    /// (`SyncPolicy::PerEpoch` or `SyncPolicy::GroupCommit`) while the
    /// commitment mode is per-record: per-record mode never seals, so
    /// nothing would ever be fsynced and a kill could lose the
    /// organisation's whole evidence history. That combination is a
    /// deployment error, rejected here rather than discovered at the
    /// first crash.
    pub fn build(self) -> Arc<OrgMiddleware> {
        // Validate before any side effect (keygen, directory insert), so
        // a rejected configuration leaves no stale key registered.
        assert!(
            !(self.sharded_evidence.is_some() && self.evidence_log.is_some()),
            "both evidence_log and sharded_evidence configured — pick one backend"
        );
        let buffers = match &self.sharded_evidence {
            Some(sharded) => sharded.meta().buffers_appends(),
            None => self
                .evidence_log
                .as_ref()
                .is_some_and(|log| log.buffers_appends()),
        };
        assert!(
            !(buffers && matches!(self.commitment, CommitmentMode::PerRecord)),
            "evidence log buffers appends per epoch (SyncPolicy::PerEpoch/GroupCommit) \
             but the commitment mode is PerRecord, which never seals epochs — nothing \
             would ever be made durable; configure MiddlewareBuilder::commitment with \
             a batched mode (see nonrep_store::SyncPolicy)"
        );
        let mut rng = SecureRandom::from_seed(self.seed);
        let keys = Arc::new(KeyPair::generate(self.scheme, &mut rng));
        self.directory
            .insert(self.org.clone(), keys.verifying_key());
        let party = match self.sharded_evidence {
            Some(sharded) => Party::with_sharded_commitment(
                self.org.clone(),
                keys,
                Arc::new(self.clock.clone()),
                sharded,
                Arc::clone(&self.directory) as Arc<_>,
                rng,
                self.commitment,
            ),
            None => Party::with_commitment(
                self.org.clone(),
                keys,
                Arc::new(self.clock.clone()),
                self.evidence_log
                    .unwrap_or_else(|| Arc::new(MemoryLog::new())),
                Arc::clone(&self.directory) as Arc<_>,
                rng,
                self.commitment,
            ),
        };

        let requester = ReliableRequester::new(self.bus.clone(), self.retry);
        let coordinator = B2BCoordinator::with_peer_suffix(self.org.clone(), requester, "#b2b");
        self.bus
            .register(b2b_address(&self.org), coordinator.clone());

        let container = Container::new(self.org.clone());
        self.bus.register(
            self.org.clone(),
            Arc::new(ContainerEndpoint::new(container.clone())),
        );

        // Server-side protocol handlers over the container executor.
        let executor = ContainerExecutor::new(container.clone());
        coordinator.register_handler(DirectServerHandler::new(party.clone(), executor.clone()));
        coordinator.register_handler(VoluntaryServerHandler::new(party.clone(), executor.clone()));
        if let Some(ttp) = &self.offline_ttp {
            coordinator.register_handler(FairServerHandler::new(
                party.clone(),
                coordinator.clone(),
                executor,
                ttp.clone(),
                self.server_conduct,
            ));
        }

        // Information sharing.
        let store = Arc::new(StateStore::new());
        let groups = Arc::new(GroupRegistry::new());
        let sharing = SharingMember::new(party.clone(), store.clone(), groups.clone());
        coordinator.register_handler(sharing.clone());
        coordinator.register_handler(MembershipHandler::new(sharing.clone()));

        let mw = Arc::new(OrgMiddleware {
            org: self.org,
            bus: self.bus,
            directory: self.directory,
            party,
            coordinator,
            container,
            store,
            groups,
            sharing,
            domain: self.domain,
            sealer: Mutex::new(None),
        });
        mw.ensure_deadline_sealer();
        mw
    }
}

/// Polling cadence for a [`DeadlineSealer`] serving a `max_delay_ms`
/// deadline: a quarter of the deadline, clamped to 5ms..=1s. (The
/// cadence is wall-clock even under a [`LogicalClock`]; the deadline
/// itself is always read on the scheduler's own clock.)
fn sealer_poll_interval(max_delay_ms: u64) -> std::time::Duration {
    std::time::Duration::from_millis((max_delay_ms / 4).clamp(5, 1000))
}

/// One organisation's assembled middleware stack.
pub struct OrgMiddleware {
    org: OrgId,
    bus: Arc<LocalBus>,
    directory: Arc<StaticKeyDirectory>,
    party: Arc<Party>,
    coordinator: Arc<B2BCoordinator>,
    container: Arc<Container>,
    store: Arc<StateStore>,
    groups: Arc<GroupRegistry>,
    sharing: Arc<SharingMember>,
    domain: TrustDomain,
    /// Background deadline poller, present whenever the commitment policy
    /// carries a seal deadline (spawned at build or on a deploy-time
    /// upgrade; stopped when the middleware is dropped).
    sealer: Mutex<Option<DeadlineSealer>>,
}

impl fmt::Debug for OrgMiddleware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OrgMiddleware({}, domain={})", self.org, self.domain)
    }
}

impl OrgMiddleware {
    /// Starts building middleware for `org` on `bus` with a shared key
    /// `directory` and `clock`.
    pub fn builder(
        org: impl Into<OrgId>,
        bus: Arc<LocalBus>,
        directory: Arc<StaticKeyDirectory>,
        clock: LogicalClock,
    ) -> MiddlewareBuilder {
        let org = org.into();
        // Default seed derived from the org name so multi-org tests get
        // distinct deterministic keys without explicit seeding.
        let seed = org.as_str().bytes().fold(0u64, |acc, b| {
            acc.wrapping_mul(31).wrapping_add(u64::from(b))
        });
        MiddlewareBuilder {
            org,
            bus,
            directory,
            clock,
            seed,
            scheme: SignatureScheme::Mss { height: 8 },
            retry: RetryPolicy::new(8),
            domain: TrustDomain::Direct,
            offline_ttp: None,
            server_conduct: ServerConduct::Honest,
            commitment: CommitmentMode::PerRecord,
            evidence_log: None,
            sharded_evidence: None,
        }
    }

    /// Spawns the background [`DeadlineSealer`] if the current commitment
    /// policy has a seal deadline and none is running yet. On a sharded
    /// evidence plane one sealer thread polls every shard's scheduler.
    fn ensure_deadline_sealer(&self) {
        if let CommitmentMode::Batched(policy) = self.party.commitment_mode() {
            if let Some(delay) = policy.max_delay_ms {
                let mut sealer = self.sealer.lock();
                if sealer.is_none() {
                    *sealer = Some(DeadlineSealer::spawn_many(
                        self.party.schedulers(),
                        sealer_poll_interval(delay),
                    ));
                }
            }
        }
    }

    /// The owning organisation.
    pub fn org(&self) -> &OrgId {
        &self.org
    }

    /// This organisation's protocol identity.
    pub fn party(&self) -> &Arc<Party> {
        &self.party
    }

    /// This organisation's coordinator.
    pub fn coordinator(&self) -> &Arc<B2BCoordinator> {
        &self.coordinator
    }

    /// This organisation's component container.
    pub fn container(&self) -> &Arc<Container> {
        &self.container
    }

    /// This organisation's replica state store.
    pub fn store(&self) -> &Arc<StateStore> {
        &self.store
    }

    /// This organisation's evidence log.
    pub fn log(&self) -> &Arc<dyn EvidenceLog> {
        self.party.log()
    }

    /// Seals any pending evidence under an epoch commitment and, on
    /// buffered log backends, forces it to disk (in per-record mode there
    /// is nothing to seal, but the log is still flushed). Call before
    /// submitting evidence for adjudication so the log's tail is covered
    /// by a batch proof.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Storage`] if the seal cannot be persisted.
    pub fn flush_evidence(&self) -> Result<(), ProtocolError> {
        self.party.flush_evidence()
    }

    /// Builds a windowed adjudication submission covering `range` of this
    /// organisation's log — a `snapshot_range` of `Arc`-backed records
    /// plus the chain head, never a clone of the full record set.
    pub fn submit_window(&self, range: std::ops::Range<u64>) -> WindowSubmission {
        WindowSubmission::from_log(self.org.clone(), &**self.party.log(), range)
    }

    /// [`OrgMiddleware::submit_window`] over the whole log (handles are
    /// cloned, record payloads are not).
    pub fn submit_full_window(&self) -> WindowSubmission {
        self.submit_window(0..self.party.log().len())
    }

    /// This organisation's sharded evidence plane, when it runs one
    /// (see [`MiddlewareBuilder::sharded_evidence_dir`]).
    pub fn sharded_log(&self) -> Option<&Arc<ShardedEvidenceLog>> {
        self.party.sharded_plane().map(|p| p.log())
    }

    /// Builds a shard-tagged adjudication submission covering `range` of
    /// shard `shard` on a sharded evidence plane — super-epoch anchors
    /// naming that shard corroborate it
    /// (`Adjudicator::verify_window_with_super_anchors`).
    ///
    /// # Panics
    ///
    /// If the organisation does not run a sharded evidence plane, or
    /// `shard` is out of range.
    pub fn submit_shard_window(&self, shard: u32, range: std::ops::Range<u64>) -> WindowSubmission {
        let log = self
            .sharded_log()
            .expect("submit_shard_window requires a sharded evidence plane");
        WindowSubmission::from_shard(self.org.clone(), log, shard, range)
    }

    /// [`OrgMiddleware::submit_shard_window`] over the shard's whole log.
    pub fn submit_shard_full_window(&self, shard: u32) -> WindowSubmission {
        let len = self
            .sharded_log()
            .expect("submit_shard_full_window requires a sharded evidence plane")
            .shard(shard)
            .len();
        self.submit_shard_window(shard, 0..len)
    }

    /// The default trust domain for outgoing invocations.
    pub fn domain(&self) -> &TrustDomain {
        &self.domain
    }

    /// Deploys a component, honouring the descriptor's declarative NR
    /// configuration: a component that requests batched evidence
    /// (`NrConfig::with_batched_evidence`) and/or a seal deadline
    /// (`NrConfig::with_evidence_deadline_ms`) upgrades this
    /// organisation's commitment scheduler to the matching batched
    /// pipeline — size-sealed, size-or-time, or (deadline only)
    /// load-driven auto-tuned — and starts the background
    /// [`DeadlineSealer`] when a deadline is in play.
    ///
    /// # Errors
    ///
    /// See [`Container::deploy`]; additionally
    /// [`ContainerError::Protocol`] if two components declare *different*
    /// batching policies (the pipeline is org-global, so that is a
    /// deployment conflict), if switching commitment mode fails to
    /// persist its closing seal, or if the descriptor declares an
    /// evidence-durability requirement
    /// (`NrConfig::with_evidence_durability`) the organisation's log does
    /// not provide — e.g. requiring group commit while the org runs an
    /// inline per-epoch (or in-memory) log.
    pub fn deploy(
        &self,
        descriptor: DeploymentDescriptor,
        component: Arc<dyn Component>,
    ) -> Result<(), ContainerError> {
        if let Some(required) = descriptor
            .non_repudiation
            .as_ref()
            .and_then(|nr| nr.evidence_durability)
        {
            // Durability is a property of the log the org was *built*
            // with; a descriptor cannot change it after the fact, so a
            // mismatch is a deployment error, not a reconfiguration.
            let required_class = match required {
                EvidenceDurability::WriteThrough => DurabilityClass::Synchronous,
                EvidenceDurability::PerEpoch => DurabilityClass::BufferedEpoch,
                EvidenceDurability::GroupCommit => DurabilityClass::GroupCommit,
            };
            let in_force = self.party.log().durability_class();
            if in_force != required_class {
                return Err(ContainerError::Protocol(format!(
                    "evidence durability mismatch: descriptor for {} requires \
                     {required:?} but the organisation's evidence log provides \
                     {in_force:?} — build the middleware with \
                     MiddlewareBuilder::evidence_file(path, SyncPolicy::...) to match",
                    descriptor.service
                )));
            }
        }
        if let Some(required) = descriptor
            .non_repudiation
            .as_ref()
            .and_then(|nr| nr.evidence_shards)
        {
            // Like durability, the evidence-plane layout is fixed when the
            // organisation is built; a descriptor can only *require* it.
            nonrep_store::validate_shard_count(required).map_err(|e| {
                ContainerError::Protocol(format!(
                    "invalid evidence_shards in descriptor for {}: {e}",
                    descriptor.service
                ))
            })?;
            let in_force = self.party.sharded_plane().map(|p| p.shard_count());
            if in_force != Some(required) {
                return Err(ContainerError::Protocol(format!(
                    "evidence sharding mismatch: descriptor for {} requires a \
                     {required}-shard evidence plane but the organisation runs {} — \
                     build the middleware with \
                     MiddlewareBuilder::sharded_evidence_dir(dir, {required}, \
                     SyncPolicy::...) to match",
                    descriptor.service,
                    match in_force {
                        Some(n) => format!("a {n}-shard plane"),
                        None => "a single unsharded log".to_string(),
                    }
                )));
            }
        }
        if let Some(required) = descriptor
            .non_repudiation
            .as_ref()
            .and_then(|nr| nr.key_lifecycle)
        {
            // The signing key, too, is fixed when the organisation is
            // built (`MiddlewareBuilder::scheme`); a descriptor can only
            // *require* its lifecycle. A long-lived component demanding a
            // hierarchical (never-exhausting) key must not silently land
            // on a finite single tree — and a deployment pinned to the
            // strict single-tree bound must not land on a rolling key.
            let hierarchical = self.party.keys().is_hierarchical();
            let satisfied = match required {
                KeyLifecycle::Hierarchical => hierarchical,
                KeyLifecycle::SingleTree => !hierarchical,
            };
            if !satisfied {
                return Err(ContainerError::Protocol(format!(
                    "key lifecycle mismatch: descriptor for {} requires {required:?} \
                     but the organisation's signing key is {} — build the middleware \
                     with MiddlewareBuilder::scheme(SignatureScheme::{}) to match",
                    descriptor.service,
                    if hierarchical {
                        "hierarchical"
                    } else {
                        "a single tree"
                    },
                    match required {
                        KeyLifecycle::Hierarchical => "Hss { .. }",
                        KeyLifecycle::SingleTree => "Mss { .. }",
                    }
                )));
            }
        }
        let requested = descriptor.non_repudiation.as_ref().and_then(|nr| {
            match (nr.evidence_batch, nr.evidence_deadline_ms) {
                (Some(batch), Some(deadline)) => Some(CommitmentMode::Batched(
                    BatchPolicy::size_or_time(batch as usize, deadline),
                )),
                (Some(batch), None) => Some(CommitmentMode::batched(batch as usize)),
                (None, Some(deadline)) => Some(CommitmentMode::auto(deadline)),
                (None, None) => None,
            }
        });
        if let Some(requested) = requested {
            // The commitment pipeline is org-global: the first batching
            // component switches it on; a later (or racing) component
            // asking for a *different* policy is a deployment conflict,
            // not a silent reconfiguration. `upgrade_mode` decides under
            // one lock hold, so concurrent deploys cannot both win.
            let in_force = self.party.upgrade_commitment_mode(requested);
            if in_force != requested {
                return Err(ContainerError::Protocol(format!(
                    "conflicting evidence batching: org already runs {in_force:?}, \
                     descriptor for {} requests {requested:?}",
                    descriptor.service
                )));
            }
            self.ensure_deadline_sealer();
        }
        self.container.deploy(descriptor, component)
    }

    /// Turns this node into an inline TTP (paper Fig 3(a)/(b)): it will
    /// verify, receipt and forward inline-TTP invocations, relaying to
    /// `next` or invoking the destination server directly.
    pub fn serve_as_inline_ttp(&self, next: Option<OrgId>) {
        let handler = match next {
            Some(next) => {
                InlineTtpHandler::relay(self.party.clone(), self.coordinator.clone(), next)
            }
            None => InlineTtpHandler::terminal(self.party.clone(), self.coordinator.clone()),
        };
        self.coordinator.register_handler(handler);
    }

    /// Turns this node into an offline TTP (escrow/resolve/abort/fetch for
    /// the fair-offline protocol).
    pub fn serve_as_offline_ttp(&self) {
        self.coordinator
            .register_handler(OfflineTtpHandler::new(self.party.clone()));
    }

    fn protocol_client(&self, domain: &TrustDomain) -> ProtocolClient {
        match domain {
            TrustDomain::Direct => ProtocolClient::Direct(DirectClient::new(
                self.party.clone(),
                self.coordinator.clone(),
            )),
            TrustDomain::Voluntary => ProtocolClient::Voluntary(VoluntaryClient::new(
                self.party.clone(),
                self.coordinator.clone(),
            )),
            TrustDomain::InlineTtp { first_hop } => {
                ProtocolClient::InlineTtp(InlineTtpClient::new(
                    self.party.clone(),
                    self.coordinator.clone(),
                    first_hop.clone(),
                ))
            }
            TrustDomain::FairOffline { ttp } => ProtocolClient::FairOffline(FairClient::new(
                self.party.clone(),
                self.coordinator.clone(),
                ttp.clone(),
            )),
        }
    }

    /// Builds a non-repudiable proxy for `service` at `target` using the
    /// middleware's default trust domain.
    pub fn nr_proxy(&self, target: &OrgId, service: impl Into<ServiceUri>) -> ClientProxy {
        self.nr_proxy_in(self.domain.clone(), target, service)
    }

    /// Builds a non-repudiable proxy under an explicit trust domain
    /// (per-interaction override; paper §3.1: "As an interaction evolves it
    /// may be appropriate to change the deployment of interceptors").
    pub fn nr_proxy_in(
        &self,
        domain: TrustDomain,
        target: &OrgId,
        service: impl Into<ServiceUri>,
    ) -> ClientProxy {
        let transport = Arc::new(BusTransport::new(
            self.bus.clone() as Arc<dyn nonrep_net::bus::RequestBus>,
            self.org.clone(),
        ));
        let mut proxy = ClientProxy::new(self.org.clone(), target.clone(), service, transport);
        let client = self.protocol_client(&domain);
        proxy.add_first_interceptor(ClientNrInterceptor::new(target.clone(), client));
        proxy
    }

    /// Builds a *plain* proxy (no evidence; the paper's Fig 4(a) baseline).
    pub fn plain_proxy(&self, target: &OrgId, service: impl Into<ServiceUri>) -> ClientProxy {
        let transport = Arc::new(BusTransport::new(
            self.bus.clone() as Arc<dyn nonrep_net::bus::RequestBus>,
            self.org.clone(),
        ));
        ClientProxy::new(self.org.clone(), target.clone(), service, transport)
    }

    /// Seeds a sharing group locally (the out-of-band initial agreement;
    /// subsequent changes go through the connect/disconnect protocols).
    pub fn install_group(&self, group: GroupId, members: BTreeSet<OrgId>) {
        self.groups.set(group, members);
    }

    /// Adds an application validator consulted on every incoming proposal.
    pub fn add_validator(&self, validator: Arc<dyn UpdateValidator>) {
        self.sharing.add_validator(validator);
    }

    /// Proposes an update to shared information (paper Fig 5(b)).
    ///
    /// # Errors
    ///
    /// See [`SharingMember::propose`]. A veto is *not* an error.
    pub fn propose_update(
        &self,
        group: &GroupId,
        object: &str,
        new_state: Vec<u8>,
    ) -> Result<CoordinationOutcome, ProtocolError> {
        self.sharing
            .propose(&self.coordinator, group, object, new_state)
    }

    /// The latest agreed state of a shared object.
    pub fn current_state(&self, object: &str) -> Option<Vec<u8>> {
        self.sharing.current_state(object)
    }

    /// Sponsors `joiner` into `group` (connect protocol).
    ///
    /// # Errors
    ///
    /// See [`membership::connect`].
    pub fn connect(
        &self,
        group: &GroupId,
        joiner: &OrgId,
    ) -> Result<CoordinationOutcome, ProtocolError> {
        membership::connect(&self.sharing, &self.coordinator, group, joiner)
    }

    /// Proposes removing `leaver` from `group` (disconnect protocol).
    ///
    /// # Errors
    ///
    /// See [`membership::disconnect`].
    pub fn disconnect(
        &self,
        group: &GroupId,
        leaver: &OrgId,
    ) -> Result<CoordinationOutcome, ProtocolError> {
        membership::disconnect(&self.sharing, &self.coordinator, group, leaver)
    }

    /// The local view of `group`'s membership.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Rejected`] if the group is unknown.
    pub fn group_members(&self, group: &GroupId) -> Result<BTreeSet<OrgId>, ProtocolError> {
        self.groups.members(group)
    }

    /// The shared key directory (the simple-PKI stand-in used in tests and
    /// examples; production deployments adapt `nonrep_pki::CredentialManager`).
    pub fn directory(&self) -> &Arc<StaticKeyDirectory> {
        &self.directory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonrep_container::component::FnComponent;
    use nonrep_types::ids::MethodName;
    use nonrep_types::value::Value;

    fn world() -> (Arc<LocalBus>, Arc<StaticKeyDirectory>, LogicalClock) {
        (
            LocalBus::new(),
            Arc::new(StaticKeyDirectory::new()),
            LogicalClock::new(),
        )
    }

    fn deploy_echo(mw: &OrgMiddleware) {
        mw.deploy(
            DeploymentDescriptor::new("urn:echo", [MethodName::new("echo")]),
            Arc::new(FnComponent::new().method("echo", |args| Ok(args.clone()))),
        )
        .unwrap();
    }

    #[test]
    fn nr_invocation_end_to_end_through_middleware() {
        let (bus, dir, clock) = world();
        let client =
            OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone()).build();
        let server = OrgMiddleware::builder("server", bus, dir, clock).build();
        deploy_echo(&server);
        let proxy = client.nr_proxy(server.org(), "urn:echo");
        let out = proxy.invoke("echo", Value::from(42i64)).unwrap();
        assert_eq!(out, Value::from(42i64));
        // Evidence on both sides.
        assert_eq!(client.log().len(), 4);
        assert_eq!(server.log().len(), 4);
        client.log().verify().unwrap();
        server.log().verify().unwrap();
    }

    #[test]
    fn batched_commitment_through_middleware_builder() {
        let (bus, dir, clock) = world();
        let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
            .commitment(CommitmentMode::batched(16))
            .build();
        let server = OrgMiddleware::builder("server", bus, dir.clone(), clock).build();
        deploy_echo(&server);
        let proxy = client.nr_proxy(server.org(), "urn:echo");
        proxy.invoke("echo", Value::from(1i64)).unwrap();
        // Client sealed its run under an epoch commitment: 4 tokens + 1
        // epoch record; the per-record server has exactly 4.
        assert_eq!(client.log().len(), 5);
        assert_eq!(client.log().count_where(&|r| r.is_epoch_commit()), 1);
        assert_eq!(server.log().len(), 4);
        client.log().verify().unwrap();
        // Windowed adjudication over both submissions is clean and
        // establishes the full fact set.
        let run = client.log().snapshot_range(0..1)[0].draft.run_id;
        let adjudicator = crate::Adjudicator::new(
            client.directory().clone() as Arc<dyn nonrep_protocols::party::KeyDirectory>
        );
        let verdict = adjudicator.adjudicate_windows(
            run,
            &[client.submit_full_window(), server.submit_full_window()],
        );
        assert!(verdict.suspect_submitters().is_empty());
        assert!(verdict.cannot_deny(&OrgId::new("client"), nonrep_protocols::TokenKind::NroReq));
        assert!(verdict.cannot_deny(&OrgId::new("server"), nonrep_protocols::TokenKind::NroResp));
    }

    #[test]
    fn descriptor_batching_upgrades_the_scheduler() {
        use nonrep_container::component::FnComponent;
        use nonrep_types::ids::MethodName;
        let (bus, dir, clock) = world();
        let server = OrgMiddleware::builder("server", bus, dir, clock).build();
        assert_eq!(server.party().scheduler().mode(), CommitmentMode::PerRecord);
        // A component declaring batched evidence upgrades the org's
        // commitment pipeline at deploy time.
        server
            .deploy(
                DeploymentDescriptor::new("urn:batched", [MethodName::new("m")])
                    .with_non_repudiation(
                        nonrep_container::descriptor::NrConfig::protocol("direct")
                            .with_batched_evidence(32),
                    ),
                Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
            )
            .unwrap();
        assert_eq!(
            server.party().scheduler().mode(),
            CommitmentMode::batched(32)
        );
        // Same batch size again is fine; a different size is a conflict.
        server
            .deploy(
                DeploymentDescriptor::new("urn:same", [MethodName::new("m")]).with_non_repudiation(
                    nonrep_container::descriptor::NrConfig::protocol("direct")
                        .with_batched_evidence(32),
                ),
                Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
            )
            .unwrap();
        let conflict = server.deploy(
            DeploymentDescriptor::new("urn:conflict", [MethodName::new("m")]).with_non_repudiation(
                nonrep_container::descriptor::NrConfig::protocol("direct").with_batched_evidence(4),
            ),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        );
        assert!(matches!(conflict, Err(ContainerError::Protocol(_))));
    }

    #[test]
    fn plain_proxy_leaves_no_evidence() {
        let (bus, dir, clock) = world();
        let client =
            OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone()).build();
        let server = OrgMiddleware::builder("server", bus, dir, clock).build();
        deploy_echo(&server);
        let proxy = client.plain_proxy(server.org(), "urn:echo");
        assert_eq!(
            proxy.invoke("echo", Value::from(1i64)).unwrap(),
            Value::from(1i64)
        );
        assert_eq!(client.log().len(), 0);
        assert_eq!(server.log().len(), 0);
    }

    #[test]
    fn sharing_through_middleware() {
        let (bus, dir, clock) = world();
        let a = OrgMiddleware::builder("a", bus.clone(), dir.clone(), clock.clone()).build();
        let b = OrgMiddleware::builder("b", bus, dir, clock).build();
        let group = GroupId::new("ve");
        let members: BTreeSet<OrgId> = [OrgId::new("a"), OrgId::new("b")].into();
        a.install_group(group.clone(), members.clone());
        b.install_group(group.clone(), members);
        let out = a.propose_update(&group, "spec", b"v1".to_vec()).unwrap();
        assert!(out.accepted);
        assert_eq!(b.current_state("spec").unwrap(), b"v1");
        assert_eq!(a.group_members(&group).unwrap().len(), 2);
    }

    #[test]
    fn fair_offline_through_middleware() {
        let (bus, dir, clock) = world();
        let ttp_org = OrgId::new("ttp");
        let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
            .domain(TrustDomain::FairOffline {
                ttp: ttp_org.clone(),
            })
            .build();
        let server = OrgMiddleware::builder("server", bus.clone(), dir.clone(), clock.clone())
            .offline_ttp(ttp_org.clone())
            .build();
        let ttp = OrgMiddleware::builder("ttp", bus, dir, clock).build();
        ttp.serve_as_offline_ttp();
        deploy_echo(&server);
        let proxy = client.nr_proxy(server.org(), "urn:echo");
        assert_eq!(
            proxy.invoke("echo", Value::from(7i64)).unwrap(),
            Value::from(7i64)
        );
    }

    #[test]
    fn inline_ttp_through_middleware() {
        let (bus, dir, clock) = world();
        let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
            .domain(TrustDomain::InlineTtp {
                first_hop: OrgId::new("ttp"),
            })
            .build();
        let server =
            OrgMiddleware::builder("server", bus.clone(), dir.clone(), clock.clone()).build();
        let ttp = OrgMiddleware::builder("ttp", bus, dir, clock).build();
        ttp.serve_as_inline_ttp(None);
        deploy_echo(&server);
        let proxy = client.nr_proxy(server.org(), "urn:echo");
        assert_eq!(
            proxy.invoke("echo", Value::from(9i64)).unwrap(),
            Value::from(9i64)
        );
        // TTP kept a full audit trail.
        assert!(ttp.log().len() >= 3);
    }

    #[test]
    fn b2b_address_formatting() {
        assert_eq!(b2b_address(&OrgId::new("acme")), OrgId::new("acme#b2b"));
    }

    fn temp_log(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nonrep-mw-{name}-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn evidence_file_group_commit_end_to_end() {
        // Deploy-time selection of the group-commit log through the
        // builder: invocations work, evidence seals asynchronously, and
        // flush_evidence is the durability barrier — a strict reopen
        // after it sees the complete log.
        let (bus, dir, clock) = world();
        let path = temp_log("gc");
        let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
            .commitment(CommitmentMode::batched(4))
            .evidence_file(&path, SyncPolicy::GroupCommit)
            .unwrap()
            .build();
        let server = OrgMiddleware::builder("server", bus, dir, clock).build();
        deploy_echo(&server);
        let proxy = client.nr_proxy(server.org(), "urn:echo");
        assert_eq!(
            proxy.invoke("echo", Value::from(5i64)).unwrap(),
            Value::from(5i64)
        );
        client.flush_evidence().unwrap();
        assert_eq!(
            client.log().durability_class(),
            DurabilityClass::GroupCommit
        );
        let len = client.log().len();
        assert!(client.log().count_where(&|r| r.is_epoch_commit()) >= 1);
        drop(client);
        let reopened = nonrep_store::FileLog::open(&path).unwrap();
        assert_eq!(reopened.len(), len);
        reopened.verify().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_evidence_plane_end_to_end() {
        use crate::dispute::Adjudicator;
        let (bus, dir, clock) = world();
        let mut base = std::env::temp_dir();
        base.push(format!("nonrep-mw-sharded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let client = OrgMiddleware::builder("client", bus.clone(), dir.clone(), clock.clone())
            .commitment(CommitmentMode::batched(4))
            .sharded_evidence_dir(&base, 4, SyncPolicy::GroupCommit)
            .unwrap()
            .build();
        let server = OrgMiddleware::builder("server", bus, dir, clock).build();
        deploy_echo(&server);
        let proxy = client.nr_proxy(server.org(), "urn:echo");
        assert_eq!(
            proxy.invoke("echo", Value::from(5i64)).unwrap(),
            Value::from(5i64)
        );
        // flush_evidence seals every shard tail, appends a super-epoch to
        // the meta shard and lands it all behind the shared pool.
        client.flush_evidence().unwrap();
        let plane = client.sharded_log().unwrap();
        assert_eq!(plane.shard_count(), 4);
        let (_, commitment) = plane.latest_super_epoch().unwrap();
        assert!(!commitment.entries.is_empty());
        plane.verify_all().unwrap();
        // The run's evidence lives on exactly one shard; its shard-tagged
        // window adjudicates clean against the gossiped super-epoch.
        let run = plane
            .shards()
            .iter()
            .flat_map(|s| s.records())
            .find(|r| !r.is_epoch_commit())
            .unwrap()
            .draft
            .run_id;
        let shard = plane.shard_for(&run);
        assert!(plane.shard(shard).len() >= 2);
        let adjudicator = Adjudicator::new(
            client.directory().clone() as Arc<dyn nonrep_protocols::party::KeyDirectory>
        );
        let submission = client.submit_shard_full_window(shard);
        let report = adjudicator.verify_window_with_super_anchors(&submission, &[commitment]);
        assert!(report.clean());
        // Descriptor shard requirements are validated at deploy time.
        use nonrep_container::descriptor::NrConfig;
        client
            .deploy(
                DeploymentDescriptor::new("urn:sharded", [MethodName::new("m")])
                    .with_non_repudiation(
                        NrConfig::protocol("direct")
                            .with_batched_evidence(4)
                            .with_evidence_shards(4),
                    ),
                Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
            )
            .unwrap();
        let mismatch = client.deploy(
            DeploymentDescriptor::new("urn:wrong", [MethodName::new("m")])
                .with_non_repudiation(NrConfig::protocol("direct").with_evidence_shards(16)),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        );
        assert!(matches!(mismatch, Err(ContainerError::Protocol(_))));
        // An unsharded org cannot satisfy a shard requirement either.
        let mismatch = server.deploy(
            DeploymentDescriptor::new("urn:needs-shards", [MethodName::new("m")])
                .with_non_repudiation(NrConfig::protocol("direct").with_evidence_shards(4)),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        );
        assert!(matches!(mismatch, Err(ContainerError::Protocol(_))));
        drop(client);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn descriptor_durability_requirement_validated_at_deploy() {
        use nonrep_container::descriptor::NrConfig;
        let (bus, dir, clock) = world();
        let path = temp_log("req");
        let org = OrgMiddleware::builder("org", bus.clone(), dir.clone(), clock.clone())
            .commitment(CommitmentMode::batched(8))
            .evidence_file(&path, SyncPolicy::GroupCommit)
            .unwrap()
            .build();
        // Matching requirement deploys fine.
        org.deploy(
            DeploymentDescriptor::new("urn:gc", [MethodName::new("m")]).with_non_repudiation(
                NrConfig::protocol("direct")
                    .with_evidence_durability(EvidenceDurability::GroupCommit),
            ),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        )
        .unwrap();
        // A component requiring inline per-epoch durability conflicts
        // with the group-commit log in force.
        let mismatch = org.deploy(
            DeploymentDescriptor::new("urn:pe", [MethodName::new("m")]).with_non_repudiation(
                NrConfig::protocol("direct").with_evidence_durability(EvidenceDurability::PerEpoch),
            ),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        );
        assert!(matches!(mismatch, Err(ContainerError::Protocol(_))));
        // And on a default (in-memory, volatile) org, requiring group
        // commit fails too…
        let plain = OrgMiddleware::builder("plain", bus, dir, clock).build();
        let mismatch = plain.deploy(
            DeploymentDescriptor::new("urn:gc2", [MethodName::new("m")]).with_non_repudiation(
                NrConfig::protocol("direct")
                    .with_evidence_durability(EvidenceDurability::GroupCommit),
            ),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        );
        assert!(matches!(mismatch, Err(ContainerError::Protocol(_))));
        // …and so does requiring write-through: "nothing to flush" must
        // not satisfy "durable on every append".
        let mismatch = plain.deploy(
            DeploymentDescriptor::new("urn:wt", [MethodName::new("m")]).with_non_repudiation(
                NrConfig::protocol("direct")
                    .with_evidence_durability(EvidenceDurability::WriteThrough),
            ),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        );
        assert!(matches!(mismatch, Err(ContainerError::Protocol(_))));
        drop(org);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn descriptor_key_lifecycle_requirement_validated_at_deploy() {
        use nonrep_container::descriptor::{KeyLifecycle, NrConfig};
        let (bus, dir, clock) = world();
        let rolling = OrgMiddleware::builder("rolling", bus.clone(), dir.clone(), clock.clone())
            .scheme(SignatureScheme::Hss {
                root_height: 3,
                subtree_height: 4,
            })
            .build();
        // Matching requirement deploys fine.
        rolling
            .deploy(
                DeploymentDescriptor::new("urn:hier", [MethodName::new("m")]).with_non_repudiation(
                    NrConfig::protocol("direct").with_key_lifecycle(KeyLifecycle::Hierarchical),
                ),
                Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
            )
            .unwrap();
        // A strict single-tree requirement conflicts with the rolling key.
        let mismatch = rolling.deploy(
            DeploymentDescriptor::new("urn:single", [MethodName::new("m")]).with_non_repudiation(
                NrConfig::protocol("direct").with_key_lifecycle(KeyLifecycle::SingleTree),
            ),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        );
        assert!(matches!(mismatch, Err(ContainerError::Protocol(_))));
        // A default (single-tree MSS) org cannot satisfy Hierarchical…
        let flat = OrgMiddleware::builder("flat", bus, dir, clock).build();
        let mismatch = flat.deploy(
            DeploymentDescriptor::new("urn:hier2", [MethodName::new("m")]).with_non_repudiation(
                NrConfig::protocol("direct").with_key_lifecycle(KeyLifecycle::Hierarchical),
            ),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        );
        assert!(matches!(mismatch, Err(ContainerError::Protocol(_))));
        // …but satisfies SingleTree.
        flat.deploy(
            DeploymentDescriptor::new("urn:single2", [MethodName::new("m")]).with_non_repudiation(
                NrConfig::protocol("direct").with_key_lifecycle(KeyLifecycle::SingleTree),
            ),
            Arc::new(FnComponent::new().method("m", |args| Ok(args.clone()))),
        )
        .unwrap();
    }
}
