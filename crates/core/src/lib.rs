//! The non-repudiation middleware core: trusted interceptors.
//!
//! This crate assembles the substrates (crypto, net, store, pki, access,
//! container, protocols) into the paper's architecture:
//!
//! * [`middleware`] — [`OrgMiddleware`], one organisation's full stack:
//!   party identity (keys, clock, evidence log), component container,
//!   B2B coordinator (registered on the bus at `"{org}#b2b"`), state
//!   store, sharing membership, and protocol handlers. The programmatic
//!   face of "the NR interceptor, B2BInvocationHandler, B2BProtocolHandler
//!   and B2BCoordinator comprise each party's trusted interceptor" (§4.2).
//!   The builder also selects the evidence pipeline: commitment mode
//!   (per-record vs batched, size/time/auto seal policy — with a
//!   background deadline sealer when a time bound is set) and the log
//!   backend (e.g. a per-epoch-fsynced file log).
//! * [`interceptor`] — [`ClientNrInterceptor`], the client-side JBoss-NR-
//!   interceptor analogue: first on the outgoing path, it diverts the
//!   invocation into a non-repudiation protocol instead of the plain
//!   transport; plus [`ContainerExecutor`], the server-side hook through
//!   which protocol handlers finally execute the request on the container.
//! * [`handler_factory`] — the paper's
//!   `B2BInvocationHandler.getInstance(platform, protocol)` factory (§4.2).
//! * [`domain`] — [`TrustDomain`]: deployment-level choice between the
//!   direct domain, inline TTP(s) and the offline-TTP fair exchange
//!   (paper Fig 3), applied when building proxies.
//! * [`dispute`] — [`Adjudicator`]: replays evidence logs, verifies every
//!   token and hash chain, and derives the facts no party can deny.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` at the workspace root, or the integration
//! tests under `tests/`.

pub mod dispute;
pub mod domain;
pub mod handler_factory;
pub mod interceptor;
pub mod middleware;

pub use dispute::{Adjudicator, Fact, LogReport, Verdict, WindowSubmission};
pub use domain::TrustDomain;
pub use handler_factory::{B2BInvocation, B2BInvocationHandler, InvocationHandlerFactory};
pub use interceptor::{ClientNrInterceptor, ContainerExecutor};
pub use middleware::{b2b_address, MiddlewareBuilder, OrgMiddleware};
