//! Dispute resolution.
//!
//! Paper §3.1: "To support dispute resolution, the fact that trusted
//! interceptors mediated the interaction provides any honest party with
//! irrefutable evidence of their own actions within the domain and of the
//! observed actions of other parties" and "trusted interceptors will
//! support the conclusion of dispute resolution in favour of honest
//! parties".
//!
//! [`Adjudicator`] makes that mechanically checkable: given the evidence
//! logs the disputing organisations submit, it
//!
//! 1. verifies each log's hash chain (tampered logs are flagged and their
//!    *unverifiable* records ignored),
//! 2. verifies every epoch commitment — the batched pipeline's one
//!    signature per sealed range — against the records it claims to cover,
//! 3. decodes and cryptographically verifies every token against the key
//!    directory (per-record and batch signatures alike),
//! 4. produces the set of [`Fact`]s — token assertions that some submitted
//!    log proves and that their issuer therefore **cannot deny**.
//!
//! # Windowed submissions
//!
//! Cloning a whole log to submit it does not scale; the batched pipeline
//! makes it unnecessary. A [`WindowSubmission`] carries a
//! `snapshot_range` window of `Arc`-backed records, the submitter's
//! claimed chain head, and (inside the window, as ordinary records) the
//! epoch commitments whose signed roots attest the window's content.
//! [`Adjudicator::adjudicate_windows`] anchors chain verification at the
//! window's first record ([`ChainVerifier::resume`]) instead of replaying
//! from genesis, checks the tail against the claimed head, and verifies
//! every in-window commitment over the records it covers.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use nonrep_crypto::digest::Digest;
use nonrep_protocols::party::KeyDirectory;
use nonrep_protocols::tokens::{defection_digest, NrToken, TokenKind};
use nonrep_store::record::{
    ChainVerifier, ChainViolation, EpochCommitment, EvidenceRecord, KeyRollover, RunMarker,
};
use nonrep_store::{EvidenceLog, ShardedEvidenceLog, SuperEpochCommitment};
use nonrep_types::codec::Decode;
use nonrep_types::ids::{OrgId, RunId};

/// Verification report for one submitted log (or log window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogReport {
    /// Who submitted the log.
    pub submitter: OrgId,
    /// Hash-chain verification result.
    pub chain: Result<(), ChainViolation>,
    /// Tokens decoded from the log: `(token, signature_valid)`.
    pub tokens: Vec<(NrToken, bool)>,
    /// Records whose payload was not a decodable token (or a decodable
    /// epoch commitment).
    pub undecodable: usize,
    /// Epoch commitments encountered in the submission.
    pub epoch_commits: usize,
    /// Epoch commitments that verified (signature by the submitter, and —
    /// when the covered range lies inside the submission — the recomputed
    /// root over the covered records).
    pub epoch_verified: usize,
    /// Tokens whose decoded fields disagree with the record context they
    /// were stored under (run id, kind, actor or content digest). The
    /// middleware always records a token under its own context
    /// ([`nonrep_protocols::party::Party::store_token`]), so a mismatch
    /// means the record was hand-crafted — e.g. a token from one run
    /// replayed into another run's history.
    pub context_mismatches: usize,
    /// Violation found by corroborating the submission against epoch
    /// anchors the submitter previously gossiped to counterparties
    /// ([`Adjudicator::verify_window_with_anchors`]): a forked history or
    /// withheld records. `None` when no anchors were checked or all agree.
    pub anchor_violation: Option<ChainViolation>,
    /// Key-rollover records encountered in the submission.
    pub rollovers: usize,
    /// Rollover records whose subtree certificate chains to the
    /// submitter's registered root key (and names its own generation).
    pub rollovers_verified: usize,
}

impl LogReport {
    /// `true` if the chain verified, every token's signature verified,
    /// every record payload decoded, and every epoch commitment checked
    /// out.
    ///
    /// Undecodable payloads count against the submitter: the middleware
    /// only ever logs canonically-encoded tokens, so a record that fails
    /// to decode is evidence of tampering (e.g. edits to a terminal record
    /// that the hash chain alone cannot catch). Likewise an epoch
    /// commitment whose signature or recomputed root does not match is
    /// evidence of tampering with the sealed range.
    pub fn clean(&self) -> bool {
        self.chain.is_ok()
            && self.undecodable == 0
            && self.tokens.iter().all(|(_, ok)| *ok)
            && self.epoch_verified == self.epoch_commits
            && self.context_mismatches == 0
            && self.anchor_violation.is_none()
            && self.rollovers_verified == self.rollovers
    }
}

/// One organisation's windowed evidence submission: a `snapshot_range`
/// window of its log plus its claimed chain head — never a clone of the
/// full record set.
#[derive(Debug, Clone)]
pub struct WindowSubmission {
    /// Who submitted the window.
    pub submitter: OrgId,
    /// A contiguous range of the submitter's log (epoch-commitment
    /// records included — they are the window's batch proofs).
    pub records: Vec<Arc<EvidenceRecord>>,
    /// The submitter's claimed chain head. [`Digest::ZERO`] when the
    /// window does not extend to the log's tail (the head then cannot be
    /// cross-checked against the window).
    pub head: Digest,
    /// Which shard of a sharded evidence plane this window was cut from.
    /// `None` for single-log submissions (and for the meta shard, whose
    /// super-epoch records are checked directly). Super-epoch anchors only
    /// constrain the shard they name, so corroboration via
    /// [`Adjudicator::verify_window_with_super_anchors`] needs this tag.
    pub shard: Option<u32>,
}

impl WindowSubmission {
    /// Builds a submission directly from a live log: `range` is clamped,
    /// and the head claim is attached automatically when the window
    /// reaches the log's tail.
    pub fn from_log(submitter: impl Into<OrgId>, log: &dyn EvidenceLog, range: Range<u64>) -> Self {
        let records = log.snapshot_range(range.start..range.end);
        // Read order matters under concurrent appenders: head before len.
        // If an append lands anywhere in between, len() comes back larger
        // than the snapshot and the head claim is dropped — the claim is
        // only ever attached when head provably hashes the window's tail
        // (len is monotonic, so a head newer than the snapshot implies a
        // larger len).
        let head = log.head();
        let reaches_tail = records.last().map(|r| r.seq + 1) == Some(log.len());
        Self {
            submitter: submitter.into(),
            records,
            head: if reaches_tail { head } else { Digest::ZERO },
            shard: None,
        }
    }

    /// Builds a submission from one shard of a sharded evidence plane,
    /// tagged with the shard index so super-epoch anchors naming that
    /// shard can corroborate it.
    ///
    /// # Panics
    ///
    /// If `shard` is out of range for `log`.
    pub fn from_shard(
        submitter: impl Into<OrgId>,
        log: &ShardedEvidenceLog,
        shard: u32,
        range: Range<u64>,
    ) -> Self {
        let mut submission = Self::from_log(submitter, &**log.shard(shard), range);
        submission.shard = Some(shard);
        submission
    }
}

/// A token assertion established by the adjudication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// What was attested.
    pub kind: TokenKind,
    /// Who signed (and therefore cannot deny) it.
    pub issuer: OrgId,
    /// Digest of the subject matter.
    pub subject: Digest,
    /// The protocol run.
    pub run_id: RunId,
    /// Which submitters' logs prove this fact.
    pub held_by: Vec<OrgId>,
}

/// The outcome of an adjudication over one protocol run.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The run adjudicated.
    pub run_id: RunId,
    /// Per-submission verification reports.
    pub reports: Vec<LogReport>,
    /// Established, undeniable facts.
    pub facts: Vec<Fact>,
}

impl Verdict {
    /// `true` if some verified token of `kind` was issued by `issuer` —
    /// i.e. `issuer` cannot deny the corresponding action.
    pub fn cannot_deny(&self, issuer: &OrgId, kind: TokenKind) -> bool {
        self.facts
            .iter()
            .any(|f| f.issuer == *issuer && f.kind == kind)
    }

    /// Submitters whose logs failed verification (tampering or forgery).
    pub fn suspect_submitters(&self) -> Vec<OrgId> {
        self.reports
            .iter()
            .filter(|r| !r.clean())
            .map(|r| r.submitter.clone())
            .collect()
    }

    /// Chain and anchor violations established against submitters, in
    /// submission order.
    pub fn violations(&self) -> Vec<(OrgId, ChainViolation)> {
        let mut out = Vec::new();
        for report in &self.reports {
            if let Err(v) = &report.chain {
                out.push((report.submitter.clone(), v.clone()));
            }
            if let Some(v) = &report.anchor_violation {
                out.push((report.submitter.clone(), v.clone()));
            }
        }
        out
    }

    /// Issuers proven to have both resolved *and* aborted this run.
    ///
    /// An honest offline TTP's escrow ledger refuses to issue a `Resolve`
    /// after an `Abort` (and vice versa), so verified tokens of both kinds
    /// from one issuer for one run prove the TTP equivocated — told the
    /// two exchange parties contradictory outcomes.
    pub fn conflicting_decisions(&self) -> Vec<OrgId> {
        let resolved: BTreeSet<&OrgId> = self
            .facts
            .iter()
            .filter(|f| f.kind == TokenKind::Resolve)
            .map(|f| &f.issuer)
            .collect();
        let mut out: Vec<OrgId> = self
            .facts
            .iter()
            .filter(|f| f.kind == TokenKind::Abort && resolved.contains(&f.issuer))
            .map(|f| f.issuer.clone())
            .collect();
        out.dedup();
        out
    }

    /// Parties convicted of defection by the trusted `ttp`'s dispute
    /// decision for this run.
    ///
    /// A fair-offline resolve mints a [`TokenKind::Decision`] whose
    /// subject is the domain-separated
    /// [`nonrep_protocols::tokens::defection_digest`] of the accused and
    /// the run, so the conviction is checkable from the sealed evidence
    /// alone: any organisation known to this adjudication whose
    /// recomputed digest matches a verified decision issued by `ttp` is
    /// the named defector. Candidates are every organisation the verdict
    /// saw — submitters, but also token issuers and fact holders — so a
    /// real defector that declines to submit its own log is still
    /// attributed through the tokens it issued into its counterparties'
    /// logs. Decisions issued by anyone else are ignored — only the
    /// agreed TTP can convict.
    pub fn convicted_defectors(&self, ttp: &OrgId) -> Vec<OrgId> {
        let decisions: Vec<&Fact> = self
            .facts
            .iter()
            .filter(|f| f.kind == TokenKind::Decision && f.issuer == *ttp)
            .collect();
        if decisions.is_empty() {
            return Vec::new();
        }
        let mut candidates: BTreeSet<&OrgId> = BTreeSet::new();
        for report in &self.reports {
            candidates.insert(&report.submitter);
        }
        for fact in &self.facts {
            candidates.insert(&fact.issuer);
            candidates.extend(fact.held_by.iter());
        }
        candidates
            .into_iter()
            .filter(|candidate| {
                let digest = defection_digest(candidate, self.run_id);
                decisions.iter().any(|f| f.subject == digest)
            })
            .cloned()
            .collect()
    }

    /// Submitters proven *by their own submission* to have collected the
    /// counterparty's receipt and still aborted the run at the TTP.
    ///
    /// The fair-offline abort sub-protocol exists for runs whose step-3
    /// receipt never arrived. A server that absorbs the client's
    /// `NRR_resp` and then wins an abort race against the client's
    /// resolve keeps both items — the one unfair interleaving an offline
    /// TTP cannot prevent. It cannot, however, *use* the receipt without
    /// self-incrimination: its evidence log then carries a peer-issued
    /// [`TokenKind::NrrResp`] alongside the `ttp`'s [`TokenKind::Abort`]
    /// token for the same run, and this rule convicts exactly that
    /// combination. An honest server is never caught by it — once it
    /// aborts, it refuses late receipts — and because only an
    /// organisation's own submission can convict it, counterparties
    /// cannot frame it by planting tokens in theirs.
    pub fn abort_after_receipt(&self, ttp: &OrgId) -> Vec<OrgId> {
        let mut out = Vec::new();
        for report in &self.reports {
            let relevant = |t: &NrToken| t.run_id == self.run_id;
            let holds_peer_receipt = report.tokens.iter().any(|(t, ok)| {
                *ok && relevant(t) && t.kind == TokenKind::NrrResp && t.issuer != report.submitter
            });
            let holds_abort = report.tokens.iter().any(|(t, ok)| {
                *ok && relevant(t) && t.kind == TokenKind::Abort && t.issuer == *ttp
            });
            if holds_peer_receipt && holds_abort && !out.contains(&report.submitter) {
                out.push(report.submitter.clone());
            }
        }
        out
    }

    /// Parties attributed as having *stalled* a timeout-aborted run:
    /// they provably started it (a verified [`TokenKind::NroReq`] they
    /// issued) yet never produced the step-3 receipt, and the `ttp`
    /// aborted the run.
    ///
    /// This is the adjudicator's view of the supervisor's escalation
    /// ladder: a client that goes silent after the response window
    /// opens leaves exactly this shape behind — its own `NRO_req`, the
    /// server's absorbed evidence, a TTP [`TokenKind::Abort`], and no
    /// [`TokenKind::NrrResp`] under its signature anywhere. Attribution,
    /// not conviction: timeouts cannot distinguish a crashed party from
    /// a malicious one (nor from one behind a partition), so the result
    /// names who *owes* the missing receipt — grounds to stop serving
    /// them, not to punish them. Safety never rested on the receipt
    /// arriving; the abort already restored fairness.
    pub fn stalled_parties(&self, ttp: &OrgId) -> Vec<OrgId> {
        let aborted = self
            .facts
            .iter()
            .any(|f| f.kind == TokenKind::Abort && f.issuer == *ttp);
        if !aborted {
            return Vec::new();
        }
        let receipted: BTreeSet<&OrgId> = self
            .facts
            .iter()
            .filter(|f| f.kind == TokenKind::NrrResp)
            .map(|f| &f.issuer)
            .collect();
        let mut out: Vec<OrgId> = self
            .facts
            .iter()
            .filter(|f| f.kind == TokenKind::NroReq && !receipted.contains(&f.issuer))
            .map(|f| f.issuer.clone())
            .collect();
        out.dedup();
        out
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verdict for run {}", self.run_id)?;
        for fact in &self.facts {
            writeln!(
                f,
                "  established: {} issued {} (held by {:?})",
                fact.issuer,
                fact.kind,
                fact.held_by.iter().map(OrgId::as_str).collect::<Vec<_>>()
            )?;
        }
        for suspect in self.suspect_submitters() {
            writeln!(f, "  suspect submission from {suspect}")?;
        }
        Ok(())
    }
}

/// The dispute-resolution service.
pub struct Adjudicator {
    directory: Arc<dyn KeyDirectory>,
}

impl fmt::Debug for Adjudicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Adjudicator")
    }
}

impl Adjudicator {
    /// Creates an adjudicator trusting `directory` for key resolution.
    pub fn new(directory: Arc<dyn KeyDirectory>) -> Self {
        Self { directory }
    }

    /// Verifies one submitted log in isolation (full-log submission:
    /// chain anchored at genesis).
    pub fn verify_log(&self, submitter: OrgId, records: &[Arc<EvidenceRecord>]) -> LogReport {
        let mut builder = ReportBuilder::new(submitter, &*self.directory);
        for record in records {
            builder.check(record);
        }
        builder.finish()
    }

    /// Verifies a windowed submission: the chain is anchored at the
    /// window's first record (genesis rules still apply when the window
    /// starts at sequence 0), in-window epoch commitments are checked
    /// over the records they cover, and — when a head is claimed — the
    /// window's tail must hash to it.
    pub fn verify_window(&self, submission: &WindowSubmission) -> LogReport {
        let mut builder = ReportBuilder::for_window(
            submission.submitter.clone(),
            &*self.directory,
            submission.records.first().map(|r| (r.seq, r.prev_hash)),
        );
        for record in &submission.records {
            builder.check(record);
        }
        builder.check_head_claim(&submission.head);
        builder.finish()
    }

    /// Verifies a live log in place, reading it in bounded windows via
    /// [`EvidenceLog::for_each_window`] — peak memory stays one window
    /// (never a whole-log clone), and the log's internal lock is *not*
    /// held while token signatures are cryptographically verified, so
    /// concurrent appenders are not stalled behind an audit.
    pub fn verify_log_in_place(&self, submitter: OrgId, log: &dyn EvidenceLog) -> LogReport {
        let mut builder = ReportBuilder::new(submitter, &*self.directory);
        log.for_each_window(256, &mut |window| {
            for record in window {
                builder.check(record);
            }
            true
        });
        builder.finish()
    }

    /// Adjudicates `run_id` over the submitted logs.
    ///
    /// Facts are established only from tokens that verify
    /// cryptographically; an unverifiable (forged) token contributes
    /// nothing except suspicion against its submitter.
    pub fn adjudicate(
        &self,
        run_id: RunId,
        submissions: &[(OrgId, Vec<Arc<EvidenceRecord>>)],
    ) -> Verdict {
        let reports = submissions
            .iter()
            .map(|(submitter, records)| self.verify_log(submitter.clone(), records))
            .collect();
        verdict_from_reports(run_id, reports)
    }

    /// Adjudicates `run_id` over windowed submissions — the scalable
    /// submission path: each party sends a `snapshot_range` window plus
    /// its chain head and the epoch commitments (batch proofs) sealed
    /// inside it, instead of a clone of its full log.
    pub fn adjudicate_windows(&self, run_id: RunId, submissions: &[WindowSubmission]) -> Verdict {
        let reports = submissions.iter().map(|s| self.verify_window(s)).collect();
        verdict_from_reports(run_id, reports)
    }

    /// [`Adjudicator::verify_window`] plus corroboration against epoch
    /// `anchors` previously gossiped by the submitter to counterparties
    /// (see `ReportBuilder::check_anchors` rules: forked histories and
    /// withheld evidence become [`ChainViolation`]s on the report).
    pub fn verify_window_with_anchors(
        &self,
        submission: &WindowSubmission,
        anchors: &[EpochCommitment],
    ) -> LogReport {
        let mut builder = ReportBuilder::for_window(
            submission.submitter.clone(),
            &*self.directory,
            submission.records.first().map(|r| (r.seq, r.prev_hash)),
        );
        for record in &submission.records {
            builder.check(record);
        }
        builder.check_head_claim(&submission.head);
        builder.check_anchors(anchors, submission.head != Digest::ZERO);
        builder.finish()
    }

    /// Adjudicates `run_id` over windowed submissions with cross-submitter
    /// anchor corroboration: `anchors[org]` holds the epoch commitments
    /// that counterparties collected *from* `org` over the bus while the
    /// evidence was being produced. A submitter whose submission conflicts
    /// with its own gossiped anchors is established as having forked or
    /// truncated its history ([`Verdict::violations`]).
    pub fn adjudicate_with_anchors(
        &self,
        run_id: RunId,
        submissions: &[WindowSubmission],
        anchors: &BTreeMap<OrgId, Vec<EpochCommitment>>,
    ) -> Verdict {
        static NO_ANCHORS: &[EpochCommitment] = &[];
        let reports = submissions
            .iter()
            .map(|s| {
                let theirs = anchors.get(&s.submitter).map_or(NO_ANCHORS, Vec::as_slice);
                self.verify_window_with_anchors(s, theirs)
            })
            .collect();
        verdict_from_reports(run_id, reports)
    }

    /// [`Adjudicator::verify_window`] plus corroboration against
    /// super-epoch anchors (`supers`) previously gossiped by the
    /// submitter from its sharded evidence plane. The submission must be
    /// shard-tagged ([`WindowSubmission::from_shard`]); each verified
    /// super-epoch contributes the shard anchor naming that shard, and
    /// the fork / withheld-records rules of
    /// [`Adjudicator::verify_window_with_anchors`] apply unchanged.
    pub fn verify_window_with_super_anchors(
        &self,
        submission: &WindowSubmission,
        supers: &[SuperEpochCommitment],
    ) -> LogReport {
        let mut builder = ReportBuilder::for_window(
            submission.submitter.clone(),
            &*self.directory,
            submission.records.first().map(|r| (r.seq, r.prev_hash)),
        );
        for record in &submission.records {
            builder.check(record);
        }
        builder.check_head_claim(&submission.head);
        builder.check_super_anchors(supers, submission.shard, submission.head != Digest::ZERO);
        builder.finish()
    }

    /// Adjudicates `run_id` over shard-tagged windowed submissions with
    /// super-epoch corroboration: `supers[org]` holds the
    /// [`SuperEpochCommitment`]s counterparties collected *from* `org`
    /// over the bus. The windowed adjudication path consumes super-epochs
    /// exactly like [`EpochCommitment`] anchors — a submitter whose shard
    /// window conflicts with the shard anchors inside its own gossiped
    /// super-epochs is established as having forked or truncated that
    /// shard's history ([`Verdict::violations`]).
    pub fn adjudicate_sharded(
        &self,
        run_id: RunId,
        submissions: &[WindowSubmission],
        supers: &BTreeMap<OrgId, Vec<SuperEpochCommitment>>,
    ) -> Verdict {
        static NO_SUPERS: &[SuperEpochCommitment] = &[];
        let reports = submissions
            .iter()
            .map(|s| {
                let theirs = supers.get(&s.submitter).map_or(NO_SUPERS, Vec::as_slice);
                self.verify_window_with_super_anchors(s, theirs)
            })
            .collect();
        verdict_from_reports(run_id, reports)
    }

    /// Adjudicates a mixed fleet: each shard-tagged submission is
    /// corroborated against the super-epoch `supers` its submitter
    /// gossiped, each untagged one against the plain epoch `anchors` —
    /// one verdict over organisations running single-log and sharded
    /// evidence planes side by side.
    pub fn adjudicate_gossiped(
        &self,
        run_id: RunId,
        submissions: &[WindowSubmission],
        anchors: &BTreeMap<OrgId, Vec<EpochCommitment>>,
        supers: &BTreeMap<OrgId, Vec<SuperEpochCommitment>>,
    ) -> Verdict {
        static NO_ANCHORS: &[EpochCommitment] = &[];
        static NO_SUPERS: &[SuperEpochCommitment] = &[];
        let reports = submissions
            .iter()
            .map(|s| {
                if s.shard.is_some() {
                    let theirs = supers.get(&s.submitter).map_or(NO_SUPERS, Vec::as_slice);
                    self.verify_window_with_super_anchors(s, theirs)
                } else {
                    let theirs = anchors.get(&s.submitter).map_or(NO_ANCHORS, Vec::as_slice);
                    self.verify_window_with_anchors(s, theirs)
                }
            })
            .collect();
        verdict_from_reports(run_id, reports)
    }

    /// Adjudicates `run_id` directly over live evidence logs, verifying
    /// each chain and decoding tokens in place instead of snapshotting
    /// whole logs first. This is the hot path for audit/dispute queries
    /// within one process (trust-domain adjudication, monitoring).
    pub fn adjudicate_logs(
        &self,
        run_id: RunId,
        submissions: &[(OrgId, &dyn EvidenceLog)],
    ) -> Verdict {
        let reports = submissions
            .iter()
            .map(|(submitter, log)| self.verify_log_in_place(submitter.clone(), *log))
            .collect();
        verdict_from_reports(run_id, reports)
    }
}

/// Incremental [`LogReport`] construction shared by the slice-based,
/// windowed and visitor-based verification paths.
struct ReportBuilder<'a> {
    submitter: OrgId,
    directory: &'a dyn KeyDirectory,
    chain: ChainVerifier,
    tokens: Vec<(NrToken, bool)>,
    undecodable: usize,
    /// First sequence number fed in (window offset for epoch ranges).
    first_seq: Option<u64>,
    /// Running record hashes, reused for epoch-root recomputation (32
    /// bytes per record — never a clone of the records themselves).
    hashes: Vec<Digest>,
    epoch_commits: usize,
    epoch_verified: usize,
    head_violation: Option<ChainViolation>,
    context_mismatches: usize,
    anchor_violation: Option<ChainViolation>,
    rollovers: usize,
    rollovers_verified: usize,
}

impl<'a> ReportBuilder<'a> {
    fn new(submitter: OrgId, directory: &'a dyn KeyDirectory) -> Self {
        Self {
            submitter,
            directory,
            chain: ChainVerifier::new(),
            tokens: Vec::new(),
            undecodable: 0,
            first_seq: None,
            hashes: Vec::new(),
            epoch_commits: 0,
            epoch_verified: 0,
            head_violation: None,
            context_mismatches: 0,
            anchor_violation: None,
            rollovers: 0,
            rollovers_verified: 0,
        }
    }

    /// Builder for a windowed submission anchored at `anchor` (first
    /// record's sequence number and claimed predecessor hash). A window
    /// starting at sequence 0 keeps the genesis rule.
    fn for_window(
        submitter: OrgId,
        directory: &'a dyn KeyDirectory,
        anchor: Option<(u64, Digest)>,
    ) -> Self {
        let mut builder = Self::new(submitter, directory);
        if let Some((seq, prev_hash)) = anchor {
            if seq > 0 {
                builder.chain = ChainVerifier::resume(seq, prev_hash);
            }
        }
        builder
    }

    fn check(&mut self, record: &EvidenceRecord) {
        self.first_seq.get_or_insert(record.seq);
        let chain_was_ok = !self.chain.violated();
        self.chain.check(record);
        // The chain verifier's running head doubles as this record's hash
        // while the chain holds; once broken, fall back to hashing the
        // record directly so epoch checks still see true content hashes.
        let hash = if chain_was_ok && !self.chain.violated() {
            self.chain.head()
        } else {
            record.record_hash()
        };
        self.hashes.push(hash);

        if record.is_epoch_commit() {
            self.epoch_commits += 1;
            match EpochCommitment::from_record(record) {
                Some(commitment) => self.check_epoch(&commitment),
                None => self.undecodable += 1,
            }
            return;
        }
        if record.is_super_epoch_commit() {
            // A super-epoch is self-contained: its merkle-of-merkles root
            // and batch signature verify from the record alone, so a
            // doctored shard root inside it fails here even though the
            // shard histories it anchors live outside this submission.
            self.epoch_commits += 1;
            match SuperEpochCommitment::from_record(record) {
                Some(commitment) => {
                    let ok = self
                        .directory
                        .key_of(&self.submitter)
                        .map(|key| commitment.verify(&key))
                        .unwrap_or(false);
                    if ok {
                        self.epoch_verified += 1;
                    }
                }
                None => self.undecodable += 1,
            }
            return;
        }
        if record.is_key_rollover() {
            // A rollover record attests a hierarchical signer's
            // generation change: its subtree certificate must chain to
            // the submitter's registered root key. A forged cert — an
            // attacker grafting its own subtree into someone else's
            // lifecycle — fails here even though the hash chain around
            // the record is intact.
            self.rollovers += 1;
            match KeyRollover::from_record(record) {
                Some(roll) => {
                    let ok = self
                        .directory
                        .key_of(&self.submitter)
                        .map(|key| roll.verify(&key))
                        .unwrap_or(false);
                    if ok {
                        self.rollovers_verified += 1;
                    }
                }
                None => self.undecodable += 1,
            }
            return;
        }
        if record.is_run_marker() {
            // Progress bookkeeping for crash recovery: the submitter's
            // private claim about its own run state, carried inside the
            // tamper-evident chain but attesting nothing about the peer.
            // Decodable markers are neutral; an undecodable one is an
            // edited record like any other.
            if RunMarker::from_record(record).is_none() {
                self.undecodable += 1;
            }
            return;
        }
        match NrToken::decode_from_slice(&record.draft.payload) {
            Ok(token) => {
                let ok = self
                    .directory
                    .key_of(&token.issuer)
                    .map(|key| token.verify(&key, None, None, None))
                    .unwrap_or(false);
                // The middleware stores every token under the token's own
                // context (`Party::store_token` copies run id, kind label,
                // issuer and subject into the draft), so any disagreement
                // here proves a hand-crafted record — e.g. a genuine token
                // from run A replayed into run B's history.
                if token.run_id != record.draft.run_id
                    || token.kind.label() != record.draft.kind
                    || token.issuer != record.draft.actor
                    || token.subject != record.draft.content_digest
                {
                    self.context_mismatches += 1;
                }
                self.tokens.push((token, ok));
            }
            Err(_) => self.undecodable += 1,
        }
    }

    /// Verifies one epoch commitment. When `[lo, hi]` lies inside the
    /// submission the root is recomputed over the covered record hashes;
    /// a range reaching outside the window can only have its signature
    /// checked (the window's own integrity still rests on the chain and
    /// the in-window commitments).
    fn check_epoch(&mut self, commitment: &EpochCommitment) {
        let Some(key) = self.directory.key_of(&self.submitter) else {
            return; // unknown submitter key: commitment stays unverified
        };
        let first = self.first_seq.unwrap_or(0);
        let in_window = commitment.lo >= first
            && commitment.hi >= commitment.lo
            && commitment.hi - first + 1 < self.hashes.len() as u64;
        let ok = if in_window {
            let lo = (commitment.lo - first) as usize;
            let hi = (commitment.hi - first) as usize;
            commitment.verify_hashes(&key, &self.hashes[lo..=hi])
        } else {
            key.verify_digest(
                &EpochCommitment::signing_digest(commitment.lo, commitment.hi, &commitment.root),
                &commitment.signature,
            )
        };
        if ok {
            self.epoch_verified += 1;
        }
    }

    /// Corroborates the submission against epoch anchors the submitter
    /// gossiped to counterparties while the evidence was being produced.
    ///
    /// Only anchors whose signature verifies under the submitter's own key
    /// count — a counterparty cannot frame an honest submitter by
    /// presenting anchors the submitter never signed. For each verified
    /// anchor:
    ///
    /// - a covered range lying inside the submission must recompute to the
    ///   anchored root, else the submitter forked its history
    ///   ([`ChainViolation::ForkedHistory`]);
    /// - two verified anchors over the same range with different roots are
    ///   themselves proof of a fork (the submitter told two counterparties
    ///   two different histories);
    /// - when the submission claims to reach the log's tail
    ///   (`claims_tail`), an anchor attesting records beyond that tail
    ///   proves evidence was withheld
    ///   ([`ChainViolation::WithheldRecords`]). Partial windows claim
    ///   nothing about the tail and are never flagged.
    fn check_anchors(&mut self, anchors: &[EpochCommitment], claims_tail: bool) {
        let Some(key) = self.directory.key_of(&self.submitter) else {
            return; // unknown submitter key: anchors cannot be attributed
        };
        let verified: Vec<(u64, u64, Digest)> = anchors
            .iter()
            .filter(|a| a.hi >= a.lo)
            .filter(|a| {
                key.verify_digest(
                    &EpochCommitment::signing_digest(a.lo, a.hi, &a.root),
                    &a.signature,
                )
            })
            .map(|a| (a.lo, a.hi, a.root))
            .collect();
        self.corroborate_ranges(&verified, claims_tail);
    }

    /// Corroborates the submission against super-epoch anchors the
    /// submitter gossiped from a sharded evidence plane.
    ///
    /// Only whole super-epochs that verify under the submitter's key
    /// count (structure, merkle-of-merkles root and batch signature — see
    /// [`SuperEpochCommitment::verify`]), and each contributes only the
    /// [`nonrep_store::ShardAnchor`] naming the submission's shard: a
    /// super-epoch says nothing about shards it does not anchor, and a
    /// submission not cut from a shard (`shard == None`) cannot be
    /// corroborated this way at all. The fork / withheld-records rules
    /// are then identical to [`ReportBuilder::check_anchors`].
    fn check_super_anchors(
        &mut self,
        supers: &[SuperEpochCommitment],
        shard: Option<u32>,
        claims_tail: bool,
    ) {
        let Some(shard) = shard else {
            return; // untagged window: no shard for the anchors to name
        };
        let Some(key) = self.directory.key_of(&self.submitter) else {
            return; // unknown submitter key: anchors cannot be attributed
        };
        let verified: Vec<(u64, u64, Digest)> = supers
            .iter()
            .filter(|s| s.verify(&key))
            .filter_map(|s| s.anchor_for(shard))
            .filter(|a| a.hi >= a.lo)
            .map(|a| (a.lo, a.hi, a.root))
            .collect();
        self.corroborate_ranges(&verified, claims_tail);
    }

    /// The shared fork / withheld-records logic over already-attributed
    /// anchor ranges `(lo, hi, root)`:
    ///
    /// - a covered range lying inside the submission must recompute to the
    ///   anchored root, else the submitter forked its history;
    /// - two anchors over the same range with different roots are
    ///   themselves proof of a fork;
    /// - when the submission claims the log's tail, an anchor attesting
    ///   records beyond it proves evidence was withheld.
    fn corroborate_ranges(&mut self, verified: &[(u64, u64, Digest)], claims_tail: bool) {
        for (i, a) in verified.iter().enumerate() {
            if verified[i + 1..]
                .iter()
                .any(|b| a.0 == b.0 && a.1 == b.1 && a.2 != b.2)
            {
                self.anchor_violation
                    .get_or_insert(ChainViolation::ForkedHistory { lo: a.0, hi: a.1 });
            }
        }
        let first = self.first_seq.unwrap_or(0);
        let last = first + (self.hashes.len() as u64).saturating_sub(1);
        for (lo, hi, root) in verified {
            if !self.hashes.is_empty() && *lo >= first && *hi <= last {
                let lo_i = (lo - first) as usize;
                let hi_i = (hi - first) as usize;
                if EpochCommitment::root_over_hashes(&self.hashes[lo_i..=hi_i]) != *root {
                    self.anchor_violation
                        .get_or_insert(ChainViolation::ForkedHistory { lo: *lo, hi: *hi });
                }
            }
            if claims_tail && *hi > last {
                self.anchor_violation
                    .get_or_insert(ChainViolation::WithheldRecords {
                        attested: *hi,
                        submitted: if self.hashes.is_empty() { 0 } else { last },
                    });
            }
        }
    }

    /// Cross-checks a claimed chain head against the last record fed in
    /// ([`Digest::ZERO`] claims nothing).
    fn check_head_claim(&mut self, head: &Digest) {
        if *head == Digest::ZERO {
            return;
        }
        if let Some(last) = self.hashes.last() {
            if last != head && !self.chain.violated() {
                let seq = self.first_seq.unwrap_or(0) + self.hashes.len() as u64 - 1;
                self.head_violation = Some(ChainViolation::HeadMismatch { seq });
            }
        }
    }

    fn finish(self) -> LogReport {
        let chain = match self.chain.finish() {
            Ok(()) => match self.head_violation {
                Some(v) => Err(v),
                None => Ok(()),
            },
            Err(v) => Err(v),
        };
        LogReport {
            submitter: self.submitter,
            chain,
            tokens: self.tokens,
            undecodable: self.undecodable,
            epoch_commits: self.epoch_commits,
            epoch_verified: self.epoch_verified,
            context_mismatches: self.context_mismatches,
            anchor_violation: self.anchor_violation,
            rollovers: self.rollovers,
            rollovers_verified: self.rollovers_verified,
        }
    }
}

/// Merges verified per-log reports into the final [`Verdict`].
fn verdict_from_reports(run_id: RunId, reports: Vec<LogReport>) -> Verdict {
    // (kind-tag, issuer, subject) → holders.
    let mut facts: BTreeMap<(String, OrgId, Digest), Fact> = BTreeMap::new();
    for report in &reports {
        for (token, ok) in &report.tokens {
            if !*ok || token.run_id != run_id {
                continue;
            }
            let key = (
                token.kind.label().to_string(),
                token.issuer.clone(),
                token.subject,
            );
            let entry = facts.entry(key).or_insert_with(|| Fact {
                kind: token.kind,
                issuer: token.issuer.clone(),
                subject: token.subject,
                run_id,
                held_by: Vec::new(),
            });
            if !entry.held_by.contains(&report.submitter) {
                entry.held_by.push(report.submitter.clone());
            }
        }
    }
    Verdict {
        run_id,
        reports,
        facts: facts.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonrep_crypto::digest::sha256;
    use nonrep_protocols::party::{Party, StaticKeyDirectory};
    use nonrep_types::time::LogicalClock;

    struct Pair {
        alice: Arc<Party>,
        bob: Arc<Party>,
        dir: Arc<StaticKeyDirectory>,
    }

    fn pair() -> Pair {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        Pair {
            alice: Party::quick("alice", 1, &clock, &dir),
            bob: Party::quick("bob", 2, &clock, &dir),
            dir,
        }
    }

    fn run_exchange(p: &Pair) -> RunId {
        // Alice issues NRO, Bob verifies+stores; Bob issues NRR, Alice
        // verifies+stores — a miniature exchange.
        let run = p.alice.new_run_id();
        let subject = sha256(b"request");
        let nro = p
            .alice
            .issue_token(TokenKind::NroReq, run, subject)
            .unwrap();
        p.alice.store_token(&nro).unwrap();
        p.bob
            .verify_and_store(&nro, TokenKind::NroReq, run, Some(&subject))
            .unwrap();
        let nrr = p.bob.issue_token(TokenKind::NrrReq, run, subject).unwrap();
        p.bob.store_token(&nrr).unwrap();
        p.alice
            .verify_and_store(&nrr, TokenKind::NrrReq, run, Some(&subject))
            .unwrap();
        run
    }

    #[test]
    fn honest_logs_establish_mutual_facts() {
        let p = pair();
        let run = run_exchange(&p);
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict = adjudicator.adjudicate_logs(
            run,
            &[
                (OrgId::new("alice"), &**p.alice.log()),
                (OrgId::new("bob"), &**p.bob.log()),
            ],
        );
        // Neither party can deny their token.
        assert!(verdict.cannot_deny(&OrgId::new("alice"), TokenKind::NroReq));
        assert!(verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
        assert!(verdict.suspect_submitters().is_empty());
        // Both facts are held by both parties.
        for fact in &verdict.facts {
            assert_eq!(fact.held_by.len(), 2, "{fact:?}");
        }
        assert!(verdict.to_string().contains("established"));
    }

    #[test]
    fn denial_defeated_by_counterparty_log() {
        // Bob "loses" his log (submits nothing) and denies having received
        // the request. Alice's log alone proves Bob's NRR_req.
        let p = pair();
        let run = run_exchange(&p);
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict = adjudicator.adjudicate_logs(run, &[(OrgId::new("alice"), &**p.alice.log())]);
        assert!(verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
    }

    #[test]
    fn tampered_log_is_flagged() {
        let p = pair();
        let run = run_exchange(&p);
        let mut records = p.alice.log().records();
        Arc::make_mut(&mut records[0]).draft.kind = "doctored".into();
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict = adjudicator.adjudicate(run, &[(OrgId::new("alice"), records)]);
        assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);
    }

    #[test]
    fn forged_token_contributes_no_fact() {
        let p = pair();
        let run = p.alice.new_run_id();
        // Alice fabricates a token claiming bob signed a receipt: she can
        // only sign with her own key, so issuer=bob + alice's signature.
        let mut forged = p
            .alice
            .issue_token(TokenKind::NrrReq, run, sha256(b"x"))
            .unwrap();
        forged.issuer = OrgId::new("bob");
        p.alice.store_token(&forged).unwrap();
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate(run, &[(OrgId::new("alice"), p.alice.log().records())]);
        assert!(!verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
        // Alice's submission contains an unverifiable token → suspect.
        assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);
    }

    #[test]
    fn facts_are_scoped_to_the_run() {
        let p = pair();
        let run1 = run_exchange(&p);
        let run2 = run_exchange(&p);
        assert_ne!(run1, run2);
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate(run1, &[(OrgId::new("alice"), p.alice.log().records())]);
        assert!(verdict.facts.iter().all(|f| f.run_id == run1));
    }

    #[test]
    fn replayed_token_is_flagged_and_contributes_no_cross_run_fact() {
        use nonrep_store::record::RecordDraft;
        use nonrep_types::codec::Encode;
        let p = pair();
        let run1 = p.alice.new_run_id();
        let run2 = p.alice.new_run_id();
        let token = p
            .alice
            .issue_token(TokenKind::NroReq, run1, sha256(b"req"))
            .unwrap();
        p.alice.store_token(&token).unwrap();
        // Bob received the run-1 token honestly…
        p.bob
            .verify_and_store(&token, TokenKind::NroReq, run1, None)
            .unwrap();
        // …then replays it into run 2's history: a hand-crafted record
        // whose context says run 2 but whose payload is the run-1 token.
        p.bob
            .log()
            .append(RecordDraft {
                run_id: run2,
                kind: token.kind.label().to_string(),
                actor: token.issuer.clone(),
                at: p.bob.now(),
                content_digest: token.subject,
                payload: token.encode_to_vec(),
            })
            .unwrap();
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict = adjudicator.adjudicate(run2, &[(OrgId::new("bob"), p.bob.log().records())]);
        // The replay establishes nothing in run 2 (facts group by the
        // token's own run id)…
        assert!(verdict.facts.is_empty());
        // …and the context mismatch marks bob's submission as crafted.
        assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("bob")]);
        assert_eq!(verdict.reports[0].context_mismatches, 1);
    }

    #[test]
    fn withheld_evidence_detected_via_gossiped_anchors() {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let alice = Party::quick_batched("alice", 1, &clock, &dir, 2);
        let run = alice.new_run_id();
        for i in 0..4u8 {
            let t = alice
                .issue_token(TokenKind::NroReq, run, sha256(&[i]))
                .unwrap();
            alice.store_token(&t).unwrap();
        }
        alice.flush_evidence().unwrap();
        // Counterparties collected alice's sealed epoch anchors while the
        // evidence was produced.
        let anchors: Vec<EpochCommitment> = alice
            .log()
            .records()
            .iter()
            .filter_map(|r| EpochCommitment::from_record(r))
            .collect();
        assert!(anchors.len() >= 2);
        // Alice later submits a truncated "full log": a valid prefix with
        // an honestly-computed head over the truncated tail — undetectable
        // by chain verification alone.
        let records = alice.log().snapshot_range(0..2);
        let head = records.last().unwrap().record_hash();
        let submission = WindowSubmission {
            submitter: OrgId::new("alice"),
            records,
            head,
            shard: None,
        };
        let adjudicator = Adjudicator::new(dir.clone() as Arc<dyn KeyDirectory>);
        assert!(adjudicator.verify_window(&submission).clean());
        let report = adjudicator.verify_window_with_anchors(&submission, &anchors);
        assert!(matches!(
            report.anchor_violation,
            Some(ChainViolation::WithheldRecords { .. })
        ));
        assert!(!report.clean());
    }

    #[test]
    fn forked_history_detected_via_gossiped_anchors() {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let alice = Party::quick_batched("alice", 1, &clock, &dir, 2);
        let run = alice.new_run_id();
        for i in 0..2u8 {
            let t = alice
                .issue_token(TokenKind::NroReq, run, sha256(&[i]))
                .unwrap();
            alice.store_token(&t).unwrap();
        }
        alice.flush_evidence().unwrap();
        let real = alice
            .log()
            .records()
            .iter()
            .find_map(|r| EpochCommitment::from_record(r))
            .unwrap();
        // Alice told another counterparty a *different* history for the
        // same epoch: same range, different root, genuinely signed.
        let other_root = sha256(b"the history alice showed bob");
        let signature = alice
            .keys()
            .sign_digest(&EpochCommitment::signing_digest(
                real.lo,
                real.hi,
                &other_root,
            ))
            .unwrap();
        let forked = EpochCommitment {
            lo: real.lo,
            hi: real.hi,
            root: other_root,
            signature,
        };
        let submission = WindowSubmission::from_log("alice", &**alice.log(), 0..alice.log().len());
        let adjudicator = Adjudicator::new(dir.clone() as Arc<dyn KeyDirectory>);
        // The divergent anchor alone: its in-window root recomputation
        // conflicts with the submitted records.
        let report =
            adjudicator.verify_window_with_anchors(&submission, std::slice::from_ref(&forked));
        assert!(matches!(
            report.anchor_violation,
            Some(ChainViolation::ForkedHistory { .. })
        ));
        // Both anchors together: pairwise equivocation over one range.
        let report = adjudicator.verify_window_with_anchors(&submission, &[real.clone(), forked]);
        assert!(matches!(
            report.anchor_violation,
            Some(ChainViolation::ForkedHistory { .. })
        ));
        // The genuine anchor alone corroborates the submission.
        assert!(adjudicator
            .verify_window_with_anchors(&submission, &[real])
            .clean());
    }

    #[test]
    fn unattributable_anchors_cannot_frame_an_honest_submitter() {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let alice = Party::quick_batched("alice", 1, &clock, &dir, 2);
        let mallory = Party::quick("mallory", 66, &clock, &dir);
        let run = alice.new_run_id();
        for i in 0..2u8 {
            let t = alice
                .issue_token(TokenKind::NroReq, run, sha256(&[i]))
                .unwrap();
            alice.store_token(&t).unwrap();
        }
        alice.flush_evidence().unwrap();
        // Mallory fabricates an anchor accusing alice of withholding up to
        // seq 99 — but can only sign it with mallory's own key.
        let root = sha256(b"fabricated");
        let signature = mallory
            .keys()
            .sign_digest(&EpochCommitment::signing_digest(0, 99, &root))
            .unwrap();
        let fabricated = EpochCommitment {
            lo: 0,
            hi: 99,
            root,
            signature,
        };
        let submission = WindowSubmission::from_log("alice", &**alice.log(), 0..alice.log().len());
        let adjudicator = Adjudicator::new(dir.clone() as Arc<dyn KeyDirectory>);
        let report = adjudicator.verify_window_with_anchors(&submission, &[fabricated]);
        assert!(report.anchor_violation.is_none());
        assert!(report.clean());
    }

    fn sharded_alice(
        clock: &LogicalClock,
        dir: &Arc<StaticKeyDirectory>,
        path: &std::path::Path,
        shards: u32,
    ) -> Arc<Party> {
        let mut rng = nonrep_crypto::rng::SecureRandom::from_seed(41);
        let keys = Arc::new(nonrep_crypto::sig::KeyPair::generate(
            nonrep_crypto::sig::SignatureScheme::Mss { height: 8 },
            &mut rng,
        ));
        dir.insert(OrgId::new("alice"), keys.verifying_key());
        let log = Arc::new(
            ShardedEvidenceLog::open(path, shards, nonrep_store::SyncPolicy::PerEpoch).unwrap(),
        );
        Party::with_sharded_commitment(
            "alice",
            keys,
            Arc::new(clock.clone()),
            log,
            Arc::clone(dir) as Arc<dyn KeyDirectory>,
            rng,
            nonrep_protocols::CommitmentMode::batched(2),
        )
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let base = std::env::temp_dir().join(format!(
            "nonrep-dispute-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        base
    }

    #[test]
    fn doctored_shard_root_in_super_epoch_is_flagged() {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let base = scratch("doctored-super");
        let alice = sharded_alice(&clock, &dir, &base, 2);
        let run = alice.new_run_id();
        for i in 0..4u8 {
            let t = alice
                .issue_token(TokenKind::NroReq, run, sha256(&[i]))
                .unwrap();
            alice.store_token(&t).unwrap();
        }
        alice.flush_evidence().unwrap();
        let plane = alice.sharded_plane().unwrap();
        let (_, genuine) = plane.log().latest_super_epoch().unwrap();
        let adjudicator = Adjudicator::new(dir.clone() as Arc<dyn KeyDirectory>);

        // The meta shard with the genuine super-epoch adjudicates clean —
        // windowed adjudication consumes super-epochs like epoch commits.
        let meta =
            WindowSubmission::from_log("alice", &**plane.log().meta(), 0..plane.log().meta().len());
        assert_eq!(adjudicator.verify_window(&meta).epoch_commits, 1);
        assert!(adjudicator.verify_window(&meta).clean());

        // Alice rewrites shard 0's history and re-presents the super-epoch
        // with the rewritten shard root in a fresh, internally-consistent
        // meta log. The batch signature covers the merkle-of-merkles root,
        // so the doctored entry fails verification at adjudication.
        let mut doctored = genuine.clone();
        doctored.entries[0].root = sha256(b"rewritten shard history");
        let forged_meta = nonrep_store::MemoryLog::new();
        forged_meta
            .append(doctored.to_draft(OrgId::new("alice"), alice.now()))
            .unwrap();
        let report = adjudicator.verify_log_in_place(OrgId::new("alice"), &forged_meta);
        assert!(report.chain.is_ok(), "forgery is internally consistent");
        assert_eq!(report.epoch_commits, 1);
        assert_eq!(report.epoch_verified, 0);
        assert!(!report.clean());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn shard_truncation_detected_via_super_epoch_anchors() {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let base = scratch("shard-truncate");
        let alice = sharded_alice(&clock, &dir, &base, 2);
        let run = alice.new_run_id();
        for i in 0..4u8 {
            let t = alice
                .issue_token(TokenKind::NroReq, run, sha256(&[i]))
                .unwrap();
            alice.store_token(&t).unwrap();
        }
        alice.flush_evidence().unwrap();
        let plane = alice.sharded_plane().unwrap();
        let shard = plane.shard_for(&run);
        // Counterparties hold the super-epochs alice gossiped.
        let supers: Vec<SuperEpochCommitment> = plane
            .log()
            .meta()
            .records()
            .iter()
            .filter_map(|r| SuperEpochCommitment::from_record(r))
            .collect();
        assert_eq!(supers.len(), 1);
        let adjudicator = Adjudicator::new(dir.clone() as Arc<dyn KeyDirectory>);

        // The full shard window corroborates against the anchors.
        let shard_len = plane.log().shard(shard).len();
        let honest = WindowSubmission::from_shard("alice", plane.log(), shard, 0..shard_len);
        assert!(adjudicator
            .verify_window_with_super_anchors(&honest, &supers)
            .clean());

        // A truncated window with an honestly-computed head claim passes
        // every internal check, but the shard anchor inside alice's own
        // super-epoch attests records beyond the claimed tail.
        let records = plane.log().shard(shard).snapshot_range(0..1);
        let head = records.last().unwrap().record_hash();
        let truncated = WindowSubmission {
            submitter: OrgId::new("alice"),
            records,
            head,
            shard: Some(shard),
        };
        assert!(adjudicator.verify_window(&truncated).clean());
        let supers_by_org = BTreeMap::from([(OrgId::new("alice"), supers.clone())]);
        let verdict =
            adjudicator.adjudicate_sharded(run, std::slice::from_ref(&truncated), &supers_by_org);
        assert!(matches!(
            verdict.reports[0].anchor_violation,
            Some(ChainViolation::WithheldRecords { .. })
        ));
        assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);

        // An untagged window cannot be corroborated by shard anchors.
        let mut untagged = truncated;
        untagged.shard = None;
        let report = adjudicator.verify_window_with_super_anchors(&untagged, &supers);
        assert!(report.anchor_violation.is_none());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn resolve_plus_abort_facts_expose_ttp_equivocation() {
        let p = pair();
        let run = p.alice.new_run_id();
        // Alice (as an offline TTP) issues contradictory outcomes for one
        // exchange; the victims hold one token each and submit them.
        let resolve = p
            .alice
            .issue_token(TokenKind::Resolve, run, sha256(b"escrowed key"))
            .unwrap();
        let abort = p
            .alice
            .issue_token(TokenKind::Abort, run, sha256(b"abort"))
            .unwrap();
        p.bob
            .verify_and_store(&resolve, TokenKind::Resolve, run, None)
            .unwrap();
        p.bob
            .verify_and_store(&abort, TokenKind::Abort, run, None)
            .unwrap();
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict = adjudicator.adjudicate(run, &[(OrgId::new("bob"), p.bob.log().records())]);
        assert_eq!(verdict.conflicting_decisions(), vec![OrgId::new("alice")]);
        // Bob's submission itself is honest.
        assert!(verdict.suspect_submitters().is_empty());
    }

    struct Trio {
        client: Arc<Party>,
        server: Arc<Party>,
        ttp: Arc<Party>,
        dir: Arc<StaticKeyDirectory>,
    }

    fn trio() -> Trio {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        Trio {
            client: Party::quick("client", 1, &clock, &dir),
            server: Party::quick("server", 2, &clock, &dir),
            ttp: Party::quick("ttp", 3, &clock, &dir),
            dir,
        }
    }

    #[test]
    fn abort_after_receipt_convicts_the_racing_server() {
        // The fair-offline race: the server absorbs the client's step-3
        // receipt, then wins an abort race at the TTP. Its own log now
        // pairs the peer receipt with the TTP's abort token.
        let t = trio();
        let run = t.client.new_run_id();
        let digest = sha256(b"response");
        let receipt = t
            .client
            .issue_token(TokenKind::NrrResp, run, digest)
            .unwrap();
        t.client.store_token(&receipt).unwrap();
        t.server
            .verify_and_store(&receipt, TokenKind::NrrResp, run, Some(&digest))
            .unwrap();
        let abort = t
            .ttp
            .issue_token(TokenKind::Abort, run, Digest::ZERO)
            .unwrap();
        t.server
            .verify_and_store(&abort, TokenKind::Abort, run, None)
            .unwrap();

        let adjudicator = Adjudicator::new(t.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict = adjudicator.adjudicate(
            run,
            &[
                (OrgId::new("client"), t.client.log().records()),
                (OrgId::new("server"), t.server.log().records()),
            ],
        );
        // The server is convicted by its own submission; the client,
        // holding only its self-issued receipt, is not.
        assert_eq!(
            verdict.abort_after_receipt(&OrgId::new("ttp")),
            vec![OrgId::new("server")]
        );
        // Abort tokens from anyone but the agreed TTP convict nobody.
        assert!(verdict
            .abort_after_receipt(&OrgId::new("someone-else"))
            .is_empty());
        // Both submissions are internally honest — this is a conduct
        // conviction, not a tampering flag.
        assert!(verdict.suspect_submitters().is_empty());
    }

    #[test]
    fn stalled_parties_names_the_silent_client_of_a_timeout_abort() {
        // A client goes silent after the receipt window opens; the
        // server's supervisor aborts at the TTP. The adjudicator sees
        // the client's NRO_req (it provably started the run), the TTP's
        // abort, and no NRR_resp under the client's signature.
        let t = trio();
        let run = t.client.new_run_id();
        let nro = t
            .client
            .issue_token(TokenKind::NroReq, run, sha256(b"req"))
            .unwrap();
        t.server
            .verify_and_store(&nro, TokenKind::NroReq, run, None)
            .unwrap();
        let abort = t
            .ttp
            .issue_token(TokenKind::Abort, run, Digest::ZERO)
            .unwrap();
        t.server
            .verify_and_store(&abort, TokenKind::Abort, run, None)
            .unwrap();
        let adjudicator = Adjudicator::new(t.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate(run, &[(OrgId::new("server"), t.server.log().records())]);
        assert_eq!(
            verdict.stalled_parties(&OrgId::new("ttp")),
            vec![OrgId::new("client")]
        );
        // An abort from a non-agreed TTP attributes nobody.
        assert!(verdict
            .stalled_parties(&OrgId::new("someone-else"))
            .is_empty());
    }

    #[test]
    fn stalled_parties_spares_a_client_whose_receipt_exists() {
        // The abort race: the receipt DID arrive somewhere before the
        // abort won. Whatever else the verdict says (abort_after_receipt
        // convicts the server), the client is not the stalled party.
        let t = trio();
        let run = t.client.new_run_id();
        let nro = t
            .client
            .issue_token(TokenKind::NroReq, run, sha256(b"req"))
            .unwrap();
        t.server
            .verify_and_store(&nro, TokenKind::NroReq, run, None)
            .unwrap();
        let receipt = t
            .client
            .issue_token(TokenKind::NrrResp, run, sha256(b"response"))
            .unwrap();
        t.server
            .verify_and_store(&receipt, TokenKind::NrrResp, run, None)
            .unwrap();
        let abort = t
            .ttp
            .issue_token(TokenKind::Abort, run, Digest::ZERO)
            .unwrap();
        t.server
            .verify_and_store(&abort, TokenKind::Abort, run, None)
            .unwrap();
        let adjudicator = Adjudicator::new(t.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate(run, &[(OrgId::new("server"), t.server.log().records())]);
        assert!(verdict.stalled_parties(&OrgId::new("ttp")).is_empty());
        // ... and without any abort at all, nobody is stalled either.
        let no_abort = adjudicator.adjudicate(
            run,
            &[(OrgId::new("client"), {
                t.client.store_token(&nro).unwrap();
                t.client.log().records()
            })],
        );
        assert!(no_abort.stalled_parties(&OrgId::new("ttp")).is_empty());
    }

    #[test]
    fn fetched_receipt_without_abort_convicts_nobody() {
        // The legitimate mirror image: after a client resolve, the server
        // fetches the deposited receipt. Peer receipt, no abort — clean.
        let t = trio();
        let run = t.client.new_run_id();
        let receipt = t
            .client
            .issue_token(TokenKind::NrrResp, run, sha256(b"response"))
            .unwrap();
        t.server
            .verify_and_store(&receipt, TokenKind::NrrResp, run, None)
            .unwrap();
        let adjudicator = Adjudicator::new(t.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate(run, &[(OrgId::new("server"), t.server.log().records())]);
        assert!(verdict.abort_after_receipt(&OrgId::new("ttp")).is_empty());
    }

    #[test]
    fn absent_defector_is_attributed_via_counterparty_logs() {
        // A real defector does not submit its log. It is still named: the
        // tokens it issued into the client's log make it a known
        // organisation, and the TTP's decision digest matches it.
        let t = trio();
        let run = t.client.new_run_id();
        let nrr_req = t
            .server
            .issue_token(TokenKind::NrrReq, run, sha256(b"request"))
            .unwrap();
        t.client
            .verify_and_store(&nrr_req, TokenKind::NrrReq, run, None)
            .unwrap();
        let decision = t
            .ttp
            .issue_token(
                TokenKind::Decision,
                run,
                defection_digest(&OrgId::new("server"), run),
            )
            .unwrap();
        t.client
            .verify_and_store(&decision, TokenKind::Decision, run, None)
            .unwrap();

        let adjudicator = Adjudicator::new(t.dir.clone() as Arc<dyn KeyDirectory>);
        // Only the client submits — the defector stays silent.
        let verdict =
            adjudicator.adjudicate(run, &[(OrgId::new("client"), t.client.log().records())]);
        assert_eq!(
            verdict.convicted_defectors(&OrgId::new("ttp")),
            vec![OrgId::new("server")]
        );
        // A decision from an untrusted issuer convicts nobody.
        assert!(verdict
            .convicted_defectors(&OrgId::new("someone-else"))
            .is_empty());
    }

    #[test]
    fn unknown_issuer_tokens_are_unverified() {
        let clock = LogicalClock::new();
        // The stranger's key lives in a directory the adjudicator never sees.
        let private_dir = Arc::new(StaticKeyDirectory::new());
        let stranger = Party::quick("stranger", 9, &clock, &private_dir);
        let run = stranger.new_run_id();
        let token = stranger
            .issue_token(TokenKind::NroReq, run, sha256(b"x"))
            .unwrap();
        stranger.store_token(&token).unwrap();
        let adjudicator =
            Adjudicator::new(Arc::new(StaticKeyDirectory::new()) as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate(run, &[(OrgId::new("stranger"), stranger.log().records())]);
        assert!(verdict.facts.is_empty());
        assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("stranger")]);
    }
}
