//! Dispute resolution.
//!
//! Paper §3.1: "To support dispute resolution, the fact that trusted
//! interceptors mediated the interaction provides any honest party with
//! irrefutable evidence of their own actions within the domain and of the
//! observed actions of other parties" and "trusted interceptors will
//! support the conclusion of dispute resolution in favour of honest
//! parties".
//!
//! [`Adjudicator`] makes that mechanically checkable: given the evidence
//! logs the disputing organisations submit, it
//!
//! 1. verifies each log's hash chain (tampered logs are flagged and their
//!    *unverifiable* records ignored),
//! 2. decodes and cryptographically verifies every token against the key
//!    directory,
//! 3. produces the set of [`Fact`]s — token assertions that some submitted
//!    log proves and that their issuer therefore **cannot deny**.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use nonrep_crypto::digest::Digest;
use nonrep_protocols::party::KeyDirectory;
use nonrep_protocols::tokens::{NrToken, TokenKind};
use nonrep_store::record::{ChainVerifier, ChainViolation, EvidenceRecord};
use nonrep_store::EvidenceLog;
use nonrep_types::codec::Decode;
use nonrep_types::ids::{OrgId, RunId};

/// Verification report for one submitted log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogReport {
    /// Who submitted the log.
    pub submitter: OrgId,
    /// Hash-chain verification result.
    pub chain: Result<(), ChainViolation>,
    /// Tokens decoded from the log: `(token, signature_valid)`.
    pub tokens: Vec<(NrToken, bool)>,
    /// Records whose payload was not a decodable token.
    pub undecodable: usize,
}

impl LogReport {
    /// `true` if the chain verified, every token's signature verified, and
    /// every record payload decoded as a token.
    ///
    /// Undecodable payloads count against the submitter: the middleware
    /// only ever logs canonically-encoded tokens, so a record that fails
    /// to decode is evidence of tampering (e.g. edits to a terminal record
    /// that the hash chain alone cannot catch).
    pub fn clean(&self) -> bool {
        self.chain.is_ok() && self.undecodable == 0 && self.tokens.iter().all(|(_, ok)| *ok)
    }
}

/// A token assertion established by the adjudication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// What was attested.
    pub kind: TokenKind,
    /// Who signed (and therefore cannot deny) it.
    pub issuer: OrgId,
    /// Digest of the subject matter.
    pub subject: Digest,
    /// The protocol run.
    pub run_id: RunId,
    /// Which submitters' logs prove this fact.
    pub held_by: Vec<OrgId>,
}

/// The outcome of an adjudication over one protocol run.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The run adjudicated.
    pub run_id: RunId,
    /// Per-submission verification reports.
    pub reports: Vec<LogReport>,
    /// Established, undeniable facts.
    pub facts: Vec<Fact>,
}

impl Verdict {
    /// `true` if some verified token of `kind` was issued by `issuer` —
    /// i.e. `issuer` cannot deny the corresponding action.
    pub fn cannot_deny(&self, issuer: &OrgId, kind: TokenKind) -> bool {
        self.facts.iter().any(|f| f.issuer == *issuer && f.kind == kind)
    }

    /// Submitters whose logs failed verification (tampering or forgery).
    pub fn suspect_submitters(&self) -> Vec<OrgId> {
        self.reports
            .iter()
            .filter(|r| !r.clean())
            .map(|r| r.submitter.clone())
            .collect()
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verdict for run {}", self.run_id)?;
        for fact in &self.facts {
            writeln!(
                f,
                "  established: {} issued {} (held by {:?})",
                fact.issuer,
                fact.kind,
                fact.held_by.iter().map(OrgId::as_str).collect::<Vec<_>>()
            )?;
        }
        for suspect in self.suspect_submitters() {
            writeln!(f, "  suspect submission from {suspect}")?;
        }
        Ok(())
    }
}

/// The dispute-resolution service.
pub struct Adjudicator {
    directory: Arc<dyn KeyDirectory>,
}

impl fmt::Debug for Adjudicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Adjudicator")
    }
}

impl Adjudicator {
    /// Creates an adjudicator trusting `directory` for key resolution.
    pub fn new(directory: Arc<dyn KeyDirectory>) -> Self {
        Self { directory }
    }

    /// Verifies one submitted log in isolation.
    pub fn verify_log(&self, submitter: OrgId, records: &[EvidenceRecord]) -> LogReport {
        let mut builder = ReportBuilder::new(submitter, &*self.directory);
        for record in records {
            builder.check(record);
        }
        builder.finish()
    }

    /// Verifies a live log in place, reading it in bounded windows via
    /// [`EvidenceLog::for_each_window`] — peak memory stays one window
    /// (never a whole-log clone), and the log's internal lock is *not*
    /// held while token signatures are cryptographically verified, so
    /// concurrent appenders are not stalled behind an audit.
    pub fn verify_log_in_place(&self, submitter: OrgId, log: &dyn EvidenceLog) -> LogReport {
        let mut builder = ReportBuilder::new(submitter, &*self.directory);
        log.for_each_window(256, &mut |window| {
            for record in window {
                builder.check(record);
            }
            true
        });
        builder.finish()
    }

    /// Adjudicates `run_id` over the submitted logs.
    ///
    /// Facts are established only from tokens that verify
    /// cryptographically; an unverifiable (forged) token contributes
    /// nothing except suspicion against its submitter.
    pub fn adjudicate(&self, run_id: RunId, submissions: &[(OrgId, Vec<EvidenceRecord>)]) -> Verdict {
        let reports = submissions
            .iter()
            .map(|(submitter, records)| self.verify_log(submitter.clone(), records))
            .collect();
        verdict_from_reports(run_id, reports)
    }

    /// Adjudicates `run_id` directly over live evidence logs, verifying
    /// each chain and decoding tokens in place instead of snapshotting
    /// whole logs first. This is the hot path for audit/dispute queries
    /// within one process (trust-domain adjudication, monitoring).
    pub fn adjudicate_logs(&self, run_id: RunId, submissions: &[(OrgId, &dyn EvidenceLog)]) -> Verdict {
        let reports = submissions
            .iter()
            .map(|(submitter, log)| self.verify_log_in_place(submitter.clone(), *log))
            .collect();
        verdict_from_reports(run_id, reports)
    }
}

/// Incremental [`LogReport`] construction shared by the slice-based and
/// visitor-based verification paths.
struct ReportBuilder<'a> {
    submitter: OrgId,
    directory: &'a dyn KeyDirectory,
    chain: ChainVerifier,
    tokens: Vec<(NrToken, bool)>,
    undecodable: usize,
}

impl<'a> ReportBuilder<'a> {
    fn new(submitter: OrgId, directory: &'a dyn KeyDirectory) -> Self {
        Self {
            submitter,
            directory,
            chain: ChainVerifier::new(),
            tokens: Vec::new(),
            undecodable: 0,
        }
    }

    fn check(&mut self, record: &EvidenceRecord) {
        self.chain.check(record);
        match NrToken::decode_from_slice(&record.draft.payload) {
            Ok(token) => {
                let ok = self
                    .directory
                    .key_of(&token.issuer)
                    .map(|key| token.verify(&key, None, None, None))
                    .unwrap_or(false);
                self.tokens.push((token, ok));
            }
            Err(_) => self.undecodable += 1,
        }
    }

    fn finish(self) -> LogReport {
        LogReport {
            submitter: self.submitter,
            chain: self.chain.finish(),
            tokens: self.tokens,
            undecodable: self.undecodable,
        }
    }
}

/// Merges verified per-log reports into the final [`Verdict`].
fn verdict_from_reports(run_id: RunId, reports: Vec<LogReport>) -> Verdict {
    // (kind-tag, issuer, subject) → holders.
    let mut facts: BTreeMap<(String, OrgId, Digest), Fact> = BTreeMap::new();
    for report in &reports {
        for (token, ok) in &report.tokens {
            if !*ok || token.run_id != run_id {
                continue;
            }
            let key = (token.kind.label().to_string(), token.issuer.clone(), token.subject);
            let entry = facts.entry(key).or_insert_with(|| Fact {
                kind: token.kind,
                issuer: token.issuer.clone(),
                subject: token.subject,
                run_id,
                held_by: Vec::new(),
            });
            if !entry.held_by.contains(&report.submitter) {
                entry.held_by.push(report.submitter.clone());
            }
        }
    }
    Verdict { run_id, reports, facts: facts.into_values().collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonrep_crypto::digest::sha256;
    use nonrep_protocols::party::{Party, StaticKeyDirectory};
    use nonrep_types::time::LogicalClock;

    struct Pair {
        alice: Arc<Party>,
        bob: Arc<Party>,
        dir: Arc<StaticKeyDirectory>,
    }

    fn pair() -> Pair {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        Pair {
            alice: Party::quick("alice", 1, &clock, &dir),
            bob: Party::quick("bob", 2, &clock, &dir),
            dir,
        }
    }

    fn run_exchange(p: &Pair) -> RunId {
        // Alice issues NRO, Bob verifies+stores; Bob issues NRR, Alice
        // verifies+stores — a miniature exchange.
        let run = p.alice.new_run_id();
        let subject = sha256(b"request");
        let nro = p.alice.issue_token(TokenKind::NroReq, run, subject).unwrap();
        p.alice.store_token(&nro).unwrap();
        p.bob.verify_and_store(&nro, TokenKind::NroReq, run, Some(&subject)).unwrap();
        let nrr = p.bob.issue_token(TokenKind::NrrReq, run, subject).unwrap();
        p.bob.store_token(&nrr).unwrap();
        p.alice.verify_and_store(&nrr, TokenKind::NrrReq, run, Some(&subject)).unwrap();
        run
    }

    #[test]
    fn honest_logs_establish_mutual_facts() {
        let p = pair();
        let run = run_exchange(&p);
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict = adjudicator.adjudicate_logs(
            run,
            &[
                (OrgId::new("alice"), &**p.alice.log()),
                (OrgId::new("bob"), &**p.bob.log()),
            ],
        );
        // Neither party can deny their token.
        assert!(verdict.cannot_deny(&OrgId::new("alice"), TokenKind::NroReq));
        assert!(verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
        assert!(verdict.suspect_submitters().is_empty());
        // Both facts are held by both parties.
        for fact in &verdict.facts {
            assert_eq!(fact.held_by.len(), 2, "{fact:?}");
        }
        assert!(verdict.to_string().contains("established"));
    }

    #[test]
    fn denial_defeated_by_counterparty_log() {
        // Bob "loses" his log (submits nothing) and denies having received
        // the request. Alice's log alone proves Bob's NRR_req.
        let p = pair();
        let run = run_exchange(&p);
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate_logs(run, &[(OrgId::new("alice"), &**p.alice.log())]);
        assert!(verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
    }

    #[test]
    fn tampered_log_is_flagged() {
        let p = pair();
        let run = run_exchange(&p);
        let mut records = p.alice.log().records();
        records[0].draft.kind = "doctored".into();
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict = adjudicator.adjudicate(run, &[(OrgId::new("alice"), records)]);
        assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);
    }

    #[test]
    fn forged_token_contributes_no_fact() {
        let p = pair();
        let run = p.alice.new_run_id();
        // Alice fabricates a token claiming bob signed a receipt: she can
        // only sign with her own key, so issuer=bob + alice's signature.
        let mut forged = p.alice.issue_token(TokenKind::NrrReq, run, sha256(b"x")).unwrap();
        forged.issuer = OrgId::new("bob");
        p.alice.store_token(&forged).unwrap();
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate(run, &[(OrgId::new("alice"), p.alice.log().records())]);
        assert!(!verdict.cannot_deny(&OrgId::new("bob"), TokenKind::NrrReq));
        // Alice's submission contains an unverifiable token → suspect.
        assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("alice")]);
    }

    #[test]
    fn facts_are_scoped_to_the_run() {
        let p = pair();
        let run1 = run_exchange(&p);
        let run2 = run_exchange(&p);
        assert_ne!(run1, run2);
        let adjudicator = Adjudicator::new(p.dir.clone() as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate(run1, &[(OrgId::new("alice"), p.alice.log().records())]);
        assert!(verdict.facts.iter().all(|f| f.run_id == run1));
    }

    #[test]
    fn unknown_issuer_tokens_are_unverified() {
        let clock = LogicalClock::new();
        // The stranger's key lives in a directory the adjudicator never sees.
        let private_dir = Arc::new(StaticKeyDirectory::new());
        let stranger = Party::quick("stranger", 9, &clock, &private_dir);
        let run = stranger.new_run_id();
        let token = stranger.issue_token(TokenKind::NroReq, run, sha256(b"x")).unwrap();
        stranger.store_token(&token).unwrap();
        let adjudicator = Adjudicator::new(Arc::new(StaticKeyDirectory::new()) as Arc<dyn KeyDirectory>);
        let verdict =
            adjudicator.adjudicate(run, &[(OrgId::new("stranger"), stranger.log().records())]);
        assert!(verdict.facts.is_empty());
        assert_eq!(verdict.suspect_submitters(), vec![OrgId::new("stranger")]);
    }
}
