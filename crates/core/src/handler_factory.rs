//! The `B2BInvocationHandler` factory (paper §4.2).
//!
//! The paper's client-side NR interceptor obtains its protocol machinery
//! through a factory:
//!
//! ```java
//! B2BInvocationHandler b2bInvHdlr =
//!     B2BInvocationHandler.getInstance("JBossJ2EE", "direct");
//! ```
//!
//! "getInstance is a factory method that returns a reference to a
//! B2BInvocationHandler for the given platform … to execute the given
//! protocol. The concrete implementation of a B2BInvocationHandler is
//! under control of the client." This module reproduces that indirection:
//! the platform tag is `"rust"`, the protocol tags are the registered
//! protocol ids, and clients may re-negotiate by asking the factory for a
//! different protocol.

use std::fmt;
use std::sync::Arc;

use nonrep_protocols::invocation::direct::DirectClient;
use nonrep_protocols::invocation::fair_offline::FairClient;
use nonrep_protocols::invocation::inline_ttp::InlineTtpClient;
use nonrep_protocols::invocation::voluntary::VoluntaryClient;
use nonrep_protocols::invocation::ServerResponse;
use nonrep_protocols::party::Party;
use nonrep_protocols::{B2BCoordinator, ProtocolError};
use nonrep_types::ids::OrgId;

/// The generic wrapper for a platform-specific invocation (paper §4.2:
/// "A B2BInvocation object is a generic wrapper for platform-specific
/// representations of the service to invoke and the invocation
/// parameter(s)").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct B2BInvocation {
    /// The organisation serving the invocation.
    pub target: OrgId,
    /// The serialised platform-specific request.
    pub request: Vec<u8>,
}

impl B2BInvocation {
    /// Wraps a serialised request for `target`.
    pub fn new(target: OrgId, request: Vec<u8>) -> Self {
        Self { target, request }
    }
}

/// Executes a non-repudiation protocol for an invocation.
pub trait B2BInvocationHandler: Send + Sync {
    /// Runs the protocol, returning the evidenced server response.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] from the exchange.
    fn invoke(&self, inv: B2BInvocation) -> Result<ServerResponse, ProtocolError>;

    /// The protocol this handler executes.
    fn protocol(&self) -> &'static str;
}

struct DirectHandler(DirectClient);
struct VoluntaryHandler(VoluntaryClient);
struct InlineHandler(InlineTtpClient);
struct FairHandler(FairClient);

impl B2BInvocationHandler for DirectHandler {
    fn invoke(&self, inv: B2BInvocation) -> Result<ServerResponse, ProtocolError> {
        Ok(self.0.invoke(&inv.target, inv.request)?.response)
    }
    fn protocol(&self) -> &'static str {
        nonrep_protocols::invocation::direct::PROTOCOL_ID
    }
}

impl B2BInvocationHandler for VoluntaryHandler {
    fn invoke(&self, inv: B2BInvocation) -> Result<ServerResponse, ProtocolError> {
        Ok(self.0.invoke(&inv.target, inv.request)?.response)
    }
    fn protocol(&self) -> &'static str {
        nonrep_protocols::invocation::voluntary::PROTOCOL_ID
    }
}

impl B2BInvocationHandler for InlineHandler {
    fn invoke(&self, inv: B2BInvocation) -> Result<ServerResponse, ProtocolError> {
        Ok(self.0.invoke(&inv.target, inv.request)?.response)
    }
    fn protocol(&self) -> &'static str {
        nonrep_protocols::invocation::inline_ttp::PROTOCOL_ID
    }
}

impl B2BInvocationHandler for FairHandler {
    fn invoke(&self, inv: B2BInvocation) -> Result<ServerResponse, ProtocolError> {
        Ok(self.0.invoke(&inv.target, inv.request)?.response)
    }
    fn protocol(&self) -> &'static str {
        nonrep_protocols::invocation::fair_offline::PROTOCOL_ID
    }
}

/// Factory resolving `(platform, protocol)` to a handler.
pub struct InvocationHandlerFactory {
    party: Arc<Party>,
    coordinator: Arc<B2BCoordinator>,
    /// TTP used by TTP-dependent protocols, if configured.
    ttp: Option<OrgId>,
}

impl fmt::Debug for InvocationHandlerFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InvocationHandlerFactory({})", self.party.org())
    }
}

impl InvocationHandlerFactory {
    /// Creates a factory over this party's coordinator.
    pub fn new(party: Arc<Party>, coordinator: Arc<B2BCoordinator>, ttp: Option<OrgId>) -> Self {
        Self {
            party,
            coordinator,
            ttp,
        }
    }

    /// Resolves a handler for `(platform, protocol)` — the paper's
    /// `getInstance`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownProtocol`] for unknown platform/protocol
    /// tags, or [`ProtocolError::Rejected`] when a TTP-dependent protocol
    /// is requested without a configured TTP.
    pub fn instance(
        &self,
        platform: &str,
        protocol: &str,
    ) -> Result<Box<dyn B2BInvocationHandler>, ProtocolError> {
        if platform != "rust" {
            return Err(ProtocolError::Rejected(format!(
                "unknown platform {platform}"
            )));
        }
        match protocol {
            nonrep_protocols::invocation::direct::PROTOCOL_ID => Ok(Box::new(DirectHandler(
                DirectClient::new(self.party.clone(), self.coordinator.clone()),
            ))),
            nonrep_protocols::invocation::voluntary::PROTOCOL_ID => Ok(Box::new(VoluntaryHandler(
                VoluntaryClient::new(self.party.clone(), self.coordinator.clone()),
            ))),
            nonrep_protocols::invocation::inline_ttp::PROTOCOL_ID => {
                let ttp = self.ttp.clone().ok_or_else(|| {
                    ProtocolError::Rejected("inline-ttp requires a configured TTP".into())
                })?;
                Ok(Box::new(InlineHandler(InlineTtpClient::new(
                    self.party.clone(),
                    self.coordinator.clone(),
                    ttp,
                ))))
            }
            nonrep_protocols::invocation::fair_offline::PROTOCOL_ID => {
                let ttp = self.ttp.clone().ok_or_else(|| {
                    ProtocolError::Rejected("fair-offline requires a configured TTP".into())
                })?;
                Ok(Box::new(FairHandler(FairClient::new(
                    self.party.clone(),
                    self.coordinator.clone(),
                    ttp,
                ))))
            }
            other => Err(ProtocolError::UnknownProtocol(other.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonrep_net::bus::LocalBus;
    use nonrep_net::retry::{ReliableRequester, RetryPolicy};
    use nonrep_protocols::party::StaticKeyDirectory;
    use nonrep_types::time::LogicalClock;

    fn factory(ttp: Option<OrgId>) -> InvocationHandlerFactory {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let party = Party::quick("client", 1, &clock, &dir);
        let bus = LocalBus::new();
        let coordinator =
            B2BCoordinator::new("client", ReliableRequester::new(bus, RetryPolicy::new(2)));
        InvocationHandlerFactory::new(party, coordinator, ttp)
    }

    #[test]
    fn resolves_all_known_protocols() {
        let f = factory(Some(OrgId::new("ttp")));
        for proto in ["direct", "voluntary", "inline-ttp", "fair-offline"] {
            let h = f.instance("rust", proto).unwrap();
            assert_eq!(h.protocol(), proto);
        }
    }

    #[test]
    fn unknown_platform_rejected() {
        let f = factory(None);
        assert!(matches!(
            f.instance("JBossJ2EE", "direct"),
            Err(ProtocolError::Rejected(_))
        ));
    }

    #[test]
    fn unknown_protocol_rejected() {
        let f = factory(None);
        assert!(matches!(
            f.instance("rust", "quantum"),
            Err(ProtocolError::UnknownProtocol(_))
        ));
    }

    #[test]
    fn ttp_protocols_require_ttp() {
        let f = factory(None);
        assert!(matches!(
            f.instance("rust", "inline-ttp"),
            Err(ProtocolError::Rejected(_))
        ));
        assert!(matches!(
            f.instance("rust", "fair-offline"),
            Err(ProtocolError::Rejected(_))
        ));
    }
}
