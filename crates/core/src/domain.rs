//! Trust-domain deployment choices (paper Fig 3).
//!
//! "Figure 3 shows three approaches to the use of trusted interceptors to
//! provide a trust domain" — plus the offline-TTP fair-exchange refinement
//! discussed in §3.1/§4. [`TrustDomain`] is the per-organisation default
//! for outgoing non-repudiable invocations; it decides which protocol
//! client a proxy gets. The models "are not mutually exclusive": any proxy
//! can override the domain default per service.

use std::fmt;

use nonrep_types::ids::{OrgId, ProtocolId};

/// How this organisation reaches its peers for non-repudiable invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrustDomain {
    /// Direct trust domain (Fig 3(c)): interceptors hosted at each party,
    /// three-message direct exchange, no TTP.
    Direct,
    /// Asymmetric voluntary baseline (not a trust domain in the paper's
    /// sense — no client guarantees; provided for comparison, ref \[23\]).
    Voluntary,
    /// Inline TTP (Fig 3(a)) or distributed inline TTPs (Fig 3(b)): all
    /// traffic enters at `first_hop`; further hops are the TTPs' own
    /// configuration.
    InlineTtp {
        /// The first (or only) TTP in the path.
        first_hop: OrgId,
    },
    /// Direct exchange hardened to fair exchange with an *offline* TTP for
    /// resolve/abort.
    FairOffline {
        /// The recovery TTP both sides agreed on.
        ttp: OrgId,
    },
}

impl TrustDomain {
    /// The protocol id this domain executes.
    pub fn protocol_id(&self) -> ProtocolId {
        match self {
            TrustDomain::Direct => {
                ProtocolId::new(nonrep_protocols::invocation::direct::PROTOCOL_ID)
            }
            TrustDomain::Voluntary => {
                ProtocolId::new(nonrep_protocols::invocation::voluntary::PROTOCOL_ID)
            }
            TrustDomain::InlineTtp { .. } => {
                ProtocolId::new(nonrep_protocols::invocation::inline_ttp::PROTOCOL_ID)
            }
            TrustDomain::FairOffline { .. } => {
                ProtocolId::new(nonrep_protocols::invocation::fair_offline::PROTOCOL_ID)
            }
        }
    }

    /// The TTP this domain depends on, if any.
    pub fn ttp(&self) -> Option<&OrgId> {
        match self {
            TrustDomain::InlineTtp { first_hop } => Some(first_hop),
            TrustDomain::FairOffline { ttp } => Some(ttp),
            _ => None,
        }
    }
}

impl fmt::Display for TrustDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustDomain::Direct => f.write_str("direct"),
            TrustDomain::Voluntary => f.write_str("voluntary"),
            TrustDomain::InlineTtp { first_hop } => write!(f, "inline-ttp via {first_hop}"),
            TrustDomain::FairOffline { ttp } => write!(f, "fair-offline with {ttp}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_ids_match_registered_protocols() {
        assert_eq!(TrustDomain::Direct.protocol_id(), ProtocolId::new("direct"));
        assert_eq!(
            TrustDomain::Voluntary.protocol_id(),
            ProtocolId::new("voluntary")
        );
        assert_eq!(
            TrustDomain::InlineTtp {
                first_hop: OrgId::new("t")
            }
            .protocol_id(),
            ProtocolId::new("inline-ttp")
        );
        assert_eq!(
            TrustDomain::FairOffline {
                ttp: OrgId::new("t")
            }
            .protocol_id(),
            ProtocolId::new("fair-offline")
        );
    }

    #[test]
    fn ttp_accessor() {
        assert_eq!(TrustDomain::Direct.ttp(), None);
        assert_eq!(TrustDomain::Voluntary.ttp(), None);
        let t = OrgId::new("ttp");
        assert_eq!(
            TrustDomain::InlineTtp {
                first_hop: t.clone()
            }
            .ttp(),
            Some(&t)
        );
        assert_eq!(TrustDomain::FairOffline { ttp: t.clone() }.ttp(), Some(&t));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(TrustDomain::Direct.to_string(), "direct");
        assert_eq!(
            TrustDomain::InlineTtp {
                first_hop: OrgId::new("t")
            }
            .to_string(),
            "inline-ttp via t"
        );
    }
}
