//! Canonical binary encoding.
//!
//! Non-repudiation evidence is a signature over a byte string, so the byte
//! string must be *canonical*: the same logical content must always encode
//! to the same bytes regardless of which party produced it. This module
//! defines a small deterministic codec used for everything that is signed,
//! hashed, logged or sent between organisations.
//!
//! Layout rules:
//!
//! * integers are little-endian fixed width,
//! * byte strings and lists are length-prefixed with a `u32`,
//! * maps are encoded sorted by key (see [`crate::value::Value`]),
//! * enums are encoded as a `u8` tag followed by the variant payload.
//!
//! There is no versioning or schema evolution by design — evidence formats
//! are part of the inter-organisation agreement (paper §5: "the exact
//! representation of evidence is a matter for agreement between parties").

use std::error::Error;
use std::fmt;

/// Maximum length accepted for any length-prefixed field (16 MiB).
///
/// A decoder reading attacker-supplied bytes must not allocate unbounded
/// memory from a forged length prefix.
pub const MAX_FIELD_LEN: usize = 16 * 1024 * 1024;

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEnd {
        /// Bytes still required.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A length prefix exceeded [`MAX_FIELD_LEN`].
    FieldTooLong(usize),
    /// An enum tag byte did not correspond to any variant.
    InvalidTag {
        /// Name of the type being decoded.
        ty: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A byte string was not valid UTF-8 where a string was required.
    InvalidUtf8,
    /// Input had trailing bytes after a complete value.
    TrailingBytes(usize),
    /// Domain-specific validation failed during decode.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remaining"
                )
            }
            CodecError::FieldTooLong(len) => write!(f, "field length {len} exceeds maximum"),
            CodecError::InvalidTag { ty, tag } => write!(f, "invalid tag {tag} for type {ty}"),
            CodecError::InvalidUtf8 => write!(f, "byte string was not valid utf-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::Invalid(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl Error for CodecError {}

/// Canonical encoder sink.
///
/// A thin wrapper over `Vec<u8>` so that encode implementations cannot
/// accidentally use a non-canonical write path.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Clears the buffer, keeping its allocation (scratch-buffer reuse on
    /// hot encode-then-hash paths).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes with no length prefix (fixed-width fields only).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u32` length prefix followed by the bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` exceeds `u32::MAX` (not reachable with
    /// [`MAX_FIELD_LEN`]-sized fields).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("field larger than u32::MAX");
        self.put_u32(len);
        self.put_raw(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Canonical decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { rest: bytes }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Returns an error if any bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.rest.len()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.rest.len() < n {
            return Err(CodecError::UnexpectedEnd {
                needed: n,
                remaining: self.rest.len(),
            });
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`; any nonzero byte is an error to keep canonicity.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag { ty: "bool", tag }),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(i64::from_le_bytes(arr))
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(CodecError::FieldTooLong(len));
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Reads a length-prefixed owned `String`.
    pub fn get_string(&mut self) -> Result<String, CodecError> {
        self.get_str().map(str::to_owned)
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh `Vec<u8>`.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_vec()
    }
}

/// Types decodable from the canonical binary encoding.
pub trait Decode: Sized {
    /// Decodes a value, consuming bytes from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the input is truncated or malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decodes a value from a complete byte slice, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the input is truncated, malformed, or has
    /// trailing bytes.
    fn decode_from_slice(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(*self);
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_i64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_bool()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_string()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(r.get_bytes()?.to_vec())
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::InvalidTag { ty: "Option", tag }),
        }
    }
}

/// Encodes a homogeneous sequence with a `u32` count prefix.
pub fn encode_seq<T: Encode>(items: &[T], w: &mut Writer) {
    let len = u32::try_from(items.len()).expect("sequence larger than u32::MAX");
    w.put_u32(len);
    for item in items {
        item.encode(w);
    }
}

/// Decodes a homogeneous sequence written by [`encode_seq`].
///
/// # Errors
///
/// Returns [`CodecError`] on truncated/malformed input or an oversized count.
pub fn decode_seq<T: Decode>(r: &mut Reader<'_>) -> Result<Vec<T>, CodecError> {
    let len = r.get_u32()? as usize;
    if len > MAX_FIELD_LEN {
        return Err(CodecError::FieldTooLong(len));
    }
    let mut out = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

// Note: there is deliberately no generic `impl Encode for Vec<T>` — it would
// conflict with the dedicated `Vec<u8>` impl (no specialization on stable).
// Sequences of non-byte items use `encode_seq`/`decode_seq`.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_bytes(b"hello");
        w.put_str("world");
        let bytes = w.into_vec();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "world");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut w = Writer::new();
        w.put_u64(1);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes[..4]);
        let err = r.get_u64().unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEnd {
                needed: 8,
                remaining: 4
            }
        );
    }

    #[test]
    fn forged_length_prefix_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX); // absurd length prefix with no data behind it
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let err = r.get_bytes().unwrap_err();
        assert_eq!(err, CodecError::FieldTooLong(u32::MAX as usize));
    }

    #[test]
    fn non_canonical_bool_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(
            r.get_bool(),
            Err(CodecError::InvalidTag { ty: "bool", tag: 2 })
        ));
    }

    #[test]
    fn trailing_bytes_rejected_by_decode_from_slice() {
        let mut bytes = 5u64.encode_to_vec();
        bytes.push(0);
        let err = u64::decode_from_slice(&bytes).unwrap_err();
        assert_eq!(err, CodecError::TrailingBytes(1));
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        assert_eq!(
            Option::<u64>::decode_from_slice(&some.encode_to_vec()).unwrap(),
            some
        );
        assert_eq!(
            Option::<u64>::decode_from_slice(&none.encode_to_vec()).unwrap(),
            none
        );
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec![1u64, 2, 3];
        let mut w = Writer::new();
        encode_seq(&items, &mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let back: Vec<u64> = decode_seq(&mut r).unwrap();
        assert_eq!(back, items);
    }

    #[test]
    fn string_utf8_enforced() {
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str().unwrap_err(), CodecError::InvalidUtf8);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = ("x".to_string(), 1u64);
        let encode = |v: &(String, u64)| {
            let mut w = Writer::new();
            v.0.encode(&mut w);
            v.1.encode(&mut w);
            w.into_vec()
        };
        assert_eq!(encode(&a), encode(&a));
    }
}
