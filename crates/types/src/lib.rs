//! Shared base types for the non-repudiation middleware.
//!
//! This crate is the bottom of the workspace dependency graph. It provides:
//!
//! * [`ids`] — strongly-typed identifiers (organisations, protocol runs,
//!   services, sharing groups …). Newtypes keep the rest of the workspace
//!   honest about which string/number means what ([C-NEWTYPE]).
//! * [`value`] — [`Value`], a dynamic value model used for component method
//!   parameters and results (the Rust stand-in for the paper's reflective
//!   access to EJB invocation parameters).
//! * [`codec`] — a *canonical*, deterministic binary encoding. Everything
//!   that is ever signed or hashed in the workspace goes through this codec,
//!   so that two honest parties always compute identical digests for
//!   identical logical content.
//! * [`time`] — logical timestamps and pluggable clocks (deterministic tests,
//!   simulated time).
//!
//! # Example
//!
//! ```
//! use nonrep_types::{codec::Encode, value::Value, ids::OrgId};
//!
//! let org = OrgId::new("manufacturer");
//! let v = Value::map([("part", Value::from("gearbox")), ("qty", Value::from(2i64))]);
//! let bytes = v.encode_to_vec();
//! assert!(!bytes.is_empty());
//! assert_eq!(org.as_str(), "manufacturer");
//! ```

pub mod codec;
pub mod ids;
pub mod time;
pub mod value;

pub use codec::{CodecError, Decode, Encode, Reader, Writer};
pub use ids::{GroupId, MethodName, OrgId, ProtocolId, RunId, ServiceUri};
pub use time::{Clock, LogicalClock, SystemClock, Timestamp};
pub use value::Value;
