//! Strongly-typed identifiers.
//!
//! The paper's model names several distinct kinds of entity: organisations
//! (parties to an interaction), services (URIs, §3.4), protocol runs
//! ("a unique request identifier, to distinguish between protocol runs and
//! to bind protocol steps to a run", §3.2), protocols themselves, and
//! information-sharing groups (§3.3). Each gets a newtype so they cannot be
//! confused ([C-NEWTYPE]).

use std::fmt;

use crate::codec::{CodecError, Decode, Encode, Reader, Writer};

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(String);

        impl $name {
            /// Creates an identifier from anything string-like.
            pub fn new(s: impl Into<String>) -> Self {
                Self(s.into())
            }

            /// The identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// Consumes the identifier, returning the underlying `String`.
            pub fn into_string(self) -> String {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Encode for $name {
            fn encode(&self, w: &mut Writer) {
                w.put_str(&self.0);
            }
        }

        impl Decode for $name {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok(Self(r.get_string()?))
            }
        }
    };
}

string_id! {
    /// An organisation participating in a composite service (paper Fig 1:
    /// car dealer, manufacturer, part suppliers, TTPs).
    OrgId
}

string_id! {
    /// A globally resolvable service name (paper §3.4 requires service
    /// references to resolve to "a meaningful, agreed representation of the
    /// service such as a URI").
    ServiceUri
}

string_id! {
    /// A method on a deployed component (the operation being invoked).
    MethodName
}

string_id! {
    /// Identifies a registered non-repudiation protocol (e.g. `"direct"`,
    /// `"inline-ttp"`), mirroring the `getInstance(platform, protocol)`
    /// factory arguments in paper §4.2.
    ProtocolId
}

string_id! {
    /// Identifies a group of organisations sharing a B2BObject (§3.3).
    GroupId
}

/// Unique identifier of a protocol run.
///
/// Paper §3.2: "Non-repudiation tokens include a unique request identifier,
/// to distinguish between protocol runs and to bind protocol steps to a
/// run". Runs are minted from a secure random source by the initiating
/// interceptor; 128 bits keeps collision probability negligible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunId(pub [u8; 16]);

impl RunId {
    /// Builds a run identifier from raw bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        Self(bytes)
    }

    /// The raw bytes of the identifier.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Deterministic run id for tests: the 128-bit little-endian value `n`.
    pub fn from_u128(n: u128) -> Self {
        Self(n.to_le_bytes())
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl Encode for RunId {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.0);
    }
}

impl Decode for RunId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let raw = r.get_raw(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(raw);
        Ok(Self(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_accessors() {
        let org = OrgId::new("supplier-a");
        assert_eq!(org.to_string(), "supplier-a");
        assert_eq!(org.as_str(), "supplier-a");
        assert_eq!(org.clone().into_string(), "supplier-a");
        assert_eq!(OrgId::from("x"), OrgId::new("x"));
    }

    #[test]
    fn ids_are_distinct_types() {
        // Purely a compile-time property; keep a runtime witness anyway.
        let s = ServiceUri::new("urn:parts/gearbox");
        let m = MethodName::new("quote");
        assert_ne!(s.as_str(), m.as_str());
    }

    #[test]
    fn id_codec_roundtrip() {
        let org = OrgId::new("manufacturer");
        let bytes = org.encode_to_vec();
        assert_eq!(OrgId::decode_from_slice(&bytes).unwrap(), org);
    }

    #[test]
    fn run_id_roundtrip_and_display() {
        let run = RunId::from_u128(0xDEAD_BEEF);
        let bytes = run.encode_to_vec();
        assert_eq!(bytes.len(), 16);
        assert_eq!(RunId::decode_from_slice(&bytes).unwrap(), run);
        assert_eq!(run.to_string().len(), 32);
    }

    #[test]
    fn run_id_ordering_is_stable() {
        let a = RunId::from_u128(1);
        let b = RunId::from_u128(2);
        assert_ne!(a, b);
        // Ordering exists and is consistent (exact order is byte-wise).
        assert_eq!(a.cmp(&b), a.as_bytes().cmp(b.as_bytes()));
    }
}
