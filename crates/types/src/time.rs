//! Timestamps and clocks.
//!
//! Evidence must be time-stamped (paper §3.5). The middleware never reads
//! the OS clock directly: it is handed a [`Clock`] so that tests and the
//! discrete-event network simulator can control time deterministically.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::codec::{CodecError, Decode, Encode, Reader, Writer};

/// A point in time, in milliseconds since an epoch.
///
/// For [`SystemClock`] the epoch is the Unix epoch; for [`LogicalClock`]
/// it is the start of the simulation. Evidence produced by different
/// organisations in one trust domain must use the same epoch — that is part
/// of the inter-organisation agreement, like the evidence format itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Millisecond count since the epoch.
    pub fn millis(&self) -> u64 {
        self.0
    }

    /// Returns this timestamp advanced by `ms` milliseconds.
    #[must_use]
    pub fn plus_millis(&self, ms: u64) -> Self {
        Self(self.0.saturating_add(ms))
    }

    /// Milliseconds elapsed from `earlier` to `self` (saturating at zero).
    pub fn since(&self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl Encode for Timestamp {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
}

impl Decode for Timestamp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self(r.get_u64()?))
    }
}

/// A source of timestamps.
///
/// Object-safe so middleware components can hold `Arc<dyn Clock>`.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current time.
    fn now(&self) -> Timestamp;
}

/// Wall-clock time from the operating system.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl SystemClock {
    /// Creates a system clock.
    pub fn new() -> Self {
        Self
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        let ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Timestamp(ms)
    }
}

/// A manually-advanced logical clock, shared between components.
///
/// Cloning shares the underlying counter, so a simulator can advance time
/// for every component holding the clock.
#[derive(Debug, Clone, Default)]
pub struct LogicalClock {
    millis: Arc<AtomicU64>,
}

impl LogicalClock {
    /// Creates a logical clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a logical clock starting at `start`.
    pub fn starting_at(start: Timestamp) -> Self {
        let clock = Self::new();
        clock.millis.store(start.0, Ordering::SeqCst);
        clock
    }

    /// Advances the clock by `ms` milliseconds, returning the new time.
    pub fn advance(&self, ms: u64) -> Timestamp {
        let new = self.millis.fetch_add(ms, Ordering::SeqCst) + ms;
        Timestamp(new)
    }

    /// Sets the clock to `t` if `t` is later than the current time.
    ///
    /// Used by the discrete-event simulator, whose event queue only ever
    /// moves time forward.
    pub fn advance_to(&self, t: Timestamp) {
        self.millis.fetch_max(t.0, Ordering::SeqCst);
    }
}

impl Clock for LogicalClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.millis.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_advances() {
        let clock = LogicalClock::new();
        assert_eq!(clock.now(), Timestamp(0));
        assert_eq!(clock.advance(10), Timestamp(10));
        assert_eq!(clock.now(), Timestamp(10));
    }

    #[test]
    fn logical_clock_is_shared_between_clones() {
        let a = LogicalClock::new();
        let b = a.clone();
        a.advance(5);
        assert_eq!(b.now(), Timestamp(5));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = LogicalClock::starting_at(Timestamp(100));
        clock.advance_to(Timestamp(50));
        assert_eq!(clock.now(), Timestamp(100));
        clock.advance_to(Timestamp(150));
        assert_eq!(clock.now(), Timestamp(150));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(100);
        assert_eq!(t.plus_millis(50), Timestamp(150));
        assert_eq!(Timestamp(150).since(t), 50);
        assert_eq!(t.since(Timestamp(150)), 0);
        assert_eq!(t.to_string(), "t+100ms");
    }

    #[test]
    fn system_clock_is_nonzero_and_monotonic_enough() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(a.0 > 0);
        assert!(b >= a);
    }

    #[test]
    fn timestamp_codec_roundtrip() {
        let t = Timestamp(12345);
        assert_eq!(Timestamp::decode_from_slice(&t.encode_to_vec()).unwrap(), t);
    }
}
