//! Dynamic values for component invocations.
//!
//! The paper's prototype uses Java reflection to snapshot invocation
//! parameters and results so they can be hashed and signed (§3.4: value
//! types "must be resolved to an agreed representation of their state at
//! invocation"). [`Value`] plays that role here: a self-describing tree of
//! primitives, byte strings, lists and string-keyed maps with a canonical
//! encoding.
//!
//! Maps are backed by `BTreeMap` so iteration (and hence encoding) order is
//! the sorted key order — two honest parties always hash identical bytes
//! for identical logical content.

use std::collections::BTreeMap;
use std::fmt;

use crate::codec::{CodecError, Decode, Encode, Reader, Writer};

/// A dynamic, canonically-encodable value.
///
/// Floating point is deliberately represented by its IEEE-754 bit pattern
/// ([`Value::F64Bits`]) so that `Value` can implement `Eq`/`Hash` and encode
/// canonically; use [`Value::from_f64`]/[`Value::as_f64`] at the edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    I64(i64),
    /// An unsigned 64-bit integer.
    U64(u64),
    /// An IEEE-754 double, stored as raw bits (see type docs).
    F64Bits(u64),
    /// A UTF-8 string.
    Str(String),
    /// An opaque byte string.
    Bytes(Vec<u8>),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed map with canonical (sorted) key order.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a map value from `(key, value)` pairs.
    pub fn map<K, I>(entries: I) -> Self
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Value)>,
    {
        Value::Map(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a list value.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Value::List(items.into_iter().collect())
    }

    /// Wraps an `f64` (stored as bits; NaN payloads are preserved).
    pub fn from_f64(v: f64) -> Self {
        Value::F64Bits(v.to_bits())
    }

    /// Returns the value as `f64` if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64Bits(bits) => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Returns the value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is a signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as a byte slice if it is a byte string.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the value as a slice if it is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the value as a map if it is one.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` if the value is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Recursively counts the nodes of the value tree (used in benches to
    /// scale workloads).
    pub fn node_count(&self) -> usize {
        match self {
            Value::List(items) => 1 + items.iter().map(Value::node_count).sum::<usize>(),
            Value::Map(m) => 1 + m.values().map(Value::node_count).sum::<usize>(),
            _ => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64Bits(bits) => write!(f, "{}", f64::from_bits(*bits)),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_MAP: u8 = 8;

impl Encode for Value {
    fn encode(&self, w: &mut Writer) {
        match self {
            Value::Null => w.put_u8(TAG_NULL),
            Value::Bool(b) => {
                w.put_u8(TAG_BOOL);
                w.put_bool(*b);
            }
            Value::I64(v) => {
                w.put_u8(TAG_I64);
                w.put_i64(*v);
            }
            Value::U64(v) => {
                w.put_u8(TAG_U64);
                w.put_u64(*v);
            }
            Value::F64Bits(bits) => {
                w.put_u8(TAG_F64);
                w.put_u64(*bits);
            }
            Value::Str(s) => {
                w.put_u8(TAG_STR);
                w.put_str(s);
            }
            Value::Bytes(b) => {
                w.put_u8(TAG_BYTES);
                w.put_bytes(b);
            }
            Value::List(items) => {
                w.put_u8(TAG_LIST);
                w.put_u32(items.len() as u32);
                for item in items {
                    item.encode(w);
                }
            }
            Value::Map(m) => {
                w.put_u8(TAG_MAP);
                w.put_u32(m.len() as u32);
                // BTreeMap iterates in sorted key order: canonical.
                for (k, v) in m {
                    w.put_str(k);
                    v.encode(w);
                }
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => Ok(Value::Bool(r.get_bool()?)),
            TAG_I64 => Ok(Value::I64(r.get_i64()?)),
            TAG_U64 => Ok(Value::U64(r.get_u64()?)),
            TAG_F64 => Ok(Value::F64Bits(r.get_u64()?)),
            TAG_STR => Ok(Value::Str(r.get_string()?)),
            TAG_BYTES => Ok(Value::Bytes(r.get_bytes()?.to_vec())),
            TAG_LIST => {
                let len = r.get_u32()? as usize;
                let mut items = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    items.push(Value::decode(r)?);
                }
                Ok(Value::List(items))
            }
            TAG_MAP => {
                let len = r.get_u32()? as usize;
                let mut map = BTreeMap::new();
                let mut prev: Option<String> = None;
                for _ in 0..len {
                    let key = r.get_string()?;
                    // Enforce canonical (strictly sorted) key order on decode
                    // so a forged non-canonical encoding is rejected rather
                    // than silently re-canonicalised (its hash would differ).
                    if let Some(p) = &prev {
                        if *p >= key {
                            return Err(CodecError::Invalid(format!(
                                "map keys not strictly sorted: {p:?} then {key:?}"
                            )));
                        }
                    }
                    let val = Value::decode(r)?;
                    prev = Some(key.clone());
                    map.insert(key, val);
                }
                Ok(Value::Map(map))
            }
            tag => Err(CodecError::InvalidTag { ty: "Value", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::map([
            ("part", Value::from("gearbox")),
            ("qty", Value::from(2i64)),
            ("unit_price", Value::from_f64(1999.99)),
            ("rush", Value::from(true)),
            ("notes", Value::Null),
            (
                "serials",
                Value::list([Value::from(1u64), Value::from(2u64)]),
            ),
            ("blob", Value::from(vec![0u8, 255])),
        ])
    }

    #[test]
    fn roundtrip_nested() {
        let v = sample();
        let bytes = v.encode_to_vec();
        assert_eq!(Value::decode_from_slice(&bytes).unwrap(), v);
    }

    #[test]
    fn map_encoding_is_order_independent() {
        let a = Value::map([("a", Value::from(1i64)), ("b", Value::from(2i64))]);
        let b = Value::map([("b", Value::from(2i64)), ("a", Value::from(1i64))]);
        assert_eq!(a.encode_to_vec(), b.encode_to_vec());
    }

    #[test]
    fn non_canonical_map_rejected() {
        // Hand-encode a map with keys out of order.
        let mut w = Writer::new();
        w.put_u8(TAG_MAP);
        w.put_u32(2);
        w.put_str("b");
        Value::Null.encode(&mut w);
        w.put_str("a");
        Value::Null.encode(&mut w);
        let err = Value::decode_from_slice(&w.into_vec()).unwrap_err();
        assert!(matches!(err, CodecError::Invalid(_)));
    }

    #[test]
    fn duplicate_map_keys_rejected() {
        let mut w = Writer::new();
        w.put_u8(TAG_MAP);
        w.put_u32(2);
        w.put_str("a");
        Value::Null.encode(&mut w);
        w.put_str("a");
        Value::Null.encode(&mut w);
        assert!(Value::decode_from_slice(&w.into_vec()).is_err());
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("part").and_then(Value::as_str), Some("gearbox"));
        assert_eq!(v.get("qty").and_then(Value::as_i64), Some(2));
        assert_eq!(v.get("rush").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("unit_price").and_then(Value::as_f64), Some(1999.99));
        assert!(v.get("notes").unwrap().is_null());
        assert_eq!(
            v.get("serials")
                .and_then(Value::as_list)
                .map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("blob").and_then(Value::as_bytes),
            Some(&[0u8, 255][..])
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn node_count_counts_recursively() {
        let v = Value::list([Value::from(1i64), Value::list([Value::Null])]);
        // list + i64 + inner list + null
        assert_eq!(v.node_count(), 4);
    }

    #[test]
    fn display_is_compact() {
        let v = Value::map([("k", Value::from(1i64))]);
        assert_eq!(v.to_string(), "{\"k\": 1}");
        assert_eq!(Value::Bytes(vec![0xAB]).to_string(), "0xab");
    }

    #[test]
    fn nan_bits_are_preserved() {
        let v = Value::from_f64(f64::NAN);
        let back = Value::decode_from_slice(&v.encode_to_vec()).unwrap();
        assert_eq!(v, back); // bitwise equality, even for NaN
        assert!(back.as_f64().unwrap().is_nan());
    }

    #[test]
    fn invalid_tag_rejected() {
        assert!(matches!(
            Value::decode_from_slice(&[99]),
            Err(CodecError::InvalidTag {
                ty: "Value",
                tag: 99
            })
        ));
    }
}
