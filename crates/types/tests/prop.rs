//! Property tests for the canonical codec and `Value` model.

use nonrep_types::codec::{Decode, Encode};
use nonrep_types::value::Value;
use proptest::collection::{btree_map, vec};
use proptest::prelude::*;

/// Strategy producing arbitrary `Value` trees of bounded depth/size.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        any::<u64>().prop_map(Value::F64Bits),
        ".{0,24}".prop_map(Value::Str),
        vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..8).prop_map(Value::List),
            btree_map("[a-z]{1,8}", inner, 0..8).prop_map(Value::Map),
        ]
    })
}

proptest! {
    /// Every value round-trips through the canonical codec.
    #[test]
    fn value_roundtrip(v in value_strategy()) {
        let bytes = v.encode_to_vec();
        let back = Value::decode_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Encoding is deterministic: encoding twice yields identical bytes.
    #[test]
    fn value_encoding_deterministic(v in value_strategy()) {
        prop_assert_eq!(v.encode_to_vec(), v.clone().encode_to_vec());
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = Value::decode_from_slice(&bytes);
    }

    /// Structurally different values encode to different bytes
    /// (injectivity witness on a sample pair).
    #[test]
    fn distinct_scalars_encode_distinctly(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(Value::I64(a).encode_to_vec(), Value::I64(b).encode_to_vec());
    }

    /// u64 primitives round-trip.
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(u64::decode_from_slice(&v.encode_to_vec()).unwrap(), v);
    }

    /// Strings round-trip.
    #[test]
    fn string_roundtrip(s in ".{0,64}") {
        let owned = s.to_string();
        prop_assert_eq!(String::decode_from_slice(&owned.encode_to_vec()).unwrap(), owned);
    }
}
