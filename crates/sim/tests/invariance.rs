//! Property sweep over seeded adversarial fleets: for every scenario the
//! adjudicated verdicts must be invariant under schedule permutation,
//! every byzantine submitter must be detected, and no honest organisation
//! may ever be accused.
//!
//! A failing case prints its `(seed, schedule)` pair; replay it with
//! `NONREP_SIM_SEED=<seed> cargo run --release --example fleet_sim`.

use std::path::PathBuf;

use proptest::prelude::*;

use nonrep_sim::engine::run_fleet;
use nonrep_sim::scenario::Scenario;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nonrep-sim-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fleet_verdicts_are_schedule_invariant(
        seed in 1u64..1_000_000,
        schedule in 1u64..1_000_000,
    ) {
        let scenario = Scenario::from_seed(seed);
        let base = run_fleet(&scenario, 0, &scratch(&format!("{seed}-base")))
            .expect("base fleet failed");
        let permuted = run_fleet(&scenario, schedule, &scratch(&format!("{seed}-{schedule}")))
            .expect("permuted fleet failed");

        // Schedule invariance: the execution order changed every
        // signature and drop pattern, but not one verdict.
        prop_assert!(
            base.verdicts_match(&permuted),
            "seed {seed}: verdicts diverged under schedule {schedule}"
        );

        // Completeness: every byzantine submitter convicted in both
        // executions.
        for (org, role) in &scenario.byzantine {
            prop_assert!(
                base.detected(org) && permuted.detected(org),
                "seed {seed}: byzantine {org} ({}) escaped detection",
                role.name()
            );
        }

        // Soundness: zero false accusations, ever.
        for org in scenario.honest_orgs() {
            prop_assert!(
                !base.detected(&org) && !permuted.detected(&org),
                "seed {seed}: honest {org} falsely accused"
            );
        }
    }
}

/// Replay determinism for the seed under investigation: honours
/// `NONREP_SIM_SEED` so a failure reported elsewhere can be pinned here.
#[test]
fn seeded_fleet_replays_bit_for_bit() {
    let seed = std::env::var("NONREP_SIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let scenario = Scenario::from_seed(seed);
    let a = run_fleet(&scenario, 0, &scratch("replay-a")).unwrap();
    let b = run_fleet(&scenario, 0, &scratch("replay-b")).unwrap();
    assert_eq!(a, b, "seed {seed}: replay diverged");
    assert!(
        a.runs.iter().any(|r| !r.facts.is_empty()),
        "seed {seed}: fleet established no facts at all"
    );
}
