//! The fleet engine: builds a world from a [`Scenario`], drives the work
//! items in a schedule-seed-derived order, and adjudicates every run with
//! anchor corroboration.
//!
//! # Determinism and schedule invariance
//!
//! Two different kinds of reproducibility are engineered here:
//!
//! - **Replay determinism** — `run_fleet(scenario, s)` twice yields
//!   byte-identical [`FleetOutcome`]s: every key, run id, payload and
//!   channel-fault verdict derives from the scenario seed (the fault plan
//!   keys drop decisions off `(seed, link, attempt)`, never off shared RNG
//!   state).
//! - **Schedule invariance** — `run_fleet(scenario, a)` and
//!   `run_fleet(scenario, b)` yield *equal verdicts* for any two schedule
//!   seeds, even though the permuted execution order changes every
//!   signature (MSS leaf order), every channel-drop pattern, and the
//!   record order of multi-item logs. The verdict layer never looks at
//!   any of those: facts compare token kind/issuer/subject/run plus the
//!   set of logs holding them, and byzantine organisations participate in
//!   exactly one item so their crafted submissions are order-free.
//!
//! The retry budget is sized above the scenario's bounded consecutive-drop
//! budget, so message delivery (and hence run completion) is guaranteed —
//! losses perturb *how* evidence is produced, never *whether* it is.
//!
//! # Sharded evidence planes
//!
//! When `scenario.evidence_shards > 1` the durable organisation runs on a
//! [`ShardedEvidenceLog`] instead of a single `FileLog`: evidence routes
//! to shards by run id, every flush cuts per-shard epochs plus one
//! super-epoch on the meta shard, gossip carries the super-epochs
//! (`STEP_SUPER_EPOCH`), and the org's submissions are per-run
//! shard-tagged windows the adjudicator corroborates against the gossiped
//! super-epoch anchors. Its crash faults land *at the shard barrier*: the
//! kill leaves a half-written append image on one shard's tail, which
//! `ShardedEvidenceLog::open_recover` must drop. Only fully durable
//! (anchored) records precede the torn bytes, so recovery is verdict-
//! neutral and schedule invariance holds across the whole family.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nonrep_core::dispute::{Adjudicator, Verdict, WindowSubmission};
use nonrep_crypto::digest::{sha256, Digest};
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, SignatureScheme};
use nonrep_net::bus::LocalBus;
use nonrep_net::fault::FaultPlan;
use nonrep_net::latency::LatencyModel;
use nonrep_net::retry::{ReliableRequester, RetryPolicy};
use nonrep_protocols::gossip::{AnchorGossip, AnchorGossipHandler, AnchorStore};
use nonrep_protocols::invocation::direct::{DirectClient, DirectServerHandler};
use nonrep_protocols::invocation::fair_offline::{
    FairClient, FairServerHandler, FairServerRuntime, OfflineTtpHandler, ServerConduct,
};
use nonrep_protocols::invocation::inline_ttp::{InlineTtpClient, InlineTtpHandler};
use nonrep_protocols::invocation::voluntary::{VoluntaryClient, VoluntaryServerHandler};
use nonrep_protocols::invocation::RequestExecutor;
use nonrep_protocols::party::{KeyDirectory, Party, StaticKeyDirectory};
use nonrep_protocols::tokens::TokenKind;
use nonrep_protocols::{B2BCoordinator, BatchPolicy, CommitmentMode, ExchangeSupervisor};
use nonrep_store::log::{FileLog, SyncPolicy};
use nonrep_store::record::ChainViolation;
use nonrep_store::{MemoryLog, ShardedEvidenceLog};
use nonrep_types::ids::{OrgId, RunId};
use nonrep_types::time::LogicalClock;

use crate::adversary::{
    Adversary, EquivocatingTtp, EvidenceWithholder, ForgedRolloverSubmitter, ForkHistorySubmitter,
    HonestSubmitter, TokenReplayer,
};
use crate::scenario::{Adversity, Role, Scenario, Variant, WorkItem};

/// The adjudicated result of one work item, reduced to the
/// schedule-invariant verdict content. Two outcomes compare equal exactly
/// when the adjudicator established the same things.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Scenario item index.
    pub index: usize,
    /// The adjudicated run.
    pub run_id: RunId,
    /// Protocol variant driven.
    pub variant: &'static str,
    /// `true` if the client's invocation returned success.
    pub completed: bool,
    /// Established facts: `(kind, issuer, subject, held_by)` with
    /// `held_by` sorted.
    pub facts: BTreeSet<(String, String, String, Vec<String>)>,
    /// Submitters whose evidence failed verification.
    pub suspects: BTreeSet<String>,
    /// `(org, violation-kind)` pairs established against submitters.
    pub violations: BTreeSet<(String, String)>,
    /// Issuers proven to have both resolved and aborted the run.
    pub conflicting_decisions: BTreeSet<String>,
    /// Organisations convicted as protocol-time defectors: a TTP-signed
    /// dispute `Decision` in the adjudicated evidence names them for
    /// this run (fair-offline dispute sub-protocol), or their own
    /// submission pairs the counterparty's `NRR_resp` with a TTP `Abort`
    /// token (the receipt-then-abort race, `Verdict::abort_after_receipt`).
    pub defectors: BTreeSet<String>,
    /// `true` if the agreed TTP's `Abort` token is among the established
    /// facts — the run was closed by the abort choreography (a
    /// supervisor timeout escalation) rather than by key release.
    pub aborted: bool,
    /// Parties attributed as *stalling* a timeout-aborted run: they
    /// provably started it and never produced the receipt the abort
    /// stands in for (`Verdict::stalled_parties`). Attribution, not
    /// conviction — but in the simulator's bounded-failure world only a
    /// genuine staller ever earns it, so [`FleetOutcome::detected`]
    /// counts it.
    pub stalled: BTreeSet<String>,
}

/// The adjudicated result of a whole fleet execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOutcome {
    /// Scenario seed.
    pub seed: u64,
    /// Schedule seed the items were permuted with.
    pub schedule_seed: u64,
    /// Per-item outcomes, in scenario (not execution) order.
    pub runs: Vec<RunOutcome>,
}

impl FleetOutcome {
    /// `true` if `org` was flagged suspect in at least one run, or
    /// convicted as a protocol-time defector.
    pub fn detected(&self, org: &OrgId) -> bool {
        self.runs.iter().any(|r| {
            r.suspects.contains(org.as_str())
                || r.defectors.contains(org.as_str())
                || r.stalled.contains(org.as_str())
        })
    }

    /// Every organisation flagged suspect anywhere.
    pub fn all_suspects(&self) -> BTreeSet<String> {
        self.runs
            .iter()
            .flat_map(|r| r.suspects.iter().cloned())
            .collect()
    }

    /// `true` if both executions established the same verdicts (the
    /// schedule seed itself is allowed to differ).
    pub fn verdicts_match(&self, other: &FleetOutcome) -> bool {
        self.seed == other.seed && self.runs == other.runs
    }
}

fn violation_label(v: &ChainViolation) -> &'static str {
    match v {
        ChainViolation::BrokenLink { .. } => "broken_link",
        ChainViolation::BadSequence { .. } => "bad_sequence",
        ChainViolation::BadGenesis => "bad_genesis",
        ChainViolation::HeadMismatch { .. } => "head_mismatch",
        ChainViolation::ForkedHistory { .. } => "forked_history",
        ChainViolation::WithheldRecords { .. } => "withheld_records",
    }
}

fn derive_seed(seed: u64, org: &OrgId, salt: u64) -> u64 {
    let mut x = seed ^ salt;
    for b in org.as_str().bytes() {
        x = (x ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    x | 1
}

struct OrgHandle {
    conduct: Box<dyn Adversary>,
    coordinator: Arc<B2BCoordinator>,
    gossip: AnchorGossip,
    /// `false` for organisations that never seal epochs (nothing to
    /// gossip, and an exhausted org could not sign the frames anyway).
    gossips: bool,
}

/// The receipt window fair servers arm on the shared supervisor: how
/// long (in simulated milliseconds) a client may sit between the step-2
/// response and the step-3 receipt before the server escalates to the
/// TTP's abort choreography. Scenario time only advances when a conduct
/// role burns it, so honest runs never come near the deadline.
const RECEIPT_WINDOW_MS: u64 = 400;

struct Fleet<'a> {
    scenario: &'a Scenario,
    bus: Arc<LocalBus>,
    clock: LogicalClock,
    supervisor: Arc<ExchangeSupervisor>,
    dir: Arc<StaticKeyDirectory>,
    keys: BTreeMap<OrgId, Arc<KeyPair>>,
    handles: BTreeMap<OrgId, OrgHandle>,
    anchors: Arc<AnchorStore>,
    durable_path: PathBuf,
    /// Directory of `o0`'s sharded plane when
    /// `scenario.evidence_shards > 1` (unused otherwise).
    sharded_dir: PathBuf,
    retry: RetryPolicy,
}

fn echo_executor() -> Arc<dyn RequestExecutor> {
    Arc::new(|_caller: &OrgId, req: &[u8]| Ok([b"ok:".as_slice(), req].concat()))
}

impl<'a> Fleet<'a> {
    fn build(scenario: &'a Scenario, scratch: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(scratch)?;
        let fault = FaultPlan::lossy(
            scenario.drop_probability,
            scenario.max_consecutive_drops,
            scenario.seed,
        );
        let retry = RetryPolicy::new(scenario.max_consecutive_drops + 2);
        let bus = LocalBus::with_config(fault, LatencyModel::Zero, scenario.seed);
        let clock = LogicalClock::new();
        let supervisor = ExchangeSupervisor::new(Arc::new(clock.clone()));
        let dir = Arc::new(StaticKeyDirectory::new());
        let durable_path = scratch.join(format!("{}-o0.log", scenario.seed));
        let _ = std::fs::remove_file(&durable_path);
        let sharded_dir = scratch.join(format!("{}-o0-shards", scenario.seed));
        let _ = std::fs::remove_dir_all(&sharded_dir);
        let mut fleet = Fleet {
            scenario,
            bus,
            clock,
            supervisor,
            dir,
            keys: BTreeMap::new(),
            handles: BTreeMap::new(),
            anchors: Arc::new(AnchorStore::new()),
            durable_path,
            sharded_dir,
            retry,
        };

        let orgs: Vec<OrgId> = scenario
            .regular
            .iter()
            .chain(std::iter::once(&scenario.ttp))
            .chain(scenario.exhausted.iter())
            .cloned()
            .collect();
        for org in &orgs {
            let exhausted = scenario.exhausted.as_ref() == Some(org);
            // The hierarchical org gets the same 128-signature capacity as
            // everyone else (2^5 subtrees of 2^2 leaves vs one 2^7 tree),
            // but crosses a certified subtree rollover every 4 signatures
            // — rollover is routine, not an edge case, in every schedule.
            let scheme = if exhausted {
                SignatureScheme::Mss { height: 4 }
            } else if scenario.hierarchical.as_ref() == Some(org) {
                SignatureScheme::Hss {
                    root_height: 5,
                    subtree_height: 2,
                }
            } else if *org == scenario.ttp {
                SignatureScheme::Mss {
                    height: scenario.ttp_key_height,
                }
            } else {
                SignatureScheme::Mss {
                    height: scenario.key_height,
                }
            };
            let mut rng = SecureRandom::from_seed(derive_seed(scenario.seed, org, 0x6b65));
            let keys = Arc::new(KeyPair::generate(scheme, &mut rng));
            fleet.dir.insert(org.clone(), keys.verifying_key());
            fleet.keys.insert(org.clone(), keys);
        }
        for org in &orgs {
            fleet.install(org, false)?;
        }
        // Key exhaustion is injected *before* the scenario starts: the
        // burn count then never depends on the schedule.
        if let Some(x) = &scenario.exhausted {
            let keys = &fleet.keys[x];
            while keys.sign_digest(&Digest::ZERO).is_ok() {}
        }
        Ok(fleet)
    }

    /// Builds (or, after a crash, rebuilds) the full protocol stack of
    /// `org` and registers it on the bus. `recovered` selects
    /// `FileLog::open_recover` for the durable organisation.
    fn install(&mut self, org: &OrgId, recovered: bool) -> std::io::Result<()> {
        let scenario = self.scenario;
        let role = scenario.role_of(org);
        let exhausted = scenario.exhausted.as_ref() == Some(org);
        let durable = *org == scenario.regular[0];
        // Per-record commitment for organisations whose logs must carry no
        // epoch anchors (the replayer's poison pill lands after the final
        // flush; the exhausted org cannot sign seals); everyone else runs
        // the batched pipeline and gossips its anchors.
        let batched = !exhausted && role != Some(Role::TokenReplayer);
        let mode = if batched {
            CommitmentMode::Batched(BatchPolicy::new(2))
        } else {
            CommitmentMode::PerRecord
        };
        let salt = if recovered { 0x7265_6375 } else { 0x7274 };
        let rng = SecureRandom::from_seed(derive_seed(scenario.seed, org, salt));
        let party = if durable && scenario.evidence_shards > 1 {
            // The durable organisation on the sharded evidence plane:
            // per-run shard routing, one group-commit pool under every
            // shard, super-epoch anchors on the meta shard.
            let sharded = if recovered {
                ShardedEvidenceLog::open_recover(
                    &self.sharded_dir,
                    scenario.evidence_shards,
                    SyncPolicy::GroupCommit,
                )
            } else {
                ShardedEvidenceLog::open(
                    &self.sharded_dir,
                    scenario.evidence_shards,
                    SyncPolicy::GroupCommit,
                )
            }
            .map_err(|e| std::io::Error::other(e.to_string()))?;
            Party::with_sharded_commitment(
                org.clone(),
                Arc::clone(&self.keys[org]),
                Arc::new(self.clock.clone()),
                Arc::new(sharded),
                Arc::clone(&self.dir) as Arc<dyn KeyDirectory>,
                rng,
                mode,
            )
        } else {
            let log: Arc<dyn nonrep_store::EvidenceLog> = if durable {
                let file = if recovered {
                    FileLog::open_recover_with(&self.durable_path, SyncPolicy::WriteThrough)
                } else {
                    FileLog::open_with(&self.durable_path, SyncPolicy::WriteThrough)
                }
                .map_err(|e| std::io::Error::other(e.to_string()))?;
                Arc::new(file)
            } else {
                Arc::new(MemoryLog::new())
            };
            Party::with_commitment(
                org.clone(),
                Arc::clone(&self.keys[org]),
                Arc::new(self.clock.clone()),
                log,
                Arc::clone(&self.dir) as Arc<dyn KeyDirectory>,
                rng,
                mode,
            )
        };
        let coordinator = B2BCoordinator::new(
            org.clone(),
            ReliableRequester::new(self.bus.clone(), self.retry),
        );
        self.bus.register(org.clone(), coordinator.clone());
        if *org == scenario.ttp {
            coordinator.register_handler(InlineTtpHandler::terminal(
                party.clone(),
                coordinator.clone(),
            ));
            coordinator.register_handler(OfflineTtpHandler::new(party.clone()));
        } else {
            coordinator.register_handler(DirectServerHandler::new(party.clone(), echo_executor()));
            coordinator
                .register_handler(VoluntaryServerHandler::new(party.clone(), echo_executor()));
            // Protocol-time conduct: the defecting server withholds the
            // fair-exchange step-4 key on the wire, the stalling server
            // goes silent before releasing it (both submit honestly —
            // the wire behaviour is the attack).
            let fair_conduct = match role {
                Some(Role::DefectingServer) => ServerConduct::WithholdKey,
                Some(Role::StallingServer) => ServerConduct::Stall,
                _ => ServerConduct::Honest,
            };
            // Every fair server arms the shared supervisor with the
            // receipt window; a client that goes silent after step 2 is
            // escalated to the TTP's abort choreography at sweep time.
            coordinator.register_handler(FairServerHandler::with_runtime(
                party.clone(),
                coordinator.clone(),
                echo_executor(),
                scenario.ttp.clone(),
                fair_conduct,
                FairServerRuntime {
                    supervision: Some((Arc::clone(&self.supervisor), RECEIPT_WINDOW_MS)),
                    journal: None,
                },
            ));
        }
        coordinator.register_handler(Arc::new(AnchorGossipHandler::new(
            party.clone(),
            Arc::clone(&self.anchors),
        )));
        let forged_subject = sha256(format!("forged-{}-{org}", scenario.seed).as_bytes());
        let conduct: Box<dyn Adversary> = match role {
            None => Box::new(HonestSubmitter::new(party.clone())),
            Some(Role::ForkHistory) => {
                Box::new(ForkHistorySubmitter::new(party.clone(), forged_subject))
            }
            Some(Role::Withholder) => Box::new(EvidenceWithholder::new(party.clone())),
            Some(Role::TokenReplayer) => Box::new(TokenReplayer::new(
                party.clone(),
                replay_target_run(scenario),
            )),
            Some(Role::ForgedRollover) => Box::new(ForgedRolloverSubmitter::new(
                party.clone(),
                derive_seed(scenario.seed, org, 0x726f_6c6c),
            )),
            Some(Role::EquivocatingTtp) => {
                Box::new(EquivocatingTtp::new(party.clone(), forged_subject))
            }
            // The defection already happened on the wire; at dispute time
            // these parties present their genuine logs like everyone
            // honest.
            Some(Role::DefectingServer | Role::StallingClient | Role::StallingServer) => {
                Box::new(HonestSubmitter::new(party.clone()))
            }
        };
        let gossip = AnchorGossip::new(party, coordinator.clone());
        self.handles.insert(
            org.clone(),
            OrgHandle {
                conduct,
                coordinator,
                gossip,
                gossips: batched,
            },
        );
        Ok(())
    }

    fn crash_and_recover_durable(&mut self) -> std::io::Result<()> {
        let org = self.scenario.regular[0].clone();
        // Drop the whole stack first so the log closes, then recover the
        // evidence from disk and rebuild around the recovered log.
        self.bus.unregister(&org);
        self.handles.remove(&org);
        if self.scenario.evidence_shards > 1 {
            // The kill lands at the shard barrier: leave the half-written
            // append image a mid-write crash leaves on one shard's tail.
            // Recovery must drop exactly these bytes — every durable
            // (anchored) record precedes them, so the verdicts cannot
            // move. Which shard is torn derives from the seed.
            let shard = (self.scenario.seed % u64::from(self.scenario.evidence_shards)) as u32;
            let path = self.sharded_dir.join(format!("shard-{shard:03}.log"));
            let mut file = std::fs::OpenOptions::new().append(true).open(&path)?;
            use std::io::Write;
            file.write_all(b"torn mid-append frame")?;
            file.sync_all()?;
        }
        self.install(&org, true)?;
        self.bus.fault_plan().recover(&org);
        Ok(())
    }

    fn flush_and_gossip(&self, org: &OrgId) {
        let handle = &self.handles[org];
        handle
            .conduct
            .party()
            .flush_evidence()
            .unwrap_or_else(|e| panic!("{org}: flush failed: {e}"));
        if handle.gossips {
            // Anchors land in the shared store on first delivery, so a
            // bounded fan-out keeps corroboration intact while capping
            // the per-flush signature cost at fleet scale.
            let mut peers: Vec<OrgId> =
                self.handles.keys().filter(|o| *o != org).cloned().collect();
            peers.truncate(self.scenario.gossip_fanout);
            handle
                .gossip
                .gossip_to(&peers)
                .unwrap_or_else(|e| panic!("{org}: anchor gossip failed: {e}"));
        }
    }

    fn run_item(&mut self, item: &WorkItem) -> std::io::Result<bool> {
        match &item.adversity {
            Some(Adversity::CrashRecover(org)) => self.bus.fault_plan().crash(org),
            Some(Adversity::Partition(a, b)) => self.bus.fault_plan().partition(a, b),
            None => {}
        }
        let handle = &self.handles[&item.client];
        let party = Arc::clone(handle.conduct.party());
        let coordinator = Arc::clone(&handle.coordinator);
        let request = format!("req-{}-{}", self.scenario.seed, item.index).into_bytes();
        let completed = match item.variant {
            Variant::Direct => DirectClient::new(party, coordinator)
                .invoke_with(item.run_id, &item.server, request)
                .is_ok(),
            Variant::Voluntary => VoluntaryClient::new(party, coordinator)
                .invoke_with(item.run_id, &item.server, request)
                .is_ok(),
            Variant::InlineTtp => {
                InlineTtpClient::new(party, coordinator, self.scenario.ttp.clone())
                    .invoke_with(item.run_id, &item.server, request)
                    .is_ok()
            }
            Variant::FairOffline => {
                let client = FairClient::new(party, coordinator, self.scenario.ttp.clone());
                if self.scenario.role_of(&item.client) == Some(Role::StallingClient) {
                    // The staller walks away inside the receipt window.
                    // Its silence costs the window; the server's
                    // supervisor then times the run out into the TTP's
                    // abort choreography. The run never completes for a
                    // client that stalls it.
                    let _ = client.invoke_stalling(item.run_id, &item.server, request);
                    self.clock.advance(RECEIPT_WINDOW_MS);
                    for report in self.supervisor.sweep() {
                        assert_eq!(report.run, item.run_id, "foreign watch fired: {report}");
                    }
                    false
                } else if self.scenario.slow.as_ref() == Some(&item.client) {
                    // The slow-but-honest peer answers one simulated
                    // millisecond under the deadline; nothing may fire.
                    let clock = self.clock.clone();
                    let supervisor = Arc::clone(&self.supervisor);
                    client
                        .invoke_paced(item.run_id, &item.server, request, move || {
                            clock.advance(RECEIPT_WINDOW_MS - 1);
                            let fired = supervisor.sweep();
                            assert!(fired.is_empty(), "slow peer timed out: {fired:?}");
                        })
                        .is_ok()
                } else {
                    client
                        .invoke_with(item.run_id, &item.server, request)
                        .is_ok()
                }
            }
        };
        match &item.adversity {
            Some(Adversity::CrashRecover(_)) => self.crash_and_recover_durable()?,
            Some(Adversity::Partition(a, b)) => self.bus.fault_plan().heal(a, b),
            None => {}
        }
        // Participants seal what the run produced and gossip the anchors
        // while every organisation is reachable again.
        for p in item.participants(&self.scenario.ttp) {
            self.flush_and_gossip(&p);
        }
        Ok(completed)
    }

    fn adjudicate(&self, item: &WorkItem, completed: bool) -> RunOutcome {
        let adjudicator = Adjudicator::new(Arc::clone(&self.dir) as Arc<dyn KeyDirectory>);
        let submissions: Vec<WindowSubmission> = item
            .participants(&self.scenario.ttp)
            .iter()
            .map(|p| self.handles[p].conduct.submission(item.run_id))
            .collect();
        // Mixed corroboration: shard-tagged submissions (the sharded
        // durable org) against gossiped super-epochs, everyone else
        // against plain epoch anchors.
        let anchors = self.anchors.snapshot();
        let supers = self.anchors.snapshot_supers();
        let verdict = adjudicator.adjudicate_gossiped(item.run_id, &submissions, &anchors, &supers);
        reduce(item, completed, &verdict, &self.scenario.ttp)
    }
}

/// The run id the token replayer re-files foreign tokens under: reserved,
/// never adjudicated, and distinct from every item's run id.
fn replay_target_run(scenario: &Scenario) -> RunId {
    RunId::from_u128(((scenario.seed as u128) << 16) | 0xdead)
}

fn reduce(item: &WorkItem, completed: bool, verdict: &Verdict, ttp: &OrgId) -> RunOutcome {
    let facts = verdict
        .facts
        .iter()
        .map(|f| {
            let mut held: Vec<String> = f.held_by.iter().map(|o| o.to_string()).collect();
            held.sort();
            (
                f.kind.label().to_string(),
                f.issuer.to_string(),
                f.subject.to_string(),
                held,
            )
        })
        .collect();
    RunOutcome {
        index: item.index,
        run_id: item.run_id,
        variant: item.variant.name(),
        completed,
        facts,
        suspects: verdict
            .suspect_submitters()
            .iter()
            .map(ToString::to_string)
            .collect(),
        violations: verdict
            .violations()
            .iter()
            .map(|(o, v)| (o.to_string(), violation_label(v).to_string()))
            .collect(),
        conflicting_decisions: verdict
            .conflicting_decisions()
            .iter()
            .map(ToString::to_string)
            .collect(),
        defectors: verdict
            .convicted_defectors(ttp)
            .iter()
            .chain(verdict.abort_after_receipt(ttp).iter())
            .map(ToString::to_string)
            .collect(),
        aborted: verdict
            .facts
            .iter()
            .any(|f| f.kind == TokenKind::Abort && f.issuer == *ttp),
        stalled: verdict
            .stalled_parties(ttp)
            .iter()
            .map(ToString::to_string)
            .collect(),
    }
}

/// Executes `scenario` with the item order derived from `schedule_seed`
/// and adjudicates every run. `scratch` hosts the durable organisation's
/// `FileLog` — or its sharded plane's directory when
/// `scenario.evidence_shards > 1` (one path per scenario seed —
/// concurrent fleets need distinct scratch directories).
///
/// # Errors
///
/// [`std::io::Error`] if the durable log cannot be created or recovered.
/// Protocol-level failures do not error the fleet: they surface as
/// `completed == false` on the item (and, for byzantine conduct, as
/// suspects in the verdicts).
pub fn run_fleet(
    scenario: &Scenario,
    schedule_seed: u64,
    scratch: &Path,
) -> std::io::Result<FleetOutcome> {
    let mut fleet = Fleet::build(scenario, scratch)?;
    let mut completed = vec![false; scenario.items.len()];
    for index in scenario.schedule(schedule_seed) {
        let item = scenario.items[index].clone();
        completed[index] = fleet.run_item(&item)?;
    }
    // Final seal + gossip for everyone, then let the adversaries plant
    // their dispute-time evidence.
    let orgs: Vec<OrgId> = fleet.handles.keys().cloned().collect();
    for org in &orgs {
        fleet.flush_and_gossip(org);
    }
    for org in &orgs {
        fleet.handles[org].conduct.finalize();
    }
    let runs = scenario
        .items
        .iter()
        .map(|item| fleet.adjudicate(item, completed[item.index]))
        .collect();
    Ok(FleetOutcome {
        seed: scenario.seed,
        schedule_seed,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonrep_store::EvidenceLog;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nonrep-sim-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn showcase_replays_identically_for_equal_seeds() {
        let scenario = Scenario::showcase(3);
        let a = run_fleet(&scenario, 0, &scratch("replay-a")).unwrap();
        let b = run_fleet(&scenario, 0, &scratch("replay-b")).unwrap();
        assert_eq!(a, b);
        assert!(!a.runs.is_empty());
        assert!(a.runs.iter().any(|r| !r.facts.is_empty()));
    }

    #[test]
    fn showcase_detects_every_byzantine_and_accuses_no_honest_org() {
        let scenario = Scenario::showcase(11);
        let out = run_fleet(&scenario, 0, &scratch("detect")).unwrap();
        for (org, role) in &scenario.byzantine {
            assert!(out.detected(org), "{org} ({}) not detected", role.name());
        }
        // The fork and the equivocating TTP are convicted specifically by
        // anchor corroboration; the withholder by the attested tail.
        let all_violations: BTreeSet<(String, String)> = out
            .runs
            .iter()
            .flat_map(|r| r.violations.iter().cloned())
            .collect();
        assert!(all_violations.contains(&("o2".into(), "forked_history".into())));
        assert!(all_violations.contains(&("ttp".into(), "forked_history".into())));
        assert!(all_violations.contains(&("o3".into(), "withheld_records".into())));
        // The forged-rollover org is convicted by cert cryptography alone:
        // no chain violation is ever established against it.
        assert!(all_violations.iter().all(|(o, _)| o != "o5"));
        // The wire-conduct adversaries (defecting server, both stallers)
        // are convicted from protocol evidence alone — their own
        // submissions are honest, so neither a chain violation nor a
        // suspect flag is ever raised against them.
        for wire_adversary in ["o6", "o7", "o8"] {
            assert!(all_violations.iter().all(|(o, _)| o != wire_adversary));
            assert!(out
                .runs
                .iter()
                .all(|r| !r.suspects.contains(wire_adversary)));
        }
        // Withholding the key (o6) and stalling before its release (o8)
        // are punished identically: a TTP dispute decision.
        let defectors: BTreeSet<String> = out
            .runs
            .iter()
            .flat_map(|r| r.defectors.iter().cloned())
            .collect();
        assert_eq!(
            defectors,
            BTreeSet::from(["o6".to_string(), "o8".to_string()])
        );
        // The stalling client is attributed through the timeout abort:
        // exactly its run is abort-closed, and exactly it is named.
        let stalled: BTreeSet<String> = out
            .runs
            .iter()
            .flat_map(|r| r.stalled.iter().cloned())
            .collect();
        assert_eq!(stalled, BTreeSet::from(["o7".to_string()]));
        for run in &out.runs {
            let staller_item = scenario.items[run.index].client == scenario.regular[7];
            assert_eq!(run.aborted, staller_item, "item {}", run.index);
            // Convictions and attributions land only on fair-offline runs.
            if !run.defectors.is_empty() || !run.stalled.is_empty() {
                assert_eq!(run.variant, "fair_offline", "item {}", run.index);
            }
        }
        for org in scenario.honest_orgs() {
            assert!(!out.detected(&org), "honest {org} falsely accused");
        }
        // The slow-but-honest peer (o1) drove fair runs right up against
        // the deadline and was never accused of anything.
        assert!(!out.detected(scenario.slow.as_ref().unwrap()));
        // The exhausted client's item and the stalled run fail; every
        // other item completes.
        for run in &out.runs {
            let item = &scenario.items[run.index];
            let expect_fail = item.client == *scenario.exhausted.as_ref().unwrap()
                || scenario.role_of(&item.client) == Some(Role::StallingClient);
            assert_eq!(run.completed, !expect_fail, "item {}", run.index);
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "hundred-org fleet; run in release (scripts/sim.sh stall sweep)"
    )]
    fn metropolis_convicts_stallers_at_fleet_scale_under_any_schedule() {
        let scenario = Scenario::metropolis(41);
        assert!(scenario.regular.len() >= 100);
        let base = run_fleet(&scenario, 0, &scratch("metro-base")).unwrap();
        let permuted = run_fleet(&scenario, 42, &scratch("metro-perm")).unwrap();
        assert!(base.verdicts_match(&permuted));
        for (org, role) in &scenario.byzantine {
            assert!(base.detected(org), "{org} ({}) not detected", role.name());
        }
        for org in scenario.honest_orgs() {
            assert!(!base.detected(&org), "honest {org} falsely accused");
        }
        // Every stalled or crashed run terminated with a verdict: the
        // staller's run is the only abort-closed one, and it names the
        // staller alone.
        let aborted: Vec<&RunOutcome> = base.runs.iter().filter(|r| r.aborted).collect();
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].stalled, BTreeSet::from(["m097".to_string()]));
        assert!(!aborted[0].completed);
        // Everything except the stalled run completed despite the
        // partitions, the crash, and the lossy channel.
        assert_eq!(
            base.runs.iter().filter(|r| !r.completed).count(),
            1,
            "exactly one run (the stalled one) may fail at fleet scale"
        );
    }

    #[test]
    fn showcase_verdicts_survive_a_schedule_permutation() {
        let scenario = Scenario::showcase(17);
        let base = run_fleet(&scenario, 0, &scratch("perm-base")).unwrap();
        let permuted = run_fleet(&scenario, 42, &scratch("perm-alt")).unwrap();
        assert_ne!(scenario.schedule(0), scenario.schedule(42));
        assert!(base.verdicts_match(&permuted));
    }

    #[test]
    fn sharded_showcase_convicts_byzantines_and_survives_permutation() {
        // The full byzantine cast with o0 on a four-way sharded plane:
        // super-epoch gossip, shard-window submissions, and a crash that
        // tears a shard tail at the barrier — same verdicts, any schedule.
        let scenario = Scenario::showcase_sharded(29);
        let base = run_fleet(&scenario, 0, &scratch("shard-base")).unwrap();
        let permuted = run_fleet(&scenario, 42, &scratch("shard-alt")).unwrap();
        assert!(base.verdicts_match(&permuted));
        for (org, role) in &scenario.byzantine {
            assert!(base.detected(org), "{org} ({}) not detected", role.name());
        }
        for org in scenario.honest_orgs() {
            assert!(!base.detected(&org), "honest {org} falsely accused");
        }
        // The sharded org's evidence actually established facts: its
        // shard windows held tokens for at least one adjudicated run.
        let o0 = scenario.regular[0].as_str();
        assert!(base
            .runs
            .iter()
            .flat_map(|r| r.facts.iter())
            .any(|(_, _, _, held)| held.iter().any(|h| h == o0)));
    }

    #[test]
    fn showcase_crash_crosses_the_rollover_boundary_and_recovery_keeps_the_chain() {
        use nonrep_store::record::KeyRollover;

        // Drive the showcase item by item so the hierarchical org's
        // generation can be observed around the crash overlay: its
        // subtrees roll before the crash, the recovery resumes the same
        // generation chain, and rollovers keep arriving afterwards.
        let scenario = Scenario::showcase(13);
        let mut fleet = Fleet::build(&scenario, &scratch("roll-crash")).unwrap();
        let o0 = scenario.regular[0].clone();
        let crash_index = scenario
            .items
            .iter()
            .position(|i| matches!(&i.adversity, Some(Adversity::CrashRecover(org)) if *org == o0))
            .expect("showcase has a crash overlay on o0");
        let mut gen_at_crash = 0;
        for index in scenario.schedule(0) {
            if index == crash_index {
                gen_at_crash = fleet.keys[&o0].generation();
            }
            let item = scenario.items[index].clone();
            fleet.run_item(&item).unwrap();
        }
        let orgs: Vec<OrgId> = fleet.handles.keys().cloned().collect();
        for org in &orgs {
            fleet.flush_and_gossip(org);
        }
        // Subtree exhaustions happened on both sides of the crash: the
        // signer had already rolled when the kill landed, and recovery
        // kept it rolling instead of starving it.
        assert!(gen_at_crash >= 1, "no rollover before the crash");
        let final_gen = fleet.keys[&o0].generation();
        assert!(final_gen > gen_at_crash, "no rollover after recovery");
        // The recovered log persisted every generation's rollover record
        // exactly once (the watermark rescan survives the crash), and all
        // of them verify under o0's registered root.
        let log = Arc::clone(fleet.handles[&o0].conduct.party().log());
        let mut generations: Vec<u32> = Vec::new();
        log.for_each(&mut |r| {
            if let Some(roll) = KeyRollover::from_record(r) {
                generations.push(roll.generation);
            }
        });
        // Exactly-once and in order: a contiguous prefix of the
        // generation chain (a rollover triggered by the very last seal's
        // own signature, or by post-seal gossip signing, is only
        // persisted at the *next* seal — so the newest generations may
        // legitimately still be pending).
        let persisted = generations.len() as u32;
        assert_eq!(
            generations,
            (1..=persisted).collect::<Vec<u32>>(),
            "rollover records must cover a generation prefix exactly once"
        );
        assert!(
            persisted >= gen_at_crash,
            "the crash must not lose persisted rollovers ({persisted} < {gen_at_crash})"
        );
        let judge = Adjudicator::new(Arc::clone(&fleet.dir) as Arc<dyn KeyDirectory>);
        let report = judge.verify_log_in_place(o0.clone(), log.as_ref());
        assert!(report.clean());
        assert_eq!(report.rollovers, persisted as usize);
        assert_eq!(report.rollovers_verified, report.rollovers);
    }

    #[test]
    fn group_commit_backlog_kill_recovers_the_acked_prefix_and_verdicts_hold() {
        use nonrep_protocols::tokens::TokenKind;
        use std::time::{Duration, Instant};

        // The sharded fleet runs its durable org under
        // `SyncPolicy::GroupCommit`. Drive one item to completion, then
        // pile an un-flushed burst onto a different shard and kill the
        // org with the backlog still in flight: recovery must come back
        // to exactly the acked prefix, and the already-adjudicated
        // verdict must not move.
        let scenario = Scenario::showcase_sharded(31);
        let mut fleet = Fleet::build(&scenario, &scratch("gc-backlog")).unwrap();
        let item = scenario.items[0].clone();
        let completed = fleet.run_item(&item).unwrap();
        assert!(completed);
        let before = fleet.adjudicate(&item, completed);
        assert!(before.suspects.is_empty());
        assert!(!before.facts.is_empty());

        let o0 = scenario.regular[0].clone();
        let party = Arc::clone(fleet.handles[&o0].conduct.party());
        let plane = Arc::clone(party.sharded_plane().unwrap().log());
        let shards = scenario.evidence_shards;
        // A run on a different shard than the adjudicated item keeps the
        // item's submission window byte-identical across the kill.
        let item_shard = plane.shard_for(&item.run_id);
        let burst_run = (1u128..)
            .map(RunId::from_u128)
            .find(|r| {
                plane.shard_for(r) != item_shard && scenario.items.iter().all(|i| i.run_id != *r)
            })
            .unwrap();
        for i in 0..3u8 {
            let t = party
                .issue_token(TokenKind::NroReq, burst_run, sha256(&[i]))
                .unwrap();
            party.store_token(&t).unwrap();
        }
        // Let the sync thread drain every barrier that was enqueued; what
        // remains un-flushed is the pure in-memory backlog the kill will
        // take. (Stability poll: the backlog count must sit still.)
        let unflushed = |plane: &ShardedEvidenceLog| -> Vec<u64> {
            (0..shards)
                .map(|s| plane.shard(s).unflushed_len())
                .collect()
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        let backlog = loop {
            let sample = unflushed(&plane);
            std::thread::sleep(Duration::from_millis(100));
            if unflushed(&plane) == sample || Instant::now() > deadline {
                break sample;
            }
        };
        assert!(
            backlog.iter().sum::<u64>() > 0,
            "the burst left no backlog to lose"
        );
        let at_kill: Vec<u64> = (0..shards).map(|s| plane.shard(s).len()).collect();

        // Kill o0 mid-backlog: forget an Arc so no destructor ever drains
        // the buffered tail, then recover from disk and rebuild.
        fleet.bus.unregister(&o0);
        fleet.handles.remove(&o0);
        std::mem::forget(party);
        fleet.install(&o0, true).unwrap();

        let recovered = Arc::clone(
            fleet.handles[&o0]
                .conduct
                .party()
                .sharded_plane()
                .unwrap()
                .log(),
        );
        for s in 0..shards {
            assert_eq!(
                recovered.shard(s).len(),
                at_kill[s as usize] - backlog[s as usize],
                "shard {s}: recovery must resume at the acked prefix"
            );
        }
        // The verdict on the already-adjudicated run is unchanged: the
        // backlog the kill took was never part of any submission.
        let after = fleet.adjudicate(&item, completed);
        assert_eq!(before, after);
        // And the recovered plane keeps sealing: fresh evidence lands,
        // flushes, and the whole plane verifies end to end.
        let party = Arc::clone(fleet.handles[&o0].conduct.party());
        for i in 0..2u8 {
            let t = party
                .issue_token(TokenKind::NroReq, burst_run, sha256(&[0x40 | i]))
                .unwrap();
            party.store_token(&t).unwrap();
        }
        party.flush_evidence().unwrap();
        recovered.verify_all().unwrap();
    }

    #[test]
    fn shard_tear_below_the_barrier_flags_stale_super_epochs_and_reseals() {
        use nonrep_protocols::tokens::TokenKind;

        // Build the sharded fleet and drive the first item (o0 client):
        // its flush seals the run's shard and cuts a covering super-epoch.
        let scenario = Scenario::showcase_sharded(23);
        let mut fleet = Fleet::build(&scenario, &scratch("shard-tear")).unwrap();
        let item = scenario.items[0].clone();
        assert!(fleet.run_item(&item).unwrap());
        let o0 = scenario.regular[0].clone();
        let torn_shard = {
            let party = fleet.handles[&o0].conduct.party();
            let plane = party.sharded_plane().unwrap().log();
            let shard = plane.shard_for(&item.run_id);
            let (_, sup) = plane.latest_super_epoch().expect("super-epoch sealed");
            let anchor = sup.anchor_for(shard).expect("run's shard anchored");
            assert!(plane.shard(shard).len() > anchor.hi);
            shard
        };
        // Crash o0 and destroy the anchored shard *below* its sealed
        // boundary — unlike a torn append, this loses records the global
        // anchor vouches for.
        fleet.bus.unregister(&o0);
        fleet.handles.remove(&o0);
        let path = fleet.sharded_dir.join(format!("shard-{torn_shard:03}.log"));
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(1).unwrap();
        drop(file);
        fleet.install(&o0, true).unwrap();
        fleet.bus.fault_plan().recover(&o0);
        let party = Arc::clone(fleet.handles[&o0].conduct.party());
        let plane = Arc::clone(party.sharded_plane().unwrap().log());
        // Recovery dropped the torn shard and flagged every super-epoch
        // whose anchor outruns what the disk still holds.
        let recovery = plane.recovery();
        assert!(recovery.shard_dropped[torn_shard as usize] > 0);
        assert!(
            recovery
                .stale_super_epochs
                .iter()
                .any(|s| s.shard == torn_shard && s.recovered_len == 0),
            "stale super-epoch not flagged: {recovery:?}"
        );
        // New evidence on the torn shard re-seals it, and the next
        // super-epoch anchors the re-sealed state (superseding the stale
        // one) — the plane verifies end to end.
        let run = (0u128..)
            .map(RunId::from_u128)
            .find(|r| *r != RunId::from_u128(0) && plane.shard_for(r) == torn_shard)
            .unwrap();
        for i in 0..2u8 {
            let t = party
                .issue_token(TokenKind::NroReq, run, sha256(&[i]))
                .unwrap();
            party.store_token(&t).unwrap();
        }
        party.flush_evidence().unwrap();
        let (_, newest) = plane.latest_super_epoch().unwrap();
        let anchor = newest.anchor_for(torn_shard).expect("re-sealed anchor");
        assert_eq!(anchor.hi + 2, plane.shard(torn_shard).len());
        plane.verify_all().unwrap();
    }
}
