//! Seeded scenario descriptions.
//!
//! A [`Scenario`] is a *pure function of one `u64` seed*: the fleet of
//! organisations, which of them are byzantine (and how), the protocol
//! variant mix, the channel loss rate, and the adversity overlays
//! (crash/recovery, partitions, key exhaustion) are all derived from the
//! seed with a splitmix64 walk — no ambient randomness, no clock. Running
//! the same scenario twice therefore replays the same world, and a failing
//! seed printed by the smoke runner is a complete reproduction recipe.
//!
//! Two generators are provided:
//!
//! - [`Scenario::from_seed`] — the randomised family the property sweep
//!   walks: 2–4 regular organisations, a TTP, an optional exhausted-key
//!   organisation, zero or more byzantine roles, and 2–4 honest work items
//!   plus one *guarantee item* per byzantine party.
//! - [`Scenario::showcase`] — the maximal hand-laid fleet (every byzantine
//!   role at once) used by the `fleet_sim` example and the headline
//!   regression test.
//! - [`Scenario::showcase_sharded`] — the showcase with the durable
//!   organisation on a sharded evidence plane: super-epoch anchors,
//!   per-run shard-window submissions, and crash faults that land at the
//!   shard barrier.
//!
//! Byzantine organisations participate in **exactly one** work item each.
//! Items execute atomically, so a single-item log has the same record
//! order under every schedule permutation — which is what lets the
//! crafted submissions (and hence the verdicts) stay schedule-invariant.
//! The showcase's equivocating TTP is the one sanctioned exception: it
//! additionally adjudicates the defecting server's dispute item. That is
//! safe because its crafted fork is pinned *by token kind* to the inline
//! run's receipt (the offline-TTP records carry no receipts), and the
//! verdict layer reduces submissions to order-free content — so the extra
//! item permutes its log without moving any verdict.

use nonrep_types::ids::{OrgId, RunId};

/// The four NR-invocation protocol variants the simulator can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Three-message direct exchange (paper §3.2, Fig 3(c)).
    Direct,
    /// Wichert et al baseline: client NRO only.
    Voluntary,
    /// All traffic relayed through the inline TTP (Fig 3(a)).
    InlineTtp,
    /// Fair exchange with the offline TTP (escrowed key).
    FairOffline,
}

impl Variant {
    /// Short stable name (logs, repro output).
    pub fn name(self) -> &'static str {
        match self {
            Variant::Direct => "direct",
            Variant::Voluntary => "voluntary",
            Variant::InlineTtp => "inline_ttp",
            Variant::FairOffline => "fair_offline",
        }
    }

    /// `true` if the variant routes through the TTP organisation.
    pub fn uses_ttp(self) -> bool {
        matches!(self, Variant::InlineTtp | Variant::FairOffline)
    }
}

/// How a byzantine organisation misbehaves. Every role except
/// [`Role::DefectingServer`] attacks *at submission time* — during
/// protocol execution those parties run the honest stack, because the
/// attacks in scope are evidence attacks, which is exactly what the
/// paper's adjudication layer must survive. The defecting server is the
/// one protocol-time adversary: it defects *inside* the fair-exchange
/// choreography, and it is convicted not by anything in its own
/// submission but by the TTP's signed dispute decision held in its
/// counterparty's evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Submits an internally consistent *rewritten* history that diverges
    /// from the epoch anchors it gossiped while executing.
    ForkHistory,
    /// Submits a truncated prefix of its log while claiming it is the
    /// whole thing.
    Withholder,
    /// Appends a counterparty's genuine token to its log under a
    /// different run id before submitting.
    TokenReplayer,
    /// Grafts a key-rollover record whose subtree cert was signed by a
    /// root *other than its registered one* onto its submission — the
    /// byzantine move against the hierarchical key lifecycle. The chain
    /// stays intact; only the cert cryptography convicts it.
    ForgedRollover,
    /// An inline TTP that rewrites one of its own receipts, forking its
    /// history against its gossiped anchors.
    EquivocatingTtp,
    /// A fair-offline server that executes the request and collects the
    /// client's receipt, then withholds the step-4 decryption key. The
    /// client's dispute sub-protocol recovers the key from the TTP's
    /// escrow, and the TTP's signed `Decision` token — logged by the
    /// client — convicts the server at adjudication. It submits its
    /// evidence honestly: the defection *is* the attack.
    DefectingServer,
    /// A fair-offline *client* that goes silent inside the receipt
    /// window — after the server's signed response arrives, before the
    /// step-3 receipt goes out. The server's exchange supervisor times
    /// the window out and escalates to the TTP's abort choreography;
    /// the adjudicator then attributes the stall from the abort token
    /// plus the client's own `NRO_req` (`Verdict::stalled_parties`).
    /// Like the defecting server, it submits honestly: walking away
    /// *is* the attack.
    StallingClient,
    /// A fair-offline server that collects the step-3 receipt and then
    /// goes silent before the step-4 key release. The client's session
    /// diverts into the dispute sub-protocol, recovers the key from the
    /// TTP's escrow, and the TTP's signed `Decision` convicts the
    /// server — stalling after taking the receipt is indistinguishable
    /// from withholding the key, and is punished identically.
    StallingServer,
}

impl Role {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Role::ForkHistory => "fork_history",
            Role::Withholder => "withholder",
            Role::TokenReplayer => "token_replayer",
            Role::ForgedRollover => "forged_rollover",
            Role::EquivocatingTtp => "equivocating_ttp",
            Role::DefectingServer => "defecting_server",
            Role::StallingClient => "stalling_client",
            Role::StallingServer => "stalling_server",
        }
    }
}

/// A scripted adversity overlay attached to one work item: applied before
/// the item runs, healed (and, for a crash, recovered from disk) after.
/// Overlays only ever target non-participants of their item, so the
/// bounded-failure budget of the channel is the *only* adversity protocol
/// traffic sees — the overlays exercise the recovery machinery without
/// making delivery (and hence the verdicts) schedule-dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Adversity {
    /// Crash `org` for the duration of the item; afterwards recover its
    /// evidence log from disk (`FileLog::open_recover`) and rebuild its
    /// protocol stack around the recovered log.
    CrashRecover(OrgId),
    /// Partition the two (non-participant) organisations from each other
    /// for the duration of the item.
    Partition(OrgId, OrgId),
}

/// One protocol run to drive: a client invoking a server under a variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkItem {
    /// Position in the scenario (adjudication reports in this order).
    pub index: usize,
    /// Seed-derived run identifier — identical across permutations, so
    /// every schedule adjudicates the same runs.
    pub run_id: RunId,
    /// Protocol variant to run.
    pub variant: Variant,
    /// Invoking organisation.
    pub client: OrgId,
    /// Serving organisation.
    pub server: OrgId,
    /// Optional adversity overlay around this item.
    pub adversity: Option<Adversity>,
}

impl WorkItem {
    /// The organisations whose evidence is submitted when this item is
    /// adjudicated (client, server, and the TTP when the variant uses
    /// one).
    pub fn participants(&self, ttp: &OrgId) -> Vec<OrgId> {
        let mut p = vec![self.client.clone(), self.server.clone()];
        if self.variant.uses_ttp() {
            p.push(ttp.clone());
        }
        p
    }

    /// `true` if `org` takes part in this item.
    pub fn involves(&self, org: &OrgId, ttp: &OrgId) -> bool {
        self.participants(ttp).contains(org)
    }
}

/// A complete seeded scenario: fleet, adversary assignment, work list,
/// and channel-fault budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The seed everything below derives from.
    pub seed: u64,
    /// Regular organisations `o0..`; `o0` is always honest and keeps its
    /// evidence in a `FileLog` (the crash/recovery target).
    pub regular: Vec<OrgId>,
    /// The trusted-third-party organisation.
    pub ttp: OrgId,
    /// An organisation whose signing keys are exhausted before the
    /// scenario starts, if the seed asks for one.
    pub exhausted: Option<OrgId>,
    /// An always-honest organisation running a *hierarchical* (HSS)
    /// signing key, if the seed asks for one: its short subtrees exhaust
    /// and roll over mid-scenario, so the sweep exercises certified
    /// rollover under every schedule — and, when the choice lands on
    /// `o0`, under the crash/recovery overlay too (crash at the rollover
    /// boundary).
    pub hierarchical: Option<OrgId>,
    /// An always-honest organisation whose fair-offline invocations
    /// pause just under the server's receipt deadline (the SlowPeer
    /// conduct), if the scenario fields one: present to prove the
    /// negative — slowness alone must never be convicted.
    pub slow: Option<OrgId>,
    /// Byzantine role per organisation (regular orgs and/or the TTP).
    pub byzantine: Vec<(OrgId, Role)>,
    /// The runs to drive, in index order.
    pub items: Vec<WorkItem>,
    /// Shard count of `o0`'s durable evidence plane: `1` keeps the
    /// classic single `FileLog`; `> 1` puts `o0` on a
    /// `ShardedEvidenceLog` (group-commit pool, per-shard epochs,
    /// super-epoch anchors on the meta shard) — its gossip then carries
    /// super-epochs and its submissions are per-run shard windows.
    pub evidence_shards: u32,
    /// Per-hop message drop probability on the bus.
    pub drop_probability: f64,
    /// Bound on consecutive drops per link (the paper's bounded-failure
    /// assumption; the engine sizes its retry budget above it).
    pub max_consecutive_drops: u32,
    /// Merkle-tree height of the regular organisations' MSS keys
    /// (signature capacity `2^h`). The metropolis fleet shrinks it so a
    /// hundred-organisation world builds quickly.
    pub key_height: u8,
    /// Merkle-tree height of the TTP's key — larger fleets route more
    /// runs through the TTP, so its signature budget scales separately.
    pub ttp_key_height: u8,
    /// Upper bound on anchor-gossip fan-out per flush. Anchors land in
    /// the shared store on first delivery, so a bounded fan-out keeps
    /// corroboration intact while capping the per-flush signature cost
    /// — which is what lets a hundred organisations gossip at all.
    pub gossip_fanout: usize,
}

/// splitmix64 — the derivation PRF for everything scenario-shaped.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A tiny deterministic generator over splitmix64.
struct Derive(u64);

impl Derive {
    fn new(seed: u64, salt: u64) -> Self {
        Self(splitmix64(seed ^ salt))
    }

    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Derives the run id of item `index`: unique within the scenario,
/// distinct across seeds, and never the reserved gossip run id 0.
fn run_id_for(seed: u64, index: usize) -> RunId {
    let hi = splitmix64(seed ^ (index as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
    RunId::from_u128(((hi as u128) << 64) | (index as u128 + 1))
}

impl Scenario {
    /// Derives the randomised scenario family for `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let mut d = Derive::new(seed, 0x5363_656e_6172_696f); // "Scenario"
        let n_regular = 2 + d.below(3) as usize;
        let regular: Vec<OrgId> = (0..n_regular)
            .map(|i| OrgId::new(format!("o{i}")))
            .collect();
        let ttp = OrgId::new("ttp");

        // o0 is always honest (it is the durable/recovery org); at least
        // two honest regular orgs must remain to carry the honest items.
        let capacity = n_regular.saturating_sub(2);
        let byz_count = d.below(capacity as u64 + 1) as usize;
        let ttp_byzantine = d.below(4) == 0;
        let mut byzantine: Vec<(OrgId, Role)> = Vec::new();
        // The defecting server's dispute — and both stalling roles'
        // timeout escalations — run through the TTP, so those roles
        // only enter the pool when the TTP is honest.
        let roles: &[Role] = if ttp_byzantine {
            &[
                Role::ForkHistory,
                Role::Withholder,
                Role::TokenReplayer,
                Role::ForgedRollover,
            ]
        } else {
            &[
                Role::ForkHistory,
                Role::Withholder,
                Role::TokenReplayer,
                Role::ForgedRollover,
                Role::DefectingServer,
                Role::StallingClient,
                Role::StallingServer,
            ]
        };
        for i in 0..byz_count {
            // Take roles from the tail of the fleet: o_{n-1}, o_{n-2}, ...
            let org = regular[n_regular - 1 - i].clone();
            let role = roles[d.below(roles.len() as u64) as usize];
            byzantine.push((org, role));
        }
        if ttp_byzantine {
            byzantine.push((ttp.clone(), Role::EquivocatingTtp));
        }
        let honest: Vec<OrgId> = regular
            .iter()
            .filter(|o| byzantine.iter().all(|(b, _)| b != *o))
            .cloned()
            .collect();

        let exhausted = (d.below(3) == 0).then(|| OrgId::new("xkey"));

        // Honest items: 2–4 runs between honest regular orgs. A byzantine
        // TTP gets exactly one (guarantee) item, so honest items then
        // avoid the TTP variants.
        let variants: &[Variant] = if ttp_byzantine {
            &[Variant::Direct, Variant::Voluntary]
        } else {
            &[
                Variant::Direct,
                Variant::Voluntary,
                Variant::InlineTtp,
                Variant::FairOffline,
            ]
        };
        let mut items = Vec::new();
        let honest_items = 2 + d.below(3);
        for _ in 0..honest_items {
            let c = d.below(honest.len() as u64) as usize;
            let s = (c + 1 + d.below(honest.len() as u64 - 1) as usize) % honest.len();
            items.push((
                variants[d.below(variants.len() as u64) as usize],
                honest[c].clone(),
                honest[s].clone(),
            ));
        }
        // Guarantee items: each byzantine org participates in exactly one
        // run, so its log (and thus its crafted submission) has the same
        // record order under every schedule permutation.
        for (org, role) in &byzantine {
            match role {
                Role::EquivocatingTtp => {
                    // An inline run relayed by the byzantine TTP.
                    items.push((Variant::InlineTtp, honest[0].clone(), honest[1].clone()));
                }
                Role::DefectingServer => {
                    // The defector *serves* a fair run: an honest client
                    // drives the exchange, hits the withheld key, and
                    // disputes at the (honest) TTP.
                    items.push((Variant::FairOffline, honest[0].clone(), org.clone()));
                }
                Role::StallingClient => {
                    // The staller *invokes* a fair run against an honest
                    // server and walks away in the receipt window; the
                    // server's supervisor escalates to the TTP abort.
                    items.push((Variant::FairOffline, org.clone(), honest[0].clone()));
                }
                Role::StallingServer => {
                    // The staller serves a fair run and goes silent
                    // before the key release; the honest client resolves
                    // at the TTP.
                    items.push((Variant::FairOffline, honest[0].clone(), org.clone()));
                }
                _ => {
                    // A direct run gives the byzantine client both its own
                    // tokens (to fork) and counterparty tokens (to replay).
                    let server = honest[1 % honest.len()].clone();
                    items.push((Variant::Direct, org.clone(), server));
                }
            }
        }
        if let Some(x) = &exhausted {
            items.push((Variant::Direct, x.clone(), honest[0].clone()));
        }
        // A third of the honest-TTP family fields a slow-but-honest fair
        // client: it pauses just under the server's receipt deadline, so
        // the sweep continuously proves slowness alone is never
        // convicted under any schedule.
        let slow = (!ttp_byzantine && d.below(3) == 0).then(|| honest[0].clone());
        if let Some(s) = &slow {
            items.push((Variant::FairOffline, s.clone(), honest[1].clone()));
        }

        let mut items: Vec<WorkItem> = items
            .into_iter()
            .enumerate()
            .map(|(index, (variant, client, server))| WorkItem {
                index,
                run_id: run_id_for(seed, index),
                variant,
                client,
                server,
                adversity: None,
            })
            .collect();

        // Crash/recovery overlay: o0 crashes during the first item it does
        // not participate in, then recovers its FileLog from disk.
        let o0 = regular[0].clone();
        if let Some(item) = items.iter_mut().find(|i| !i.involves(&o0, &ttp)) {
            item.adversity = Some(Adversity::CrashRecover(o0));
        }
        // Partition overlay: the first *other* item with two regular
        // non-participants gets them partitioned for its duration.
        let all_orgs: Vec<OrgId> = regular.clone();
        for item in items.iter_mut() {
            if item.adversity.is_some() {
                continue;
            }
            let outsiders: Vec<&OrgId> = all_orgs
                .iter()
                .filter(|o| !item.involves(o, &ttp))
                .collect();
            if outsiders.len() >= 2 {
                item.adversity = Some(Adversity::Partition(
                    outsiders[0].clone(),
                    outsiders[1].clone(),
                ));
                break;
            }
        }

        let drop_probability = [0.0, 0.1, 0.25][d.below(3) as usize];
        // A third of the family runs o0 on a sharded evidence plane, so
        // the property sweep covers super-epoch gossip, shard-window
        // submissions and shard-barrier crash faults for free.
        let evidence_shards = [1, 1, 2, 4][d.below(4) as usize];
        // Half the family puts one always-honest organisation on a
        // hierarchical key (o0 and o1 are never byzantine, so the choice
        // is safe): its subtrees roll mid-scenario, and the o0 draw
        // composes with the crash overlay above into a crash at the
        // rollover boundary.
        let hierarchical = (d.below(2) == 0).then(|| regular[d.below(2) as usize].clone());
        Scenario {
            seed,
            regular,
            ttp,
            exhausted,
            hierarchical,
            slow,
            byzantine,
            items,
            evidence_shards,
            drop_probability,
            max_consecutive_drops: 2,
            key_height: 7,
            ttp_key_height: 7,
            gossip_fanout: usize::MAX,
        }
    }

    /// The maximal hand-laid fleet: nine regular organisations with every
    /// regular byzantine role present, an equivocating TTP, an
    /// exhausted-key organisation, a crash/recovery overlay and a
    /// partition overlay. The durable organisation `o0` runs a
    /// hierarchical key, so the crash overlay doubles as a
    /// crash-at-the-rollover-boundary fault. `o6` serves a fair-offline
    /// run and withholds the key, so the dispute sub-protocol runs in
    /// every showcase execution; `o7` stalls a fair run as client (the
    /// timeout abort fires), `o8` stalls one as server (the client
    /// resolves), and `o1` is the slow-but-honest peer that answers just
    /// under the deadline. `seed` still varies run ids, request payloads
    /// and the channel drop pattern.
    pub fn showcase(seed: u64) -> Self {
        let regular: Vec<OrgId> = (0..9).map(|i| OrgId::new(format!("o{i}"))).collect();
        let ttp = OrgId::new("ttp");
        let byzantine = vec![
            (regular[2].clone(), Role::ForkHistory),
            (regular[3].clone(), Role::Withholder),
            (regular[4].clone(), Role::TokenReplayer),
            (regular[5].clone(), Role::ForgedRollover),
            (regular[6].clone(), Role::DefectingServer),
            (regular[7].clone(), Role::StallingClient),
            (regular[8].clone(), Role::StallingServer),
            (ttp.clone(), Role::EquivocatingTtp),
        ];
        let plan: Vec<(Variant, usize, usize)> = vec![
            (Variant::Direct, 0, 1),
            (Variant::Voluntary, 1, 0),
            (Variant::Direct, 2, 1),      // fork-history guarantee item
            (Variant::Direct, 3, 1),      // withholder guarantee item
            (Variant::Direct, 4, 1),      // token-replayer guarantee item
            (Variant::Direct, 5, 1),      // forged-rollover guarantee item
            (Variant::InlineTtp, 0, 1),   // equivocating-TTP guarantee item
            (Variant::FairOffline, 1, 6), // defecting-server dispute item
            (Variant::FairOffline, 7, 0), // stalling-client timeout item
            (Variant::FairOffline, 1, 8), // stalling-server resolve item
        ];
        let mut items: Vec<WorkItem> = plan
            .into_iter()
            .enumerate()
            .map(|(index, (variant, c, s))| WorkItem {
                index,
                run_id: run_id_for(seed, index),
                variant,
                client: regular[c].clone(),
                server: regular[s].clone(),
                adversity: None,
            })
            .collect();
        // o0 crashes during the fork-history item and recovers from disk;
        // two idle orgs are partitioned during the withholder item.
        items[2].adversity = Some(Adversity::CrashRecover(regular[0].clone()));
        items[3].adversity = Some(Adversity::Partition(regular[2].clone(), regular[4].clone()));
        let exhausted = OrgId::new("xkey");
        let index = items.len();
        items.push(WorkItem {
            index,
            run_id: run_id_for(seed, index),
            variant: Variant::Direct,
            client: exhausted.clone(),
            server: regular[0].clone(),
            adversity: None,
        });
        let hierarchical = Some(regular[0].clone());
        let slow = Some(regular[1].clone());
        Scenario {
            seed,
            regular,
            ttp,
            exhausted: Some(exhausted),
            hierarchical,
            slow,
            byzantine,
            items,
            evidence_shards: 1,
            drop_probability: 0.2,
            max_consecutive_drops: 2,
            key_height: 7,
            ttp_key_height: 7,
            gossip_fanout: usize::MAX,
        }
    }

    /// [`Scenario::showcase`] with `o0` on a four-way sharded evidence
    /// plane: the same maximal byzantine cast and adversity overlays, but
    /// the durable organisation routes evidence by run across shards,
    /// anchors them with super-epochs, and crashes *at the shard
    /// barrier* (the recovery drops the torn shard tail the kill left
    /// behind).
    pub fn showcase_sharded(seed: u64) -> Self {
        Self {
            evidence_shards: 4,
            ..Self::showcase(seed)
        }
    }

    /// A hundred-organisation fleet for the stalling-adversary sweep:
    /// 48 pairwise exchanges across the variant mix, a stalling client,
    /// a stalling server, a defecting server, and a slow-but-honest peer
    /// — with partition overlays running *during* the stalling items, so
    /// timeout verdicts are reached while bystanders are cut off. Keys
    /// are short and anchor gossip fans out to a bounded peer set: the
    /// point is scale in *runs and organisations*, not in signature
    /// budgets, and this is what lets the world build in seconds.
    pub fn metropolis(seed: u64) -> Self {
        let regular: Vec<OrgId> = (0..100).map(|i| OrgId::new(format!("m{i:03}"))).collect();
        let ttp = OrgId::new("ttp");
        let byzantine = vec![
            (regular[97].clone(), Role::StallingClient),
            (regular[98].clone(), Role::StallingServer),
            (regular[99].clone(), Role::DefectingServer),
        ];
        let variants = [
            Variant::Direct,
            Variant::Voluntary,
            Variant::InlineTtp,
            Variant::FairOffline,
        ];
        // Pair the first 96 organisations off into 48 honest exchanges;
        // m096 idles (a fleet member that only gossips), the byzantine
        // tail gets exactly one guarantee item each.
        let mut plan: Vec<(Variant, OrgId, OrgId)> = (0..48)
            .map(|i| {
                (
                    variants[i % variants.len()],
                    regular[2 * i].clone(),
                    regular[2 * i + 1].clone(),
                )
            })
            .collect();
        plan.push((
            Variant::FairOffline,
            regular[97].clone(),
            regular[1].clone(),
        ));
        plan.push((
            Variant::FairOffline,
            regular[2].clone(),
            regular[98].clone(),
        ));
        plan.push((
            Variant::FairOffline,
            regular[3].clone(),
            regular[99].clone(),
        ));
        // The slow peer answers a fair exchange just under the deadline.
        plan.push((Variant::FairOffline, regular[5].clone(), regular[4].clone()));
        let mut items: Vec<WorkItem> = plan
            .into_iter()
            .enumerate()
            .map(|(index, (variant, client, server))| WorkItem {
                index,
                run_id: run_id_for(seed, index),
                variant,
                client,
                server,
                adversity: None,
            })
            .collect();
        // The durable organisation crashes and recovers mid-fleet, and
        // every stalling/dispute item runs under a bystander partition:
        // the escalation choreographies must convict through them.
        items[1].adversity = Some(Adversity::CrashRecover(regular[0].clone()));
        items[48].adversity = Some(Adversity::Partition(
            regular[90].clone(),
            regular[91].clone(),
        ));
        items[49].adversity = Some(Adversity::Partition(
            regular[92].clone(),
            regular[93].clone(),
        ));
        items[50].adversity = Some(Adversity::Partition(
            regular[94].clone(),
            regular[95].clone(),
        ));
        let slow = Some(regular[5].clone());
        Scenario {
            seed,
            regular,
            ttp,
            exhausted: None,
            hierarchical: None,
            slow,
            byzantine,
            items,
            evidence_shards: 1,
            drop_probability: 0.1,
            max_consecutive_drops: 2,
            key_height: 5,
            ttp_key_height: 8,
            gossip_fanout: 2,
        }
    }

    /// The honest organisations of the fleet: everyone who is not
    /// byzantine (the exhausted org is honest — it merely ran out of
    /// keys).
    pub fn honest_orgs(&self) -> Vec<OrgId> {
        let mut orgs: Vec<OrgId> = self
            .regular
            .iter()
            .chain(std::iter::once(&self.ttp))
            .chain(self.exhausted.iter())
            .cloned()
            .collect();
        orgs.retain(|o| self.byzantine.iter().all(|(b, _)| b != o));
        orgs
    }

    /// The byzantine role of `org`, if any.
    pub fn role_of(&self, org: &OrgId) -> Option<Role> {
        self.byzantine
            .iter()
            .find(|(b, _)| b == org)
            .map(|(_, r)| *r)
    }

    /// The guarantee item of `org` — the single run a byzantine org
    /// participates in.
    pub fn guarantee_item(&self, org: &OrgId) -> Option<&WorkItem> {
        self.items.iter().find(|i| i.involves(org, &self.ttp))
    }

    /// A permutation of item indices derived from `schedule_seed` — the
    /// execution order the engine drives. `schedule_seed == 0` is the
    /// identity schedule.
    pub fn schedule(&self, schedule_seed: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.items.len()).collect();
        if schedule_seed == 0 {
            return order;
        }
        let mut d = Derive::new(schedule_seed, 0x7363_6865_6475_6c65); // "schedule"
        for i in (1..order.len()).rev() {
            let j = d.below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_pure_functions_of_the_seed() {
        for seed in 0..200u64 {
            assert_eq!(Scenario::from_seed(seed), Scenario::from_seed(seed));
        }
        assert_ne!(Scenario::from_seed(1), Scenario::from_seed(2));
    }

    #[test]
    fn byzantine_orgs_participate_in_exactly_one_item() {
        for seed in 0..200u64 {
            let s = Scenario::from_seed(seed);
            for (org, _) in &s.byzantine {
                let n = s.items.iter().filter(|i| i.involves(org, &s.ttp)).count();
                assert_eq!(n, 1, "seed {seed}: {org} participates in {n} items");
            }
        }
    }

    #[test]
    fn o0_is_never_byzantine_and_two_honest_regulars_remain() {
        for seed in 0..200u64 {
            let s = Scenario::from_seed(seed);
            assert!(s.role_of(&s.regular[0]).is_none(), "seed {seed}");
            let honest_regular = s.regular.iter().filter(|o| s.role_of(o).is_none()).count();
            assert!(honest_regular >= 2, "seed {seed}");
        }
    }

    #[test]
    fn overlays_only_target_non_participants() {
        for seed in 0..200u64 {
            let s = Scenario::from_seed(seed);
            for item in &s.items {
                match &item.adversity {
                    Some(Adversity::CrashRecover(org)) => {
                        assert!(!item.involves(org, &s.ttp), "seed {seed}")
                    }
                    Some(Adversity::Partition(a, b)) => {
                        assert!(!item.involves(a, &s.ttp), "seed {seed}");
                        assert!(!item.involves(b, &s.ttp), "seed {seed}");
                        assert_ne!(a, b, "seed {seed}");
                    }
                    None => {}
                }
            }
        }
    }

    #[test]
    fn run_ids_are_unique_and_never_the_gossip_run() {
        for seed in [0u64, 1, 7, 99, u64::MAX] {
            let s = Scenario::from_seed(seed);
            let mut ids: Vec<_> = s.items.iter().map(|i| i.run_id).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), s.items.len());
            assert!(ids.iter().all(|r| *r != RunId::from_u128(0)));
        }
    }

    #[test]
    fn schedules_permute_every_item_exactly_once() {
        let s = Scenario::showcase(5);
        assert_eq!(s.schedule(0), (0..s.items.len()).collect::<Vec<_>>());
        for seed in 1..50u64 {
            let mut order = s.schedule(seed);
            order.sort_unstable();
            assert_eq!(order, (0..s.items.len()).collect::<Vec<_>>());
        }
        // Permutations actually differ from the identity somewhere.
        assert!((1..50u64).any(|x| s.schedule(x) != s.schedule(0)));
    }

    #[test]
    fn shard_counts_are_valid_and_the_sharded_family_is_reachable() {
        for seed in 0..200u64 {
            let s = Scenario::from_seed(seed);
            assert!(
                matches!(s.evidence_shards, 1 | 2 | 4),
                "seed {seed}: bad shard count {}",
                s.evidence_shards
            );
        }
        assert!((0..200u64).any(|s| Scenario::from_seed(s).evidence_shards > 1));
        assert!((0..200u64).any(|s| Scenario::from_seed(s).evidence_shards == 1));
        let sharded = Scenario::showcase_sharded(9);
        assert_eq!(sharded.evidence_shards, 4);
        assert_eq!(sharded.items, Scenario::showcase(9).items);
    }

    #[test]
    fn showcase_fields_every_byzantine_role() {
        let s = Scenario::showcase(1);
        let mut roles: Vec<Role> = s.byzantine.iter().map(|(_, r)| *r).collect();
        roles.dedup();
        assert_eq!(roles.len(), 8);
        for (org, _) in &s.byzantine {
            assert!(s.guarantee_item(org).is_some(), "{org} has no item");
        }
        // The durable org runs the hierarchical key, so its crash overlay
        // is a crash at the rollover boundary.
        assert_eq!(s.hierarchical.as_ref(), Some(&s.regular[0]));
        // The slow peer is honest: it must be present to prove slowness
        // is never convicted, and never double as an adversary.
        let slow = s.slow.as_ref().expect("showcase fields a slow peer");
        assert!(s.role_of(slow).is_none());
    }

    #[test]
    fn stalling_roles_are_reachable_and_correctly_shaped() {
        let mut saw_client = false;
        let mut saw_server = false;
        for seed in 0..400u64 {
            let s = Scenario::from_seed(seed);
            for (org, role) in &s.byzantine {
                let item = match role {
                    Role::StallingClient => {
                        saw_client = true;
                        s.guarantee_item(org).expect("guarantee item")
                    }
                    Role::StallingServer => {
                        saw_server = true;
                        s.guarantee_item(org).expect("guarantee item")
                    }
                    _ => continue,
                };
                // Both stalls escalate to the TTP, so the TTP is honest
                // and the run is fair-offline.
                assert!(s.role_of(&s.ttp).is_none(), "seed {seed}: byzantine ttp");
                assert_eq!(item.variant, Variant::FairOffline, "seed {seed}");
                if *role == Role::StallingClient {
                    assert_eq!(&item.client, org, "seed {seed}");
                    assert!(s.role_of(&item.server).is_none(), "seed {seed}");
                } else {
                    assert_eq!(&item.server, org, "seed {seed}");
                    assert!(s.role_of(&item.client).is_none(), "seed {seed}");
                }
            }
            if let Some(slow) = &s.slow {
                // The slow peer is always honest and always fields a
                // fair-offline item it drives as client.
                assert!(s.role_of(slow).is_none(), "seed {seed}");
                assert!(
                    s.items
                        .iter()
                        .any(|i| i.variant == Variant::FairOffline && i.client == *slow),
                    "seed {seed}: slow peer has no fair item"
                );
            }
        }
        assert!(saw_client, "no stalling client in 400 seeds");
        assert!(saw_server, "no stalling server in 400 seeds");
        assert!((0..400u64).any(|x| Scenario::from_seed(x).slow.is_some()));
    }

    #[test]
    fn metropolis_is_a_pure_hundred_org_fleet_with_one_item_per_byzantine() {
        let s = Scenario::metropolis(7);
        assert_eq!(s, Scenario::metropolis(7));
        assert!(s.regular.len() >= 100);
        for (org, _) in &s.byzantine {
            let n = s.items.iter().filter(|i| i.involves(org, &s.ttp)).count();
            assert_eq!(n, 1, "{org} participates in {n} items");
        }
        // The stalling and dispute items run under bystander partitions.
        for item in &s.items {
            if let Some(Adversity::Partition(a, b)) = &item.adversity {
                assert!(!item.involves(a, &s.ttp));
                assert!(!item.involves(b, &s.ttp));
            }
        }
        let stalled_under_partition = s.items.iter().any(|i| {
            i.variant == Variant::FairOffline
                && s.role_of(&i.client) == Some(Role::StallingClient)
                && matches!(i.adversity, Some(Adversity::Partition(..)))
        });
        assert!(stalled_under_partition);
        // Run ids stay unique at fleet scale.
        let mut ids: Vec<_> = s.items.iter().map(|i| i.run_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), s.items.len());
    }

    #[test]
    fn defecting_servers_serve_fair_runs_under_an_honest_ttp() {
        let mut reachable = false;
        for seed in 0..400u64 {
            let s = Scenario::from_seed(seed);
            for (org, role) in &s.byzantine {
                if *role != Role::DefectingServer {
                    continue;
                }
                reachable = true;
                // The dispute escalates to the TTP, so the TTP is honest.
                assert!(s.role_of(&s.ttp).is_none(), "seed {seed}: byzantine ttp");
                // The defector is the *server* of a fair-offline run.
                let item = s.guarantee_item(org).expect("guarantee item");
                assert_eq!(item.variant, Variant::FairOffline, "seed {seed}");
                assert_eq!(&item.server, org, "seed {seed}");
                assert!(s.role_of(&item.client).is_none(), "seed {seed}");
            }
        }
        assert!(reachable, "no defecting server in 400 seeds");
    }

    #[test]
    fn hierarchical_orgs_are_always_honest_and_every_combination_is_reachable() {
        for seed in 0..200u64 {
            let s = Scenario::from_seed(seed);
            if let Some(h) = &s.hierarchical {
                assert!(s.role_of(h).is_none(), "seed {seed}: {h} byzantine");
                assert_ne!(Some(h), s.exhausted.as_ref(), "seed {seed}");
                assert!(s.regular.contains(h), "seed {seed}");
            }
        }
        assert!((0..200u64).any(|x| Scenario::from_seed(x).hierarchical.is_some()));
        assert!((0..200u64).any(|x| Scenario::from_seed(x).hierarchical.is_none()));
        // The crash-at-rollover-boundary composition: the hierarchical
        // choice lands on o0 while o0 also carries the crash overlay.
        assert!((0..200u64).any(|x| {
            let s = Scenario::from_seed(x);
            s.hierarchical.as_ref() == Some(&s.regular[0])
                && s.items.iter().any(|i| {
                    matches!(&i.adversity, Some(Adversity::CrashRecover(o)) if *o == s.regular[0])
                })
        }));
        // The forged-rollover role is reachable in the seeded family.
        assert!((0..200u64).any(|x| {
            Scenario::from_seed(x)
                .byzantine
                .iter()
                .any(|(_, r)| *r == Role::ForgedRollover)
        }));
    }
}
