//! Byzantine submitters.
//!
//! Every adversary here is a thin wrapper around an honest
//! [`Party`]: during protocol execution the wrapped party follows the
//! protocols faithfully (and gossips genuine epoch anchors), because the
//! attacks worth simulating against the paper's adjudication layer are
//! *evidence attacks* — what an organisation presents at dispute time, not
//! how it behaves on the wire. Each wrapper therefore overrides only
//! [`Adversary::submission`] (and, for the replayer, a one-time
//! [`Adversary::finalize`] hook that plants the crafted record).
//!
//! The catalogue:
//!
//! - [`HonestSubmitter`] — submits its full log, head claim attached.
//! - [`ForkHistorySubmitter`] — rebuilds a *divergent but internally
//!   consistent* history: one of its own tokens is re-issued over a
//!   different subject, the chain re-linked and every epoch re-sealed
//!   with its genuine key. Undetectable in isolation; the anchors it
//!   gossiped while executing convict it
//!   ([`ChainViolation::ForkedHistory`](nonrep_store::record::ChainViolation::ForkedHistory)).
//! - [`EvidenceWithholder`] — submits a one-record prefix while claiming
//!   it is the whole log ([`ChainViolation::WithheldRecords`](nonrep_store::record::ChainViolation::WithheldRecords) once a
//!   gossiped anchor attests more).
//! - [`TokenReplayer`] — re-files a counterparty's genuine token under a
//!   different run id (caught as a draft/token context mismatch).
//! - [`ForgedRolloverSubmitter`] — grafts a key-rollover record whose
//!   subtree cert was signed by a root other than its registered one onto
//!   its submission, chain intact: the byzantine move against the
//!   hierarchical key lifecycle, convicted purely by the cert
//!   cryptography (`rollovers_verified < rollovers`).
//! - [`EquivocatingTtp`] — an inline TTP that forks its history at one of
//!   its own `TtpReceipt` records: the paper's "what if the trusted third
//!   party lies" case, reduced to fork detection.

use std::sync::Arc;

use nonrep_core::dispute::WindowSubmission;
use nonrep_crypto::digest::{sha256, Digest};
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::HssSigner;
use nonrep_protocols::party::Party;
use nonrep_protocols::tokens::{NrToken, TokenKind};
use nonrep_store::record::{EpochCommitment, EvidenceRecord, KeyRollover, RecordDraft, EPOCH_KIND};
use nonrep_store::EvidenceLog;
use nonrep_types::codec::{Decode, Encode};
use nonrep_types::ids::{OrgId, RunId};

/// One organisation's dispute-time conduct: an honest protocol party plus
/// a (possibly dishonest) submission strategy.
pub trait Adversary: Send + Sync {
    /// The wrapped protocol party.
    fn party(&self) -> &Arc<Party>;

    /// The organisation this adversary plays.
    fn org(&self) -> &OrgId {
        self.party().org()
    }

    /// One-time hook after all runs complete and evidence is flushed,
    /// before submissions are collected. Default: nothing.
    fn finalize(&self) {}

    /// The evidence submission this organisation presents to the
    /// adjudicator for `run`. Every strategy here submits the same
    /// window for every run (the crafted histories are whole-log
    /// artefacts); the run only matters to honest parties on a *sharded*
    /// evidence plane, which present the full window of the shard the
    /// run routes to, tagged so super-epoch anchors corroborate it.
    fn submission(&self, run: RunId) -> WindowSubmission;
}

fn full_log_submission(party: &Party) -> WindowSubmission {
    let log = party.log();
    WindowSubmission::from_log(party.org().clone(), log.as_ref(), 0..log.len())
}

/// The honest submission for `run`: on a sharded party the full window
/// of the shard `run` routes to (shard-tagged — corroborated against the
/// party's gossiped super-epoch anchors); otherwise the full single log.
fn honest_submission(party: &Party, run: RunId) -> WindowSubmission {
    match party.sharded_plane() {
        Some(plane) => {
            let log = plane.log();
            let shard = log.shard_for(&run);
            WindowSubmission::from_shard(party.org().clone(), log, shard, 0..log.shard(shard).len())
        }
        None => full_log_submission(party),
    }
}

/// Submits the full log, exactly as an honest organisation would.
pub struct HonestSubmitter {
    party: Arc<Party>,
}

impl HonestSubmitter {
    /// Wraps `party`.
    pub fn new(party: Arc<Party>) -> Self {
        Self { party }
    }
}

impl Adversary for HonestSubmitter {
    fn party(&self) -> &Arc<Party> {
        &self.party
    }

    fn submission(&self, run: RunId) -> WindowSubmission {
        honest_submission(&self.party, run)
    }
}

/// Rebuilds the party's log with one of its own token records replaced
/// (same kind, same run, different subject — genuinely re-signed), the
/// hash chain re-linked, and every epoch commitment re-sealed over the new
/// record hashes. The result passes every *internal* check; only
/// corroboration against previously gossiped anchors exposes the fork.
/// `target_kind` narrows which of the party's own records is rewritten
/// (`None` = the first own token record).
fn forked_submission(
    party: &Party,
    target_kind: Option<TokenKind>,
    forged_subject: Digest,
) -> WindowSubmission {
    let records = party.log().records();
    let target = records.iter().position(|r| {
        r.draft.actor == *party.org()
            && r.draft.kind != EPOCH_KIND
            && target_kind.is_none_or(|k| r.draft.kind == k.label())
    });
    let Some(target) = target else {
        // Nothing of ours to rewrite: fall back to the honest submission.
        return full_log_submission(party);
    };
    let mut forged = Vec::with_capacity(records.len());
    let mut hashes: Vec<Digest> = Vec::with_capacity(records.len());
    let mut prev = Digest::ZERO;
    for (i, r) in records.iter().enumerate() {
        let mut draft = r.draft.clone();
        if i == target {
            let orig = NrToken::decode_from_slice(&r.draft.payload)
                .expect("target record carries a token");
            let token = party
                .issue_token(orig.kind, orig.run_id, forged_subject)
                .expect("re-issue forged token");
            // Kind, run and actor stay as logged, so the forged record is
            // context-consistent — the fork is invisible without anchors.
            draft.content_digest = token.subject;
            draft.payload = token.encode_to_vec();
        } else if draft.kind == EPOCH_KIND {
            let orig = EpochCommitment::from_record(r).expect("decodable epoch record");
            let root =
                EpochCommitment::root_over_hashes(&hashes[orig.lo as usize..=orig.hi as usize]);
            let signature = party
                .keys()
                .sign_digest(&EpochCommitment::signing_digest(orig.lo, orig.hi, &root))
                .expect("re-seal forged epoch");
            let resealed = EpochCommitment {
                lo: orig.lo,
                hi: orig.hi,
                root,
                signature,
            };
            draft = resealed.to_draft(r.draft.actor.clone(), r.draft.at);
        }
        let rec = EvidenceRecord {
            seq: r.seq,
            prev_hash: prev,
            draft,
        };
        prev = rec.record_hash();
        hashes.push(prev);
        forged.push(Arc::new(rec));
    }
    WindowSubmission {
        submitter: party.org().clone(),
        records: forged,
        head: prev,
        shard: None,
    }
}

/// Byzantine submitter presenting a forked history (see
/// `forked_submission`).
pub struct ForkHistorySubmitter {
    party: Arc<Party>,
    forged_subject: Digest,
}

impl ForkHistorySubmitter {
    /// Wraps `party`; the rewritten token will cover `forged_subject`.
    pub fn new(party: Arc<Party>, forged_subject: Digest) -> Self {
        Self {
            party,
            forged_subject,
        }
    }
}

impl Adversary for ForkHistorySubmitter {
    fn party(&self) -> &Arc<Party> {
        &self.party
    }

    fn submission(&self, _run: RunId) -> WindowSubmission {
        forked_submission(&self.party, None, self.forged_subject)
    }
}

/// Byzantine submitter presenting a one-record prefix of its log while
/// claiming (via the head) that the prefix is the whole thing.
pub struct EvidenceWithholder {
    party: Arc<Party>,
}

impl EvidenceWithholder {
    /// Wraps `party`.
    pub fn new(party: Arc<Party>) -> Self {
        Self { party }
    }
}

impl Adversary for EvidenceWithholder {
    fn party(&self) -> &Arc<Party> {
        &self.party
    }

    fn submission(&self, _run: RunId) -> WindowSubmission {
        let records = self.party.log().snapshot_range(0..1);
        // The head claim is the truncated tail's hash: a well-formed lie
        // that only a counterparty-held anchor can expose.
        let head = records
            .last()
            .map(|r| r.record_hash())
            .unwrap_or(Digest::ZERO);
        WindowSubmission {
            submitter: self.party.org().clone(),
            records,
            head,
            shard: None,
        }
    }
}

/// Byzantine submitter that re-files a counterparty's genuine token under
/// a different run id, then submits its full (now poisoned) log.
pub struct TokenReplayer {
    party: Arc<Party>,
    target_run: RunId,
}

impl TokenReplayer {
    /// Wraps `party`; the replayed token is filed under `target_run`
    /// (which must differ from the run the token was issued for).
    pub fn new(party: Arc<Party>, target_run: RunId) -> Self {
        Self { party, target_run }
    }
}

impl Adversary for TokenReplayer {
    fn party(&self) -> &Arc<Party> {
        &self.party
    }

    fn finalize(&self) {
        let records = self.party.log().records();
        let Some(foreign) = records
            .iter()
            .find(|r| r.draft.actor != *self.party.org() && r.draft.kind != EPOCH_KIND)
        else {
            return;
        };
        let Ok(token) = NrToken::decode_from_slice(&foreign.draft.payload) else {
            return;
        };
        if token.run_id == self.target_run {
            return;
        }
        // The token itself is untouched (it still verifies under its
        // issuer's key); only the surrounding draft lies about the run.
        let draft = RecordDraft {
            run_id: self.target_run,
            kind: token.kind.label().to_string(),
            actor: token.issuer.clone(),
            at: foreign.draft.at,
            content_digest: token.subject,
            payload: foreign.draft.payload.clone(),
        };
        self.party
            .log()
            .append(draft)
            .expect("append replayed record");
    }

    fn submission(&self, _run: RunId) -> WindowSubmission {
        full_log_submission(&self.party)
    }
}

/// Byzantine submitter that grafts a forged key-rollover record onto the
/// end of its otherwise honest log window. The record decodes, chains
/// perfectly (the head claim covers it), and lands beyond every gossiped
/// anchor — but its subtree cert was signed by a hierarchy root that is
/// *not* the submitter's registered key, so the adjudicator counts an
/// unverified rollover and the report goes unclean. This is the attack
/// the certified-rollover design exists to stop: an organisation cannot
/// launder a key it does not own into its evidence history.
pub struct ForgedRolloverSubmitter {
    party: Arc<Party>,
    /// Seed of the foreign hierarchy whose rollover cert is grafted.
    cert_seed: u64,
}

impl ForgedRolloverSubmitter {
    /// Wraps `party`; the forged cert derives from `cert_seed` (kept off
    /// the party's own key material, so the cert can never verify).
    pub fn new(party: Arc<Party>, cert_seed: u64) -> Self {
        Self { party, cert_seed }
    }

    /// A genuine-looking rollover record minted by a hierarchy the
    /// submitter does not own: a fresh HSS signer is driven through its
    /// first subtree exhaustion and the resulting (correctly signed,
    /// wrong-root) event is repackaged under the submitter's name.
    fn forged_rollover(&self) -> KeyRollover {
        let mut rng = SecureRandom::from_seed(self.cert_seed);
        let mut signer = HssSigner::generate(2, 1, &mut rng);
        let mut i = 0u8;
        while signer.rollover_history().is_empty() {
            signer.sign(&sha256(&[i])).expect("fresh hierarchy signs");
            i += 1;
        }
        KeyRollover::from_event(&signer.rollover_history()[0])
    }
}

impl Adversary for ForgedRolloverSubmitter {
    fn party(&self) -> &Arc<Party> {
        &self.party
    }

    fn submission(&self, _run: RunId) -> WindowSubmission {
        let mut submission = full_log_submission(&self.party);
        let (seq, prev_hash) = submission
            .records
            .last()
            .map(|r| (r.seq + 1, r.record_hash()))
            .unwrap_or((0, Digest::ZERO));
        let record = Arc::new(EvidenceRecord {
            seq,
            prev_hash,
            draft: self
                .forged_rollover()
                .to_draft(self.party.org().clone(), self.party.now()),
        });
        submission.head = record.record_hash();
        submission.records.push(record);
        submission
    }
}

/// An inline TTP that forks its history at one of its own `TtpReceipt`
/// records — the receipts counterparties rely on are rewritten, but the
/// anchors it gossiped while relaying convict it.
pub struct EquivocatingTtp {
    party: Arc<Party>,
    forged_subject: Digest,
}

impl EquivocatingTtp {
    /// Wraps the TTP `party`; the rewritten receipt covers
    /// `forged_subject`.
    pub fn new(party: Arc<Party>, forged_subject: Digest) -> Self {
        Self {
            party,
            forged_subject,
        }
    }
}

impl Adversary for EquivocatingTtp {
    fn party(&self) -> &Arc<Party> {
        &self.party
    }

    fn submission(&self, _run: RunId) -> WindowSubmission {
        forked_submission(
            &self.party,
            Some(TokenKind::TtpReceipt),
            self.forged_subject,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonrep_core::dispute::Adjudicator;
    use nonrep_crypto::digest::sha256;
    use nonrep_protocols::party::{KeyDirectory, StaticKeyDirectory};
    use nonrep_types::time::LogicalClock;

    fn batched_party_with_tokens() -> (Arc<Party>, Arc<StaticKeyDirectory>, RunId) {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let party = Party::quick_batched("alice", 7, &clock, &dir, 2);
        let run = RunId::from_u128(9);
        for i in 0..4u8 {
            let t = party
                .issue_token(TokenKind::NroReq, run, sha256(&[i]))
                .unwrap();
            party.store_token(&t).unwrap();
        }
        party.flush_evidence().unwrap();
        (party, dir, run)
    }

    fn real_anchors(party: &Party) -> Vec<EpochCommitment> {
        party
            .log()
            .records()
            .iter()
            .filter_map(|r| EpochCommitment::from_record(r))
            .collect()
    }

    #[test]
    fn forked_submission_is_internally_clean_but_anchors_convict_it() {
        let (party, dir, run) = batched_party_with_tokens();
        let anchors = real_anchors(&party);
        assert!(!anchors.is_empty());
        let adversary = ForkHistorySubmitter::new(party.clone(), sha256(b"forged"));
        let submission = adversary.submission(run);
        let judge = Adjudicator::new(dir as Arc<dyn KeyDirectory>);
        // Internally consistent: chain, tokens and epoch proofs all pass.
        assert!(judge.verify_window(&submission).clean());
        // The gossiped anchors attest the *real* history.
        let report = judge.verify_window_with_anchors(&submission, &anchors);
        assert!(matches!(
            report.anchor_violation,
            Some(nonrep_store::record::ChainViolation::ForkedHistory { .. })
        ));
    }

    #[test]
    fn withheld_submission_claims_the_truncated_tail() {
        let (party, dir, run) = batched_party_with_tokens();
        let anchors = real_anchors(&party);
        let adversary = EvidenceWithholder::new(party.clone());
        let submission = adversary.submission(run);
        assert_eq!(submission.records.len(), 1);
        assert_ne!(submission.head, Digest::ZERO);
        let judge = Adjudicator::new(dir as Arc<dyn KeyDirectory>);
        assert!(judge.verify_window(&submission).clean());
        let report = judge.verify_window_with_anchors(&submission, &anchors);
        assert!(matches!(
            report.anchor_violation,
            Some(nonrep_store::record::ChainViolation::WithheldRecords { .. })
        ));
    }

    #[test]
    fn replayer_plants_a_context_mismatched_record() {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let alice = Party::quick("alice", 1, &clock, &dir);
        let bob = Party::quick("bob", 2, &clock, &dir);
        let run = RunId::from_u128(5);
        // Alice holds one of bob's tokens, honestly logged under its run.
        let token = bob
            .issue_token(TokenKind::NrrReq, run, sha256(b"payload"))
            .unwrap();
        alice
            .verify_and_store(&token, TokenKind::NrrReq, run, None)
            .unwrap();
        let adversary = TokenReplayer::new(alice.clone(), RunId::from_u128(6));
        adversary.finalize();
        let submission = adversary.submission(run);
        let judge = Adjudicator::new(dir as Arc<dyn KeyDirectory>);
        let report = judge.verify_window(&submission);
        assert_eq!(report.context_mismatches, 1);
        assert!(!report.clean());
    }

    #[test]
    fn forged_rollover_chains_cleanly_but_fails_cert_verification() {
        let (party, dir, run) = batched_party_with_tokens();
        let anchors = real_anchors(&party);
        let adversary = ForgedRolloverSubmitter::new(party.clone(), 0x726f_6c6c);
        let submission = adversary.submission(run);
        // One record beyond the honest log, head claim covering it.
        assert_eq!(submission.records.len() as u64, party.log().len() + 1);
        assert_eq!(
            submission.head,
            submission.records.last().unwrap().record_hash()
        );
        let judge = Adjudicator::new(dir as Arc<dyn KeyDirectory>);
        let report = judge.verify_window(&submission);
        // The chain holds and the record decodes — only the cert check
        // catches the graft.
        assert!(report.chain.is_ok());
        assert_eq!(report.rollovers, 1);
        assert_eq!(report.rollovers_verified, 0);
        assert!(!report.clean());
        // The grafted tail lands beyond every gossiped anchor, so anchor
        // corroboration alone would have let it through.
        let with_anchors = judge.verify_window_with_anchors(&submission, &anchors);
        assert!(with_anchors.anchor_violation.is_none());
    }

    #[test]
    fn honest_submission_on_a_sharded_party_is_the_runs_shard_window() {
        use nonrep_protocols::CommitmentMode;
        use nonrep_store::{ShardedEvidenceLog, SyncPolicy};

        let dir = std::env::temp_dir().join(format!(
            "nonrep-sim-adv-shard-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let clock = LogicalClock::new();
        let keydir = Arc::new(StaticKeyDirectory::new());
        let keys = Arc::new(nonrep_crypto::sig::KeyPair::generate(
            nonrep_crypto::sig::SignatureScheme::Mss { height: 8 },
            &mut nonrep_crypto::rng::SecureRandom::from_seed(61),
        ));
        keydir.insert(OrgId::new("alice"), keys.verifying_key());
        let sharded = Arc::new(ShardedEvidenceLog::open(&dir, 4, SyncPolicy::PerEpoch).unwrap());
        let party = Party::with_sharded_commitment(
            "alice",
            keys,
            Arc::new(clock),
            Arc::clone(&sharded),
            keydir as Arc<dyn KeyDirectory>,
            nonrep_crypto::rng::SecureRandom::from_seed(62),
            CommitmentMode::batched(2),
        );
        let run = RunId::from_u128(9);
        for i in 0..3u8 {
            let t = party
                .issue_token(TokenKind::NroReq, run, sha256(&[i]))
                .unwrap();
            party.store_token(&t).unwrap();
        }
        party.flush_evidence().unwrap();
        let submission = HonestSubmitter::new(party).submission(run);
        let shard = sharded.shard_for(&run);
        assert_eq!(submission.shard, Some(shard));
        assert_eq!(
            submission.records.len() as u64,
            sharded.shard(shard).len(),
            "the whole shard window is presented"
        );
        assert!(submission.records.iter().any(|r| r.draft.run_id == run));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
