//! # nonrep_sim — deterministic adversarial fleet simulator
//!
//! Drives fleets of organisations through the four non-repudiation
//! protocol variants under scripted adversity — crashes with evidence
//! recovery, partitions, bounded message drops, key exhaustion — with a
//! configurable population of *byzantine submitters* that later present
//! crafted evidence windows to the adjudicator.
//!
//! Everything derives from a single `u64` seed:
//!
//! - [`scenario::Scenario::from_seed`] expands the seed into parties,
//!   work items, a byzantine cast and an adversity overlay;
//! - [`engine::run_fleet`] executes the items in a
//!   schedule-seed-derived permutation and adjudicates every run with
//!   cross-submitter anchor corroboration;
//! - the resulting [`engine::FleetOutcome`] is *replay-deterministic*
//!   (same seeds ⇒ identical outcome) and *schedule-invariant* (any two
//!   schedule seeds ⇒ equal verdicts).
//!
//! Set `NONREP_SIM_SEED` and re-run `examples/fleet_sim.rs` to replay a
//! reported scenario bit-for-bit.

pub mod adversary;
pub mod engine;
pub mod scenario;

pub use adversary::{
    Adversary, EquivocatingTtp, EvidenceWithholder, ForkHistorySubmitter, HonestSubmitter,
    TokenReplayer,
};
pub use engine::{run_fleet, FleetOutcome, RunOutcome};
pub use scenario::{Adversity, Role, Scenario, Variant, WorkItem};
