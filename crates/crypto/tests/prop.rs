//! Property tests for the cryptographic primitives.

use nonrep_crypto::digest::{sha256, Digest, Sha256};
use nonrep_crypto::hmac::hmac_sha256;
use nonrep_crypto::merkle::{leaf_hash, MerkleTree};
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, Signature, SignatureScheme};
use nonrep_types::codec::{Decode, Encode};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot hashing for any split.
    #[test]
    fn sha256_incremental_equals_oneshot(data in vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Distinct messages produce distinct digests (collision witness test).
    #[test]
    fn sha256_no_trivial_collisions(a in vec(any::<u8>(), 0..64), b in vec(any::<u8>(), 0..64)) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
    }

    /// HMAC differs under different keys.
    #[test]
    fn hmac_key_separation(k1 in vec(any::<u8>(), 1..64), k2 in vec(any::<u8>(), 1..64),
                           msg in vec(any::<u8>(), 0..128)) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    /// Every leaf of every tree size verifies against the root.
    #[test]
    fn merkle_all_leaves_verify(n in 1usize..24, seed in any::<u64>()) {
        let payloads: Vec<Vec<u8>> =
            (0..n).map(|i| format!("{seed}-{i}").into_bytes()).collect();
        let tree = MerkleTree::from_payloads(payloads.iter().map(Vec::as_slice));
        for (i, p) in payloads.iter().enumerate() {
            let path = tree.auth_path(i);
            prop_assert!(MerkleTree::verify(&tree.root(), &leaf_hash(p), &path));
        }
    }

    /// A flipped bit anywhere in a leaf payload breaks verification.
    #[test]
    fn merkle_bitflip_detected(n in 2usize..16, idx in 0usize..16, byte in any::<u8>()) {
        let idx = idx % n;
        let payloads: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 8]).collect();
        let tree = MerkleTree::from_payloads(payloads.iter().map(Vec::as_slice));
        let mut forged = payloads[idx].clone();
        forged[0] ^= byte | 1; // guarantee at least one bit flips
        let path = tree.auth_path(idx);
        prop_assert!(!MerkleTree::verify(&tree.root(), &leaf_hash(&forged), &path));
    }

    /// Signatures verify for the signed message and fail for any other.
    #[test]
    fn signature_soundness(seed in any::<u64>(), m1 in vec(any::<u8>(), 0..64),
                           m2 in vec(any::<u8>(), 0..64)) {
        prop_assume!(m1 != m2);
        let kp = KeyPair::generate(
            SignatureScheme::Mss { height: 1 },
            &mut SecureRandom::from_seed(seed),
        );
        let sig = kp.sign(&m1).unwrap();
        prop_assert!(kp.verifying_key().verify(&m1, &sig));
        prop_assert!(!kp.verifying_key().verify(&m2, &sig));
    }

    /// Signature decoding never panics on arbitrary bytes.
    #[test]
    fn signature_decode_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = Signature::decode_from_slice(&bytes);
    }

    /// Encoded signatures round-trip.
    #[test]
    fn signature_codec_roundtrip(seed in any::<u64>(), msg in vec(any::<u8>(), 0..64)) {
        let kp = KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(seed));
        let sig = kp.sign(&msg).unwrap();
        let back = Signature::decode_from_slice(&sig.encode_to_vec()).unwrap();
        prop_assert_eq!(back, sig);
    }

    /// Digest hex round-trips.
    #[test]
    fn digest_hex_roundtrip(bytes in proptest::array::uniform32(any::<u8>())) {
        let d = Digest::from_bytes(bytes);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }
}
