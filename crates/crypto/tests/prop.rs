//! Property tests for the cryptographic primitives.

use nonrep_crypto::digest::{mb, sha256, sha256_short, Digest, Sha256};
use nonrep_crypto::hmac::{hmac_sha256, hmac_short_lanes_with};
use nonrep_crypto::merkle::{leaf_hash, leaf_hash_digests_with, MerkleTree};
use nonrep_crypto::rng::SecureRandom;
use nonrep_crypto::sig::{KeyPair, Signature, SignatureScheme};
use nonrep_crypto::wots::{self, WotsKeyPair};
use nonrep_types::codec::{Decode, Encode};
use proptest::collection::vec;
use proptest::prelude::*;

/// Every dispatch tier this host can run.
fn tiers() -> Vec<mb::Dispatch> {
    mb::Dispatch::all()
        .into_iter()
        .filter(|t| t.is_available())
        .collect()
}

proptest! {
    /// `mb::hash_lanes` equals sequential `sha256_short` for every
    /// dispatch tier, every batch size (including partial final
    /// batches of 1..=lanes messages) and arbitrary short messages.
    #[test]
    fn mb_hash_lanes_matches_sequential(
        seed in any::<u64>(),
        n in 1usize..2 * mb::MAX_LANES + 2,
        len in 0usize..56,
    ) {
        let msgs: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..len.saturating_sub(i % 3))
                    .map(|j| (seed as usize + i * 131 + j) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let expected: Vec<Digest> = msgs.iter().map(|m| sha256_short(m)).collect();
        for tier in tiers() {
            prop_assert_eq!(&mb::hash_lanes_with(tier, &refs), &expected, "tier {:?}", tier);
        }
        prop_assert_eq!(&mb::hash_lanes(&refs), &expected);
    }

    /// Lane-batched W-OTS equals the sequential reference for every
    /// tier: identical keys and signatures, verification accepts the
    /// right digest and rejects a different one.
    #[test]
    fn wots_tiers_equivalent(seed in proptest::array::uniform32(any::<u8>()),
                             m1 in vec(any::<u8>(), 0..64), m2 in vec(any::<u8>(), 0..64)) {
        prop_assume!(m1 != m2);
        let d1 = sha256(&m1);
        let d2 = sha256(&m2);
        let reference = WotsKeyPair::from_seed_with(seed, mb::Dispatch::Single);
        let ref_sig = reference.sign_with(&d1, mb::Dispatch::Single);
        for tier in tiers() {
            let kp = WotsKeyPair::from_seed_with(seed, tier);
            prop_assert_eq!(kp.public_key(), reference.public_key(), "tier {:?}", tier);
            let sig = kp.sign_with(&d1, tier);
            prop_assert_eq!(&sig, &ref_sig, "tier {:?}", tier);
            prop_assert!(wots::verify_with(&kp.public_key(), &d1, &sig, tier));
            prop_assert!(!wots::verify_with(&kp.public_key(), &d2, &sig, tier));
        }
    }

    /// Batched short-message HMAC equals `hmac_sha256` per message for
    /// every tier.
    #[test]
    fn hmac_lanes_match_sequential(key in vec(any::<u8>(), 1..64), n in 1usize..20) {
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; (i * 5) % 56]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let expected: Vec<Digest> = msgs.iter().map(|m| hmac_sha256(&key, m)).collect();
        for tier in tiers() {
            prop_assert_eq!(&hmac_short_lanes_with(tier, &key, &refs), &expected,
                            "tier {:?}", tier);
        }
    }

    /// Lane-batched leaf hashing equals `leaf_hash` for every tier.
    #[test]
    fn leaf_hash_lanes_match_sequential(n in 1usize..40, seed in any::<u64>()) {
        let payloads: Vec<Digest> =
            (0..n).map(|i| sha256(&(seed ^ i as u64).to_le_bytes())).collect();
        let expected: Vec<Digest> =
            payloads.iter().map(|p| leaf_hash(p.as_bytes())).collect();
        for tier in tiers() {
            prop_assert_eq!(&leaf_hash_digests_with(tier, &payloads), &expected,
                            "tier {:?}", tier);
        }
    }

    /// Incremental hashing equals one-shot hashing for any split.
    #[test]
    fn sha256_incremental_equals_oneshot(data in vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Distinct messages produce distinct digests (collision witness test).
    #[test]
    fn sha256_no_trivial_collisions(a in vec(any::<u8>(), 0..64), b in vec(any::<u8>(), 0..64)) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
    }

    /// HMAC differs under different keys.
    #[test]
    fn hmac_key_separation(k1 in vec(any::<u8>(), 1..64), k2 in vec(any::<u8>(), 1..64),
                           msg in vec(any::<u8>(), 0..128)) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    /// Every leaf of every tree size verifies against the root.
    #[test]
    fn merkle_all_leaves_verify(n in 1usize..24, seed in any::<u64>()) {
        let payloads: Vec<Vec<u8>> =
            (0..n).map(|i| format!("{seed}-{i}").into_bytes()).collect();
        let tree = MerkleTree::from_payloads(payloads.iter().map(Vec::as_slice));
        for (i, p) in payloads.iter().enumerate() {
            let path = tree.auth_path(i);
            prop_assert!(MerkleTree::verify(&tree.root(), &leaf_hash(p), &path));
        }
    }

    /// A flipped bit anywhere in a leaf payload breaks verification.
    #[test]
    fn merkle_bitflip_detected(n in 2usize..16, idx in 0usize..16, byte in any::<u8>()) {
        let idx = idx % n;
        let payloads: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 8]).collect();
        let tree = MerkleTree::from_payloads(payloads.iter().map(Vec::as_slice));
        let mut forged = payloads[idx].clone();
        forged[0] ^= byte | 1; // guarantee at least one bit flips
        let path = tree.auth_path(idx);
        prop_assert!(!MerkleTree::verify(&tree.root(), &leaf_hash(&forged), &path));
    }

    /// Signatures verify for the signed message and fail for any other.
    #[test]
    fn signature_soundness(seed in any::<u64>(), m1 in vec(any::<u8>(), 0..64),
                           m2 in vec(any::<u8>(), 0..64)) {
        prop_assume!(m1 != m2);
        let kp = KeyPair::generate(
            SignatureScheme::Mss { height: 1 },
            &mut SecureRandom::from_seed(seed),
        );
        let sig = kp.sign(&m1).unwrap();
        prop_assert!(kp.verifying_key().verify(&m1, &sig));
        prop_assert!(!kp.verifying_key().verify(&m2, &sig));
    }

    /// Signature decoding never panics on arbitrary bytes.
    #[test]
    fn signature_decode_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = Signature::decode_from_slice(&bytes);
    }

    /// Encoded signatures round-trip.
    #[test]
    fn signature_codec_roundtrip(seed in any::<u64>(), msg in vec(any::<u8>(), 0..64)) {
        let kp = KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(seed));
        let sig = kp.sign(&msg).unwrap();
        let back = Signature::decode_from_slice(&sig.encode_to_vec()).unwrap();
        prop_assert_eq!(back, sig);
    }

    /// Digest hex round-trips.
    #[test]
    fn digest_hex_roundtrip(bytes in proptest::array::uniform32(any::<u8>())) {
        let d = Digest::from_bytes(bytes);
        prop_assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
    }
}
