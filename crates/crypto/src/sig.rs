//! Scheme-agnostic signatures.
//!
//! The middleware never hard-codes a signature algorithm: the paper's
//! framework is explicitly protocol- and mechanism-neutral ("interceptors
//! can implement different mechanisms to meet different interaction
//! requirements", §3.1). [`KeyPair`]/[`VerifyingKey`]/[`Signature`] abstract
//! over:
//!
//! * [`SignatureScheme::Mss`] — publicly verifiable, forward-secure
//!   hash-based signatures (default for inter-organisation evidence), and
//! * [`SignatureScheme::Arbitrated`] — shared-key HMAC tags whose
//!   evidentiary value rests on a trusted arbiter (for lightweight/inline
//!   TTP deployments).

use std::error::Error;
use std::fmt;

use parking_lot::Mutex;

use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::arbitrated::ArbitratedKey;
use crate::batch::{batch_digest, batch_leaves, BatchSignature};
use crate::digest::{sha256, Digest};
use crate::hss::{HssSignature, HssSigner, RolloverEvent, SubtreeSig};
use crate::merkle::MerkleTree;
use crate::mss::{self, MssError, MssSignature, MssSigner};
use crate::rng::SecureRandom;

/// Identifies a verifying key: the SHA-256 of its canonical encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub Digest);

impl KeyId {
    /// Derives the key id of a verifying key.
    pub fn of(key: &VerifyingKey) -> Self {
        Self(sha256(&key.encode_to_vec()))
    }
}

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key:{}", &self.0.to_hex()[..16])
    }
}

impl Encode for KeyId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for KeyId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self(Digest::decode(r)?))
    }
}

/// Which signature scheme a key pair uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureScheme {
    /// Forward-secure Merkle signature scheme with `2^height` capacity.
    Mss {
        /// Tree height; capacity is `2^height` signatures.
        height: u8,
    },
    /// Two-level hierarchical MSS (see [`crate::hss`]): a root tree of
    /// `root_height` certifies rolling subtrees of `subtree_height`,
    /// for `2^root_height · 2^subtree_height` total signatures under
    /// one unchanging public key.
    Hss {
        /// Root tree height; one leaf is spent per subtree generation.
        root_height: u8,
        /// Height of each short-lived subtree.
        subtree_height: u8,
    },
    /// Shared-key HMAC tags (arbitrated; not publicly verifiable).
    Arbitrated,
}

/// Errors from signing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignError {
    /// A stateful key ran out of one-time leaves.
    KeyExhausted,
}

impl fmt::Display for SignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignError::KeyExhausted => f.write_str("signing key exhausted"),
        }
    }
}

impl Error for SignError {}

impl From<MssError> for SignError {
    fn from(e: MssError) -> Self {
        match e {
            MssError::KeyExhausted => SignError::KeyExhausted,
        }
    }
}

/// A signature (or arbitrated tag) over a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Which key produced this signature.
    pub key_id: KeyId,
    /// Scheme-specific signature payload.
    pub payload: SignaturePayload,
}

/// Scheme-specific signature material.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignaturePayload {
    /// MSS signature.
    Mss(MssSignature),
    /// Arbitrated HMAC tag.
    Arbitrated(Digest),
    /// One MSS signature shared by a whole batch of records, plus this
    /// record's authentication path to the signed batch root (see
    /// [`crate::batch`]).
    BatchedMss(BatchSignature),
    /// Hierarchical signature: a subtree signature (direct or batched)
    /// chained to the root key by its subtree certificate (see
    /// [`crate::hss`]). Boxed: the chained cert makes it several times
    /// the size of the other variants, and signatures mostly live
    /// behind this enum in bulk.
    Hss(Box<HssSignature>),
}

impl Signature {
    /// Size of the signature material in bytes (for the space-overhead
    /// experiment, E7).
    pub fn byte_len(&self) -> usize {
        32 + match &self.payload {
            SignaturePayload::Mss(s) => s.byte_len(),
            SignaturePayload::Arbitrated(_) => 32,
            SignaturePayload::BatchedMss(b) => b.byte_len(),
            SignaturePayload::Hss(h) => h.byte_len(),
        }
    }

    /// `true` if this signature was produced by a batch seal (one
    /// underlying signature shared across the batch).
    pub fn is_batched(&self) -> bool {
        match &self.payload {
            SignaturePayload::BatchedMss(_) => true,
            SignaturePayload::Hss(h) => h.is_batched(),
            _ => false,
        }
    }
}

const SIG_TAG_MSS: u8 = 0;
const SIG_TAG_ARB: u8 = 1;
const SIG_TAG_BATCH: u8 = 2;
const SIG_TAG_HSS: u8 = 3;

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        self.key_id.encode(w);
        match &self.payload {
            SignaturePayload::Mss(s) => {
                w.put_u8(SIG_TAG_MSS);
                s.encode(w);
            }
            SignaturePayload::Arbitrated(d) => {
                w.put_u8(SIG_TAG_ARB);
                d.encode(w);
            }
            SignaturePayload::BatchedMss(b) => {
                w.put_u8(SIG_TAG_BATCH);
                b.encode(w);
            }
            SignaturePayload::Hss(h) => {
                w.put_u8(SIG_TAG_HSS);
                h.encode(w);
            }
        }
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let key_id = KeyId::decode(r)?;
        let payload = match r.get_u8()? {
            SIG_TAG_MSS => SignaturePayload::Mss(MssSignature::decode(r)?),
            SIG_TAG_ARB => SignaturePayload::Arbitrated(Digest::decode(r)?),
            SIG_TAG_BATCH => SignaturePayload::BatchedMss(BatchSignature::decode(r)?),
            SIG_TAG_HSS => SignaturePayload::Hss(Box::new(HssSignature::decode(r)?)),
            tag => {
                return Err(CodecError::InvalidTag {
                    ty: "Signature",
                    tag,
                })
            }
        };
        Ok(Self { key_id, payload })
    }
}

/// The public half of a key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyingKey {
    /// MSS Merkle root: publicly verifiable.
    Mss {
        /// The Merkle root of the key's authentication tree.
        root: Digest,
    },
    /// Arbitrated shared key. **Holding this key allows forging tags**; it
    /// is distributed only to the mutually trusted arbiter. Its evidentiary
    /// value is "the arbiter vouches", which is exactly the inline-TTP trust
    /// model of paper Fig 3(a).
    Arbitrated {
        /// The shared secret (also held by the signer and the arbiter).
        secret: [u8; 32],
    },
}

const VK_TAG_MSS: u8 = 0;
const VK_TAG_ARB: u8 = 1;

impl Encode for VerifyingKey {
    fn encode(&self, w: &mut Writer) {
        match self {
            VerifyingKey::Mss { root } => {
                w.put_u8(VK_TAG_MSS);
                root.encode(w);
            }
            VerifyingKey::Arbitrated { secret } => {
                w.put_u8(VK_TAG_ARB);
                w.put_raw(secret);
            }
        }
    }
}

impl Decode for VerifyingKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            VK_TAG_MSS => Ok(VerifyingKey::Mss {
                root: Digest::decode(r)?,
            }),
            VK_TAG_ARB => {
                let raw = r.get_raw(32)?;
                let mut secret = [0u8; 32];
                secret.copy_from_slice(raw);
                Ok(VerifyingKey::Arbitrated { secret })
            }
            tag => Err(CodecError::InvalidTag {
                ty: "VerifyingKey",
                tag,
            }),
        }
    }
}

impl VerifyingKey {
    /// This key's identifier.
    pub fn key_id(&self) -> KeyId {
        KeyId::of(self)
    }

    /// Verifies `sig` over `message`.
    ///
    /// Returns `false` (never errors) on any mismatch: wrong key id, wrong
    /// scheme, bad signature. A verifier must treat all failures alike.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        if sig.key_id != self.key_id() {
            return false;
        }
        self.verify_payload(&sha256(message), sig)
    }

    /// Verifies a signature over a precomputed digest (when the message
    /// itself is elsewhere, e.g. a state snapshot in the state store).
    pub fn verify_digest(&self, digest: &Digest, sig: &Signature) -> bool {
        if sig.key_id != self.key_id() {
            return false;
        }
        self.verify_payload(digest, sig)
    }

    /// Scheme dispatch shared by [`VerifyingKey::verify`] and
    /// [`VerifyingKey::verify_digest`] (key id already checked).
    fn verify_payload(&self, digest: &Digest, sig: &Signature) -> bool {
        match (self, &sig.payload) {
            (VerifyingKey::Mss { root }, SignaturePayload::Mss(s)) => mss::verify(root, digest, s),
            (VerifyingKey::Mss { root }, SignaturePayload::BatchedMss(b)) => b.verify(root, digest),
            (VerifyingKey::Mss { root }, SignaturePayload::Hss(h)) => h.verify(root, digest),
            (VerifyingKey::Arbitrated { secret }, SignaturePayload::Arbitrated(tag)) => {
                ArbitratedKey::from_bytes(*secret).verify(digest.as_bytes(), tag)
            }
            _ => false,
        }
    }
}

enum SignerInner {
    Mss(MssSigner),
    Hss(Box<HssSigner>),
    Arbitrated(ArbitratedKey),
}

impl fmt::Debug for SignerInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignerInner::Mss(_) => f.write_str("Mss(..)"),
            SignerInner::Hss(_) => f.write_str("Hss(..)"),
            SignerInner::Arbitrated(_) => f.write_str("Arbitrated(..)"),
        }
    }
}

/// A signing key pair.
///
/// Signing takes `&self` (MSS statefulness is handled internally with a
/// mutex) so key pairs can be shared across middleware components.
#[derive(Debug)]
pub struct KeyPair {
    inner: Mutex<SignerInner>,
    verifying: VerifyingKey,
    key_id: KeyId,
}

impl KeyPair {
    /// Generates a key pair for `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if an MSS height outside `1..=20` is requested.
    pub fn generate(scheme: SignatureScheme, rng: &mut SecureRandom) -> Self {
        match scheme {
            SignatureScheme::Mss { height } => {
                let signer = MssSigner::generate(height, rng);
                let verifying = VerifyingKey::Mss {
                    root: signer.public_key(),
                };
                let key_id = verifying.key_id();
                Self {
                    inner: Mutex::new(SignerInner::Mss(signer)),
                    verifying,
                    key_id,
                }
            }
            SignatureScheme::Hss {
                root_height,
                subtree_height,
            } => {
                let signer = HssSigner::generate(root_height, subtree_height, rng);
                // The verifying key is the ordinary MSS root digest:
                // directories, key ids and gossip cannot tell a
                // hierarchical key from a single tree.
                let verifying = VerifyingKey::Mss {
                    root: signer.public_key(),
                };
                let key_id = verifying.key_id();
                Self {
                    inner: Mutex::new(SignerInner::Hss(Box::new(signer))),
                    verifying,
                    key_id,
                }
            }
            SignatureScheme::Arbitrated => {
                let key = ArbitratedKey::generate(rng);
                let verifying = VerifyingKey::Arbitrated {
                    secret: key.to_bytes(),
                };
                let key_id = verifying.key_id();
                Self {
                    inner: Mutex::new(SignerInner::Arbitrated(key)),
                    verifying,
                    key_id,
                }
            }
        }
    }

    /// The public verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.verifying.clone()
    }

    /// This key's identifier.
    pub fn key_id(&self) -> KeyId {
        self.key_id
    }

    /// Remaining signatures, if the scheme is stateful. For a
    /// hierarchical key this is the *total* across current and future
    /// subtrees (saturated at `u32::MAX`), so `Some(0)` still means
    /// "cannot sign anything ever again".
    pub fn remaining(&self) -> Option<u32> {
        match &*self.inner.lock() {
            SignerInner::Mss(s) => Some(s.remaining()),
            SignerInner::Hss(s) => Some(u32::try_from(s.remaining_total()).unwrap_or(u32::MAX)),
            SignerInner::Arbitrated(_) => None,
        }
    }

    /// The active subtree generation of a hierarchical key (0 for
    /// every other scheme, and before the first rollover).
    pub fn generation(&self) -> u32 {
        match &*self.inner.lock() {
            SignerInner::Hss(s) => s.generation(),
            _ => 0,
        }
    }

    /// `true` if this key rolls subtree generations (scheme
    /// [`SignatureScheme::Hss`]).
    pub fn is_hierarchical(&self) -> bool {
        matches!(&*self.inner.lock(), SignerInner::Hss(_))
    }

    /// Leaves left on a hierarchical key's *active subtree* (`None`
    /// for other schemes) — the quantity exhaustion forecasting tracks.
    pub fn subtree_remaining(&self) -> Option<u32> {
        match &*self.inner.lock() {
            SignerInner::Hss(s) => Some(s.subtree_remaining()),
            _ => None,
        }
    }

    /// Every subtree rollover this key has performed, oldest first
    /// (empty for non-hierarchical schemes). The history is retained
    /// for the key's lifetime so the evidence layer can persist a
    /// rollover record even after a crash lost the original append.
    pub fn rollover_history(&self) -> Vec<RolloverEvent> {
        match &*self.inner.lock() {
            SignerInner::Hss(s) => s.rollover_history().to_vec(),
            _ => Vec::new(),
        }
    }

    /// Signs `message`.
    ///
    /// # Errors
    ///
    /// Returns [`SignError::KeyExhausted`] if a stateful key has no leaves
    /// left.
    pub fn sign(&self, message: &[u8]) -> Result<Signature, SignError> {
        self.sign_digest(&sha256(message))
    }

    /// Signs a precomputed digest.
    ///
    /// # Errors
    ///
    /// Returns [`SignError::KeyExhausted`] if a stateful key has no leaves
    /// left.
    pub fn sign_digest(&self, digest: &Digest) -> Result<Signature, SignError> {
        let payload = match &mut *self.inner.lock() {
            SignerInner::Mss(s) => SignaturePayload::Mss(s.sign(digest)?),
            SignerInner::Hss(s) => SignaturePayload::Hss(Box::new(s.sign(digest)?)),
            SignerInner::Arbitrated(k) => SignaturePayload::Arbitrated(k.tag(digest.as_bytes())),
        };
        Ok(Signature {
            key_id: self.key_id,
            payload,
        })
    }

    /// Signs a batch of message digests with **one** underlying signature.
    ///
    /// For MSS keys this builds a Merkle tree over the digests, signs the
    /// batch root once (consuming a single one-time leaf), and returns one
    /// [`SignaturePayload::BatchedMss`] per digest — each independently
    /// verifiable through [`VerifyingKey::verify_digest`]. For arbitrated
    /// keys, HMAC tags are already cheap, so each digest gets its own tag.
    ///
    /// Returns signatures aligned index-for-index with `digests`.
    ///
    /// # Errors
    ///
    /// Returns [`SignError::KeyExhausted`] if a stateful key has no leaves
    /// left. An empty batch returns an empty vector without consuming
    /// capacity.
    pub fn sign_batch(&self, digests: &[Digest]) -> Result<Vec<Signature>, SignError> {
        if digests.is_empty() {
            return Ok(Vec::new());
        }
        match &mut *self.inner.lock() {
            SignerInner::Mss(s) => {
                // One-shot tree build: the incremental accumulator is for
                // streaming producers; here all leaves are in hand, and
                // building the tree directly hashes each node once.
                let tree = MerkleTree::from_leaf_hashes(batch_leaves(digests));
                let mss_sig = s.sign(&batch_digest(&tree.root()))?;
                Ok((0..digests.len())
                    .map(|i| Signature {
                        key_id: self.key_id,
                        payload: SignaturePayload::BatchedMss(BatchSignature {
                            mss_sig: mss_sig.clone(),
                            leaf_index: i as u32,
                            leaf_count: digests.len() as u32,
                            auth_path: tree.auth_path(i),
                        }),
                    })
                    .collect())
            }
            SignerInner::Hss(s) => {
                // Same one-shot tree as the MSS arm; the single leaf
                // signature comes from the active subtree and every
                // batched payload carries the chaining cert.
                let tree = MerkleTree::from_leaf_hashes(batch_leaves(digests));
                let (mss_sig, cert) = s.sign_leaf(&batch_digest(&tree.root()))?;
                Ok((0..digests.len())
                    .map(|i| Signature {
                        key_id: self.key_id,
                        payload: SignaturePayload::Hss(Box::new(HssSignature {
                            subtree_sig: SubtreeSig::Batched(BatchSignature {
                                mss_sig: mss_sig.clone(),
                                leaf_index: i as u32,
                                leaf_count: digests.len() as u32,
                                auth_path: tree.auth_path(i),
                            }),
                            subtree_root_cert: cert.clone(),
                        })),
                    })
                    .collect())
            }
            SignerInner::Arbitrated(k) => Ok(digests
                .iter()
                .map(|d| Signature {
                    key_id: self.key_id,
                    payload: SignaturePayload::Arbitrated(k.tag(d.as_bytes())),
                })
                .collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mss_pair(seed: u64) -> KeyPair {
        KeyPair::generate(
            SignatureScheme::Mss { height: 3 },
            &mut SecureRandom::from_seed(seed),
        )
    }

    #[test]
    fn mss_sign_verify() {
        let kp = mss_pair(1);
        let sig = kp.sign(b"contract").unwrap();
        assert!(kp.verifying_key().verify(b"contract", &sig));
        assert!(!kp.verifying_key().verify(b"tampered", &sig));
    }

    #[test]
    fn arbitrated_sign_verify() {
        let kp = KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(2));
        let sig = kp.sign(b"audit").unwrap();
        assert!(kp.verifying_key().verify(b"audit", &sig));
        assert!(!kp.verifying_key().verify(b"other", &sig));
        assert_eq!(kp.remaining(), None);
    }

    #[test]
    fn cross_scheme_verification_fails() {
        let mss = mss_pair(3);
        let arb = KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(4));
        let sig = mss.sign(b"m").unwrap();
        assert!(!arb.verifying_key().verify(b"m", &sig));
    }

    #[test]
    fn key_id_binds_signature_to_key() {
        let a = mss_pair(5);
        let b = mss_pair(6);
        let mut sig = a.sign(b"m").unwrap();
        // Forge the key id: verification under b must still fail
        // (and under a too, since the id no longer matches).
        sig.key_id = b.key_id();
        assert!(!a.verifying_key().verify(b"m", &sig));
        assert!(!b.verifying_key().verify(b"m", &sig));
    }

    #[test]
    fn mss_capacity_tracked() {
        let kp = KeyPair::generate(
            SignatureScheme::Mss { height: 1 },
            &mut SecureRandom::from_seed(7),
        );
        assert_eq!(kp.remaining(), Some(2));
        kp.sign(b"a").unwrap();
        kp.sign(b"b").unwrap();
        assert_eq!(kp.remaining(), Some(0));
        assert_eq!(kp.sign(b"c").unwrap_err(), SignError::KeyExhausted);
    }

    #[test]
    fn signature_codec_roundtrip_both_schemes() {
        let mss = mss_pair(8);
        let arb = KeyPair::generate(SignatureScheme::Arbitrated, &mut SecureRandom::from_seed(9));
        for kp in [&mss, &arb] {
            let sig = kp.sign(b"wire").unwrap();
            let back = Signature::decode_from_slice(&sig.encode_to_vec()).unwrap();
            assert_eq!(back, sig);
            assert!(kp.verifying_key().verify(b"wire", &back));
        }
    }

    #[test]
    fn verifying_key_codec_roundtrip() {
        let kp = mss_pair(10);
        let vk = kp.verifying_key();
        let back = VerifyingKey::decode_from_slice(&vk.encode_to_vec()).unwrap();
        assert_eq!(back, vk);
        assert_eq!(back.key_id(), kp.key_id());
    }

    #[test]
    fn sign_digest_matches_sign() {
        let kp = KeyPair::generate(
            SignatureScheme::Arbitrated,
            &mut SecureRandom::from_seed(11),
        );
        let m = b"same bytes";
        let s1 = kp.sign(m).unwrap();
        let s2 = kp.sign_digest(&sha256(m)).unwrap();
        assert_eq!(s1, s2);
        assert!(kp.verifying_key().verify_digest(&sha256(m), &s1));
    }

    #[test]
    fn signature_sizes_differ_between_schemes() {
        let mss_sig = mss_pair(12).sign(b"m").unwrap();
        let arb_sig = KeyPair::generate(
            SignatureScheme::Arbitrated,
            &mut SecureRandom::from_seed(13),
        )
        .sign(b"m")
        .unwrap();
        assert!(
            mss_sig.byte_len() > 50 * arb_sig.byte_len() / 10,
            "MSS should be much larger"
        );
    }

    #[test]
    fn batch_signing_covers_every_digest_with_one_leaf() {
        let kp = KeyPair::generate(
            SignatureScheme::Mss { height: 2 },
            &mut SecureRandom::from_seed(20),
        );
        let digests: Vec<_> = (0..7u8).map(|i| sha256(&[i])).collect();
        let before = kp.remaining().unwrap();
        let sigs = kp.sign_batch(&digests).unwrap();
        // One batch of 7 consumed exactly one one-time leaf.
        assert_eq!(kp.remaining().unwrap(), before - 1);
        assert_eq!(sigs.len(), 7);
        let vk = kp.verifying_key();
        for (d, s) in digests.iter().zip(&sigs) {
            assert!(s.is_batched());
            assert!(vk.verify_digest(d, s));
        }
        // A signature does not verify for a different digest in the batch.
        assert!(!vk.verify_digest(&digests[0], &sigs[1]));
        // Codec roundtrip preserves verifiability.
        let back = Signature::decode_from_slice(&sigs[3].encode_to_vec()).unwrap();
        assert!(vk.verify_digest(&digests[3], &back));
    }

    #[test]
    fn batch_signing_empty_and_arbitrated() {
        let kp = mss_pair(21);
        assert!(kp.sign_batch(&[]).unwrap().is_empty());
        let arb = KeyPair::generate(
            SignatureScheme::Arbitrated,
            &mut SecureRandom::from_seed(22),
        );
        let digests = [sha256(b"a"), sha256(b"b")];
        let sigs = arb.sign_batch(&digests).unwrap();
        for (d, s) in digests.iter().zip(&sigs) {
            assert!(!s.is_batched());
            assert!(arb.verifying_key().verify_digest(d, s));
        }
    }

    #[test]
    fn batched_signature_rejects_tampered_path_and_root() {
        use crate::batch::BatchSignature;
        let kp = mss_pair(23);
        let digests: Vec<_> = (0..4u8).map(|i| sha256(&[i])).collect();
        let sigs = kp.sign_batch(&digests).unwrap();
        let vk = kp.verifying_key();
        // Tamper the auth path.
        let mut doctored = sigs[2].clone();
        if let SignaturePayload::BatchedMss(BatchSignature { auth_path, .. }) =
            &mut doctored.payload
        {
            auth_path.steps[0].sibling = sha256(b"evil");
        }
        assert!(!vk.verify_digest(&digests[2], &doctored));
        // A batched signature does not verify as a direct signature over
        // the batch digest (domain separation).
        let direct = kp.sign_digest(&sha256(b"msg")).unwrap();
        assert!(!vk.verify_digest(&sha256(b"other"), &direct));
    }

    fn hss_pair(seed: u64) -> KeyPair {
        KeyPair::generate(
            SignatureScheme::Hss {
                root_height: 2,
                subtree_height: 1,
            },
            &mut SecureRandom::from_seed(seed),
        )
    }

    #[test]
    fn hss_verifies_through_the_ordinary_verifying_key_path() {
        let kp = hss_pair(30);
        // The verifying key is a plain MSS root: key ids, directories
        // and the wire format cannot tell the schemes apart.
        assert!(matches!(kp.verifying_key(), VerifyingKey::Mss { .. }));
        let sig = kp.sign(b"contract").unwrap();
        assert!(kp.verifying_key().verify(b"contract", &sig));
        assert!(!kp.verifying_key().verify(b"tampered", &sig));
        let back = Signature::decode_from_slice(&sig.encode_to_vec()).unwrap();
        assert!(kp.verifying_key().verify(b"contract", &back));
    }

    #[test]
    fn hss_keeps_signing_across_subtree_exhaustion() {
        let kp = hss_pair(31);
        // 4 root leaves − 1 for generation 0 ⇒ 3 future subtrees of 2:
        // 8 total signatures, 3 rollovers.
        assert_eq!(kp.remaining(), Some(8));
        let vk = kp.verifying_key();
        for i in 0..8u8 {
            let m = [i];
            let sig = kp.sign(&m).unwrap();
            assert!(vk.verify(&m, &sig), "message {i}");
        }
        assert_eq!(kp.remaining(), Some(0));
        assert_eq!(kp.generation(), 3);
        assert_eq!(kp.rollover_history().len(), 3);
        assert_eq!(kp.sign(b"x").unwrap_err(), SignError::KeyExhausted);
    }

    #[test]
    fn hss_batch_signing_burns_one_subtree_leaf_and_chains_the_cert() {
        let kp = KeyPair::generate(
            SignatureScheme::Hss {
                root_height: 2,
                subtree_height: 2,
            },
            &mut SecureRandom::from_seed(32),
        );
        let digests: Vec<_> = (0..5u8).map(|i| sha256(&[i])).collect();
        let before = kp.remaining().unwrap();
        let sigs = kp.sign_batch(&digests).unwrap();
        assert_eq!(kp.remaining().unwrap(), before - 1);
        let vk = kp.verifying_key();
        for (d, s) in digests.iter().zip(&sigs) {
            assert!(s.is_batched());
            assert!(vk.verify_digest(d, s));
        }
        assert!(!vk.verify_digest(&digests[0], &sigs[1]));
        let back = Signature::decode_from_slice(&sigs[2].encode_to_vec()).unwrap();
        assert!(vk.verify_digest(&digests[2], &back));
    }

    #[test]
    fn non_hierarchical_keys_report_empty_lifecycle() {
        let kp = mss_pair(33);
        assert!(!kp.is_hierarchical());
        assert_eq!(kp.generation(), 0);
        assert!(kp.rollover_history().is_empty());
        assert_eq!(kp.subtree_remaining(), None);
        let h = hss_pair(34);
        assert!(h.is_hierarchical());
        assert_eq!(h.subtree_remaining(), Some(2));
    }

    #[test]
    fn concurrent_signing_is_safe() {
        use std::sync::Arc;
        let kp = Arc::new(KeyPair::generate(
            SignatureScheme::Mss { height: 5 },
            &mut SecureRandom::from_seed(14),
        ));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let kp = Arc::clone(&kp);
                std::thread::spawn(move || {
                    (0..8)
                        .map(|i| kp.sign(format!("{t}-{i}").as_bytes()).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut leaf_indices = std::collections::HashSet::new();
        for h in handles {
            for sig in h.join().unwrap() {
                if let SignaturePayload::Mss(m) = sig.payload {
                    assert!(
                        leaf_indices.insert(m.leaf_index),
                        "leaf reused across threads"
                    );
                }
            }
        }
        assert_eq!(leaf_indices.len(), 32);
    }
}
