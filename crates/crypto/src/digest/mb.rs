//! Lane-interleaved multi-buffer SHA-256.
//!
//! The W-OTS chain walk hashes 67 *independent* chains and Merkle level
//! construction hashes independent node pairs — embarrassingly
//! data-parallel work that the single-message paths in [`super`] feed
//! through one compression at a time. This module compresses N
//! independent single-block messages in lockstep across SIMD lanes with
//! a *transposed* state layout: eight vectors hold the working variables
//! `a..h`, each vector carrying one 32-bit word per lane, so every round
//! of the compression advances all lanes at once.
//!
//! Three kernels sit behind one dispatch:
//!
//! * **AVX2, 8-way** (`x86_64`, runtime-detected) — explicit
//!   intrinsics,
//! * **SSE2, 4-way** (`x86_64` baseline) — explicit intrinsics,
//! * **portable**: the same transposed kernel over `[u32; N]` arrays
//!   with every op an elementwise loop — no intrinsics. Instantiated
//!   4-wide at baseline codegen for any target, and *re-instantiated
//!   16-wide under the avx2 target feature* on hosts that have it
//!   (function multiversioning): the autovectorizer lowers the same
//!   array code to 256-bit SIMD it refuses to emit at the `x86_64`
//!   SSE2 baseline, and 16 lanes give it two 8-wide streams to
//!   interleave.
//!
//! # Dispatch
//!
//! [`Dispatch::active`] picks the tier once per process: the
//! `NONREP_DISPATCH` environment variable (`avx2|sse2|scalar|auto`,
//! mirroring `NONREP_WORKERS`) pins a tier for benches and tests;
//! `auto` (or unset) *measures* every available multi-buffer kernel
//! against the single-lane path of [`super`] (SHA-NI where the host has
//! it) on chain-step-shaped work and picks the fastest — so dispatch
//! never selects a tier slower than measured single-lane SHA-NI, and on
//! a fast SHA-NI host the engine may legitimately decide that
//! [`Dispatch::Single`] wins and multi-buffer stays off.
//!
//! A forced tier that the host cannot run falls back down the chain
//! (`avx2 → sse2 → scalar`); forcing bypasses calibration by design.
//!
//! # API shape
//!
//! * [`hash_lanes`] / [`hash_lanes_with`] — N short (≤ 55-byte)
//!   messages to N digests; the differential-test anchor.
//! * [`chain_steps_with`] (+ the fixed-width [`chain_steps_x8`] /
//!   [`chain_steps_x4`]) — one W-OTS chain step per lane *in place*:
//!   each padded block's value field (bytes 4..36) is replaced by its
//!   digest, implementing `value ← H(header ‖ value)` without copies.
//! * [`pair_lanes_with`] — the 65-byte `tag ‖ left ‖ right` Merkle-node
//!   shape, two lockstep compressions per lane batch.
//! * [`Midstate`] + [`finish_short_lanes_with`] — shared-prefix hashing
//!   (HMAC under one key across many short messages: the W-OTS secret
//!   derivation).
//!
//! All lane-batched paths are bit-identical to their sequential
//! counterparts; `scripts/check.sh` additionally runs the crypto suite
//! under `NONREP_DISPATCH=scalar` so a SIMD bug cannot hide behind a
//! fast host.

use std::sync::OnceLock;

use super::{compress_blocks, scalar, sha256_short, state_to_digest, Digest, H0};

/// Widest lane count of any kernel (the 16-lane multiversioned
/// portable instance).
pub const MAX_LANES: usize = 16;

/// Longest message that fits one padded SHA-256 block.
const SHORT_MAX: usize = 55;

/// A multi-buffer dispatch tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// 8 lanes, AVX2 transposed-state intrinsics kernel (`x86_64`,
    /// detected).
    Avx2,
    /// 4 lanes, SSE2 transposed-state intrinsics kernel (`x86_64`
    /// baseline).
    Sse2,
    /// The portable interleaved kernel (any target, no intrinsics):
    /// 4 lanes at baseline codegen, or the 16-lane instance
    /// re-instantiated under the avx2 target feature when the host has
    /// it, so the autovectorizer can use the full ISA
    /// (multiversioning).
    Scalar,
    /// Multi-buffer off: one lane through [`super`]'s runtime dispatch
    /// (SHA-NI where the host has it). What `auto` picks when the
    /// single-lane path measures faster than every SIMD tier.
    Single,
    /// One lane pinned to the portable *scalar* compression — the
    /// sequential no-SHA-NI host profile on any machine. Never
    /// auto-selected; exists as the reference row benchmarks (e14) and
    /// differential tests compare multi-buffer tiers against.
    SingleScalar,
}

impl Dispatch {
    /// Every tier, widest first.
    pub fn all() -> [Dispatch; 5] {
        [
            Dispatch::Avx2,
            Dispatch::Sse2,
            Dispatch::Scalar,
            Dispatch::Single,
            Dispatch::SingleScalar,
        ]
    }

    /// Lanes the tier advances per compression on this host.
    pub fn lanes(self) -> usize {
        match self {
            Dispatch::Avx2 => 8,
            Dispatch::Sse2 => 4,
            Dispatch::Scalar => scalar_lanes(),
            Dispatch::Single | Dispatch::SingleScalar => 1,
        }
    }

    /// Whether this host can run the tier.
    pub fn is_available(self) -> bool {
        match self {
            #[cfg(target_arch = "x86_64")]
            Dispatch::Avx2 => avx2::available(),
            #[cfg(not(target_arch = "x86_64"))]
            Dispatch::Avx2 => false,
            Dispatch::Sse2 => cfg!(target_arch = "x86_64"),
            Dispatch::Scalar | Dispatch::Single | Dispatch::SingleScalar => true,
        }
    }

    /// The process-wide tier: `NONREP_DISPATCH` if set (clamped to what
    /// the host can run), otherwise the calibrated auto choice. Decided
    /// once and cached.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `NONREP_DISPATCH` value. A tier pin
    /// exists to *guarantee* which kernel runs (the forced-scalar
    /// differential pass in `scripts/check.sh` relies on it); a typo
    /// silently falling back to auto would void that guarantee while
    /// reporting green.
    pub fn active() -> Dispatch {
        static ACTIVE: OnceLock<Dispatch> = OnceLock::new();
        *ACTIVE.get_or_init(|| match std::env::var("NONREP_DISPATCH").as_deref() {
            Ok("avx2") => clamp(Dispatch::Avx2),
            Ok("sse2") => clamp(Dispatch::Sse2),
            Ok("scalar") => Dispatch::Scalar,
            Ok("auto") | Ok("") | Err(_) => auto_select(),
            Ok(other) => panic!(
                "NONREP_DISPATCH={other:?} is not a dispatch tier \
                 (expected avx2|sse2|scalar|auto)"
            ),
        })
    }
}

/// Falls back down the tier chain until the host can run the request.
fn clamp(want: Dispatch) -> Dispatch {
    let chain = [want, Dispatch::Sse2, Dispatch::Scalar];
    chain
        .into_iter()
        .find(|t| t.is_available())
        .unwrap_or(Dispatch::Scalar)
}

/// Lanes of the active tier (1 when multi-buffer is off).
pub fn lane_width() -> usize {
    Dispatch::active().lanes()
}

/// Picks the auto tier: every available multi-buffer kernel is timed
/// against the single-lane path (SHA-NI on capable hosts) on
/// chain-step-shaped work, and the fastest wins — a multi-buffer tier
/// is selected only when it measured *strictly faster* than
/// single-lane, so dispatch can never pick a tier slower than measured
/// SHA-NI. The measurement runs once, on first use.
fn auto_select() -> Dispatch {
    let mut best: Option<(Dispatch, u128)> = None;
    for tier in [Dispatch::Avx2, Dispatch::Sse2, Dispatch::Scalar] {
        if !tier.is_available() {
            continue;
        }
        let per_hash = time_tier(tier);
        if best.is_none_or(|(_, t)| per_hash < t) {
            best = Some((tier, per_hash));
        }
    }
    let single = time_tier(Dispatch::Single);
    match best {
        Some((tier, per_hash)) if per_hash < single => tier,
        _ => Dispatch::Single,
    }
}

/// Picoseconds per hash for `d` on the 36-byte chain-step shape, best
/// of three runs.
fn time_tier(d: Dispatch) -> u128 {
    use std::hint::black_box;
    use std::time::Instant;

    const STEPS: usize = 128;
    let width = d.lanes();
    let mut blocks = [[0u8; 64]; MAX_LANES];
    for (l, block) in blocks.iter_mut().take(width).enumerate() {
        for (i, byte) in block.iter_mut().take(36).enumerate() {
            *byte = (l as u8).wrapping_mul(31) ^ i as u8;
        }
        block[36] = 0x80;
        block[56..].copy_from_slice(&(36u64 * 8).to_be_bytes());
    }
    let mut best = u128::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..STEPS {
            chain_steps_with(d, &mut blocks[..width]);
        }
        best = best.min(start.elapsed().as_nanos());
        black_box(&blocks);
    }
    best.saturating_mul(1000) / (STEPS * width) as u128
}

/// One round of the compression for every lane at once; identical
/// structure to the scalar `round!` in [`super`], over lane vectors.
macro_rules! mb_round {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
     $k:expr, $w:expr) => {{
        let s1 = xor(xor(rotr_6($e), rotr_11($e)), rotr_25($e));
        let ch = xor(and($e, $f), andnot($e, $g));
        let t1 = add(add(add(add($h, s1), ch), splat($k)), $w);
        let s0 = xor(xor(rotr_2($a), rotr_13($a)), rotr_22($a));
        let maj = xor(xor(and($a, $b), and($a, $c)), and($b, $c));
        $d = add($d, t1);
        $h = add(add(t1, s0), maj);
    }};
}

/// Eight rounds with the register rotation hard-coded (mirrors the
/// scalar `rounds8!`).
macro_rules! mb_rounds8 {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
     $t:expr, $w:ident) => {{
        mb_round!($a, $b, $c, $d, $e, $f, $g, $h, K[$t], $w[($t) & 15]);
        mb_round!($h, $a, $b, $c, $d, $e, $f, $g, K[$t + 1], $w[($t + 1) & 15]);
        mb_round!($g, $h, $a, $b, $c, $d, $e, $f, K[$t + 2], $w[($t + 2) & 15]);
        mb_round!($f, $g, $h, $a, $b, $c, $d, $e, K[$t + 3], $w[($t + 3) & 15]);
        mb_round!($e, $f, $g, $h, $a, $b, $c, $d, K[$t + 4], $w[($t + 4) & 15]);
        mb_round!($d, $e, $f, $g, $h, $a, $b, $c, K[$t + 5], $w[($t + 5) & 15]);
        mb_round!($c, $d, $e, $f, $g, $h, $a, $b, K[$t + 6], $w[($t + 6) & 15]);
        mb_round!($b, $c, $d, $e, $f, $g, $h, $a, K[$t + 7], $w[($t + 7) & 15]);
    }};
}

/// One rolling message-schedule step for every lane at once.
macro_rules! mb_schedule_step {
    ($w:ident, $t:expr) => {{
        let w15 = $w[($t + 1) & 15];
        let w2 = $w[($t + 14) & 15];
        let s0 = xor(xor(rotr_7(w15), rotr_18(w15)), shr_3(w15));
        let s1 = xor(xor(rotr_17(w2), rotr_19(w2)), shr_10(w2));
        $w[$t & 15] = add(add(add($w[$t & 15], s0), $w[($t + 9) & 15]), s1);
    }};
}

/// The full transposed compression for the *intrinsics* backends: load
/// lane-transposed state and message vectors, 64 rounds, feed-forward,
/// store. Expanded inside each backend so every op resolves to that
/// backend's vector type. (The portable backend carries its own body,
/// shaped so the lane loops seed the autovectorizer — see
/// `portable_backend!`.)
macro_rules! mb_compress_body {
    ($states:expr, $blocks:expr) => {{
        let mut a = load_state($states, 0);
        let mut b = load_state($states, 1);
        let mut c = load_state($states, 2);
        let mut d = load_state($states, 3);
        let mut e = load_state($states, 4);
        let mut f = load_state($states, 5);
        let mut g = load_state($states, 6);
        let mut h = load_state($states, 7);
        let (a0, b0, c0, d0, e0, f0, g0, h0) = (a, b, c, d, e, f, g, h);
        let mut w = [
            gather($blocks, 0),
            gather($blocks, 1),
            gather($blocks, 2),
            gather($blocks, 3),
            gather($blocks, 4),
            gather($blocks, 5),
            gather($blocks, 6),
            gather($blocks, 7),
            gather($blocks, 8),
            gather($blocks, 9),
            gather($blocks, 10),
            gather($blocks, 11),
            gather($blocks, 12),
            gather($blocks, 13),
            gather($blocks, 14),
            gather($blocks, 15),
        ];
        mb_rounds8!(a, b, c, d, e, f, g, h, 0, w);
        mb_rounds8!(a, b, c, d, e, f, g, h, 8, w);
        let mut t = 16;
        while t < 64 {
            mb_schedule_step!(w, t);
            mb_schedule_step!(w, t + 1);
            mb_schedule_step!(w, t + 2);
            mb_schedule_step!(w, t + 3);
            mb_schedule_step!(w, t + 4);
            mb_schedule_step!(w, t + 5);
            mb_schedule_step!(w, t + 6);
            mb_schedule_step!(w, t + 7);
            mb_rounds8!(a, b, c, d, e, f, g, h, t, w);
            t += 8;
        }
        store_state($states, 0, add(a, a0));
        store_state($states, 1, add(b, b0));
        store_state($states, 2, add(c, c0));
        store_state($states, 3, add(d, d0));
        store_state($states, 4, add(e, e0));
        store_state($states, 5, add(f, f0));
        store_state($states, 6, add(g, g0));
        store_state($states, 7, add(h, h0));
    }};
}

/// AVX2 backend: 8 lanes per `__m256i` vector.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::super::K;
    use core::arch::x86_64::*;

    /// Whether the avx2 feature is present (cached).
    pub(super) fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| is_x86_feature_detected!("avx2"))
    }

    type V = __m256i;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn splat(x: u32) -> V {
        _mm256_set1_epi32(x as i32)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn add(a: V, b: V) -> V {
        _mm256_add_epi32(a, b)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn xor(a: V, b: V) -> V {
        _mm256_xor_si256(a, b)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn and(a: V, b: V) -> V {
        _mm256_and_si256(a, b)
    }

    /// `!a & b`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn andnot(a: V, b: V) -> V {
        _mm256_andnot_si256(a, b)
    }

    macro_rules! rotr_fn {
        ($name:ident, $r:literal) => {
            #[inline]
            #[target_feature(enable = "avx2")]
            unsafe fn $name(v: V) -> V {
                _mm256_or_si256(
                    _mm256_srli_epi32::<$r>(v),
                    _mm256_slli_epi32::<{ 32 - $r }>(v),
                )
            }
        };
    }
    rotr_fn!(rotr_2, 2);
    rotr_fn!(rotr_6, 6);
    rotr_fn!(rotr_7, 7);
    rotr_fn!(rotr_11, 11);
    rotr_fn!(rotr_13, 13);
    rotr_fn!(rotr_17, 17);
    rotr_fn!(rotr_18, 18);
    rotr_fn!(rotr_19, 19);
    rotr_fn!(rotr_22, 22);
    rotr_fn!(rotr_25, 25);

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn shr_3(v: V) -> V {
        _mm256_srli_epi32::<3>(v)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn shr_10(v: V) -> V {
        _mm256_srli_epi32::<10>(v)
    }

    /// Message word `t` of every lane, big-endian, transposed.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn gather(blocks: &[[u8; 64]; 8], t: usize) -> V {
        let mut tmp = [0u32; 8];
        for (slot, block) in tmp.iter_mut().zip(blocks) {
            *slot = u32::from_be_bytes(block[4 * t..4 * t + 4].try_into().expect("4-byte word"));
        }
        _mm256_loadu_si256(tmp.as_ptr().cast())
    }

    /// State word `w` of every lane, transposed.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_state(states: &[[u32; 8]; 8], w: usize) -> V {
        let mut tmp = [0u32; 8];
        for (slot, state) in tmp.iter_mut().zip(states) {
            *slot = state[w];
        }
        _mm256_loadu_si256(tmp.as_ptr().cast())
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_state(states: &mut [[u32; 8]; 8], w: usize, v: V) {
        let mut tmp = [0u32; 8];
        _mm256_storeu_si256(tmp.as_mut_ptr().cast(), v);
        for (state, slot) in states.iter_mut().zip(tmp) {
            state[w] = slot;
        }
    }

    /// Compresses one 64-byte block per lane into its lane's state.
    ///
    /// # Safety
    ///
    /// Caller must ensure the avx2 target feature is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn compress(states: &mut [[u32; 8]; 8], blocks: &[[u8; 64]; 8]) {
        mb_compress_body!(states, blocks);
    }
}

/// SSE2 backend: 4 lanes per `__m128i` vector (`x86_64` baseline).
#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::super::K;
    use core::arch::x86_64::*;

    type V = __m128i;

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn splat(x: u32) -> V {
        _mm_set1_epi32(x as i32)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn add(a: V, b: V) -> V {
        _mm_add_epi32(a, b)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn xor(a: V, b: V) -> V {
        _mm_xor_si128(a, b)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn and(a: V, b: V) -> V {
        _mm_and_si128(a, b)
    }

    /// `!a & b`.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn andnot(a: V, b: V) -> V {
        _mm_andnot_si128(a, b)
    }

    macro_rules! rotr_fn {
        ($name:ident, $r:literal) => {
            #[inline]
            #[target_feature(enable = "sse2")]
            unsafe fn $name(v: V) -> V {
                _mm_or_si128(_mm_srli_epi32::<$r>(v), _mm_slli_epi32::<{ 32 - $r }>(v))
            }
        };
    }
    rotr_fn!(rotr_2, 2);
    rotr_fn!(rotr_6, 6);
    rotr_fn!(rotr_7, 7);
    rotr_fn!(rotr_11, 11);
    rotr_fn!(rotr_13, 13);
    rotr_fn!(rotr_17, 17);
    rotr_fn!(rotr_18, 18);
    rotr_fn!(rotr_19, 19);
    rotr_fn!(rotr_22, 22);
    rotr_fn!(rotr_25, 25);

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn shr_3(v: V) -> V {
        _mm_srli_epi32::<3>(v)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn shr_10(v: V) -> V {
        _mm_srli_epi32::<10>(v)
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn gather(blocks: &[[u8; 64]; 4], t: usize) -> V {
        let mut tmp = [0u32; 4];
        for (slot, block) in tmp.iter_mut().zip(blocks) {
            *slot = u32::from_be_bytes(block[4 * t..4 * t + 4].try_into().expect("4-byte word"));
        }
        _mm_loadu_si128(tmp.as_ptr().cast())
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn load_state(states: &[[u32; 8]; 4], w: usize) -> V {
        let mut tmp = [0u32; 4];
        for (slot, state) in tmp.iter_mut().zip(states) {
            *slot = state[w];
        }
        _mm_loadu_si128(tmp.as_ptr().cast())
    }

    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn store_state(states: &mut [[u32; 8]; 4], w: usize, v: V) {
        let mut tmp = [0u32; 4];
        _mm_storeu_si128(tmp.as_mut_ptr().cast(), v);
        for (state, slot) in states.iter_mut().zip(tmp) {
            state[w] = slot;
        }
    }

    /// Compresses one 64-byte block per lane into its lane's state.
    ///
    /// # Safety
    ///
    /// SSE2 is part of the `x86_64` baseline; always available there.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn compress(states: &mut [[u32; 8]; 4], blocks: &[[u8; 64]; 4]) {
        mb_compress_body!(states, blocks);
    }
}

/// Generates a portable interleaved backend over `[u32; N]` lane
/// vectors: every op is an elementwise loop, so the body is plain array
/// code LLVM's vectorizers can lower to whatever SIMD the *function's*
/// codegen context offers — and that still overlaps N independent
/// dependency chains when they lower it to scalar code.
macro_rules! portable_backend {
    ($name:ident, $lanes:expr) => {
        mod $name {
            use super::super::K;

            type V = [u32; $lanes];

            #[inline(always)]
            fn splat(x: u32) -> V {
                [x; $lanes]
            }

            #[inline(always)]
            fn add(a: V, b: V) -> V {
                let mut out = [0u32; $lanes];
                for i in 0..$lanes {
                    out[i] = a[i].wrapping_add(b[i]);
                }
                out
            }

            #[inline(always)]
            fn xor(a: V, b: V) -> V {
                let mut out = [0u32; $lanes];
                for i in 0..$lanes {
                    out[i] = a[i] ^ b[i];
                }
                out
            }

            #[inline(always)]
            fn and(a: V, b: V) -> V {
                let mut out = [0u32; $lanes];
                for i in 0..$lanes {
                    out[i] = a[i] & b[i];
                }
                out
            }

            /// `!a & b`.
            #[inline(always)]
            fn andnot(a: V, b: V) -> V {
                let mut out = [0u32; $lanes];
                for i in 0..$lanes {
                    out[i] = !a[i] & b[i];
                }
                out
            }

            #[inline(always)]
            fn rotr<const R: u32>(v: V) -> V {
                let mut out = [0u32; $lanes];
                for i in 0..$lanes {
                    out[i] = v[i].rotate_right(R);
                }
                out
            }

            #[inline(always)]
            fn shr<const R: u32>(v: V) -> V {
                let mut out = [0u32; $lanes];
                for i in 0..$lanes {
                    out[i] = v[i] >> R;
                }
                out
            }

            #[inline(always)]
            fn rotr_2(v: V) -> V {
                rotr::<2>(v)
            }
            #[inline(always)]
            fn rotr_6(v: V) -> V {
                rotr::<6>(v)
            }
            #[inline(always)]
            fn rotr_7(v: V) -> V {
                rotr::<7>(v)
            }
            #[inline(always)]
            fn rotr_11(v: V) -> V {
                rotr::<11>(v)
            }
            #[inline(always)]
            fn rotr_13(v: V) -> V {
                rotr::<13>(v)
            }
            #[inline(always)]
            fn rotr_17(v: V) -> V {
                rotr::<17>(v)
            }
            #[inline(always)]
            fn rotr_18(v: V) -> V {
                rotr::<18>(v)
            }
            #[inline(always)]
            fn rotr_19(v: V) -> V {
                rotr::<19>(v)
            }
            #[inline(always)]
            fn rotr_22(v: V) -> V {
                rotr::<22>(v)
            }
            #[inline(always)]
            fn rotr_25(v: V) -> V {
                rotr::<25>(v)
            }
            #[inline(always)]
            fn shr_3(v: V) -> V {
                shr::<3>(v)
            }
            #[inline(always)]
            fn shr_10(v: V) -> V {
                shr::<10>(v)
            }

            #[inline(always)]
            fn gather(blocks: &[[u8; 64]; $lanes], t: usize) -> V {
                let mut tmp = [0u32; $lanes];
                for (slot, block) in tmp.iter_mut().zip(blocks) {
                    *slot = u32::from_be_bytes(
                        block[4 * t..4 * t + 4].try_into().expect("4-byte word"),
                    );
                }
                tmp
            }

            /// Compresses one 64-byte block per lane into its lane's
            /// state. `inline(always)` so a `#[target_feature]` wrapper
            /// absorbs the body into its own codegen context and the
            /// vectorizer sees the full ISA (multiversioning).
            ///
            /// The body differs from `mb_compress_body!` in exactly the
            /// shapes that seed LLVM's SLP vectorizer: state load and
            /// feed-forward are *fused per-lane loops over contiguous
            /// words* (the store group it builds its trees from) and the
            /// message schedule is a rolled loop. With the intrinsics
            /// layout the same code ran scalar with heavy spilling.
            #[inline(always)]
            pub(super) fn compress(states: &mut [[u32; 8]; $lanes], blocks: &[[u8; 64]; $lanes]) {
                let mut a = splat(0);
                let mut b = splat(0);
                let mut c = splat(0);
                let mut d = splat(0);
                let mut e = splat(0);
                let mut f = splat(0);
                let mut g = splat(0);
                let mut h = splat(0);
                for (l, state) in states.iter().enumerate() {
                    a[l] = state[0];
                    b[l] = state[1];
                    c[l] = state[2];
                    d[l] = state[3];
                    e[l] = state[4];
                    f[l] = state[5];
                    g[l] = state[6];
                    h[l] = state[7];
                }
                let (a0, b0, c0, d0, e0, f0, g0, h0) = (a, b, c, d, e, f, g, h);
                let mut w = [
                    gather(blocks, 0),
                    gather(blocks, 1),
                    gather(blocks, 2),
                    gather(blocks, 3),
                    gather(blocks, 4),
                    gather(blocks, 5),
                    gather(blocks, 6),
                    gather(blocks, 7),
                    gather(blocks, 8),
                    gather(blocks, 9),
                    gather(blocks, 10),
                    gather(blocks, 11),
                    gather(blocks, 12),
                    gather(blocks, 13),
                    gather(blocks, 14),
                    gather(blocks, 15),
                ];
                mb_rounds8!(a, b, c, d, e, f, g, h, 0, w);
                mb_rounds8!(a, b, c, d, e, f, g, h, 8, w);
                let mut t = 16;
                while t < 64 {
                    for i in 0..8 {
                        let w15 = w[(t + i + 1) & 15];
                        let w2 = w[(t + i + 14) & 15];
                        let s0 = xor(xor(rotr_7(w15), rotr_18(w15)), shr_3(w15));
                        let s1 = xor(xor(rotr_17(w2), rotr_19(w2)), shr_10(w2));
                        w[(t + i) & 15] =
                            add(add(add(w[(t + i) & 15], s0), w[(t + i + 9) & 15]), s1);
                    }
                    mb_rounds8!(a, b, c, d, e, f, g, h, t, w);
                    t += 8;
                }
                for (l, state) in states.iter_mut().enumerate() {
                    state[0] = a[l].wrapping_add(a0[l]);
                    state[1] = b[l].wrapping_add(b0[l]);
                    state[2] = c[l].wrapping_add(c0[l]);
                    state[3] = d[l].wrapping_add(d0[l]);
                    state[4] = e[l].wrapping_add(e0[l]);
                    state[5] = f[l].wrapping_add(f0[l]);
                    state[6] = g[l].wrapping_add(g0[l]);
                    state[7] = h[l].wrapping_add(h0[l]);
                }
            }
        }
    };
}

// The true fallback instance: 4 lanes, baseline codegen, any target.
portable_backend!(portable4, 4);
// A 16-lane instance for the AVX2-feature wrapper below: wide enough
// that the autovectorizer runs two 8-wide streams and hides latency.
#[cfg(target_arch = "x86_64")]
portable_backend!(portable16, 16);

/// The portable kernel re-instantiated under the AVX2 target feature:
/// still plain array code — no intrinsics — but the autovectorizer may
/// use the full 256-bit ISA, which it declines to do at the `x86_64`
/// SSE2 baseline (two-operand destructive encodings make the cost model
/// bail). Function multiversioning, the autovectorizer edition.
///
/// # Safety
///
/// Caller must ensure the avx2 target feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn portable16_avx2(states: &mut [[u32; 8]; 16], blocks: &[[u8; 64]; 16]) {
    portable16::compress(states, blocks);
}

/// Lane count of the portable tier on this host: the 16-lane
/// multiversioned instance where AVX2 codegen is available, the 4-lane
/// baseline instance otherwise.
fn scalar_lanes() -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2::available() {
            return 16;
        }
    }
    4
}

/// Splits `states`/`blocks` into `N`-lane chunks for `kernel`, padding
/// the final partial chunk with dummy lanes whose results are dropped.
fn compress_chunks<const N: usize>(
    states: &mut [[u32; 8]],
    blocks: &[[u8; 64]],
    kernel: impl Fn(&mut [[u32; 8]; N], &[[u8; 64]; N]),
) {
    let mut schunks = states.chunks_exact_mut(N);
    let mut bchunks = blocks.chunks_exact(N);
    for (s, b) in (&mut schunks).zip(&mut bchunks) {
        kernel(
            s.try_into().expect("exact state chunk"),
            b.try_into().expect("exact block chunk"),
        );
    }
    let srem = schunks.into_remainder();
    let brem = bchunks.remainder();
    if !srem.is_empty() {
        let mut ps = [[0u32; 8]; N];
        let mut pb = [[0u8; 64]; N];
        ps[..srem.len()].copy_from_slice(srem);
        pb[..brem.len()].copy_from_slice(brem);
        kernel(&mut ps, &pb);
        srem.copy_from_slice(&ps[..srem.len()]);
    }
}

/// Compresses one 64-byte block per lane into its lane's state under
/// `d`, chunking to the tier's width.
fn compress_lanes(d: Dispatch, states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    debug_assert_eq!(states.len(), blocks.len());
    assert!(
        d.is_available(),
        "dispatch tier {d:?} is not available on this host"
    );
    match d {
        Dispatch::Single => {
            for (state, block) in states.iter_mut().zip(blocks) {
                compress_blocks(state, &block[..]);
            }
        }
        Dispatch::SingleScalar => {
            for (state, block) in states.iter_mut().zip(blocks) {
                scalar::compress_blocks(state, &block[..]);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => {
            // Availability asserted above.
            compress_chunks::<8>(states, blocks, |s, b| unsafe { avx2::compress(s, b) })
        }
        #[cfg(target_arch = "x86_64")]
        Dispatch::Sse2 => {
            compress_chunks::<4>(states, blocks, |s, b| unsafe { sse2::compress(s, b) })
        }
        #[cfg(not(target_arch = "x86_64"))]
        Dispatch::Avx2 | Dispatch::Sse2 => unreachable!("tier unavailable off x86_64"),
        Dispatch::Scalar => {
            #[cfg(target_arch = "x86_64")]
            if avx2::available() {
                // Availability checked: the multiversioned instance.
                compress_chunks::<16>(states, blocks, |s, b| unsafe { portable16_avx2(s, b) });
                return;
            }
            compress_chunks::<4>(states, blocks, portable4::compress);
        }
    }
}

/// Pads a ≤ 55-byte message into one compression block.
fn pad_short(msg: &[u8], block: &mut [u8; 64]) {
    assert!(
        msg.len() <= SHORT_MAX,
        "mb: message does not fit one padded block"
    );
    block[..msg.len()].copy_from_slice(msg);
    block[msg.len()] = 0x80;
    block[56..].copy_from_slice(&((msg.len() as u64) * 8).to_be_bytes());
}

/// Writes a lane's final state over `out` as the big-endian digest.
fn state_to_bytes(state: &[u32; 8], out: &mut [u8]) {
    for (chunk, word) in out.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
}

/// Single-lane short hash pinned to the portable scalar compression —
/// what [`super::sha256_short`] computes on a host without SHA-NI. The
/// reference the multi-buffer tiers are differentially tested against,
/// and e14's sequential-scalar baseline row.
///
/// # Panics
///
/// Panics if `data` exceeds 55 bytes.
pub fn sha256_short_scalar(data: &[u8]) -> Digest {
    let mut block = [0u8; 64];
    pad_short(data, &mut block);
    let mut state = H0;
    scalar::compress_blocks(&mut state, &block);
    state_to_digest(&state)
}

/// Hashes N independent short (≤ 55-byte) messages in lockstep under
/// the active dispatch. Equivalent to mapping [`super::sha256_short`]
/// over `msgs`, at up to `lane_width()` messages per compression.
///
/// # Panics
///
/// Panics if any message exceeds 55 bytes.
pub fn hash_lanes(msgs: &[&[u8]]) -> Vec<Digest> {
    hash_lanes_with(Dispatch::active(), msgs)
}

/// [`hash_lanes`] under an explicit dispatch tier.
///
/// # Panics
///
/// Panics if any message exceeds 55 bytes or `d` is unavailable here.
pub fn hash_lanes_with(d: Dispatch, msgs: &[&[u8]]) -> Vec<Digest> {
    let mut out = Vec::with_capacity(msgs.len());
    if d.lanes() <= 1 {
        let single: fn(&[u8]) -> Digest = match d {
            Dispatch::SingleScalar => sha256_short_scalar,
            _ => sha256_short,
        };
        out.extend(msgs.iter().map(|m| single(m)));
        return out;
    }
    for chunk in msgs.chunks(MAX_LANES) {
        let mut blocks = [[0u8; 64]; MAX_LANES];
        let mut states = [H0; MAX_LANES];
        for (block, msg) in blocks.iter_mut().zip(chunk) {
            pad_short(msg, block);
        }
        compress_lanes(d, &mut states[..chunk.len()], &blocks[..chunk.len()]);
        out.extend(states[..chunk.len()].iter().map(state_to_digest));
    }
    out
}

/// Hashes N *equal-length* messages of any length in lockstep under the
/// active dispatch — the multi-block generalisation of [`hash_lanes`]
/// for shapes like the W-OTS public-key compression (`tag ‖ 67 chain
/// ends` = 2145 bytes, 34 blocks per lane). Equivalent to mapping the
/// streaming [`super::Sha256`] over `msgs`.
///
/// # Panics
///
/// Panics if the messages do not all share one length.
pub fn hash_eq_lanes(msgs: &[&[u8]]) -> Vec<Digest> {
    hash_eq_lanes_with(Dispatch::active(), msgs)
}

/// [`hash_eq_lanes`] under an explicit dispatch tier.
///
/// # Panics
///
/// Panics if the messages do not all share one length or `d` is
/// unavailable on this host.
pub fn hash_eq_lanes_with(d: Dispatch, msgs: &[&[u8]]) -> Vec<Digest> {
    let Some(len) = msgs.first().map(|m| m.len()) else {
        return Vec::new();
    };
    assert!(
        msgs.iter().all(|m| m.len() == len),
        "mb: lockstep lanes need equal-length messages"
    );
    let total_blocks = (len + 9).div_ceil(64);
    let mut out = Vec::with_capacity(msgs.len());
    if d.lanes() <= 1 {
        let mut buf = vec![0u8; total_blocks * 64];
        for msg in msgs {
            buf.fill(0);
            buf[..len].copy_from_slice(msg);
            buf[len] = 0x80;
            buf[total_blocks * 64 - 8..].copy_from_slice(&((len as u64) * 8).to_be_bytes());
            let mut state = H0;
            match d {
                Dispatch::SingleScalar => scalar::compress_blocks(&mut state, &buf),
                _ => compress_blocks(&mut state, &buf),
            }
            out.push(state_to_digest(&state));
        }
        return out;
    }
    for chunk in msgs.chunks(MAX_LANES) {
        let mut states = [H0; MAX_LANES];
        for b in 0..total_blocks {
            let mut blocks = [[0u8; 64]; MAX_LANES];
            let lo = b * 64;
            for (block, msg) in blocks.iter_mut().zip(chunk) {
                fill_eq_block(block, msg, lo, b + 1 == total_blocks);
            }
            compress_lanes(d, &mut states[..chunk.len()], &blocks[..chunk.len()]);
        }
        out.extend(states[..chunk.len()].iter().map(state_to_digest));
    }
    out
}

/// Lays out bytes `lo..lo + 64` of `msg`'s SHA-256 padded form: message
/// bytes, the 0x80 terminator where it falls in range, and (in the final
/// block) the big-endian bit length.
fn fill_eq_block(block: &mut [u8; 64], msg: &[u8], lo: usize, last: bool) {
    let len = msg.len();
    if lo + 64 <= len {
        block.copy_from_slice(&msg[lo..lo + 64]);
        return;
    }
    if lo < len {
        block[..len - lo].copy_from_slice(&msg[lo..]);
    }
    if (lo..lo + 64).contains(&len) {
        block[len - lo] = 0x80;
    }
    if last {
        block[56..].copy_from_slice(&((len as u64) * 8).to_be_bytes());
    }
}

/// One W-OTS chain step per lane, in place: every block must be a
/// pre-padded 36-byte message (`header ‖ value`, 0x80 at byte 36, the
/// 288-bit length in bytes 56..64); each block's value field (bytes
/// 4..36) is replaced by the block's digest, implementing
/// `value ← H(header ‖ value)` with no copies. The caller advances the
/// step byte between calls.
///
/// # Panics
///
/// Panics if `blocks` exceeds [`MAX_LANES`] entries or `d` is
/// unavailable on this host.
pub fn chain_steps_with(d: Dispatch, blocks: &mut [[u8; 64]]) {
    assert!(blocks.len() <= MAX_LANES, "mb: too many chain lanes");
    if d.lanes() <= 1 {
        let single: fn(&[u8]) -> Digest = match d {
            Dispatch::SingleScalar => sha256_short_scalar,
            _ => sha256_short,
        };
        for block in blocks {
            let digest = single(&block[..36]);
            block[4..36].copy_from_slice(digest.as_bytes());
        }
        return;
    }
    let mut states = [H0; MAX_LANES];
    compress_lanes(d, &mut states[..blocks.len()], blocks);
    for (block, state) in blocks.iter_mut().zip(&states) {
        state_to_bytes(state, &mut block[4..36]);
    }
}

/// Eight chain steps in lockstep under the active dispatch (two 4-lane
/// batches on a 4-wide tier). See [`chain_steps_with`].
pub fn chain_steps_x8(blocks: &mut [[u8; 64]; 8]) {
    chain_steps_with(Dispatch::active(), blocks);
}

/// Four chain steps in lockstep under the active dispatch. See
/// [`chain_steps_with`].
pub fn chain_steps_x4(blocks: &mut [[u8; 64]; 4]) {
    chain_steps_with(Dispatch::active(), blocks);
}

/// Hashes `tag ‖ left_i ‖ right_i` (the 65-byte Merkle-node / chain-link
/// shape of [`super::sha256_pair`]) for every pair, two lockstep
/// compressions per lane batch.
///
/// # Panics
///
/// Panics if `d` is unavailable on this host.
pub fn pair_lanes_with(d: Dispatch, tag: u8, pairs: &[(Digest, Digest)]) -> Vec<Digest> {
    let mut out = Vec::with_capacity(pairs.len());
    if d.lanes() <= 1 {
        match d {
            Dispatch::SingleScalar => {
                for (left, right) in pairs {
                    let mut blocks = [0u8; 128];
                    fill_pair_blocks(tag, left, right, &mut blocks);
                    let mut state = H0;
                    scalar::compress_blocks(&mut state, &blocks);
                    out.push(state_to_digest(&state));
                }
            }
            _ => {
                for (left, right) in pairs {
                    out.push(super::sha256_pair(tag, left.as_bytes(), right.as_bytes()));
                }
            }
        }
        return out;
    }
    for chunk in pairs.chunks(MAX_LANES) {
        let mut block0 = [[0u8; 64]; MAX_LANES];
        let mut block1 = [[0u8; 64]; MAX_LANES];
        let mut states = [H0; MAX_LANES];
        for (i, (left, right)) in chunk.iter().enumerate() {
            let mut both = [0u8; 128];
            fill_pair_blocks(tag, left, right, &mut both);
            block0[i].copy_from_slice(&both[..64]);
            block1[i].copy_from_slice(&both[64..]);
        }
        compress_lanes(d, &mut states[..chunk.len()], &block0[..chunk.len()]);
        compress_lanes(d, &mut states[..chunk.len()], &block1[..chunk.len()]);
        out.extend(states[..chunk.len()].iter().map(state_to_digest));
    }
    out
}

/// Lays out `tag ‖ left ‖ right` with SHA-256 padding over two blocks.
fn fill_pair_blocks(tag: u8, left: &Digest, right: &Digest, blocks: &mut [u8; 128]) {
    blocks[0] = tag;
    blocks[1..33].copy_from_slice(left.as_bytes());
    blocks[33..65].copy_from_slice(right.as_bytes());
    blocks[65] = 0x80;
    blocks[120..].copy_from_slice(&(65u64 * 8).to_be_bytes());
}

/// SHA-256 state after absorbing a block-aligned prefix; the shared
/// seed of [`finish_short_lanes_with`]. Lets HMAC under one key hash
/// many short messages without re-compressing the key pad every time.
#[derive(Debug, Clone, Copy)]
pub struct Midstate {
    state: [u32; 8],
    prefix_len: u64,
}

impl Midstate {
    /// Absorbs `prefix`, whose length must be a multiple of 64.
    ///
    /// # Panics
    ///
    /// Panics if `prefix.len()` is not block-aligned.
    pub fn new(prefix: &[u8]) -> Self {
        assert!(
            prefix.len().is_multiple_of(64),
            "midstate prefix must be block-aligned"
        );
        let mut state = H0;
        compress_blocks(&mut state, prefix);
        Self {
            state,
            prefix_len: prefix.len() as u64,
        }
    }
}

/// Finishes `prefix ‖ msg_i` for many short tails in lockstep: each
/// `msg` (≤ 55 bytes) is padded into the prefix's final block and all
/// lanes compress from the shared midstate at once.
///
/// # Panics
///
/// Panics if any message exceeds 55 bytes or `d` is unavailable here.
pub fn finish_short_lanes_with(d: Dispatch, mid: &Midstate, msgs: &[&[u8]]) -> Vec<Digest> {
    let mut out = Vec::with_capacity(msgs.len());
    for chunk in msgs.chunks(MAX_LANES) {
        let mut blocks = [[0u8; 64]; MAX_LANES];
        let mut states = [mid.state; MAX_LANES];
        for (block, msg) in blocks.iter_mut().zip(chunk) {
            assert!(
                msg.len() <= SHORT_MAX,
                "mb: message does not fit one padded block"
            );
            block[..msg.len()].copy_from_slice(msg);
            block[msg.len()] = 0x80;
            let bit_len = (mid.prefix_len + msg.len() as u64) * 8;
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
        }
        compress_lanes(d, &mut states[..chunk.len()], &blocks[..chunk.len()]);
        out.extend(states[..chunk.len()].iter().map(state_to_digest));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{sha256_pair, Sha256};
    use super::*;

    fn available_tiers() -> Vec<Dispatch> {
        Dispatch::all()
            .into_iter()
            .filter(|t| t.is_available())
            .collect()
    }

    #[test]
    fn hash_lanes_matches_short_for_all_tiers_and_counts() {
        // Every tier, every batch size from a single lone message up to
        // two full batches plus a partial tail, every length class.
        for tier in available_tiers() {
            for n in 1..=(2 * MAX_LANES + 1) {
                let msgs: Vec<Vec<u8>> = (0..n)
                    .map(|i| {
                        let len = (i * 7 + n) % (SHORT_MAX + 1);
                        (0..len).map(|j| (i * 31 + j) as u8).collect()
                    })
                    .collect();
                let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
                let got = hash_lanes_with(tier, &refs);
                for (msg, digest) in msgs.iter().zip(&got) {
                    assert_eq!(*digest, sha256_short(msg), "tier {tier:?} n {n}");
                }
            }
        }
    }

    #[test]
    fn nist_abc_through_every_tier() {
        for tier in available_tiers() {
            let digests = hash_lanes_with(tier, &[b"abc".as_slice(); 8]);
            for d in digests {
                assert_eq!(
                    d.to_hex(),
                    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
                    "tier {tier:?}"
                );
            }
        }
    }

    #[test]
    fn hash_eq_lanes_matches_streaming_for_all_tiers_and_lengths() {
        // Every padding-boundary length class: empty, one block with and
        // without room for the length, exact multiples, the 0x80-fits-
        // but-length-does-not window (56..64), and the 34-block W-OTS
        // public-key shape (2145).
        for len in [0usize, 1, 55, 56, 63, 64, 65, 119, 120, 128, 2145] {
            for n in [1usize, MAX_LANES - 1, MAX_LANES, MAX_LANES + 3] {
                let msgs: Vec<Vec<u8>> = (0..n)
                    .map(|i| (0..len).map(|j| (i * 83 + j) as u8).collect())
                    .collect();
                let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
                for tier in available_tiers() {
                    let got = hash_eq_lanes_with(tier, &refs);
                    for (msg, digest) in msgs.iter().zip(&got) {
                        let mut h = Sha256::new();
                        h.update(msg);
                        assert_eq!(*digest, h.finalize(), "tier {tier:?} len {len} n {n}");
                    }
                }
            }
        }
        assert!(hash_eq_lanes(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal-length messages")]
    fn hash_eq_lanes_rejects_ragged_lengths() {
        let _ = hash_eq_lanes_with(Dispatch::Scalar, &[b"aa".as_slice(), b"b".as_slice()]);
    }

    #[test]
    fn sha256_short_scalar_matches_dispatch() {
        for len in [0usize, 1, 36, 55] {
            let data: Vec<u8> = (0..len).map(|i| i as u8 ^ 0xA5).collect();
            assert_eq!(sha256_short_scalar(&data), sha256_short(&data), "len {len}");
        }
    }

    #[test]
    fn chain_step_shape_matches_sequential_all_tiers() {
        // The exact W-OTS shape: 36-byte message, digest written back
        // over the value field, step byte advanced by the caller.
        for tier in available_tiers() {
            let mut blocks = [[0u8; 64]; MAX_LANES];
            let mut reference = [[0u8; 32]; MAX_LANES];
            for (l, block) in blocks.iter_mut().enumerate() {
                block[0] = 0x02;
                block[1..3].copy_from_slice(&(l as u16).to_le_bytes());
                block[3] = 0;
                for (j, byte) in block[4..36].iter_mut().enumerate() {
                    *byte = (l * 17 + j) as u8;
                }
                block[36] = 0x80;
                block[56..].copy_from_slice(&(36u64 * 8).to_be_bytes());
                reference[l].copy_from_slice(&block[4..36]);
            }
            for step in 0u8..5 {
                for (l, r) in reference.iter_mut().enumerate() {
                    let mut buf = [0u8; 36];
                    buf[0] = 0x02;
                    buf[1..3].copy_from_slice(&(l as u16).to_le_bytes());
                    buf[3] = step;
                    buf[4..].copy_from_slice(r);
                    *r = *sha256_short(&buf).as_bytes();
                }
                for block in blocks.iter_mut() {
                    block[3] = step;
                }
                chain_steps_with(tier, &mut blocks);
                for (l, block) in blocks.iter().enumerate() {
                    assert_eq!(
                        &block[4..36],
                        &reference[l][..],
                        "tier {tier:?} step {step} lane {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_width_wrappers_match_sequential() {
        let make = |n: usize| {
            let mut blocks = vec![[0u8; 64]; n];
            for (l, block) in blocks.iter_mut().enumerate() {
                for (j, byte) in block[..36].iter_mut().enumerate() {
                    *byte = (l * 13 + j) as u8;
                }
                block[36] = 0x80;
                block[56..].copy_from_slice(&(36u64 * 8).to_be_bytes());
            }
            blocks
        };
        let mut b8: [[u8; 64]; 8] = make(8).try_into().unwrap();
        let expected8: Vec<Digest> = b8.iter().map(|b| sha256_short(&b[..36])).collect();
        chain_steps_x8(&mut b8);
        for (block, exp) in b8.iter().zip(&expected8) {
            assert_eq!(&block[4..36], exp.as_bytes());
        }
        let mut b4: [[u8; 64]; 4] = make(4).try_into().unwrap();
        let expected4: Vec<Digest> = b4.iter().map(|b| sha256_short(&b[..36])).collect();
        chain_steps_x4(&mut b4);
        for (block, exp) in b4.iter().zip(&expected4) {
            assert_eq!(&block[4..36], exp.as_bytes());
        }
    }

    #[test]
    fn pair_lanes_matches_sha256_pair_all_tiers() {
        let pairs: Vec<(Digest, Digest)> = (0u64..11)
            .map(|i| {
                (
                    super::super::sha256(&i.to_le_bytes()),
                    super::super::sha256(&(i * 31).to_le_bytes()),
                )
            })
            .collect();
        for tier in available_tiers() {
            for tag in [0u8, 1, 0xFF] {
                let got = pair_lanes_with(tier, tag, &pairs);
                for ((left, right), digest) in pairs.iter().zip(&got) {
                    assert_eq!(
                        *digest,
                        sha256_pair(tag, left.as_bytes(), right.as_bytes()),
                        "tier {tier:?} tag {tag}"
                    );
                }
            }
        }
    }

    #[test]
    fn finish_short_lanes_matches_streaming_all_tiers() {
        for prefix_blocks in [1usize, 2] {
            let prefix: Vec<u8> = (0..prefix_blocks * 64).map(|i| i as u8 ^ 0x3C).collect();
            let mid = Midstate::new(&prefix);
            let msgs: Vec<Vec<u8>> = (0..9usize)
                .map(|i| (0..(i * 6) % 56).map(|j| (i + j) as u8).collect())
                .collect();
            let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
            for tier in available_tiers() {
                let got = finish_short_lanes_with(tier, &mid, &refs);
                for (msg, digest) in msgs.iter().zip(&got) {
                    let mut h = Sha256::new();
                    h.update(&prefix);
                    h.update(msg);
                    assert_eq!(*digest, h.finalize(), "tier {tier:?}");
                }
            }
        }
    }

    #[test]
    fn dispatch_invariants() {
        assert!(Dispatch::Scalar.is_available());
        assert!(Dispatch::Single.is_available());
        assert!(Dispatch::SingleScalar.is_available());
        let active = Dispatch::active();
        assert!(active.is_available());
        assert_eq!(lane_width(), active.lanes());
        for tier in Dispatch::all() {
            assert!(tier.lanes() == 1 || tier.lanes() >= 4);
        }
        // The forced-tier fallback chain always lands somewhere runnable.
        assert!(clamp(Dispatch::Avx2).is_available());
        assert!(clamp(Dispatch::Sse2).is_available());
    }

    #[test]
    #[should_panic(expected = "does not fit one padded block")]
    fn hash_lanes_rejects_long_messages() {
        let long = [0u8; 56];
        let _ = hash_lanes_with(Dispatch::Scalar, &[&long]);
    }

    #[test]
    fn portable_baseline_instance_matches_reference() {
        // On AVX2 hosts `Dispatch::Scalar` runs the 16-lane
        // multiversioned instance, so drive the 4-lane baseline
        // instance directly: it is the kernel every non-x86 target
        // falls back to and must stay covered everywhere.
        for n in 1..=9usize {
            let msgs: Vec<Vec<u8>> = (0..n)
                .map(|i| (0..(i * 9) % 56).map(|j| (i * 41 + j) as u8).collect())
                .collect();
            let mut states = vec![H0; n];
            let mut blocks = vec![[0u8; 64]; n];
            for (block, msg) in blocks.iter_mut().zip(&msgs) {
                pad_short(msg, block);
            }
            compress_chunks::<4>(&mut states, &blocks, portable4::compress);
            for (state, msg) in states.iter().zip(&msgs) {
                assert_eq!(state_to_digest(state), sha256_short(msg), "n {n}");
            }
        }
    }
}
