//! Merkle signature scheme (MSS): a stateful, forward-secure, many-time
//! signature built from W-OTS leaves under a Merkle tree.
//!
//! * **Many-time**: a key of height `h` signs `2^h` messages.
//! * **Stateful**: the signer tracks the next unused leaf.
//! * **Forward-secure**: each leaf seed is destroyed after use, so
//!   compromising the signer later cannot forge signatures for earlier
//!   indices — this mirrors the paper's interest in forward-secure schemes
//!   that "obviate the need for a third party signature on time-stamps"
//!   (§3.5, ref \[25\]).
//!
//! The public key is the 32-byte Merkle root. A signature carries the leaf
//! index, the W-OTS signature, and the authentication path.

use std::error::Error;
use std::fmt;

use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::digest::{mb, Digest};
use crate::merkle::{implied_roots_with, leaf_hash, leaf_hash_digests_with, AuthPath, MerkleTree};
use crate::par;
use crate::rng::SecureRandom;
use crate::wots::{self, WotsKeyPair, WotsSignature};

/// Minimum W-OTS leaves per worker before keygen fans out to threads
/// (each leaf costs ~1300 compressions, so even small chunks amortize
/// thread spawn).
const PAR_MIN_LEAVES: usize = 8;

/// Errors from the signing side of MSS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MssError {
    /// All `2^h` one-time leaves have been used.
    KeyExhausted,
}

impl fmt::Display for MssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MssError::KeyExhausted => f.write_str("all one-time signature leaves used"),
        }
    }
}

impl Error for MssError {}

/// An MSS signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MssSignature {
    /// Index of the one-time leaf used.
    pub leaf_index: u32,
    /// The W-OTS signature over the message digest.
    pub wots: WotsSignature,
    /// Authentication path from the leaf to the root.
    pub path: AuthPath,
}

impl MssSignature {
    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        4 + WotsSignature::BYTE_LEN + self.path.byte_len()
    }
}

impl Encode for MssSignature {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.leaf_index);
        w.put_bytes(&self.wots.to_bytes());
        self.path.encode(w);
    }
}

impl Decode for MssSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let leaf_index = r.get_u32()?;
        let wots_bytes = r.get_bytes()?;
        let wots = WotsSignature::from_bytes(wots_bytes)
            .ok_or_else(|| CodecError::Invalid("bad wots signature length".into()))?;
        Ok(Self {
            leaf_index,
            wots,
            path: AuthPath::decode(r)?,
        })
    }
}

/// The signing half of an MSS key.
#[derive(Debug)]
pub struct MssSigner {
    /// Per-leaf W-OTS seeds; `None` once used (forward security).
    leaf_seeds: Vec<Option<[u8; 32]>>,
    tree: MerkleTree,
    next_leaf: u32,
}

impl MssSigner {
    /// Generates a new key of height `height` (capacity `2^height`).
    ///
    /// # Panics
    ///
    /// Panics if `height` is 0 or greater than 20 (a million-signature key
    /// already takes noticeable time to generate; anything larger is
    /// a configuration mistake).
    pub fn generate(height: u8, rng: &mut SecureRandom) -> Self {
        Self::generate_with_workers(height, rng, par::workers())
    }

    /// [`MssSigner::generate`] with an explicit worker budget.
    ///
    /// Seeds are drawn from `rng` sequentially (so the key is identical
    /// for a given seed stream regardless of the worker count); the
    /// expensive W-OTS chain walks and the Merkle levels are split
    /// across scoped threads, and inside each worker the per-leaf chain
    /// walks and the leaf hashes run lane-batched through the
    /// multi-buffer engine — thread-level and lane-level parallelism
    /// compose.
    ///
    /// # Panics
    ///
    /// Panics if `height` is 0 or greater than 20 (a million-signature key
    /// already takes noticeable time to generate; anything larger is
    /// a configuration mistake).
    pub fn generate_with_workers(height: u8, rng: &mut SecureRandom, workers: usize) -> Self {
        assert!((1..=20).contains(&height), "height must be in 1..=20");
        let count = 1usize << height;
        let seeds: Vec<[u8; 32]> = (0..count).map(|_| rng.secret32()).collect();
        let d = mb::Dispatch::active();
        let leaf_hashes = par::par_map_range_with(workers, count, PAR_MIN_LEAVES, |range| {
            let pks = WotsKeyPair::public_keys_from_seeds_with(&seeds[range], d);
            leaf_hash_digests_with(d, &pks)
        });
        let tree = MerkleTree::from_leaf_hashes_with_workers(leaf_hashes, workers);
        Self {
            leaf_seeds: seeds.into_iter().map(Some).collect(),
            tree,
            next_leaf: 0,
        }
    }

    /// Strictly sequential key generation: one thread, single-lane
    /// hashing (the pre-parallel, pre-multi-buffer reference path, kept
    /// for differential tests and benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `height` is 0 or greater than 20.
    pub fn generate_sequential(height: u8, rng: &mut SecureRandom) -> Self {
        assert!((1..=20).contains(&height), "height must be in 1..=20");
        let count = 1usize << height;
        let mut leaf_seeds = Vec::with_capacity(count);
        let mut leaf_hashes = Vec::with_capacity(count);
        for _ in 0..count {
            let seed = rng.secret32();
            let kp = WotsKeyPair::from_seed_with(seed, mb::Dispatch::Single);
            leaf_hashes.push(leaf_hash(kp.public_key().as_bytes()));
            leaf_seeds.push(Some(seed));
        }
        let tree = MerkleTree::from_leaf_hashes_with_workers(leaf_hashes, 1);
        Self {
            leaf_seeds,
            tree,
            next_leaf: 0,
        }
    }

    /// The public key (Merkle root).
    pub fn public_key(&self) -> Digest {
        self.tree.root()
    }

    /// Remaining signature capacity.
    pub fn remaining(&self) -> u32 {
        self.leaf_seeds.len() as u32 - self.next_leaf
    }

    /// Total capacity (`2^height`).
    pub fn capacity(&self) -> u32 {
        self.leaf_seeds.len() as u32
    }

    /// Signs a message digest with the next unused leaf and destroys that
    /// leaf's secret (forward security).
    ///
    /// # Errors
    ///
    /// Returns [`MssError::KeyExhausted`] when all leaves are used.
    pub fn sign(&mut self, digest: &Digest) -> Result<MssSignature, MssError> {
        let idx = self.next_leaf as usize;
        if idx >= self.leaf_seeds.len() {
            return Err(MssError::KeyExhausted);
        }
        let seed = self.leaf_seeds[idx]
            .take()
            .expect("unused leaf seed present");
        self.next_leaf += 1;
        // Sign straight from the seed: the full keypair derivation would
        // also walk every chain to its end for a public key this path
        // never reads (the verifier recovers it) — roughly double the
        // signing cost for nothing.
        let wots = WotsKeyPair::sign_from_seed_with(&seed, digest, mb::Dispatch::active());
        let path = self.tree.auth_path(idx);
        Ok(MssSignature {
            leaf_index: idx as u32,
            wots,
            path,
        })
    }
}

/// Verifies an MSS signature over `digest` against `public_key` (root).
///
/// Besides the Merkle path check, the declared `leaf_index` must agree with
/// the direction bits of the authentication path (the index is what binds a
/// signature to *one* one-time key, so it must not be forgeable
/// independently of the path).
pub fn verify(public_key: &Digest, digest: &Digest, sig: &MssSignature) -> bool {
    if !index_matches_path(sig) {
        return false;
    }
    let candidate_pk = wots::recover_public_key(digest, &sig.wots);
    let leaf = leaf_hash(candidate_pk.as_bytes());
    MerkleTree::verify(public_key, &leaf, &sig.path)
}

/// Whether the declared leaf index agrees with the direction bits of
/// the authentication path: at level l the sibling is on the right iff
/// bit l of the index is 0.
fn index_matches_path(sig: &MssSignature) -> bool {
    let mut implied_index: u64 = 0;
    for (level, step) in sig.path.steps.iter().enumerate() {
        if !step.sibling_on_right {
            implied_index |= 1 << level;
        }
    }
    implied_index == u64::from(sig.leaf_index)
}

/// Batch [`verify`] under the active dispatch: checks many signatures
/// against one `public_key` (root), returning one flag per signature.
/// Identical to mapping [`verify`] over the pairs, but every hashing
/// stage runs lane-batched — the W-OTS recovery walks are scheduled
/// over one flat chain list spanning all signatures, the candidate-key
/// compressions and leaf hashes run in lockstep, and the
/// authentication paths climb level by level through
/// [`crate::merkle::implied_roots`].
///
/// # Panics
///
/// Panics if `digests` and `sigs` differ in length.
pub fn verify_many(public_key: &Digest, digests: &[Digest], sigs: &[&MssSignature]) -> Vec<bool> {
    verify_many_with(public_key, digests, sigs, mb::Dispatch::active())
}

/// [`verify_many`] under an explicit dispatch tier.
///
/// # Panics
///
/// Panics if `digests` and `sigs` differ in length or the tier is
/// unavailable on this host.
pub fn verify_many_with(
    public_key: &Digest,
    digests: &[Digest],
    sigs: &[&MssSignature],
    d: mb::Dispatch,
) -> Vec<bool> {
    assert_eq!(digests.len(), sigs.len(), "one digest per signature");
    let wots_sigs: Vec<&WotsSignature> = sigs.iter().map(|s| &s.wots).collect();
    let pks = wots::recover_public_keys_with(digests, &wots_sigs, d);
    let leaves = leaf_hash_digests_with(d, &pks);
    let paths: Vec<&AuthPath> = sigs.iter().map(|s| &s.path).collect();
    let roots = implied_roots_with(d, &leaves, &paths);
    sigs.iter()
        .zip(&roots)
        .map(|(sig, root)| index_matches_path(sig) && *root == *public_key)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;

    fn signer(height: u8, seed: u64) -> MssSigner {
        MssSigner::generate(height, &mut SecureRandom::from_seed(seed))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut s = signer(2, 1);
        let pk = s.public_key();
        let d = sha256(b"hello");
        let sig = s.sign(&d).unwrap();
        assert!(verify(&pk, &d, &sig));
    }

    #[test]
    fn each_signature_uses_fresh_leaf() {
        let mut s = signer(2, 2);
        let pk = s.public_key();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4 {
            let d = sha256(format!("msg-{i}").as_bytes());
            let sig = s.sign(&d).unwrap();
            assert!(verify(&pk, &d, &sig));
            assert!(seen.insert(sig.leaf_index));
        }
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn key_exhaustion_reported() {
        let mut s = signer(1, 3);
        assert_eq!(s.capacity(), 2);
        s.sign(&sha256(b"a")).unwrap();
        s.sign(&sha256(b"b")).unwrap();
        assert_eq!(s.sign(&sha256(b"c")).unwrap_err(), MssError::KeyExhausted);
    }

    #[test]
    fn forward_security_deletes_used_seeds() {
        let mut s = signer(2, 4);
        s.sign(&sha256(b"a")).unwrap();
        assert!(
            s.leaf_seeds[0].is_none(),
            "used leaf seed must be destroyed"
        );
        assert!(s.leaf_seeds[1].is_some());
    }

    #[test]
    fn wrong_digest_fails() {
        let mut s = signer(2, 5);
        let pk = s.public_key();
        let sig = s.sign(&sha256(b"real")).unwrap();
        assert!(!verify(&pk, &sha256(b"fake"), &sig));
    }

    #[test]
    fn wrong_root_fails() {
        let mut s1 = signer(2, 6);
        let s2 = signer(2, 7);
        let d = sha256(b"msg");
        let sig = s1.sign(&d).unwrap();
        assert!(!verify(&s2.public_key(), &d, &sig));
    }

    #[test]
    fn tampered_leaf_index_fails() {
        let mut s = signer(3, 8);
        let pk = s.public_key();
        let d = sha256(b"msg");
        let mut sig = s.sign(&d).unwrap();
        sig.leaf_index = 5; // path no longer matches
        assert!(!verify(&pk, &d, &sig));
    }

    #[test]
    fn signature_codec_roundtrip() {
        let mut s = signer(2, 9);
        let d = sha256(b"codec");
        let sig = s.sign(&d).unwrap();
        let bytes = sig.encode_to_vec();
        let back = MssSignature::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, sig);
        assert!(verify(&s.public_key(), &d, &back));
    }

    #[test]
    fn byte_len_matches_reported() {
        let mut s = signer(3, 10);
        let sig = s.sign(&sha256(b"len")).unwrap();
        // encode has some length prefixes; byte_len reports the raw payload.
        assert!(sig.encode_to_vec().len() >= sig.byte_len());
    }

    #[test]
    #[should_panic(expected = "height must be in 1..=20")]
    fn zero_height_panics() {
        let _ = signer(0, 11);
    }

    #[test]
    fn verify_many_matches_verify_for_every_tier() {
        // A mixed batch: valid signatures, a wrong digest, a tampered
        // chain value, and a doctored leaf index — the batch path must
        // agree with the one-at-a-time path on every flag.
        let mut s = signer(3, 12);
        let pk = s.public_key();
        let mut digests: Vec<Digest> = (0..6u8).map(|i| sha256(&[i, 0x9D])).collect();
        let mut sigs: Vec<MssSignature> = digests
            .iter()
            .map(|digest| s.sign(digest).unwrap())
            .collect();
        digests[1] = sha256(b"swapped after signing");
        sigs[2].wots.chains[0][0] ^= 0xFF;
        sigs[3].leaf_index ^= 1;
        let sig_refs: Vec<&MssSignature> = sigs.iter().collect();
        let expected: Vec<bool> = digests
            .iter()
            .zip(&sigs)
            .map(|(digest, sig)| verify(&pk, digest, sig))
            .collect();
        assert_eq!(expected, [true, false, false, false, true, true]);
        for tier in mb::Dispatch::all() {
            if !tier.is_available() {
                continue;
            }
            assert_eq!(
                verify_many_with(&pk, &digests, &sig_refs, tier),
                expected,
                "tier {tier:?}"
            );
        }
        assert_eq!(verify_many(&pk, &digests, &sig_refs), expected);
        assert!(verify_many(&pk, &[], &[]).is_empty());
    }

    #[test]
    fn parallel_and_sequential_keygen_agree() {
        // Same seed stream ⇒ identical key material and root, for every
        // worker budget (including oversubscription on a 1-core host).
        for height in [1u8, 3, 5] {
            let reference =
                MssSigner::generate_sequential(height, &mut SecureRandom::from_seed(42));
            for workers in [1usize, 2, 4, 7] {
                let par = MssSigner::generate_with_workers(
                    height,
                    &mut SecureRandom::from_seed(42),
                    workers,
                );
                assert_eq!(
                    par.public_key(),
                    reference.public_key(),
                    "h={height} w={workers}"
                );
                assert_eq!(
                    par.leaf_seeds, reference.leaf_seeds,
                    "h={height} w={workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_keygen_signatures_verify_against_sequential_root() {
        let mut par = MssSigner::generate_with_workers(3, &mut SecureRandom::from_seed(9), 4);
        let seq = MssSigner::generate_sequential(3, &mut SecureRandom::from_seed(9));
        let d = sha256(b"cross");
        let sig = par.sign(&d).unwrap();
        assert!(verify(&seq.public_key(), &d, &sig));
    }
}
