//! Merkle trees.
//!
//! Used in two places: as the key-authentication tree of the Merkle
//! signature scheme ([`crate::mss`]), and for batch commitments over
//! evidence records. Leaf and interior hashes are domain-separated
//! (`0x00` / `0x01` tags) so a leaf can never be confused with a node —
//! the classic second-preimage defence.

use crate::digest::{mb, sha256_pair, Digest, Sha256};
use crate::par;

use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};

const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

/// Minimum parent nodes per worker before a tree level fans out to
/// threads (a node hash is two compressions, so small levels stay
/// sequential).
const PAR_MIN_NODES: usize = 1024;

/// Hashes a leaf payload with leaf domain separation.
pub fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_TAG]);
    h.update(data);
    h.finalize()
}

/// Leaf-hashes a batch of digest-sized payloads (e.g. W-OTS public
/// keys, the MSS keygen shape) through the multi-buffer engine: each
/// 33-byte leaf message fits one compression block, so up to
/// [`mb::lane_width`] leaves hash per compression. Identical to mapping
/// [`leaf_hash`] over the payload bytes.
pub fn leaf_hash_digests(payloads: &[Digest]) -> Vec<Digest> {
    leaf_hash_digests_with(mb::Dispatch::active(), payloads)
}

/// [`leaf_hash_digests`] under an explicit dispatch tier.
pub fn leaf_hash_digests_with(d: mb::Dispatch, payloads: &[Digest]) -> Vec<Digest> {
    let msgs: Vec<[u8; 33]> = payloads
        .iter()
        .map(|p| {
            let mut msg = [0u8; 33];
            msg[0] = LEAF_TAG;
            msg[1..].copy_from_slice(p.as_bytes());
            msg
        })
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    mb::hash_lanes_with(d, &refs)
}

/// Hashes two child digests into their parent.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_pair(NODE_TAG, left.as_bytes(), right.as_bytes())
}

/// Builds one tree level: parents of `prev`, split across `workers`
/// threads, each worker hashing its contiguous node range N-pairs-at-a-
/// time through the multi-buffer engine.
fn build_level(prev: &[Digest], workers: usize, d: mb::Dispatch) -> Vec<Digest> {
    let parents = prev.len().div_ceil(2);
    par::par_map_range_with(workers, parents, PAR_MIN_NODES, |range| {
        let pairs: Vec<(Digest, Digest)> = range
            .map(|i| {
                let left = prev[2 * i];
                let right = if 2 * i + 1 < prev.len() {
                    prev[2 * i + 1]
                } else {
                    left
                };
                (left, right)
            })
            .collect();
        mb::pair_lanes_with(d, NODE_TAG, &pairs)
    })
}

/// A complete binary Merkle tree over a power-of-two number of leaves.
///
/// Odd leaf counts are padded by duplicating the final leaf *hash* at each
/// level (Bitcoin-style), which keeps proofs simple.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = `[root]`.
    levels: Vec<Vec<Digest>>,
}

/// One step of an authentication path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// The sibling digest at this level.
    pub sibling: Digest,
    /// `true` if the sibling is on the right of the running hash.
    pub sibling_on_right: bool,
}

/// An authentication path from a leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuthPath {
    /// Steps from the leaf level upward.
    pub steps: Vec<PathStep>,
}

impl AuthPath {
    /// Recomputes the root implied by `leaf` under this path.
    pub fn implied_root(&self, leaf: &Digest) -> Digest {
        let mut acc = *leaf;
        for step in &self.steps {
            acc = if step.sibling_on_right {
                node_hash(&acc, &step.sibling)
            } else {
                node_hash(&step.sibling, &acc)
            };
        }
        acc
    }

    /// Serialized size in bytes (32 per step + 1 direction byte).
    pub fn byte_len(&self) -> usize {
        self.steps.len() * 33
    }
}

/// Recomputes the roots implied by many `(leaf, path)` pairs in
/// lockstep under the active dispatch: at each level the still-active
/// paths' `(running hash, sibling)` pairs hash through
/// [`mb::pair_lanes_with`], so up to `mb::lane_width()` paths climb per
/// two compressions; a path shorter than the deepest retires early and
/// keeps its root. Identical to mapping [`AuthPath::implied_root`] —
/// the batch-verification shape of the MSS layer
/// (`crate::mss::verify_many`).
///
/// # Panics
///
/// Panics if `leaves` and `paths` differ in length.
pub fn implied_roots(leaves: &[Digest], paths: &[&AuthPath]) -> Vec<Digest> {
    implied_roots_with(mb::Dispatch::active(), leaves, paths)
}

/// [`implied_roots`] under an explicit dispatch tier.
///
/// # Panics
///
/// Panics if `leaves` and `paths` differ in length or `d` is
/// unavailable on this host.
pub fn implied_roots_with(d: mb::Dispatch, leaves: &[Digest], paths: &[&AuthPath]) -> Vec<Digest> {
    assert_eq!(leaves.len(), paths.len(), "one leaf per path");
    let mut accs: Vec<Digest> = leaves.to_vec();
    let depth = paths.iter().map(|p| p.steps.len()).max().unwrap_or(0);
    for level in 0..depth {
        let active: Vec<usize> = (0..paths.len())
            .filter(|&i| level < paths[i].steps.len())
            .collect();
        let pairs: Vec<(Digest, Digest)> = active
            .iter()
            .map(|&i| {
                let step = &paths[i].steps[level];
                if step.sibling_on_right {
                    (accs[i], step.sibling)
                } else {
                    (step.sibling, accs[i])
                }
            })
            .collect();
        for (&i, parent) in active.iter().zip(mb::pair_lanes_with(d, NODE_TAG, &pairs)) {
            accs[i] = parent;
        }
    }
    accs
}

/// The canonical wire format for authentication paths, shared by every
/// signature type that carries one (`MssSignature`, `BatchSignature`):
/// `u32` step count, then 32 raw sibling bytes + one direction bool per
/// step. Depth is capped at 64 on decode.
impl Encode for AuthPath {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.steps.len() as u32);
        for step in &self.steps {
            w.put_raw(step.sibling.as_bytes());
            w.put_bool(step.sibling_on_right);
        }
    }
}

impl Decode for AuthPath {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.get_u32()? as usize;
        if n > 64 {
            return Err(CodecError::Invalid(format!("auth path too deep: {n}")));
        }
        let mut steps = Vec::with_capacity(n);
        for _ in 0..n {
            let sibling = Digest::decode(r)?;
            let sibling_on_right = r.get_bool()?;
            steps.push(PathStep {
                sibling,
                sibling_on_right,
            });
        }
        Ok(Self { steps })
    }
}

impl MerkleTree {
    /// Builds a tree over already-hashed leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn from_leaf_hashes(leaves: Vec<Digest>) -> Self {
        Self::from_leaf_hashes_with_workers(leaves, par::workers())
    }

    /// [`MerkleTree::from_leaf_hashes`] with an explicit worker budget:
    /// each level's node hashes are split across scoped threads once the
    /// level is wide enough to amortize them, and every worker hashes
    /// its node range lane-batched (multi-buffer pair hashing). The
    /// resulting tree is identical for every worker count and dispatch
    /// tier.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn from_leaf_hashes_with_workers(leaves: Vec<Digest>, workers: usize) -> Self {
        assert!(!leaves.is_empty(), "merkle tree needs at least one leaf");
        let d = mb::Dispatch::active();
        let mut levels = vec![leaves];
        while levels.last().unwrap().len() > 1 {
            let next = build_level(levels.last().unwrap(), workers, d);
            levels.push(next);
        }
        Self { levels }
    }

    /// Builds a tree by leaf-hashing each payload (split across workers
    /// for large batches — the batch-evidence-commitment shape).
    ///
    /// # Panics
    ///
    /// Panics if `payloads` is empty.
    pub fn from_payloads<'a, I: IntoIterator<Item = &'a [u8]>>(payloads: I) -> Self {
        let payloads: Vec<&[u8]> = payloads.into_iter().collect();
        let leaves = par::par_map(&payloads, 4096, |p| leaf_hash(p));
        Self::from_leaf_hashes(leaves)
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// The hash of leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn leaf(&self, index: usize) -> Digest {
        self.levels[0][index]
    }

    /// Builds the authentication path for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= leaf_count()`.
    pub fn auth_path(&self, index: usize) -> AuthPath {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut steps = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = if sibling_idx < level.len() {
                level[sibling_idx]
            } else {
                level[idx]
            };
            steps.push(PathStep {
                sibling,
                sibling_on_right: idx.is_multiple_of(2),
            });
            idx /= 2;
        }
        AuthPath { steps }
    }

    /// Verifies that `leaf` at `index`'s path reproduces `root`.
    pub fn verify(root: &Digest, leaf: &Digest, path: &AuthPath) -> bool {
        path.implied_root(leaf) == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_payloads([b"only".as_slice()]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        assert_eq!(tree.leaf_count(), 1);
        let path = tree.auth_path(0);
        assert!(path.steps.is_empty());
        assert!(MerkleTree::verify(&tree.root(), &leaf_hash(b"only"), &path));
    }

    #[test]
    fn all_paths_verify_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let data = payloads(n);
            let tree = MerkleTree::from_payloads(data.iter().map(Vec::as_slice));
            let root = tree.root();
            for (i, payload) in data.iter().enumerate() {
                let path = tree.auth_path(i);
                assert!(
                    MerkleTree::verify(&root, &leaf_hash(payload), &path),
                    "n={n} leaf={i}"
                );
            }
        }
    }

    #[test]
    fn wrong_leaf_fails_verification() {
        let data = payloads(8);
        let tree = MerkleTree::from_payloads(data.iter().map(Vec::as_slice));
        let path = tree.auth_path(3);
        assert!(!MerkleTree::verify(
            &tree.root(),
            &leaf_hash(b"forged"),
            &path
        ));
    }

    #[test]
    fn wrong_position_fails_verification() {
        let data = payloads(8);
        let tree = MerkleTree::from_payloads(data.iter().map(Vec::as_slice));
        let path_for_2 = tree.auth_path(2);
        // Leaf 3's hash with leaf 2's path must not verify.
        assert!(!MerkleTree::verify(
            &tree.root(),
            &leaf_hash(&data[3]),
            &path_for_2
        ));
    }

    #[test]
    fn tampered_path_fails() {
        let data = payloads(4);
        let tree = MerkleTree::from_payloads(data.iter().map(Vec::as_slice));
        let mut path = tree.auth_path(0);
        path.steps[0].sibling = leaf_hash(b"evil");
        assert!(!MerkleTree::verify(
            &tree.root(),
            &leaf_hash(&data[0]),
            &path
        ));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A 2-leaf tree whose leaves happen to be digests should not equal
        // a node hash of those digests interpreted as leaves.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let tree = MerkleTree::from_leaf_hashes(vec![a, b]);
        assert_eq!(tree.root(), node_hash(&a, &b));
        assert_ne!(
            tree.root(),
            leaf_hash(&[a.as_bytes().as_slice(), b.as_bytes().as_slice()].concat())
        );
    }

    #[test]
    fn deterministic_roots() {
        let data = payloads(5);
        let t1 = MerkleTree::from_payloads(data.iter().map(Vec::as_slice));
        let t2 = MerkleTree::from_payloads(data.iter().map(Vec::as_slice));
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn path_byte_len() {
        let data = payloads(8);
        let tree = MerkleTree::from_payloads(data.iter().map(Vec::as_slice));
        assert_eq!(tree.auth_path(0).byte_len(), 3 * 33);
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        let _ = MerkleTree::from_leaf_hashes(vec![]);
    }

    #[test]
    fn lane_batched_levels_match_node_hash_for_every_tier() {
        // Odd widths exercise the duplicated-last-leaf lane and partial
        // final batches at every level.
        for n in [2usize, 3, 5, 9, 17, 33] {
            let leaves: Vec<Digest> = (0..n as u32).map(|i| leaf_hash(&i.to_le_bytes())).collect();
            let mut expected = leaves.clone();
            while expected.len() > 1 {
                expected = (0..expected.len().div_ceil(2))
                    .map(|i| {
                        let left = expected[2 * i];
                        let right = *expected.get(2 * i + 1).unwrap_or(&left);
                        node_hash(&left, &right)
                    })
                    .collect();
            }
            for tier in mb::Dispatch::all() {
                if !tier.is_available() {
                    continue;
                }
                let mut level = leaves.clone();
                while level.len() > 1 {
                    level = build_level(&level, 1, tier);
                }
                assert_eq!(level[0], expected[0], "n={n} tier={tier:?}");
            }
        }
    }

    #[test]
    fn leaf_hash_digests_matches_leaf_hash() {
        let payloads: Vec<Digest> = (0u32..19).map(|i| leaf_hash(&i.to_le_bytes())).collect();
        for tier in mb::Dispatch::all() {
            if !tier.is_available() {
                continue;
            }
            let got = leaf_hash_digests_with(tier, &payloads);
            for (p, digest) in payloads.iter().zip(&got) {
                assert_eq!(*digest, leaf_hash(p.as_bytes()), "tier {tier:?}");
            }
        }
        assert_eq!(leaf_hash_digests(&payloads).len(), payloads.len());
    }

    #[test]
    fn lockstep_implied_roots_match_per_path_for_every_tier() {
        // Paths of different depths (trees of 9, 4 and 1 leaves) in one
        // batch: deep paths keep climbing after shallow ones retire, and
        // the single-leaf path is a no-op that must pass its leaf
        // through unchanged.
        let big = MerkleTree::from_payloads(payloads(9).iter().map(Vec::as_slice));
        let small = MerkleTree::from_payloads(payloads(4).iter().map(Vec::as_slice));
        let lone = MerkleTree::from_payloads([b"solo".as_slice()]);
        let mut leaves = Vec::new();
        let mut paths = Vec::new();
        for i in 0..9 {
            leaves.push(big.leaf(i));
            paths.push(big.auth_path(i));
        }
        for i in 0..4 {
            leaves.push(small.leaf(i));
            paths.push(small.auth_path(i));
        }
        leaves.push(lone.leaf(0));
        paths.push(lone.auth_path(0));
        let path_refs: Vec<&AuthPath> = paths.iter().collect();
        let expected: Vec<Digest> = leaves
            .iter()
            .zip(&paths)
            .map(|(leaf, path)| path.implied_root(leaf))
            .collect();
        for tier in mb::Dispatch::all() {
            if !tier.is_available() {
                continue;
            }
            assert_eq!(
                implied_roots_with(tier, &leaves, &path_refs),
                expected,
                "tier {tier:?}"
            );
        }
        assert_eq!(implied_roots(&leaves, &path_refs), expected);
        assert!(implied_roots(&[], &[]).is_empty());
    }

    #[test]
    fn worker_count_does_not_change_the_tree() {
        // 5000 leaves → 2500 first-level parents, enough for ≥ 2 workers
        // at PAR_MIN_NODES per worker, so the scoped-thread branch of
        // level construction genuinely runs.
        let leaves: Vec<Digest> = (0..5000u32).map(|i| leaf_hash(&i.to_le_bytes())).collect();
        let reference = MerkleTree::from_leaf_hashes_with_workers(leaves.clone(), 1);
        for workers in [2usize, 3, 8] {
            let tree = MerkleTree::from_leaf_hashes_with_workers(leaves.clone(), workers);
            assert_eq!(tree.root(), reference.root(), "workers={workers}");
            assert_eq!(tree.leaf_count(), reference.leaf_count());
            let path = tree.auth_path(4321);
            assert!(MerkleTree::verify(&reference.root(), &leaves[4321], &path));
        }
    }
}
