//! Time-stamping service.
//!
//! Paper §3.5: "non-repudiation evidence should be time-stamped for logging
//! and to support the assertion that the signature used to sign evidence
//! was not compromised at time of use". A [`TimeStampAuthority`] binds a
//! digest to a time by signing `(digest, time)`; any party holding the
//! authority's verifying key can check the binding.
//!
//! When the signing organisations use the forward-secure MSS scheme, a
//! third-party timestamp becomes optional for the compromise argument
//! (paper ref \[25\]) — the TSA remains useful as a neutral time source.

use std::fmt;
use std::sync::Arc;

use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};
use nonrep_types::time::{Clock, Timestamp};

use crate::digest::Digest;
use crate::sig::{KeyPair, SignError, Signature, VerifyingKey};

/// A signed binding of a digest to a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeStampToken {
    /// The digest that was stamped.
    pub digest: Digest,
    /// The authority's clock reading.
    pub time: Timestamp,
    /// The authority's signature over `(digest, time)`.
    pub signature: Signature,
}

impl TimeStampToken {
    fn signed_bytes(digest: &Digest, time: Timestamp) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("nonrep.tst.v1");
        digest.encode(&mut w);
        time.encode(&mut w);
        w.into_vec()
    }

    /// Verifies this token under the authority's verifying key, optionally
    /// also checking it stamps the expected digest.
    pub fn verify(&self, tsa_key: &VerifyingKey, expected: Option<&Digest>) -> bool {
        if let Some(d) = expected {
            if *d != self.digest {
                return false;
            }
        }
        tsa_key.verify(
            &Self::signed_bytes(&self.digest, self.time),
            &self.signature,
        )
    }
}

impl Encode for TimeStampToken {
    fn encode(&self, w: &mut Writer) {
        self.digest.encode(w);
        self.time.encode(w);
        self.signature.encode(w);
    }
}

impl Decode for TimeStampToken {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            digest: Digest::decode(r)?,
            time: Timestamp::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

/// A time-stamping authority.
pub struct TimeStampAuthority {
    keys: KeyPair,
    clock: Arc<dyn Clock>,
}

impl fmt::Debug for TimeStampAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeStampAuthority({})", self.keys.key_id())
    }
}

impl TimeStampAuthority {
    /// Creates an authority from its key pair and clock.
    pub fn new(keys: KeyPair, clock: Arc<dyn Clock>) -> Self {
        Self { keys, clock }
    }

    /// The authority's verifying key, to be distributed to relying parties.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.keys.verifying_key()
    }

    /// Issues a timestamp token over `digest` at the current clock reading.
    ///
    /// # Errors
    ///
    /// Returns [`SignError`] if the authority's signing key is exhausted.
    pub fn stamp(&self, digest: &Digest) -> Result<TimeStampToken, SignError> {
        let time = self.clock.now();
        let signature = self
            .keys
            .sign(&TimeStampToken::signed_bytes(digest, time))?;
        Ok(TimeStampToken {
            digest: *digest,
            time,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;
    use crate::rng::SecureRandom;
    use crate::sig::SignatureScheme;
    use nonrep_types::time::LogicalClock;

    fn tsa(clock: LogicalClock) -> TimeStampAuthority {
        let keys = KeyPair::generate(
            SignatureScheme::Mss { height: 4 },
            &mut SecureRandom::from_seed(99),
        );
        TimeStampAuthority::new(keys, Arc::new(clock))
    }

    #[test]
    fn stamp_and_verify() {
        let clock = LogicalClock::new();
        clock.advance(1234);
        let authority = tsa(clock);
        let d = sha256(b"evidence");
        let token = authority.stamp(&d).unwrap();
        assert_eq!(token.time, Timestamp(1234));
        assert!(token.verify(&authority.verifying_key(), Some(&d)));
        assert!(token.verify(&authority.verifying_key(), None));
    }

    #[test]
    fn wrong_digest_rejected() {
        let authority = tsa(LogicalClock::new());
        let token = authority.stamp(&sha256(b"a")).unwrap();
        assert!(!token.verify(&authority.verifying_key(), Some(&sha256(b"b"))));
    }

    #[test]
    fn tampered_time_rejected() {
        let authority = tsa(LogicalClock::new());
        let mut token = authority.stamp(&sha256(b"a")).unwrap();
        token.time = Timestamp(9999);
        assert!(!token.verify(&authority.verifying_key(), None));
    }

    #[test]
    fn wrong_authority_rejected() {
        let a1 = tsa(LogicalClock::new());
        let keys2 = KeyPair::generate(
            SignatureScheme::Mss { height: 2 },
            &mut SecureRandom::from_seed(5),
        );
        let token = a1.stamp(&sha256(b"a")).unwrap();
        assert!(!token.verify(&keys2.verifying_key(), None));
    }

    #[test]
    fn token_codec_roundtrip() {
        let authority = tsa(LogicalClock::new());
        let token = authority.stamp(&sha256(b"wire")).unwrap();
        let back = TimeStampToken::decode_from_slice(&token.encode_to_vec()).unwrap();
        assert_eq!(back, token);
        assert!(back.verify(&authority.verifying_key(), None));
    }

    #[test]
    fn successive_stamps_reflect_clock_progress() {
        let clock = LogicalClock::new();
        let authority = tsa(clock.clone());
        let t1 = authority.stamp(&sha256(b"a")).unwrap();
        clock.advance(10);
        let t2 = authority.stamp(&sha256(b"b")).unwrap();
        assert!(t2.time > t1.time);
    }
}
