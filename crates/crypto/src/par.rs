//! Scoped-thread data parallelism (no external dependencies).
//!
//! [`par_map`] / [`par_map_indexed`] split an embarrassingly parallel map
//! over `std::thread::scope` workers. They are used by MSS key generation
//! (per-leaf W-OTS chain walks) and Merkle level construction, and are
//! reusable by any batch workload — e.g. batch evidence commitments that
//! leaf-hash many records at once.
//!
//! Work is only split when it is worth it: each worker must receive at
//! least `min_per_worker` items, and the worker count is capped by
//! [`workers`] (the detected parallelism, overridable with the
//! `NONREP_WORKERS` environment variable). On a single-core host every
//! call degrades to a plain sequential map with no thread overhead.

use std::sync::OnceLock;

/// The worker count used by the `par_map*` convenience wrappers:
/// `NONREP_WORKERS` if set, otherwise `std::thread::available_parallelism`.
pub fn workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        if let Ok(v) = std::env::var("NONREP_WORKERS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Maps `f` over contiguous index ranges of `0..n` with an explicit
/// worker budget, concatenating the per-range outputs in order.
///
/// This is the primitive that composes thread-level and lane-level
/// parallelism: each worker owns one contiguous range and is free to
/// process it in lane-width batches through the multi-buffer hash
/// engine ([`crate::digest::mb`]) — Merkle level construction and MSS
/// leaf hashing both do. `f` must return exactly one item per index of
/// its range.
///
/// Falls back to a single `f(0..n)` call when `n / min_per_worker` does
/// not justify a second worker.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map_range_with<R, F>(
    worker_budget: usize,
    n: usize,
    min_per_worker: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    let max_useful = n.checked_div(min_per_worker).unwrap_or(worker_budget);
    let workers = worker_budget.min(max_useful).max(1);
    if workers == 1 || n == 0 {
        return f(0..n);
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = (w * chunk).min(n);
                let end = ((w + 1) * chunk).min(n);
                s.spawn(move || f(start..end))
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// [`par_map_range_with`] using the default [`workers`] budget.
pub fn par_map_range<R, F>(n: usize, min_per_worker: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    par_map_range_with(workers(), n, min_per_worker, f)
}

/// Maps `f` over `0..n` with an explicit worker budget, preserving order.
///
/// Splits into contiguous index ranges, one per worker; falls back to a
/// sequential map when `n / min_per_worker` does not justify a second
/// worker.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn par_map_indexed_with<R, F>(
    worker_budget: usize,
    n: usize,
    min_per_worker: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_range_with(worker_budget, n, min_per_worker, |range| {
        range.map(&f).collect()
    })
}

/// [`par_map_indexed_with`] using the default [`workers`] budget.
pub fn par_map_indexed<R, F>(n: usize, min_per_worker: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(workers(), n, min_per_worker, f)
}

/// Maps `f` over a slice with an explicit worker budget, preserving order.
pub fn par_map_with<T, R, F>(
    worker_budget: usize,
    items: &[T],
    min_per_worker: usize,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_with(worker_budget, items.len(), min_per_worker, |i| f(&items[i]))
}

/// [`par_map_with`] using the default [`workers`] budget.
pub fn par_map<T, R, F>(items: &[T], min_per_worker: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(workers(), items, min_per_worker, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_for_all_worker_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1usize, 2, 3, 4, 7, 16] {
            assert_eq!(
                par_map_with(workers, &items, 1, |x| x * 3 + 1),
                expected,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn indexed_preserves_order() {
        let out = par_map_indexed_with(4, 100, 1, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn small_inputs_stay_sequential() {
        // min_per_worker larger than n forces the sequential path.
        let out = par_map_indexed_with(8, 10, 100, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = par_map_indexed_with(4, 0, 1, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_split_covers_every_index() {
        // 7 items across 4 workers: chunks of 2 with a short tail.
        let out = par_map_indexed_with(4, 7, 1, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn range_map_matches_indexed_map() {
        let expected: Vec<usize> = (0..1000).map(|i| i * 7).collect();
        for workers in [1usize, 2, 3, 8] {
            let got = par_map_range_with(workers, 1000, 1, |range| {
                // Workers may batch their range however they like — here
                // in chunks of 8, mimicking a lane-width inner loop.
                let mut out = Vec::with_capacity(range.len());
                let idx: Vec<usize> = range.collect();
                for chunk in idx.chunks(8) {
                    out.extend(chunk.iter().map(|i| i * 7));
                }
                out
            });
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates() {
        let _ = par_map_indexed_with(2, 100, 1, |i| {
            if i == 73 {
                panic!("boom");
            }
            i
        });
    }
}
