//! Cryptographic primitives for the non-repudiation middleware.
//!
//! Paper §3.5 requires: "a signature scheme such that signature sigA(x) by A
//! on data x is both verifiable and unforgeable; a secure (one-way and
//! collision-resistant) hash function; and a secure pseudo-random sequence
//! generator". This crate provides all three from scratch:
//!
//! * [`digest`] — SHA-256 (FIPS 180-4) and the 32-byte [`Digest`] type,
//!   plus [`digest::mb`], the lane-interleaved multi-buffer engine that
//!   hashes independent messages in SIMD lockstep (AVX2/SSE2/portable
//!   tiers, runtime-dispatched; pin one with the `NONREP_DISPATCH`
//!   environment variable, see [`digest::mb::Dispatch::active`]),
//! * [`hmac`] — HMAC-SHA-256,
//! * [`rng`] — a seedable secure-random facade (deterministic under test),
//! * [`merkle`] — Merkle trees (used by the signature scheme and by the
//!   evidence store's tamper-evident log),
//! * [`wots`] — Winternitz one-time signatures,
//! * [`mss`] — a stateful, **forward-secure** Merkle signature scheme (the
//!   many-time signature built from WOTS leaves; forward security matches
//!   the paper's discussion of forward-secure schemes, ref \[25\]),
//! * [`hss`] — the two-level hierarchical lifecycle over [`mss`]: a
//!   long-lived root tree certifies rolling subtrees (pre-generated in
//!   the background) so signing never stops at tree exhaustion, while
//!   verifiers keep holding one unchanging root public key,
//! * [`arbitrated`] — a shared-key HMAC "signature" for TTP-arbitrated
//!   deployments (the lightweight end of the paper's trust spectrum, §3.1),
//! * [`batch`] — incremental Merkle accumulator and [`BatchSignature`]:
//!   one signature over a batch root covers N records, each individually
//!   verifiable via its authentication path,
//! * [`par`] — scoped-thread data parallelism used by key generation,
//!   Merkle construction and batch commitments; the worker budget is
//!   detected from the host, or overridden with the `NONREP_WORKERS`
//!   environment variable (see [`par::workers`]),
//! * [`sig`] — scheme-agnostic [`Signature`]/[`KeyPair`] types and traits,
//! * [`timestamp`] — a time-stamping authority (§3.5).
//!
//! # Example
//!
//! ```
//! use nonrep_crypto::rng::SecureRandom;
//! use nonrep_crypto::sig::{KeyPair, SignatureScheme};
//!
//! let mut rng = SecureRandom::from_seed(7);
//! let keys = KeyPair::generate(SignatureScheme::Mss { height: 4 }, &mut rng);
//! let sig = keys.sign(b"order #42").expect("fresh key has leaves left");
//! assert!(keys.verifying_key().verify(b"order #42", &sig));
//! assert!(!keys.verifying_key().verify(b"order #43", &sig));
//! ```

pub mod arbitrated;
pub mod batch;
pub mod digest;
pub mod hmac;
pub mod hss;
pub mod merkle;
pub mod mss;
pub mod par;
pub mod rng;
pub mod sig;
pub mod stream;
pub mod timestamp;
pub mod wots;

pub use batch::{BatchSignature, MerkleAccumulator};
pub use digest::{sha256, Digest, Sha256};
pub use hss::{HssSignature, HssSigner, RolloverEvent, SubtreeCert};
pub use rng::SecureRandom;
pub use sig::{KeyId, KeyPair, Signature, SignatureScheme, VerifyingKey};
