//! Two-level hierarchical Merkle signatures (HSS): a long-lived **root**
//! MSS key certifies short-lived **subtree** MSS keys, so an organisation
//! can keep signing evidence long after any single tree is spent.
//!
//! The paper's guarantees assume every party can always sign (§3.5); a
//! plain [`MssSigner`] is finite. Here the root key of height `R` signs
//! one [`SubtreeCert`] per subtree of height `S`, giving `2^R · 2^S`
//! total signatures while verifiers keep holding the *same* 32-byte
//! public key (the root tree's Merkle root — key directories, key ids
//! and gossip are untouched). Each [`HssSignature`] carries its
//! subtree signature plus the certificate chaining it to the root, so
//! verification never needs signer state.
//!
//! * **Rollover** is automatic: when the active subtree exhausts,
//!   [`HssSigner::sign`] activates the next one, burns a single root
//!   leaf on its certificate, and records a [`RolloverEvent`] that the
//!   evidence layer seals into the log as a `key_rollover` record.
//! * **Pre-generation** hides keygen latency: once the active subtree is
//!   half spent, the next one is built on a background thread through
//!   the same `par` + multi-buffer machinery as ordinary keygen. The
//!   subtree seed is drawn (and retained) *before* the thread starts,
//!   so a lost or still-running pregeneration falls back to a
//!   synchronous build of the **identical** subtree — the generation
//!   chain is a pure function of the seed chain's initial secret.
//! * **Forward security** is preserved: subtree leaves destroy their
//!   seeds on use exactly as in [`mss`], retired subtrees are dropped
//!   wholesale, and subtree seeds come from a one-way hash ratchet
//!   (`SeedChain`) whose prior state is overwritten on every draw.
//!   Compromising live signer state therefore exposes the active and
//!   future subtrees but cannot re-derive a retired subtree's seeds, so
//!   signatures over already-sealed evidence stay unforgeable. (The
//!   retained pregen seed only covers a subtree that has signed nothing
//!   yet, and erasure is a best-effort overwrite — not a guarded-memory
//!   guarantee.)

use std::thread::JoinHandle;

use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};

use crate::batch::BatchSignature;
use crate::digest::{Digest, Sha256};
use crate::mss::{self, MssError, MssSignature, MssSigner};
use crate::par;
use crate::rng::SecureRandom;

/// Domain prefix for subtree-certificate digests: a root signature over
/// a cert can never be confused with a root signature over evidence.
const CERT_DOMAIN: &[u8] = b"nonrep.hss.cert.v1";

/// A root-key certificate over one subtree: "subtree `generation` with
/// Merkle root `subtree_root` speaks for this key".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeCert {
    /// Which generation this subtree is (0 = the initial subtree).
    pub generation: u32,
    /// The certified subtree's Merkle root.
    pub subtree_root: Digest,
    /// The root key's MSS signature over
    /// [`SubtreeCert::signing_digest`].
    pub root_sig: MssSignature,
}

impl SubtreeCert {
    /// The domain-separated digest the root key signs for a cert.
    pub fn signing_digest(generation: u32, subtree_root: &Digest) -> Digest {
        let mut h = Sha256::new();
        h.update(CERT_DOMAIN);
        h.update(&generation.to_le_bytes());
        h.update(subtree_root.as_bytes());
        h.finalize()
    }

    /// Verifies this cert against the registered root public key.
    pub fn verify(&self, root: &Digest) -> bool {
        mss::verify(
            root,
            &Self::signing_digest(self.generation, &self.subtree_root),
            &self.root_sig,
        )
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        4 + 32 + self.root_sig.byte_len()
    }
}

impl Encode for SubtreeCert {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.generation);
        self.subtree_root.encode(w);
        self.root_sig.encode(w);
    }
}

impl Decode for SubtreeCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            generation: r.get_u32()?,
            subtree_root: Digest::decode(r)?,
            root_sig: MssSignature::decode(r)?,
        })
    }
}

/// The subtree-level signature inside an [`HssSignature`]: either a
/// direct per-message MSS signature or one batch-sealed signature with
/// this message's authentication path (see [`crate::batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubtreeSig {
    /// One subtree leaf per message.
    Direct(MssSignature),
    /// One subtree leaf per *batch*; the path proves membership.
    Batched(BatchSignature),
}

const SUBTREE_TAG_DIRECT: u8 = 0;
const SUBTREE_TAG_BATCHED: u8 = 1;

/// A hierarchical signature: the subtree's signature over the message
/// plus the root-key certificate over that subtree. Self-contained — a
/// verifier holding only the root public key walks the chain
/// cert-then-signature without any signer state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HssSignature {
    /// The active subtree's signature over the message digest.
    pub subtree_sig: SubtreeSig,
    /// The root key's certificate over that subtree.
    pub subtree_root_cert: SubtreeCert,
}

impl HssSignature {
    /// Verifies the full chain: the cert under the registered `root`
    /// public key, then the message signature under the certified
    /// subtree root.
    pub fn verify(&self, root: &Digest, digest: &Digest) -> bool {
        let cert = &self.subtree_root_cert;
        if !cert.verify(root) {
            return false;
        }
        match &self.subtree_sig {
            SubtreeSig::Direct(s) => mss::verify(&cert.subtree_root, digest, s),
            SubtreeSig::Batched(b) => b.verify(&cert.subtree_root, digest),
        }
    }

    /// `true` if the subtree signature was produced by a batch seal.
    pub fn is_batched(&self) -> bool {
        matches!(self.subtree_sig, SubtreeSig::Batched(_))
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        let inner = match &self.subtree_sig {
            SubtreeSig::Direct(s) => s.byte_len(),
            SubtreeSig::Batched(b) => b.byte_len(),
        };
        1 + inner + self.subtree_root_cert.byte_len()
    }
}

impl Encode for HssSignature {
    fn encode(&self, w: &mut Writer) {
        match &self.subtree_sig {
            SubtreeSig::Direct(s) => {
                w.put_u8(SUBTREE_TAG_DIRECT);
                s.encode(w);
            }
            SubtreeSig::Batched(b) => {
                w.put_u8(SUBTREE_TAG_BATCHED);
                b.encode(w);
            }
        }
        self.subtree_root_cert.encode(w);
    }
}

impl Decode for HssSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let subtree_sig = match r.get_u8()? {
            SUBTREE_TAG_DIRECT => SubtreeSig::Direct(MssSignature::decode(r)?),
            SUBTREE_TAG_BATCHED => SubtreeSig::Batched(BatchSignature::decode(r)?),
            tag => {
                return Err(CodecError::InvalidTag {
                    ty: "HssSignature",
                    tag,
                })
            }
        };
        Ok(Self {
            subtree_sig,
            subtree_root_cert: SubtreeCert::decode(r)?,
        })
    }
}

/// One subtree hand-over, kept by the signer so the evidence layer can
/// seal a `key_rollover` record per generation change (and re-seal it
/// after a crash — the history is retained for the signer's lifetime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloverEvent {
    /// The generation *activated* by this rollover (≥ 1).
    pub generation: u32,
    /// Merkle root of the subtree that was retired.
    pub retired_root: Digest,
    /// Leaves the retired subtree spent (its full capacity).
    pub leaves_spent: u32,
    /// The root-key certificate over the newly activated subtree.
    pub cert: SubtreeCert,
}

/// Domain prefixes for the forward-secure subtree seed chain: from one
/// 32-byte state, `SEED` derives the next subtree's key material and
/// `RATCHET` derives the successor state.
const CHAIN_SEED_DOMAIN: &[u8] = b"nonrep.hss.chain.seed.v1";
const CHAIN_RATCHET_DOMAIN: &[u8] = b"nonrep.hss.chain.ratchet.v1";

/// Forward-secure source of subtree seeds: a one-way hash ratchet whose
/// state is overwritten on every draw. The whole generation chain is a
/// pure function of the initial secret — regenerating a signer from the
/// same key seed replays it, which is what crash recovery relies on —
/// but the *live* state only reaches forward: both derivations are
/// one-way hashes and the state that produced a retired subtree's seed
/// is destroyed the moment the next one is drawn.
struct SeedChain {
    state: [u8; 32],
}

impl SeedChain {
    fn new(secret: [u8; 32]) -> Self {
        Self { state: secret }
    }

    /// Derives the next subtree seed, then ratchets the state forward —
    /// overwriting the state that produced the seed.
    fn next_seed(&mut self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(CHAIN_SEED_DOMAIN);
        h.update(&self.state);
        let seed = *h.finalize().as_bytes();
        let mut h = Sha256::new();
        h.update(CHAIN_RATCHET_DOMAIN);
        h.update(&self.state);
        self.state = *h.finalize().as_bytes();
        seed
    }
}

/// An in-flight (or completed) background subtree build. The seed is
/// retained so a pregeneration that never finishes — or whose thread is
/// lost — can be replayed synchronously with an identical result. (The
/// retention is forward-security-neutral: the seed covers the *next*
/// subtree, which has signed nothing yet.)
struct Pregen {
    seed: [u8; 32],
    handle: Option<JoinHandle<MssSigner>>,
}

impl Pregen {
    /// The finished subtree: joins the worker if it ran, rebuilds from
    /// the retained seed otherwise (also the panic-recovery path).
    fn into_subtree(self, height: u8, workers: usize) -> MssSigner {
        if let Some(handle) = self.handle {
            if let Ok(signer) = handle.join() {
                return signer;
            }
        }
        build_subtree(self.seed, height, workers)
    }
}

fn build_subtree(seed: [u8; 32], height: u8, workers: usize) -> MssSigner {
    MssSigner::generate_with_workers(height, &mut SecureRandom::from_seed32(seed), workers)
}

/// The signing half of a hierarchical key: a root [`MssSigner`] that
/// only ever signs subtree certificates, the active subtree that signs
/// messages, and the machinery that rolls generations over without a
/// signing gap.
pub struct HssSigner {
    root: MssSigner,
    active: MssSigner,
    active_cert: SubtreeCert,
    subtree_height: u8,
    generation: u32,
    /// Forward-secure source of subtree seeds — the generation chain is
    /// a pure function of its initial secret, independent of pregen
    /// timing, but the live state cannot be rewound to retired subtrees.
    seed_chain: SeedChain,
    pregen: Option<Pregen>,
    rollovers: Vec<RolloverEvent>,
    workers: usize,
}

impl std::fmt::Debug for HssSigner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HssSigner")
            .field("generation", &self.generation)
            .field("subtree_remaining", &self.active.remaining())
            .field("root_remaining", &self.root.remaining())
            .finish_non_exhaustive()
    }
}

impl HssSigner {
    /// Generates a hierarchical key: a root tree of `root_height` (one
    /// leaf per subtree generation) over subtrees of `subtree_height`.
    ///
    /// # Panics
    ///
    /// Panics if either height is outside `1..=20` (the same bound as
    /// [`MssSigner::generate`]).
    pub fn generate(root_height: u8, subtree_height: u8, rng: &mut SecureRandom) -> Self {
        Self::generate_with_workers(root_height, subtree_height, rng, par::workers())
    }

    /// [`HssSigner::generate`] with an explicit worker budget.
    ///
    /// # Panics
    ///
    /// Panics if either height is outside `1..=20`.
    pub fn generate_with_workers(
        root_height: u8,
        subtree_height: u8,
        rng: &mut SecureRandom,
        workers: usize,
    ) -> Self {
        let mut root = MssSigner::generate_with_workers(root_height, rng, workers);
        let mut seed_chain = SeedChain::new(rng.secret32());
        let active = build_subtree(seed_chain.next_seed(), subtree_height, workers);
        let active_cert = certify(&mut root, 0, active.public_key())
            .expect("fresh root key certifies generation 0");
        Self {
            root,
            active,
            active_cert,
            subtree_height,
            generation: 0,
            seed_chain,
            pregen: None,
            rollovers: Vec::new(),
            workers,
        }
    }

    /// The public key verifiers hold: the **root** tree's Merkle root.
    pub fn public_key(&self) -> Digest {
        self.root.public_key()
    }

    /// The currently active generation (0 until the first rollover).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// The active subtree's certificate.
    pub fn active_cert(&self) -> &SubtreeCert {
        &self.active_cert
    }

    /// Leaves left on the active subtree.
    pub fn subtree_remaining(&self) -> u32 {
        self.active.remaining()
    }

    /// Capacity of one subtree (`2^subtree_height`).
    pub fn subtree_capacity(&self) -> u32 {
        self.active.capacity()
    }

    /// Root leaves left — i.e. how many *more* subtrees can still be
    /// certified.
    pub fn root_remaining(&self) -> u32 {
        self.root.remaining()
    }

    /// Total message signatures left across the hierarchy: the active
    /// subtree's tail plus a full subtree per remaining root leaf.
    pub fn remaining_total(&self) -> u64 {
        u64::from(self.active.remaining())
            + u64::from(self.root.remaining()) * (1u64 << self.subtree_height)
    }

    /// `true` while a background subtree build is in flight.
    pub fn pregen_in_flight(&self) -> bool {
        self.pregen.is_some()
    }

    /// Every rollover since key generation, oldest first. Retained for
    /// the signer's lifetime so the evidence layer can re-seal a
    /// rollover record lost to a crash.
    pub fn rollover_history(&self) -> &[RolloverEvent] {
        &self.rollovers
    }

    /// Signs a message digest, rolling over to the next subtree first
    /// if the active one is spent.
    ///
    /// # Errors
    ///
    /// Returns [`MssError::KeyExhausted`] only when the *root* key has
    /// no leaves left to certify a fresh subtree — the whole hierarchy
    /// is spent.
    pub fn sign(&mut self, digest: &Digest) -> Result<HssSignature, MssError> {
        let (sig, cert) = self.sign_leaf(digest)?;
        Ok(HssSignature {
            subtree_sig: SubtreeSig::Direct(sig),
            subtree_root_cert: cert,
        })
    }

    /// Signs with one subtree leaf and returns the raw pieces — the
    /// batch pipeline wraps the leaf signature in a
    /// [`SubtreeSig::Batched`] while sharing the same rollover and
    /// pregeneration machinery.
    ///
    /// # Errors
    ///
    /// Returns [`MssError::KeyExhausted`] when the hierarchy is spent
    /// (see [`HssSigner::sign`]).
    pub fn sign_leaf(&mut self, digest: &Digest) -> Result<(MssSignature, SubtreeCert), MssError> {
        if self.active.remaining() == 0 {
            self.roll_over()?;
        }
        let sig = self.active.sign(digest)?;
        self.maybe_start_pregen();
        Ok((sig, self.active_cert.clone()))
    }

    /// Retires the active subtree and activates the next generation,
    /// burning one root leaf on its certificate.
    fn roll_over(&mut self) -> Result<(), MssError> {
        if self.root.remaining() == 0 {
            return Err(MssError::KeyExhausted);
        }
        let next = match self.pregen.take() {
            Some(p) => p.into_subtree(self.subtree_height, self.workers),
            None => build_subtree(
                self.seed_chain.next_seed(),
                self.subtree_height,
                self.workers,
            ),
        };
        let generation = self.generation + 1;
        let cert = certify(&mut self.root, generation, next.public_key())?;
        self.rollovers.push(RolloverEvent {
            generation,
            retired_root: self.active.public_key(),
            leaves_spent: self.active.capacity() - self.active.remaining(),
            cert: cert.clone(),
        });
        self.active = next;
        self.active_cert = cert;
        self.generation = generation;
        Ok(())
    }

    /// Kicks off the background build of the next subtree once the
    /// active one is half spent (and another generation is possible).
    /// The seed is drawn — and kept — before the thread starts, so the
    /// chain stays deterministic whatever the thread's fate.
    fn maybe_start_pregen(&mut self) {
        if self.pregen.is_some()
            || self.root.remaining() == 0
            || self.active.remaining() * 2 > self.active.capacity()
        {
            return;
        }
        let seed = self.seed_chain.next_seed();
        let height = self.subtree_height;
        let workers = self.workers;
        let handle = std::thread::Builder::new()
            .name("hss-pregen".into())
            .spawn(move || build_subtree(seed, height, workers))
            .ok();
        self.pregen = Some(Pregen { seed, handle });
    }
}

fn certify(
    root: &mut MssSigner,
    generation: u32,
    subtree_root: Digest,
) -> Result<SubtreeCert, MssError> {
    let root_sig = root.sign(&SubtreeCert::signing_digest(generation, &subtree_root))?;
    Ok(SubtreeCert {
        generation,
        subtree_root,
        root_sig,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;

    fn signer(root_height: u8, subtree_height: u8, seed: u64) -> HssSigner {
        HssSigner::generate(
            root_height,
            subtree_height,
            &mut SecureRandom::from_seed(seed),
        )
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut s = signer(2, 2, 1);
        let pk = s.public_key();
        let d = sha256(b"hello");
        let sig = s.sign(&d).unwrap();
        assert!(sig.verify(&pk, &d));
        assert!(!sig.verify(&pk, &sha256(b"other")));
        assert!(!sig.verify(&sha256(b"wrong root"), &d));
    }

    #[test]
    fn signing_rolls_across_generations_without_a_gap() {
        // Root height 3 (8 subtrees) over subtrees of height 1 (2 leaves):
        // 16 message signatures total, 7 rollovers along the way.
        let mut s = signer(3, 1, 2);
        let pk = s.public_key();
        let mut seen = std::collections::HashSet::new();
        for i in 0..16u8 {
            let d = sha256(&[i]);
            let sig = s.sign(&d).unwrap();
            assert!(sig.verify(&pk, &d), "message {i} failed to verify");
            if let SubtreeSig::Direct(m) = &sig.subtree_sig {
                assert!(
                    seen.insert((sig.subtree_root_cert.generation, m.leaf_index)),
                    "leaf reused at message {i}"
                );
            }
        }
        assert_eq!(s.generation(), 7);
        assert_eq!(s.rollover_history().len(), 7);
        assert_eq!(s.remaining_total(), 0);
        assert_eq!(s.sign(&sha256(b"x")).unwrap_err(), MssError::KeyExhausted);
    }

    #[test]
    fn rollover_history_is_a_verifiable_generation_chain() {
        let mut s = signer(3, 1, 3);
        let pk = s.public_key();
        for i in 0..6u8 {
            s.sign(&sha256(&[i])).unwrap();
        }
        let history = s.rollover_history();
        assert_eq!(history.len(), 2);
        for (i, ev) in history.iter().enumerate() {
            assert_eq!(ev.generation, i as u32 + 1);
            assert_eq!(ev.leaves_spent, 2);
            assert!(ev.cert.verify(&pk), "generation {} cert", ev.generation);
        }
        // Each event retires the previous generation's subtree.
        assert_eq!(
            history[1].retired_root, history[0].cert.subtree_root,
            "generation chain must link"
        );
    }

    #[test]
    fn generation_chain_is_deterministic_regardless_of_pregen_timing() {
        // Same rng seed ⇒ identical subtree roots and certs, whether the
        // background build finished in time or the rollover had to build
        // synchronously — both paths replay the same retained seed.
        let mut a = signer(3, 2, 4);
        let mut b = signer(3, 2, 4);
        for i in 0..12u8 {
            let d = sha256(&[i]);
            let sa = a.sign(&d).unwrap();
            // b signs in bursts so its pregen timing differs.
            let sb = b.sign(&d).unwrap();
            assert_eq!(sa, sb, "message {i}");
        }
        assert_eq!(a.rollover_history(), b.rollover_history());
    }

    #[test]
    fn seed_chain_is_deterministic_from_its_initial_secret() {
        let mut a = SeedChain::new([7u8; 32]);
        let mut b = SeedChain::new([7u8; 32]);
        for _ in 0..4 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn seed_chain_ratchets_forward_and_destroys_prior_state() {
        let mut chain = SeedChain::new([7u8; 32]);
        let s0 = chain.next_seed();
        let s1 = chain.next_seed();
        assert_ne!(s0, s1, "each generation gets a distinct seed");
        // The live state only reaches forward: a chain resumed from it
        // produces exactly the future seeds, and no state that could
        // re-derive s0 or s1 remains anywhere in the signer.
        let mut resumed = SeedChain::new(chain.state);
        let s2 = chain.next_seed();
        assert_eq!(resumed.next_seed(), s2);
        assert_ne!(chain.state, [7u8; 32], "initial secret was overwritten");
        assert_ne!(resumed.next_seed(), s0);
        assert_ne!(resumed.next_seed(), s1);
    }

    #[test]
    fn pregen_starts_once_half_spent() {
        let mut s = signer(2, 2, 5);
        assert!(!s.pregen_in_flight());
        s.sign(&sha256(b"a")).unwrap();
        s.sign(&sha256(b"b")).unwrap(); // 2 of 4 spent
        assert!(s.pregen_in_flight());
        // Pregen survives rollover bookkeeping: next generation activates.
        s.sign(&sha256(b"c")).unwrap();
        s.sign(&sha256(b"d")).unwrap();
        s.sign(&sha256(b"e")).unwrap();
        assert_eq!(s.generation(), 1);
    }

    #[test]
    fn forged_cert_fails_verification() {
        let mut alice = signer(2, 1, 6);
        let mut mallory = signer(2, 1, 7);
        let d = sha256(b"claim");
        let mut sig = alice.sign(&d).unwrap();
        // Substitute a cert signed by mallory's root.
        sig.subtree_root_cert = mallory.sign(&d).unwrap().subtree_root_cert;
        assert!(!sig.verify(&alice.public_key(), &d));
        // Tampering the generation breaks the cert's digest binding.
        let mut sig = alice.sign(&d).unwrap();
        sig.subtree_root_cert.generation += 1;
        assert!(!sig.verify(&alice.public_key(), &d));
    }

    #[test]
    fn remaining_total_accounts_for_future_subtrees() {
        let mut s = signer(2, 2, 8);
        // 4 root leaves: one spent on generation 0's cert at keygen.
        assert_eq!(s.remaining_total(), 4 + 3 * 4);
        s.sign(&sha256(b"a")).unwrap();
        assert_eq!(s.remaining_total(), 3 + 3 * 4);
    }

    #[test]
    fn signature_codec_roundtrip() {
        let mut s = signer(2, 1, 9);
        let d = sha256(b"codec");
        let sig = s.sign(&d).unwrap();
        let back = HssSignature::decode_from_slice(&sig.encode_to_vec()).unwrap();
        assert_eq!(back, sig);
        assert!(back.verify(&s.public_key(), &d));
        assert!(sig.encode_to_vec().len() >= sig.byte_len());
    }

    #[test]
    fn cert_codec_roundtrip() {
        let s = signer(2, 1, 10);
        let cert = s.active_cert().clone();
        let back = SubtreeCert::decode_from_slice(&cert.encode_to_vec()).unwrap();
        assert_eq!(back, cert);
        assert!(back.verify(&s.public_key()));
    }
}
