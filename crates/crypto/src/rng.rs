//! Secure random facade.
//!
//! Paper §3.5: "a secure pseudo-random sequence generator to generate
//! statistically random and unpredictable sequences of bits. Random numbers
//! are used to generate unique identifiers and random authenticators during
//! non-repudiation protocols."
//!
//! [`SecureRandom`] wraps a CSPRNG (`rand::rngs::StdRng`, ChaCha-based) and
//! is explicitly seedable so that *every* test and benchmark in the
//! workspace is deterministic. Production deployments seed from OS entropy
//! via [`SecureRandom::from_entropy`].

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use nonrep_types::ids::RunId;

/// A cryptographically secure pseudo-random generator.
#[derive(Debug)]
pub struct SecureRandom {
    inner: StdRng,
}

impl SecureRandom {
    /// Seeds from a 64-bit value (deterministic; tests and simulations).
    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Seeds from a full 256-bit value — the generator's entire seed
    /// space, unlike the 64-bit convenience above. Used where the seed
    /// itself is key material (e.g. hierarchical subtree generation).
    pub fn from_seed32(seed: [u8; 32]) -> Self {
        Self {
            inner: StdRng::from_seed(seed),
        }
    }

    /// Seeds from operating-system entropy (production).
    pub fn from_entropy() -> Self {
        Self {
            inner: StdRng::from_entropy(),
        }
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Returns `n` random bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut buf = vec![0u8; n];
        self.fill(&mut buf);
        buf
    }

    /// Returns a random 32-byte seed/secret.
    pub fn secret32(&mut self) -> [u8; 32] {
        let mut buf = [0u8; 32];
        self.fill(&mut buf);
        buf
    }

    /// Returns a random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Mints a fresh 128-bit protocol-run identifier (paper §3.2: "a unique
    /// request identifier, to distinguish between protocol runs").
    pub fn run_id(&mut self) -> RunId {
        let mut bytes = [0u8; 16];
        self.fill(&mut bytes);
        RunId::from_bytes(bytes)
    }

    /// Returns `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = SecureRandom::from_seed(42);
        let mut b = SecureRandom::from_seed(42);
        assert_eq!(a.bytes(32), b.bytes(32));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn seeded32_rng_is_deterministic() {
        let mut a = SecureRandom::from_seed32([9u8; 32]);
        let mut b = SecureRandom::from_seed32([9u8; 32]);
        assert_eq!(a.bytes(32), b.bytes(32));
        let mut c = SecureRandom::from_seed32([10u8; 32]);
        assert_ne!(a.bytes(32), c.bytes(32));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SecureRandom::from_seed(1);
        let mut b = SecureRandom::from_seed(2);
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn run_ids_are_unique_in_practice() {
        let mut rng = SecureRandom::from_seed(7);
        let ids: HashSet<_> = (0..10_000).map(|_| rng.run_id()).collect();
        assert_eq!(ids.len(), 10_000);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SecureRandom::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        // Every residue is reachable.
        let seen: HashSet<u64> = (0..1000).map(|_| rng.below(7)).collect();
        assert_eq!(seen.len(), 7);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SecureRandom::from_seed(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SecureRandom::from_seed(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // p=0.5 should produce both outcomes over many trials.
        let hits = (0..1000).filter(|_| rng.chance(0.5)).count();
        assert!(hits > 300 && hits < 700, "hits={hits}");
    }

    #[test]
    fn entropy_rng_produces_nonzero() {
        let mut rng = SecureRandom::from_entropy();
        let bytes = rng.bytes(32);
        assert!(bytes.iter().any(|&b| b != 0));
    }
}
