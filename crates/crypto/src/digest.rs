//! SHA-256 (FIPS 180-4) and the [`Digest`] type.
//!
//! Implemented from scratch (no external crypto crates are available in
//! this environment). Verified against the NIST test vectors in the unit
//! tests below.

use std::fmt;

use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest (used as the chain head of an empty evidence log).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Builds a digest from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Lowercase hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses a 64-character lowercase/uppercase hex string.
    ///
    /// # Errors
    ///
    /// Returns `None` if the string is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Self(out))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Encode for Digest {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.0);
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let raw = r.get_raw(32)?;
        let mut arr = [0u8; 32];
        arr.copy_from_slice(raw);
        Ok(Self(arr))
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use nonrep_crypto::digest::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let d = h.finalize();
/// assert_eq!(d, nonrep_crypto::digest::sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self { state: H0, buf: [0u8; 64], buf_len: 0, total_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Completes the hash, returning the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding();
        let mut len_block = [0u8; 8];
        len_block.copy_from_slice(&bit_len.to_be_bytes());
        // After update_padding, buf_len is exactly 56.
        self.buf[56..64].copy_from_slice(&len_block);
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding(&mut self) {
        self.buf[self.buf_len] = 0x80;
        let after = self.buf_len + 1;
        if after > 56 {
            for b in &mut self.buf[after..64] {
                *b = 0;
            }
            let block = self.buf;
            self.compress(&block);
            for b in &mut self.buf[..56] {
                *b = 0;
            }
        } else {
            for b in &mut self.buf[after..56] {
                *b = 0;
            }
        }
        self.buf_len = 56;
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of two byte strings (domain-separated by
/// a tag byte), used for Merkle node hashing.
pub fn sha256_pair(tag: u8, left: &[u8], right: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[tag]);
    h.update(left);
    h.update(right);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 test vectors.
    #[test]
    fn nist_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_448_bits() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            sha256(msg).to_hex(),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&msg).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expected = sha256(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
        assert!(Digest::from_hex("abc").is_none());
        assert!(Digest::from_hex(&"zz".repeat(32)).is_none());
    }

    #[test]
    fn digest_codec_roundtrip() {
        use nonrep_types::codec::{Decode, Encode};
        let d = sha256(b"codec");
        assert_eq!(Digest::decode_from_slice(&d.encode_to_vec()).unwrap(), d);
    }

    #[test]
    fn pair_hash_is_domain_separated() {
        assert_ne!(sha256_pair(0, b"a", b"b"), sha256_pair(1, b"a", b"b"));
        assert_ne!(sha256_pair(0, b"a", b"b"), sha256_pair(0, b"b", b"a"));
    }

    #[test]
    fn debug_is_truncated_not_empty() {
        let s = format!("{:?}", Digest::ZERO);
        assert!(s.starts_with("Digest("));
        assert!(!s.is_empty());
    }
}
