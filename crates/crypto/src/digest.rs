//! SHA-256 (FIPS 180-4) and the [`Digest`] type.
//!
//! Implemented from scratch (no external crypto crates are available in
//! this environment). Verified against the NIST test vectors in the unit
//! tests below.
//!
//! # Performance
//!
//! Every hot path of the middleware — W-OTS chain steps, Merkle node
//! hashes, evidence-record chaining, canonical-encoding signatures —
//! funnels through this module, so the compression function has two
//! implementations selected at runtime:
//!
//! * an x86-64 SHA-NI path using the `sha256rnds2` / `sha256msg1` /
//!   `sha256msg2` instructions (detected once, cached), and
//! * a portable scalar path with a rolling 16-word message schedule and
//!   the round loop unrolled eight-at-a-time.
//!
//! On top of the block function sit allocation-free fast paths:
//! [`sha256`] streams full blocks directly from the input slice (no
//! copy into a staging buffer), [`sha256_short`] hashes any message that
//! fits one padded block with a single compression, and [`sha256_pair`]
//! hashes the tag+digest+digest shape used by every Merkle node and
//! evidence chain link as exactly two compressions over stack blocks.
//!
//! For workloads with many *independent* messages (W-OTS chain walks,
//! Merkle levels, batched HMAC derivation), the [`mb`] submodule
//! compresses up to 16 of them in lockstep across SIMD lanes.

use std::fmt;

use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};

pub mod mb;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; 32]);

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Maps an ASCII hex character to its value, 0xFF for non-hex.
const HEX_INV: [u8; 256] = {
    let mut t = [0xFFu8; 256];
    let mut i = 0u8;
    while i < 10 {
        t[(b'0' + i) as usize] = i;
        i += 1;
    }
    let mut j = 0u8;
    while j < 6 {
        t[(b'a' + j) as usize] = 10 + j;
        t[(b'A' + j) as usize] = 10 + j;
        j += 1;
    }
    t
};

impl Digest {
    /// The all-zero digest (used as the chain head of an empty evidence log).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Builds a digest from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Lowercase hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut out = [0u8; 64];
        for (i, &b) in self.0.iter().enumerate() {
            out[i * 2] = HEX[(b >> 4) as usize];
            out[i * 2 + 1] = HEX[(b & 0x0F) as usize];
        }
        // SAFETY-free: the LUT only emits ASCII.
        String::from_utf8(out.to_vec()).expect("hex is ASCII")
    }

    /// Parses a 64-character lowercase/uppercase hex string.
    ///
    /// # Errors
    ///
    /// Returns `None` if the string is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = HEX_INV[chunk[0] as usize];
            let lo = HEX_INV[chunk[1] as usize];
            if hi == 0xFF || lo == 0xFF {
                return None;
            }
            out[i] = (hi << 4) | lo;
        }
        Some(Self(out))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Encode for Digest {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.0);
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let raw = r.get_raw(32)?;
        let mut arr = [0u8; 32];
        arr.copy_from_slice(raw);
        Ok(Self(arr))
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Compresses every 64-byte block of `data` (whose length must be a
/// multiple of 64) into `state`, dispatching to the best available
/// implementation.
#[inline]
fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0);
    #[cfg(target_arch = "x86_64")]
    {
        if shani::available() {
            // SAFETY: `available` confirmed the sha/ssse3/sse4.1 features.
            unsafe { shani::compress_blocks(state, data) };
            return;
        }
    }
    scalar::compress_blocks(state, data);
}

/// Portable scalar compression: rolling 16-word schedule, 8 rounds per
/// unrolled step.
mod scalar {
    use super::K;

    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
         $k:expr, $w:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add($k)
                .wrapping_add($w);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0).wrapping_add(maj);
        }};
    }

    /// Eight rounds with the register rotation hard-coded, so the
    /// compiler keeps the working variables in registers.
    macro_rules! rounds8 {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
         $t:expr, $w:expr) => {{
            round!($a, $b, $c, $d, $e, $f, $g, $h, K[$t], $w[($t) & 15]);
            round!($h, $a, $b, $c, $d, $e, $f, $g, K[$t + 1], $w[($t + 1) & 15]);
            round!($g, $h, $a, $b, $c, $d, $e, $f, K[$t + 2], $w[($t + 2) & 15]);
            round!($f, $g, $h, $a, $b, $c, $d, $e, K[$t + 3], $w[($t + 3) & 15]);
            round!($e, $f, $g, $h, $a, $b, $c, $d, K[$t + 4], $w[($t + 4) & 15]);
            round!($d, $e, $f, $g, $h, $a, $b, $c, K[$t + 5], $w[($t + 5) & 15]);
            round!($c, $d, $e, $f, $g, $h, $a, $b, K[$t + 6], $w[($t + 6) & 15]);
            round!($b, $c, $d, $e, $f, $g, $h, $a, K[$t + 7], $w[($t + 7) & 15]);
        }};
    }

    #[inline]
    fn schedule_step(w: &mut [u32; 16], t: usize) {
        let w15 = w[(t + 1) & 15];
        let w2 = w[(t + 14) & 15];
        let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
        let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
        w[t & 15] = w[t & 15]
            .wrapping_add(s0)
            .wrapping_add(w[(t + 9) & 15])
            .wrapping_add(s1);
    }

    pub(super) fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
        let [mut a0, mut b0, mut c0, mut d0, mut e0, mut f0, mut g0, mut h0] = *state;
        for block in data.chunks_exact(64) {
            let mut w = [0u32; 16];
            for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
                *wi = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
            let (mut e, mut f, mut g, mut h) = (e0, f0, g0, h0);
            rounds8!(a, b, c, d, e, f, g, h, 0, w);
            rounds8!(a, b, c, d, e, f, g, h, 8, w);
            for t in (16..64).step_by(8) {
                for i in 0..8 {
                    schedule_step(&mut w, t + i);
                }
                rounds8!(a, b, c, d, e, f, g, h, t, w);
            }
            a0 = a0.wrapping_add(a);
            b0 = b0.wrapping_add(b);
            c0 = c0.wrapping_add(c);
            d0 = d0.wrapping_add(d);
            e0 = e0.wrapping_add(e);
            f0 = f0.wrapping_add(f);
            g0 = g0.wrapping_add(g);
            h0 = h0.wrapping_add(h);
        }
        *state = [a0, b0, c0, d0, e0, f0, g0, h0];
    }
}

/// x86-64 SHA-NI compression (runtime-detected).
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    use core::arch::x86_64::*;

    /// Whether the sha/ssse3/sse4.1 features are present (cached).
    #[inline]
    pub(super) fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            is_x86_feature_detected!("sha")
                && is_x86_feature_detected!("ssse3")
                && is_x86_feature_detected!("sse4.1")
        })
    }

    /// # Safety
    ///
    /// Caller must ensure the sha, ssse3 and sse4.1 target features are
    /// available and `data.len()` is a multiple of 64.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub(super) unsafe fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
        // Byte shuffle turning little-endian loads into big-endian words.
        let mask = _mm_set_epi64x(
            0x0c0d_0e0f_0809_0a0bu64 as i64,
            0x0405_0607_0001_0203u64 as i64,
        );

        // Pack the state into the ABEF / CDGH register layout SHA-NI uses.
        let tmp = _mm_loadu_si128(state.as_ptr().cast());
        let state1_init = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
        let state1_init = _mm_shuffle_epi32(state1_init, 0x1B); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, state1_init, 8); // ABEF
        let mut state1 = _mm_blend_epi16(state1_init, tmp, 0xF0); // CDGH

        macro_rules! k4 {
            ($i:expr) => {
                _mm_loadu_si128(K.as_ptr().add($i).cast())
            };
        }

        for block in data.chunks_exact(64) {
            let abef_save = state0;
            let cdgh_save = state1;

            // Rounds 0..=3.
            let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), mask);
            let mut msg = _mm_add_epi32(msg0, k4!(0));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

            // Rounds 4..=7.
            let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), mask);
            msg = _mm_add_epi32(msg1, k4!(4));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
            msg0 = _mm_sha256msg1_epu32(msg0, msg1);

            // Rounds 8..=11.
            let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), mask);
            msg = _mm_add_epi32(msg2, k4!(8));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
            msg1 = _mm_sha256msg1_epu32(msg1, msg2);

            // Rounds 12..=15.
            let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), mask);
            msg = _mm_add_epi32(msg3, k4!(12));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            let mut tmp = _mm_alignr_epi8(msg3, msg2, 4);
            msg0 = _mm_add_epi32(msg0, tmp);
            msg0 = _mm_sha256msg2_epu32(msg0, msg3);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
            msg2 = _mm_sha256msg1_epu32(msg2, msg3);

            // Rounds 16..=59: the schedule pipeline in steady state.
            // Each step consumes msgN and refreshes it for round t+16.
            macro_rules! steady4 {
                ($t:expr, $cur:ident, $prev:ident, $next:ident) => {
                    msg = _mm_add_epi32($cur, k4!($t));
                    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                    tmp = _mm_alignr_epi8($cur, $prev, 4);
                    $next = _mm_add_epi32($next, tmp);
                    $next = _mm_sha256msg2_epu32($next, $cur);
                    msg = _mm_shuffle_epi32(msg, 0x0E);
                    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
                    $prev = _mm_sha256msg1_epu32($prev, $cur);
                };
            }

            steady4!(16, msg0, msg3, msg1);
            steady4!(20, msg1, msg0, msg2);
            steady4!(24, msg2, msg1, msg3);
            steady4!(28, msg3, msg2, msg0);
            steady4!(32, msg0, msg3, msg1);
            steady4!(36, msg1, msg0, msg2);
            steady4!(40, msg2, msg1, msg3);
            steady4!(44, msg3, msg2, msg0);
            steady4!(48, msg0, msg3, msg1);
            steady4!(52, msg1, msg0, msg2);
            steady4!(56, msg2, msg1, msg3);
            let _ = (msg0, msg1, msg2);

            // Rounds 60..=63.
            msg = _mm_add_epi32(msg3, k4!(60));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

            state0 = _mm_add_epi32(state0, abef_save);
            state1 = _mm_add_epi32(state1, cdgh_save);
        }

        // Unpack ABEF / CDGH back to the linear state layout.
        let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        let state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        let out0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
        let out1 = _mm_alignr_epi8(state1, tmp, 8); // HGFE
        _mm_storeu_si128(state.as_mut_ptr().cast(), out0);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), out1);
    }
}

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use nonrep_crypto::digest::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let d = h.finalize();
/// assert_eq!(d, nonrep_crypto::digest::sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    ///
    /// Full 64-byte blocks are compressed straight from `data`; only a
    /// sub-block tail is staged in the internal buffer.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_blocks(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let whole = rest.len() - rest.len() % 64;
        if whole > 0 {
            compress_blocks(&mut self.state, &rest[..whole]);
            rest = &rest[whole..];
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Completes the hash, returning the digest.
    pub fn finalize(mut self) -> Digest {
        pad_and_finish(&mut self.state, &self.buf[..self.buf_len], self.total_len)
    }
}

/// Pads the sub-block remainder `rem` (0x80, zeros, 64-bit big-endian bit
/// length — at most two blocks, built on the stack), compresses it, and
/// extracts the digest. Shared tail of the streaming and one-shot paths.
fn pad_and_finish(state: &mut [u32; 8], rem: &[u8], total_len: u64) -> Digest {
    debug_assert!(rem.len() < 64);
    let bit_len = total_len.wrapping_mul(8);
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() + 1 > 56 { 128 } else { 64 };
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    compress_blocks(state, &tail[..tail_len]);
    state_to_digest(state)
}

#[inline]
fn state_to_digest(state: &[u32; 8]) -> Digest {
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(state) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

/// One-shot SHA-256 of `data`, compressing full blocks directly from the
/// input slice.
pub fn sha256(data: &[u8]) -> Digest {
    if data.len() <= 55 {
        return sha256_short(data);
    }
    let mut state = H0;
    let whole = data.len() - data.len() % 64;
    compress_blocks(&mut state, &data[..whole]);
    pad_and_finish(&mut state, &data[whole..], data.len() as u64)
}

/// SHA-256 of a message short enough (≤ 55 bytes) to fit one padded
/// block: exactly one compression, no buffering.
///
/// This is the W-OTS chain-step shape (36 bytes) — the single hottest
/// call site in the codebase during key generation and signing.
///
/// # Panics
///
/// Panics if `data` exceeds 55 bytes.
pub fn sha256_short(data: &[u8]) -> Digest {
    assert!(
        data.len() <= 55,
        "sha256_short: message does not fit one padded block"
    );
    let mut block = [0u8; 64];
    block[..data.len()].copy_from_slice(data);
    block[data.len()] = 0x80;
    let bit_len = (data.len() as u64) * 8;
    block[56..].copy_from_slice(&bit_len.to_be_bytes());
    let mut state = H0;
    compress_blocks(&mut state, &block);
    state_to_digest(&state)
}

/// SHA-256 over the concatenation of two byte strings (domain-separated by
/// a tag byte), used for Merkle node hashing and evidence chain links.
///
/// The ubiquitous 32+32-byte shape (65 bytes of input) takes a dedicated
/// two-compression path over stack blocks; other shapes fall back to the
/// streaming hasher.
pub fn sha256_pair(tag: u8, left: &[u8], right: &[u8]) -> Digest {
    if left.len() == 32 && right.len() == 32 {
        // Block 0: tag ‖ left ‖ right[..31]; block 1: right[31] ‖ pad ‖ len.
        let mut block0 = [0u8; 64];
        block0[0] = tag;
        block0[1..33].copy_from_slice(left);
        block0[33..].copy_from_slice(&right[..31]);
        let mut block1 = [0u8; 64];
        block1[0] = right[31];
        block1[1] = 0x80;
        block1[56..].copy_from_slice(&(65u64 * 8).to_be_bytes());
        let mut state = H0;
        compress_blocks(&mut state, &block0);
        compress_blocks(&mut state, &block1);
        return state_to_digest(&state);
    }
    let mut h = Sha256::new();
    h.update(&[tag]);
    h.update(left);
    h.update(right);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 test vectors.
    #[test]
    fn nist_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_448_bits() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            sha256(msg).to_hex(),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&msg).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn scalar_abc_vector() {
        let mut block = [0u8; 64];
        block[..3].copy_from_slice(b"abc");
        block[3] = 0x80;
        block[56..].copy_from_slice(&(24u64).to_be_bytes());
        let mut state = H0;
        scalar::compress_blocks(&mut state, &block);
        assert_eq!(
            state_to_digest(&state).to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn shani_matches_scalar_single_block() {
        if !shani::available() {
            return;
        }
        let mut block = [0u8; 64];
        block[..3].copy_from_slice(b"abc");
        block[3] = 0x80;
        block[56..].copy_from_slice(&(24u64).to_be_bytes());
        let mut s1 = H0;
        let mut s2 = H0;
        scalar::compress_blocks(&mut s1, &block);
        unsafe { shani::compress_blocks(&mut s2, &block) };
        assert_eq!(s1, s2, "scalar {s1:08x?} vs shani {s2:08x?}");
    }

    #[test]
    fn scalar_and_dispatch_agree() {
        // Exercise the scalar path explicitly so both implementations are
        // covered on SHA-NI hardware.
        for len in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 129, 1000] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let whole = len - len % 64;
            let mut state = H0;
            scalar::compress_blocks(&mut state, &data[..whole]);
            let rem = &data[whole..];
            let mut tail = [0u8; 128];
            tail[..rem.len()].copy_from_slice(rem);
            tail[rem.len()] = 0x80;
            let tail_len = if rem.len() + 1 > 56 { 128 } else { 64 };
            tail[tail_len - 8..tail_len].copy_from_slice(&((len as u64) * 8).to_be_bytes());
            scalar::compress_blocks(&mut state, &tail[..tail_len]);
            assert_eq!(state_to_digest(&state), sha256(&data), "len {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expected = sha256(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn streaming_equals_oneshot_at_every_length_around_block_boundaries() {
        // Satellite coverage: every total length 0..=130 hashed one byte
        // at a time, three bytes at a time, and in two chunks around each
        // boundary offset (63/64/65 especially).
        let data: Vec<u8> = (0u8..=255).cycle().take(131).collect();
        for len in 0..=130usize {
            let expected = sha256(&data[..len]);
            let mut one = Sha256::new();
            for b in &data[..len] {
                one.update(std::slice::from_ref(b));
            }
            assert_eq!(one.finalize(), expected, "bytewise len {len}");
            let mut three = Sha256::new();
            for chunk in data[..len].chunks(3) {
                three.update(chunk);
            }
            assert_eq!(three.finalize(), expected, "3-chunk len {len}");
            for split in [
                len.saturating_sub(1),
                len / 2,
                63.min(len),
                64.min(len),
                65.min(len),
            ] {
                let mut h = Sha256::new();
                h.update(&data[..split]);
                h.update(&data[split..len]);
                assert_eq!(h.finalize(), expected, "len {len} split {split}");
            }
        }
    }

    #[test]
    fn sha256_short_matches_generic() {
        for len in 0..=55usize {
            let data: Vec<u8> = (0..len).map(|i| i as u8 ^ 0x5A).collect();
            let mut h = Sha256::new();
            h.update(&data);
            assert_eq!(sha256_short(&data), h.finalize(), "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit one padded block")]
    fn sha256_short_rejects_long_input() {
        let _ = sha256_short(&[0u8; 56]);
    }

    #[test]
    fn pair_fast_path_matches_streaming() {
        let left = sha256(b"left");
        let right = sha256(b"right");
        for tag in [0u8, 1, 2, 0xFF] {
            let mut h = Sha256::new();
            h.update(&[tag]);
            h.update(left.as_bytes());
            h.update(right.as_bytes());
            assert_eq!(
                sha256_pair(tag, left.as_bytes(), right.as_bytes()),
                h.finalize()
            );
        }
        // Non-32-byte operands use the generic path.
        let mut h = Sha256::new();
        h.update(&[7]);
        h.update(b"ab");
        h.update(b"cdef");
        assert_eq!(sha256_pair(7, b"ab", b"cdef"), h.finalize());
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
        assert!(Digest::from_hex("abc").is_none());
        assert!(Digest::from_hex(&"zz".repeat(32)).is_none());
    }

    #[test]
    fn hex_accepts_uppercase_and_rejects_non_hex() {
        let d = sha256(b"case");
        assert_eq!(Digest::from_hex(&d.to_hex().to_uppercase()).unwrap(), d);
        let mut bad = d.to_hex();
        bad.replace_range(10..11, "g");
        assert!(Digest::from_hex(&bad).is_none());
        // Multi-byte UTF-8 of the right char-length must not slip through.
        assert!(Digest::from_hex(&"é".repeat(32)).is_none());
    }

    #[test]
    fn digest_codec_roundtrip() {
        use nonrep_types::codec::{Decode, Encode};
        let d = sha256(b"codec");
        assert_eq!(Digest::decode_from_slice(&d.encode_to_vec()).unwrap(), d);
    }

    #[test]
    fn pair_hash_is_domain_separated() {
        assert_ne!(sha256_pair(0, b"a", b"b"), sha256_pair(1, b"a", b"b"));
        assert_ne!(sha256_pair(0, b"a", b"b"), sha256_pair(0, b"b", b"a"));
    }

    #[test]
    fn debug_is_truncated_not_empty() {
        let s = format!("{:?}", Digest::ZERO);
        assert!(s.starts_with("Digest("));
        assert!(!s.is_empty());
    }
}
