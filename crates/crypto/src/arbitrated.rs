//! Arbitrated (shared-key) authentication scheme.
//!
//! The lightweight end of the paper's trust spectrum (§3.1): "a more
//! lightweight mechanism can be used when parties, who otherwise trust each
//! other, need a verifiable audit trail of their interaction". An HMAC tag
//! under a key shared with a mutually trusted arbiter (e.g. an inline TTP)
//! is such a mechanism: it is *not* a publicly verifiable signature — anyone
//! holding the key can forge — so its evidentiary value rests on the
//! arbiter's honesty. The benchmark suite (experiment E6) uses it as the
//! cheap baseline against the hash-based public-key scheme.

use crate::digest::Digest;
use crate::hmac::{hmac_sha256, verify_mac};
use crate::rng::SecureRandom;

/// A shared authentication key.
#[derive(Clone)]
pub struct ArbitratedKey {
    secret: [u8; 32],
}

impl std::fmt::Debug for ArbitratedKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("ArbitratedKey(..)")
    }
}

impl ArbitratedKey {
    /// Generates a fresh random key.
    pub fn generate(rng: &mut SecureRandom) -> Self {
        Self {
            secret: rng.secret32(),
        }
    }

    /// Reconstructs a key from raw bytes (distribution to the arbiter is
    /// out of band).
    pub fn from_bytes(secret: [u8; 32]) -> Self {
        Self { secret }
    }

    /// The raw key bytes (for escrow with the arbiter).
    pub fn to_bytes(&self) -> [u8; 32] {
        self.secret
    }

    /// Produces the authentication tag for `msg`.
    pub fn tag(&self, msg: &[u8]) -> Digest {
        hmac_sha256(&self.secret, msg)
    }

    /// Verifies a tag in constant time.
    pub fn verify(&self, msg: &[u8], tag: &Digest) -> bool {
        verify_mac(&self.tag(msg), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_verify_roundtrip() {
        let key = ArbitratedKey::generate(&mut SecureRandom::from_seed(1));
        let tag = key.tag(b"audit record");
        assert!(key.verify(b"audit record", &tag));
        assert!(!key.verify(b"tampered", &tag));
    }

    #[test]
    fn different_keys_do_not_cross_verify() {
        let mut rng = SecureRandom::from_seed(2);
        let k1 = ArbitratedKey::generate(&mut rng);
        let k2 = ArbitratedKey::generate(&mut rng);
        let tag = k1.tag(b"m");
        assert!(!k2.verify(b"m", &tag));
    }

    #[test]
    fn key_roundtrips_through_bytes() {
        let key = ArbitratedKey::generate(&mut SecureRandom::from_seed(3));
        let clone = ArbitratedKey::from_bytes(key.to_bytes());
        assert!(clone.verify(b"m", &key.tag(b"m")));
    }

    #[test]
    fn debug_never_leaks_key() {
        let key = ArbitratedKey::from_bytes([0xAB; 32]);
        let s = format!("{key:?}");
        assert!(!s.contains("ab"), "debug output leaked key bytes: {s}");
    }
}
