//! Winternitz one-time signatures (W-OTS) over SHA-256.
//!
//! The one-time building block of the many-time Merkle signature scheme
//! ([`crate::mss`]). Parameters: `w = 16` (4 bits per chunk), so a 256-bit
//! message digest is cut into 64 chunks plus 3 checksum chunks — 67 hash
//! chains of length 15.
//!
//! Chain steps are domain-separated by chain index and step number so that
//! values from one chain/step can never be replayed in another.
//!
//! **One-time** means exactly that: signing two different messages with the
//! same key reveals enough chain preimages to forge. The MSS layer enforces
//! single use; this module documents and tests the primitive in isolation.
//!
//! # Performance
//!
//! The 67 chains are *independent*, so key generation, signing and
//! verification walk them lane-batched through the multi-buffer engine
//! ([`crate::digest::mb`]): up to eight chains advance per compression,
//! scheduled deepest-remaining-first so lanes stay full as chains finish
//! at different steps, and the per-chain secrets are derived with the
//! batched HMAC path ([`crate::hmac::hmac_short_lanes_with`]). Every
//! public entry point has a `_with` variant taking an explicit
//! [`mb::Dispatch`] tier; [`mb::Dispatch::Single`] reproduces the
//! sequential reference path bit for bit.

use crate::digest::{mb, sha256_short, Digest, Sha256};
use crate::hmac::{hmac_sha256, hmac_short_lanes_with};

/// Chunks carrying message digest bits (256 / 4).
pub const MSG_CHUNKS: usize = 64;
/// Chunks carrying the checksum (max checksum 64*15 = 960 < 16^3).
pub const CSUM_CHUNKS: usize = 3;
/// Total number of hash chains.
pub const CHAINS: usize = MSG_CHUNKS + CSUM_CHUNKS;
/// Maximum chain step (w - 1).
pub const MAX_STEP: u8 = 15;

const CHAIN_TAG: u8 = 0x02;
const PK_TAG: u8 = 0x03;

/// A W-OTS signature: one 32-byte chain value per chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WotsSignature {
    /// Chain values, one per chain, in chain order.
    pub chains: [[u8; 32]; CHAINS],
}

impl WotsSignature {
    /// Serialized size in bytes.
    pub const BYTE_LEN: usize = CHAINS * 32;

    /// Flattens the signature to bytes (for transport/evidence encoding).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::BYTE_LEN);
        for chain in &self.chains {
            out.extend_from_slice(chain);
        }
        out
    }

    /// Parses a signature from bytes produced by [`WotsSignature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::BYTE_LEN {
            return None;
        }
        let mut chains = [[0u8; 32]; CHAINS];
        for (i, chunk) in bytes.chunks(32).enumerate() {
            chains[i].copy_from_slice(chunk);
        }
        Some(Self { chains })
    }
}

/// A W-OTS key pair derived from a 32-byte seed.
///
/// Per-chain secrets are derived `sk_i = HMAC(seed, chain_index)`, so only
/// the seed needs storing; destroying the seed after use gives forward
/// security at the MSS layer.
#[derive(Debug, Clone)]
pub struct WotsKeyPair {
    seed: [u8; 32],
    public: Digest,
}

/// Splits a digest into the 67 Winternitz chunk values (message + checksum).
fn chunks_of(digest: &Digest) -> [u8; CHAINS] {
    let mut out = [0u8; CHAINS];
    for (i, byte) in digest.as_bytes().iter().enumerate() {
        out[2 * i] = byte >> 4;
        out[2 * i + 1] = byte & 0x0F;
    }
    let csum: u16 = out[..MSG_CHUNKS]
        .iter()
        .map(|&c| u16::from(MAX_STEP - c))
        .sum();
    // 3 base-16 digits, most significant first.
    out[MSG_CHUNKS] = ((csum >> 8) & 0x0F) as u8;
    out[MSG_CHUNKS + 1] = ((csum >> 4) & 0x0F) as u8;
    out[MSG_CHUNKS + 2] = (csum & 0x0F) as u8;
    out
}

/// Applies the domain-separated chain function `steps` times starting at
/// step `from`, one compression per step through `hash`.
fn chain_seq(
    mut value: [u8; 32],
    chain_idx: u16,
    from: u8,
    steps: u8,
    hash: fn(&[u8]) -> Digest,
) -> [u8; 32] {
    // 36-byte message — fits one padded block, so each step is a single
    // compression over a stack buffer.
    let mut buf = [0u8; 36];
    buf[0] = CHAIN_TAG;
    buf[1..3].copy_from_slice(&chain_idx.to_le_bytes());
    for s in from..from + steps {
        buf[3] = s;
        buf[4..].copy_from_slice(&value);
        value = *hash(&buf).as_bytes();
    }
    value
}

/// The sequential chain function (the reference the lane-batched walk is
/// tested against).
#[cfg(test)]
fn chain(value: [u8; 32], chain_idx: u16, from: u8, steps: u8) -> [u8; 32] {
    chain_seq(value, chain_idx, from, steps, sha256_short)
}

/// A 64-byte compression block pre-padded for the 36-byte chain-step
/// message of `chain_idx`; the step byte and value field are filled per
/// step.
fn padded_chain_block(chain_idx: u16) -> [u8; 64] {
    let mut block = [0u8; 64];
    block[0] = CHAIN_TAG;
    block[1..3].copy_from_slice(&chain_idx.to_le_bytes());
    block[36] = 0x80;
    block[56..].copy_from_slice(&(36u64 * 8).to_be_bytes());
    block
}

/// Walks all 67 chains of one key: chain `i` starts from `values[i]` at
/// step `start[i]` and advances `steps[i]` steps in place. See
/// [`walk_chains_flat`] for the schedule.
fn walk_chains(
    d: mb::Dispatch,
    values: &mut [[u8; 32]; CHAINS],
    start: &[u8; CHAINS],
    steps: &[u8; CHAINS],
) {
    let idx: [u16; CHAINS] = std::array::from_fn(|i| i as u16);
    walk_chains_flat(d, values, &idx, start, steps);
}

/// Walks an arbitrary job list of chains: entry `i` starts from
/// `values[i]` (chain header `chain_idx[i]`) at step `start[i]` and
/// advances `steps[i]` steps in place.
///
/// Under a multi-lane dispatch the walk runs lane-batched: chains are
/// scheduled deepest-remaining-first into the tier's lanes, every lane
/// advances one step per lockstep compression, and a finished lane is
/// immediately refilled with the next pending chain — so lanes stay
/// full even though chains finish at different steps (signing and
/// verification advance each chain by its digest-dependent chunk).
/// Batch callers flatten the chains of many keys or signatures into one
/// job list, so lanes also stay full *across* W-OTS boundaries instead
/// of draining at each key's 67-chain tail.
fn walk_chains_flat(
    d: mb::Dispatch,
    values: &mut [[u8; 32]],
    chain_idx: &[u16],
    start: &[u8],
    steps: &[u8],
) {
    debug_assert!(
        values.len() == chain_idx.len() && values.len() == start.len(),
        "walk job columns must align"
    );
    let width = d.lanes();
    if width <= 1 {
        let hash: fn(&[u8]) -> Digest = match d {
            mb::Dispatch::SingleScalar => mb::sha256_short_scalar,
            _ => sha256_short,
        };
        for i in 0..values.len() {
            if steps[i] > 0 {
                values[i] = chain_seq(values[i], chain_idx[i], start[i], steps[i], hash);
            }
        }
        return;
    }
    // Deepest chains first: the stragglers start early, so the tail of
    // the schedule (when fewer chains remain than lanes) is short.
    let mut order: Vec<usize> = (0..values.len()).filter(|&i| steps[i] > 0).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(steps[i]));
    let mut next = 0usize;
    let mut blocks = [[0u8; 64]; mb::MAX_LANES];
    let mut lane_chain = [usize::MAX; mb::MAX_LANES];
    let mut lane_left = [0u8; mb::MAX_LANES];
    let mut active = 0usize;
    loop {
        for l in 0..width {
            if lane_left[l] > 0 {
                continue;
            }
            if lane_chain[l] != usize::MAX {
                // Chain finished: its final value sits in the block.
                values[lane_chain[l]].copy_from_slice(&blocks[l][4..36]);
                lane_chain[l] = usize::MAX;
                active -= 1;
            }
            if next < order.len() {
                let c = order[next];
                next += 1;
                blocks[l] = padded_chain_block(chain_idx[c]);
                blocks[l][3] = start[c];
                blocks[l][4..36].copy_from_slice(&values[c]);
                lane_chain[l] = c;
                lane_left[l] = steps[c];
                active += 1;
            }
        }
        if active == 0 {
            return;
        }
        mb::chain_steps_with(d, &mut blocks[..width]);
        for l in 0..width {
            if lane_chain[l] != usize::MAX {
                lane_left[l] -= 1;
                if lane_left[l] > 0 {
                    blocks[l][3] += 1;
                }
            }
        }
    }
}

fn derive_secret(seed: &[u8; 32], chain_idx: u16) -> [u8; 32] {
    *hmac_sha256(seed, &chain_idx.to_le_bytes()).as_bytes()
}

/// Derives all 67 per-chain secrets, lane-batching the HMACs.
fn derive_secrets(d: mb::Dispatch, seed: &[u8; 32]) -> [[u8; 32]; CHAINS] {
    let mut out = [[0u8; 32]; CHAINS];
    if d.lanes() <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = derive_secret(seed, i as u16);
        }
        return out;
    }
    let msgs: Vec<[u8; 2]> = (0..CHAINS as u16).map(|i| i.to_le_bytes()).collect();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    for (slot, mac) in out.iter_mut().zip(hmac_short_lanes_with(d, seed, &refs)) {
        *slot = *mac.as_bytes();
    }
    out
}

fn compress_pk(ends: &[[u8; 32]; CHAINS]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[PK_TAG]);
    for end in ends {
        h.update(end);
    }
    h.finalize()
}

/// `PK_TAG ‖ 67 chain ends`: the public-key compression message.
const PK_MSG_LEN: usize = 1 + CHAINS * 32;

/// Compresses many keys' chain ends to public keys in lockstep:
/// `values` holds the flattened chain ends (67 per key, key-major), and
/// every key's 2145-byte compression message has identical length, so
/// up to `d.lanes()` keys advance per compressed block
/// ([`mb::hash_eq_lanes_with`]). Identical to mapping [`compress_pk`]
/// over the per-key end arrays.
fn compress_pk_lanes(d: mb::Dispatch, values: &[[u8; 32]]) -> Vec<Digest> {
    debug_assert!(values.len().is_multiple_of(CHAINS), "67 ends per key");
    let bufs: Vec<[u8; PK_MSG_LEN]> = values
        .chunks_exact(CHAINS)
        .map(|ends| {
            let mut buf = [0u8; PK_MSG_LEN];
            buf[0] = PK_TAG;
            for (slot, end) in buf[1..].chunks_exact_mut(32).zip(ends) {
                slot.copy_from_slice(end);
            }
            buf
        })
        .collect();
    let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
    mb::hash_eq_lanes_with(d, &refs)
}

impl WotsKeyPair {
    /// Derives a key pair from a 32-byte seed under the active dispatch.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        Self::from_seed_with(seed, mb::Dispatch::active())
    }

    /// [`WotsKeyPair::from_seed`] under an explicit dispatch tier. The
    /// key material is identical for every tier.
    pub fn from_seed_with(seed: [u8; 32], d: mb::Dispatch) -> Self {
        let mut values = derive_secrets(d, &seed);
        walk_chains(d, &mut values, &[0; CHAINS], &[MAX_STEP; CHAINS]);
        Self {
            seed,
            public: compress_pk(&values),
        }
    }

    /// Derives the public keys of many seeds, lane-batched *across*
    /// keys: per-chain secrets via the batched HMAC path, then one flat
    /// walk over all `67·N` chains (every chain runs the full 15 steps,
    /// so lanes stay in lockstep across key boundaries with no refill
    /// tail per key), then the public-key compressions in lockstep.
    /// Identical to mapping [`WotsKeyPair::from_seed_with`] and taking
    /// each public key — the MSS keygen hot path.
    pub fn public_keys_from_seeds_with(seeds: &[[u8; 32]], d: mb::Dispatch) -> Vec<Digest> {
        if d.lanes() <= 1 {
            return seeds
                .iter()
                .map(|s| Self::from_seed_with(*s, d).public_key())
                .collect();
        }
        let mut values = Vec::with_capacity(seeds.len() * CHAINS);
        for seed in seeds {
            values.extend(derive_secrets(d, seed));
        }
        let n = values.len();
        let idx: Vec<u16> = (0..n).map(|i| (i % CHAINS) as u16).collect();
        let start = vec![0u8; n];
        let steps = vec![MAX_STEP; n];
        walk_chains_flat(d, &mut values, &idx, &start, &steps);
        compress_pk_lanes(d, &values)
    }

    /// Signs `digest` with the key derived from `seed` *without*
    /// deriving the public key: the signing walk stops at each chain's
    /// digest-dependent chunk, so going through [`WotsKeyPair::from_seed`]
    /// first (which walks every chain to the end for the public key)
    /// would roughly double the work. The signature is identical to
    /// `from_seed(seed).sign(digest)`. The caller owns one-time use.
    pub fn sign_from_seed_with(seed: &[u8; 32], digest: &Digest, d: mb::Dispatch) -> WotsSignature {
        let chunks = chunks_of(digest);
        let mut values = derive_secrets(d, seed);
        walk_chains(d, &mut values, &[0; CHAINS], &chunks);
        WotsSignature { chains: values }
    }

    /// The compressed public key (hash of all chain ends).
    pub fn public_key(&self) -> Digest {
        self.public
    }

    /// Signs a message digest.
    ///
    /// The caller (the MSS layer) is responsible for using the key at most
    /// once.
    pub fn sign(&self, digest: &Digest) -> WotsSignature {
        self.sign_with(digest, mb::Dispatch::active())
    }

    /// [`WotsKeyPair::sign`] under an explicit dispatch tier. The
    /// signature is identical for every tier.
    pub fn sign_with(&self, digest: &Digest, d: mb::Dispatch) -> WotsSignature {
        Self::sign_from_seed_with(&self.seed, digest, d)
    }
}

/// Batch [`recover_public_key_with`]: recomputes every signature's
/// candidate public key, the verification walks scheduled over one flat
/// job list (lanes refill across signature boundaries, not just within
/// one signature's 67 chains) and the final compressions in lockstep.
/// Identical to mapping [`recover_public_key_with`] over the pairs —
/// the batch-verification hot path of the MSS layer.
///
/// # Panics
///
/// Panics if `digests` and `sigs` differ in length.
pub fn recover_public_keys_with(
    digests: &[Digest],
    sigs: &[&WotsSignature],
    d: mb::Dispatch,
) -> Vec<Digest> {
    assert_eq!(digests.len(), sigs.len(), "one digest per signature");
    if d.lanes() <= 1 {
        return digests
            .iter()
            .zip(sigs)
            .map(|(digest, sig)| recover_public_key_with(digest, sig, d))
            .collect();
    }
    let n = digests.len() * CHAINS;
    let mut values = Vec::with_capacity(n);
    let mut idx = Vec::with_capacity(n);
    let mut start = Vec::with_capacity(n);
    let mut steps = Vec::with_capacity(n);
    for (digest, sig) in digests.iter().zip(sigs) {
        values.extend(sig.chains);
        for (c, chunk) in chunks_of(digest).into_iter().enumerate() {
            idx.push(c as u16);
            start.push(chunk);
            steps.push(MAX_STEP - chunk);
        }
    }
    walk_chains_flat(d, &mut values, &idx, &start, &steps);
    compress_pk_lanes(d, &values)
}

/// Recomputes the candidate public key from a signature and digest.
///
/// Verification succeeds iff the result equals the signer's public key.
pub fn recover_public_key(digest: &Digest, sig: &WotsSignature) -> Digest {
    recover_public_key_with(digest, sig, mb::Dispatch::active())
}

/// [`recover_public_key`] under an explicit dispatch tier.
pub fn recover_public_key_with(digest: &Digest, sig: &WotsSignature, d: mb::Dispatch) -> Digest {
    let chunks = chunks_of(digest);
    let mut steps = [0u8; CHAINS];
    for (step, chunk) in steps.iter_mut().zip(chunks) {
        *step = MAX_STEP - chunk;
    }
    let mut values = sig.chains;
    walk_chains(d, &mut values, &chunks, &steps);
    compress_pk(&values)
}

/// Verifies `sig` over `digest` against `public_key`.
pub fn verify(public_key: &Digest, digest: &Digest, sig: &WotsSignature) -> bool {
    recover_public_key(digest, sig) == *public_key
}

/// [`verify`] under an explicit dispatch tier.
pub fn verify_with(
    public_key: &Digest,
    digest: &Digest,
    sig: &WotsSignature,
    d: mb::Dispatch,
) -> bool {
    recover_public_key_with(digest, sig, d) == *public_key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;

    fn keypair(seed_byte: u8) -> WotsKeyPair {
        WotsKeyPair::from_seed([seed_byte; 32])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(1);
        let d = sha256(b"message");
        let sig = kp.sign(&d);
        assert!(verify(&kp.public_key(), &d, &sig));
    }

    #[test]
    fn wrong_message_fails() {
        let kp = keypair(2);
        let sig = kp.sign(&sha256(b"message"));
        assert!(!verify(&kp.public_key(), &sha256(b"other"), &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = keypair(3);
        let kp2 = keypair(4);
        let d = sha256(b"message");
        let sig = kp1.sign(&d);
        assert!(!verify(&kp2.public_key(), &d, &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = keypair(5);
        let d = sha256(b"message");
        let mut sig = kp.sign(&d);
        sig.chains[0][0] ^= 0xFF;
        assert!(!verify(&kp.public_key(), &d, &sig));
    }

    #[test]
    fn checksum_prevents_chunk_increase_forgery() {
        // Advancing a message chain must be detectable because the checksum
        // chains would have to be *reversed* (preimage). Simulate the naive
        // forgery: take a signature and advance one message chain one step.
        let kp = keypair(6);
        let d = sha256(b"message");
        let chunks = chunks_of(&d);
        // Find a message chunk that can be advanced.
        let i = (0..MSG_CHUNKS).find(|&i| chunks[i] < MAX_STEP).unwrap();
        let mut sig = kp.sign(&d);
        sig.chains[i] = chain(sig.chains[i], i as u16, chunks[i], 1);
        // The forged signature must not verify for any digest we can cheaply
        // construct — in particular not for the original.
        assert!(!verify(&kp.public_key(), &d, &sig));
    }

    #[test]
    fn chunks_and_checksum_are_consistent() {
        let d = sha256(b"x");
        let chunks = chunks_of(&d);
        let csum: u16 = chunks[..MSG_CHUNKS]
            .iter()
            .map(|&c| u16::from(MAX_STEP - c))
            .sum();
        let encoded = (u16::from(chunks[MSG_CHUNKS]) << 8)
            | (u16::from(chunks[MSG_CHUNKS + 1]) << 4)
            | u16::from(chunks[MSG_CHUNKS + 2]);
        assert_eq!(csum, encoded);
        assert!(chunks.iter().all(|&c| c <= MAX_STEP));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = keypair(7);
        let sig = kp.sign(&sha256(b"bytes"));
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), WotsSignature::BYTE_LEN);
        assert_eq!(WotsSignature::from_bytes(&bytes).unwrap(), sig);
        assert!(WotsSignature::from_bytes(&bytes[1..]).is_none());
    }

    #[test]
    fn deterministic_keys_from_seed() {
        assert_eq!(keypair(9).public_key(), keypair(9).public_key());
        assert_ne!(keypair(9).public_key(), keypair(10).public_key());
    }

    #[test]
    fn every_tier_matches_the_sequential_reference() {
        // Keygen, signing and verification must be bit-identical across
        // every dispatch tier the host can run; Single is the sequential
        // reference path.
        let seed = [0xC3u8; 32];
        let reference = WotsKeyPair::from_seed_with(seed, mb::Dispatch::Single);
        let digests = [sha256(b"alpha"), sha256(b"beta"), sha256(b"gamma")];
        for tier in mb::Dispatch::all() {
            if !tier.is_available() {
                continue;
            }
            let kp = WotsKeyPair::from_seed_with(seed, tier);
            assert_eq!(kp.public_key(), reference.public_key(), "{tier:?}");
            for digest in &digests {
                let sig = kp.sign_with(digest, tier);
                assert_eq!(
                    sig,
                    reference.sign_with(digest, mb::Dispatch::Single),
                    "{tier:?}"
                );
                assert_eq!(
                    recover_public_key_with(digest, &sig, tier),
                    recover_public_key(digest, &sig),
                    "{tier:?}"
                );
                assert!(
                    verify_with(&kp.public_key(), digest, &sig, tier),
                    "{tier:?}"
                );
            }
        }
    }

    #[test]
    fn lane_walk_handles_skewed_step_counts() {
        // Adversarially skewed schedules: one deep chain among shallow
        // ones, all-zero steps, single-step chains — the refill
        // scheduler must still match the sequential walk exactly.
        for tier in mb::Dispatch::all() {
            if !tier.is_available() || tier.lanes() <= 1 {
                continue;
            }
            for pattern in 0u8..4 {
                let mut start = [0u8; CHAINS];
                let mut steps = [0u8; CHAINS];
                for i in 0..CHAINS {
                    let (s, n) = match pattern {
                        0 => (0, if i == 3 { MAX_STEP } else { 1 }),
                        1 => (0, (i % 3) as u8),
                        2 => ((i % 7) as u8, (i % 5) as u8),
                        _ => (0, 0),
                    };
                    start[i] = s;
                    steps[i] = n.min(MAX_STEP - s);
                }
                let init: [[u8; 32]; CHAINS] =
                    std::array::from_fn(|i| *sha256(&[i as u8, pattern]).as_bytes());
                let mut got = init;
                walk_chains(tier, &mut got, &start, &steps);
                let mut want = init;
                for i in 0..CHAINS {
                    if steps[i] > 0 {
                        want[i] = chain(want[i], i as u16, start[i], steps[i]);
                    }
                }
                assert_eq!(got, want, "tier {tier:?} pattern {pattern}");
            }
        }
    }

    #[test]
    fn batched_public_keys_match_from_seed_for_every_tier() {
        // The cross-key flat walk + lockstep compressions must reproduce
        // the per-key path exactly, for batch sizes that leave partial
        // lane batches at both the walk and the compression stage.
        let seeds: Vec<[u8; 32]> = (0u8..5).map(|i| [i.wrapping_mul(37) ^ 0x11; 32]).collect();
        let expected: Vec<Digest> = seeds
            .iter()
            .map(|s| WotsKeyPair::from_seed_with(*s, mb::Dispatch::Single).public_key())
            .collect();
        for tier in mb::Dispatch::all() {
            if !tier.is_available() {
                continue;
            }
            for n in [0usize, 1, 2, 5] {
                assert_eq!(
                    WotsKeyPair::public_keys_from_seeds_with(&seeds[..n], tier),
                    expected[..n],
                    "tier {tier:?} n {n}"
                );
            }
        }
    }

    #[test]
    fn batched_recovery_matches_per_signature_for_every_tier() {
        // Signatures over different digests skew the per-chain step
        // counts across the flat job list; the shared refill schedule
        // must still recover each candidate key exactly.
        let kps: Vec<WotsKeyPair> = (10u8..14).map(keypair).collect();
        let digests: Vec<Digest> = (0u8..4).map(|i| sha256(&[i, 0xEE])).collect();
        let sigs: Vec<WotsSignature> = kps.iter().zip(&digests).map(|(kp, d)| kp.sign(d)).collect();
        let sig_refs: Vec<&WotsSignature> = sigs.iter().collect();
        for tier in mb::Dispatch::all() {
            if !tier.is_available() {
                continue;
            }
            let got = recover_public_keys_with(&digests, &sig_refs, tier);
            for (kp, pk) in kps.iter().zip(&got) {
                assert_eq!(*pk, kp.public_key(), "tier {tier:?}");
            }
        }
    }

    #[test]
    fn sign_from_seed_matches_keypair_sign() {
        let seed = [0x77u8; 32];
        let kp = WotsKeyPair::from_seed(seed);
        let digest = sha256(b"direct");
        for tier in mb::Dispatch::all() {
            if !tier.is_available() {
                continue;
            }
            assert_eq!(
                WotsKeyPair::sign_from_seed_with(&seed, &digest, tier),
                kp.sign(&digest),
                "{tier:?}"
            );
        }
    }

    #[test]
    fn batched_secret_derivation_matches_hmac() {
        let seed = [0x5Au8; 32];
        for tier in mb::Dispatch::all() {
            if !tier.is_available() {
                continue;
            }
            let derived = derive_secrets(tier, &seed);
            for (i, secret) in derived.iter().enumerate() {
                assert_eq!(
                    *secret,
                    derive_secret(&seed, i as u16),
                    "{tier:?} chain {i}"
                );
            }
        }
    }
}
