//! Winternitz one-time signatures (W-OTS) over SHA-256.
//!
//! The one-time building block of the many-time Merkle signature scheme
//! ([`crate::mss`]). Parameters: `w = 16` (4 bits per chunk), so a 256-bit
//! message digest is cut into 64 chunks plus 3 checksum chunks — 67 hash
//! chains of length 15.
//!
//! Chain steps are domain-separated by chain index and step number so that
//! values from one chain/step can never be replayed in another.
//!
//! **One-time** means exactly that: signing two different messages with the
//! same key reveals enough chain preimages to forge. The MSS layer enforces
//! single use; this module documents and tests the primitive in isolation.

use crate::digest::{sha256_short, Digest, Sha256};
use crate::hmac::hmac_sha256;

/// Chunks carrying message digest bits (256 / 4).
pub const MSG_CHUNKS: usize = 64;
/// Chunks carrying the checksum (max checksum 64*15 = 960 < 16^3).
pub const CSUM_CHUNKS: usize = 3;
/// Total number of hash chains.
pub const CHAINS: usize = MSG_CHUNKS + CSUM_CHUNKS;
/// Maximum chain step (w - 1).
pub const MAX_STEP: u8 = 15;

const CHAIN_TAG: u8 = 0x02;
const PK_TAG: u8 = 0x03;

/// A W-OTS signature: one 32-byte chain value per chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WotsSignature {
    /// Chain values, one per chain, in chain order.
    pub chains: [[u8; 32]; CHAINS],
}

impl WotsSignature {
    /// Serialized size in bytes.
    pub const BYTE_LEN: usize = CHAINS * 32;

    /// Flattens the signature to bytes (for transport/evidence encoding).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::BYTE_LEN);
        for chain in &self.chains {
            out.extend_from_slice(chain);
        }
        out
    }

    /// Parses a signature from bytes produced by [`WotsSignature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::BYTE_LEN {
            return None;
        }
        let mut chains = [[0u8; 32]; CHAINS];
        for (i, chunk) in bytes.chunks(32).enumerate() {
            chains[i].copy_from_slice(chunk);
        }
        Some(Self { chains })
    }
}

/// A W-OTS key pair derived from a 32-byte seed.
///
/// Per-chain secrets are derived `sk_i = HMAC(seed, chain_index)`, so only
/// the seed needs storing; destroying the seed after use gives forward
/// security at the MSS layer.
#[derive(Debug, Clone)]
pub struct WotsKeyPair {
    seed: [u8; 32],
    public: Digest,
}

/// Splits a digest into the 67 Winternitz chunk values (message + checksum).
fn chunks_of(digest: &Digest) -> [u8; CHAINS] {
    let mut out = [0u8; CHAINS];
    for (i, byte) in digest.as_bytes().iter().enumerate() {
        out[2 * i] = byte >> 4;
        out[2 * i + 1] = byte & 0x0F;
    }
    let csum: u16 = out[..MSG_CHUNKS]
        .iter()
        .map(|&c| u16::from(MAX_STEP - c))
        .sum();
    // 3 base-16 digits, most significant first.
    out[MSG_CHUNKS] = ((csum >> 8) & 0x0F) as u8;
    out[MSG_CHUNKS + 1] = ((csum >> 4) & 0x0F) as u8;
    out[MSG_CHUNKS + 2] = (csum & 0x0F) as u8;
    out
}

/// Applies the domain-separated chain function `steps` times starting at
/// step `from`.
fn chain(mut value: [u8; 32], chain_idx: u16, from: u8, steps: u8) -> [u8; 32] {
    // 36-byte message — fits one padded block, so each step is a single
    // compression over a stack buffer (this loop dominates key generation).
    let mut buf = [0u8; 36];
    buf[0] = CHAIN_TAG;
    buf[1..3].copy_from_slice(&chain_idx.to_le_bytes());
    for s in from..from + steps {
        buf[3] = s;
        buf[4..].copy_from_slice(&value);
        value = *sha256_short(&buf).as_bytes();
    }
    value
}

fn derive_secret(seed: &[u8; 32], chain_idx: u16) -> [u8; 32] {
    *hmac_sha256(seed, &chain_idx.to_le_bytes()).as_bytes()
}

fn compress_pk(ends: &[[u8; 32]; CHAINS]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[PK_TAG]);
    for end in ends {
        h.update(end);
    }
    h.finalize()
}

impl WotsKeyPair {
    /// Derives a key pair from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut ends = [[0u8; 32]; CHAINS];
        for (i, end) in ends.iter_mut().enumerate() {
            let sk = derive_secret(&seed, i as u16);
            *end = chain(sk, i as u16, 0, MAX_STEP);
        }
        Self {
            seed,
            public: compress_pk(&ends),
        }
    }

    /// The compressed public key (hash of all chain ends).
    pub fn public_key(&self) -> Digest {
        self.public
    }

    /// Signs a message digest.
    ///
    /// The caller (the MSS layer) is responsible for using the key at most
    /// once.
    pub fn sign(&self, digest: &Digest) -> WotsSignature {
        let chunks = chunks_of(digest);
        let mut chains = [[0u8; 32]; CHAINS];
        for i in 0..CHAINS {
            let sk = derive_secret(&self.seed, i as u16);
            chains[i] = chain(sk, i as u16, 0, chunks[i]);
        }
        WotsSignature { chains }
    }
}

/// Recomputes the candidate public key from a signature and digest.
///
/// Verification succeeds iff the result equals the signer's public key.
pub fn recover_public_key(digest: &Digest, sig: &WotsSignature) -> Digest {
    let chunks = chunks_of(digest);
    let mut ends = [[0u8; 32]; CHAINS];
    for i in 0..CHAINS {
        ends[i] = chain(sig.chains[i], i as u16, chunks[i], MAX_STEP - chunks[i]);
    }
    compress_pk(&ends)
}

/// Verifies `sig` over `digest` against `public_key`.
pub fn verify(public_key: &Digest, digest: &Digest, sig: &WotsSignature) -> bool {
    recover_public_key(digest, sig) == *public_key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;

    fn keypair(seed_byte: u8) -> WotsKeyPair {
        WotsKeyPair::from_seed([seed_byte; 32])
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(1);
        let d = sha256(b"message");
        let sig = kp.sign(&d);
        assert!(verify(&kp.public_key(), &d, &sig));
    }

    #[test]
    fn wrong_message_fails() {
        let kp = keypair(2);
        let sig = kp.sign(&sha256(b"message"));
        assert!(!verify(&kp.public_key(), &sha256(b"other"), &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = keypair(3);
        let kp2 = keypair(4);
        let d = sha256(b"message");
        let sig = kp1.sign(&d);
        assert!(!verify(&kp2.public_key(), &d, &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = keypair(5);
        let d = sha256(b"message");
        let mut sig = kp.sign(&d);
        sig.chains[0][0] ^= 0xFF;
        assert!(!verify(&kp.public_key(), &d, &sig));
    }

    #[test]
    fn checksum_prevents_chunk_increase_forgery() {
        // Advancing a message chain must be detectable because the checksum
        // chains would have to be *reversed* (preimage). Simulate the naive
        // forgery: take a signature and advance one message chain one step.
        let kp = keypair(6);
        let d = sha256(b"message");
        let chunks = chunks_of(&d);
        // Find a message chunk that can be advanced.
        let i = (0..MSG_CHUNKS).find(|&i| chunks[i] < MAX_STEP).unwrap();
        let mut sig = kp.sign(&d);
        sig.chains[i] = chain(sig.chains[i], i as u16, chunks[i], 1);
        // The forged signature must not verify for any digest we can cheaply
        // construct — in particular not for the original.
        assert!(!verify(&kp.public_key(), &d, &sig));
    }

    #[test]
    fn chunks_and_checksum_are_consistent() {
        let d = sha256(b"x");
        let chunks = chunks_of(&d);
        let csum: u16 = chunks[..MSG_CHUNKS]
            .iter()
            .map(|&c| u16::from(MAX_STEP - c))
            .sum();
        let encoded = (u16::from(chunks[MSG_CHUNKS]) << 8)
            | (u16::from(chunks[MSG_CHUNKS + 1]) << 4)
            | u16::from(chunks[MSG_CHUNKS + 2]);
        assert_eq!(csum, encoded);
        assert!(chunks.iter().all(|&c| c <= MAX_STEP));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = keypair(7);
        let sig = kp.sign(&sha256(b"bytes"));
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), WotsSignature::BYTE_LEN);
        assert_eq!(WotsSignature::from_bytes(&bytes).unwrap(), sig);
        assert!(WotsSignature::from_bytes(&bytes[1..]).is_none());
    }

    #[test]
    fn deterministic_keys_from_seed() {
        assert_eq!(keypair(9).public_key(), keypair(9).public_key());
        assert_ne!(keypair(9).public_key(), keypair(10).public_key());
    }
}
