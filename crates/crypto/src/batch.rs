//! Batch commitments: amortizing one signature over many records.
//!
//! The paper's central cost is that every non-repudiable interaction
//! produces *signed* evidence, and with a hash-based scheme the signature
//! dominates the hot path. This module provides the two pieces that turn
//! N signatures into ⌈N/batch⌉:
//!
//! * [`MerkleAccumulator`] — an incremental Merkle frontier over leaf
//!   digests. Leaves are pushed one at a time in O(1) amortized work; the
//!   running [`MerkleAccumulator::root`] is available at any point in
//!   O(log n) without rebuilding, and [`MerkleAccumulator::seal`] produces
//!   the full [`MerkleTree`] (for authentication paths) when the batch is
//!   committed. The accumulator reproduces [`MerkleTree`]'s duplicate-last
//!   padding exactly, so the incremental root always equals the sealed
//!   tree's root.
//! * [`BatchSignature`] — one MSS signature over a batch root plus a
//!   per-record authentication path, so a single signature covers every
//!   record in the batch while each record stays *individually*
//!   verifiable. Batch roots are signed under a domain-separated digest
//!   ([`batch_digest`]) so a batch-root signature can never be confused
//!   with a direct message signature.
//!
//! The scheme-agnostic integration point is
//! [`crate::sig::SignaturePayload::BatchedMss`] and
//! [`crate::sig::KeyPair::sign_batch`]: verifiers need no new API — a
//! batched signature verifies through the ordinary
//! [`crate::sig::VerifyingKey::verify`] path.

use crate::digest::{Digest, Sha256};
use crate::merkle::{leaf_hash, node_hash, AuthPath, MerkleTree};
use crate::mss::MssSignature;

use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};

/// Domain tag under which batch roots are signed (never raw messages).
const BATCH_DOMAIN: &str = "nonrep.batch.v1";

/// The digest actually signed for a batch with Merkle root `root`.
///
/// Domain separation: a signature over `batch_digest(root)` attests "I
/// committed to this batch of records", and cannot collide with an MSS
/// signature over the SHA-256 of any direct message.
pub fn batch_digest(root: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(BATCH_DOMAIN.as_bytes());
    h.update(root.as_bytes());
    h.finalize()
}

/// The leaf digest committed for a record whose *content digest* is `d`.
///
/// Batch leaves are the [`leaf_hash`] of the record's 32-byte digest, so
/// the accumulator never needs the record bytes themselves.
pub fn batch_leaf(d: &Digest) -> Digest {
    leaf_hash(d.as_bytes())
}

/// One frontier entry: a perfect subtree of `2^height` leaves.
#[derive(Debug, Clone, Copy)]
struct Subtree {
    height: u32,
    root: Digest,
}

/// An incremental Merkle accumulator.
///
/// Push leaf digests as records arrive; read the running [`root`] at any
/// time; [`seal`] the batch into a full [`MerkleTree`] when the
/// commitment is signed. Roots and paths are identical to building a
/// [`MerkleTree`] over the same leaves in one shot (differentially
/// tested).
///
/// [`root`]: MerkleAccumulator::root
/// [`seal`]: MerkleAccumulator::seal
#[derive(Debug, Clone, Default)]
pub struct MerkleAccumulator {
    /// All leaves pushed so far (needed for auth paths at seal time).
    leaves: Vec<Digest>,
    /// Binary-counter frontier: perfect subtrees in strictly decreasing
    /// height order, at most one per height.
    frontier: Vec<Subtree>,
}

impl MerkleAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes an already leaf-hashed digest, returning its leaf index.
    pub fn push(&mut self, leaf: Digest) -> u32 {
        let index = self.leaves.len() as u32;
        self.leaves.push(leaf);
        let mut carry = Subtree {
            height: 0,
            root: leaf,
        };
        while let Some(top) = self.frontier.last() {
            if top.height != carry.height {
                break;
            }
            let top = self.frontier.pop().expect("checked non-empty");
            carry = Subtree {
                height: top.height + 1,
                root: node_hash(&top.root, &carry.root),
            };
        }
        self.frontier.push(carry);
        index
    }

    /// Leaf-hashes `payload` and pushes it, returning its leaf index.
    pub fn push_payload(&mut self, payload: &[u8]) -> u32 {
        self.push(leaf_hash(payload))
    }

    /// Number of leaves pushed so far.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// `true` if no leaf has been pushed.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The current Merkle root over all pushed leaves.
    ///
    /// Folds the frontier right-to-left, promoting the running hash by
    /// self-pairing — exactly [`MerkleTree`]'s duplicate-last padding —
    /// so this equals `MerkleTree::from_leaf_hashes(leaves).root()`
    /// without rebuilding the tree.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn root(&self) -> Digest {
        assert!(!self.leaves.is_empty(), "empty accumulator has no root");
        let mut iter = self.frontier.iter().rev();
        let first = iter.next().expect("non-empty frontier");
        let mut acc = first.root;
        let mut height = first.height;
        for left in iter {
            while height < left.height {
                acc = node_hash(&acc, &acc);
                height += 1;
            }
            acc = node_hash(&left.root, &acc);
            height += 1;
        }
        acc
    }

    /// Seals the batch into a full tree (for authentication paths),
    /// leaving the accumulator empty for the next batch.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is empty.
    pub fn seal(&mut self) -> MerkleTree {
        assert!(!self.leaves.is_empty(), "cannot seal an empty batch");
        self.frontier.clear();
        MerkleTree::from_leaf_hashes(std::mem::take(&mut self.leaves))
    }
}

/// A signature amortized over a batch: one MSS signature on the batch
/// root, plus this record's authentication path to that root.
///
/// Every record of a sealed batch carries the *same* `mss_sig` (over
/// [`batch_digest`] of the root) and its own `auth_path`; verification
/// recomputes the root implied by the record and checks the shared
/// signature against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSignature {
    /// The MSS signature over [`batch_digest`] of the batch root.
    pub mss_sig: MssSignature,
    /// Index of this record's leaf within the batch.
    pub leaf_index: u32,
    /// Number of leaves in the sealed batch.
    pub leaf_count: u32,
    /// Authentication path from this record's leaf to the signed root.
    pub auth_path: AuthPath,
}

impl BatchSignature {
    /// Verifies this batch signature for a record whose content hashes to
    /// `message_digest`, under the MSS key with Merkle root `key_root`.
    pub fn verify(&self, key_root: &Digest, message_digest: &Digest) -> bool {
        let implied = self.auth_path.implied_root(&batch_leaf(message_digest));
        crate::mss::verify(key_root, &batch_digest(&implied), &self.mss_sig)
    }

    /// Serialized size in bytes (space-overhead accounting). The batch
    /// signature adds one auth path per record but shares the MSS
    /// signature bytes across the whole batch on the wire-free local
    /// path; this reports the full standalone encoding.
    pub fn byte_len(&self) -> usize {
        self.mss_sig.byte_len() + 8 + self.auth_path.byte_len()
    }
}

impl Encode for BatchSignature {
    fn encode(&self, w: &mut Writer) {
        self.mss_sig.encode(w);
        w.put_u32(self.leaf_index);
        w.put_u32(self.leaf_count);
        self.auth_path.encode(w);
    }
}

impl Decode for BatchSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            mss_sig: MssSignature::decode(r)?,
            leaf_index: r.get_u32()?,
            leaf_count: r.get_u32()?,
            auth_path: AuthPath::decode(r)?,
        })
    }
}

/// Builds batch leaves for a slice of message digests.
pub fn batch_leaves(digests: &[Digest]) -> Vec<Digest> {
    digests.iter().map(batch_leaf).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::sha256;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n as u32).map(|i| leaf_hash(&i.to_le_bytes())).collect()
    }

    #[test]
    fn incremental_root_matches_tree_for_all_sizes() {
        for n in 1..=33usize {
            let ls = leaves(n);
            let mut acc = MerkleAccumulator::new();
            for (i, l) in ls.iter().enumerate() {
                assert_eq!(acc.push(*l), i as u32);
                // The running root must match a one-shot tree over the
                // prefix at *every* step, not just at the end.
                let tree = MerkleTree::from_leaf_hashes(ls[..=i].to_vec());
                assert_eq!(acc.root(), tree.root(), "n={n} prefix={}", i + 1);
            }
            assert_eq!(acc.len(), n);
        }
    }

    #[test]
    fn seal_produces_equivalent_tree_and_resets() {
        let ls = leaves(11);
        let mut acc = MerkleAccumulator::new();
        for l in &ls {
            acc.push(*l);
        }
        let expected_root = acc.root();
        let tree = acc.seal();
        assert_eq!(tree.root(), expected_root);
        assert_eq!(tree.leaf_count(), 11);
        assert!(acc.is_empty());
        // The accumulator is reusable after sealing.
        acc.push(ls[0]);
        assert_eq!(acc.root(), ls[0]);
    }

    #[test]
    fn push_payload_leaf_hashes() {
        let mut acc = MerkleAccumulator::new();
        acc.push_payload(b"record");
        assert_eq!(acc.root(), leaf_hash(b"record"));
    }

    #[test]
    #[should_panic(expected = "no root")]
    fn empty_root_panics() {
        MerkleAccumulator::new().root();
    }

    #[test]
    fn batch_digest_is_domain_separated() {
        let root = sha256(b"root");
        assert_ne!(batch_digest(&root), root);
        assert_ne!(batch_digest(&root), sha256(root.as_bytes()));
    }

    #[test]
    fn batch_leaves_match_accumulated_tree() {
        let digests: Vec<Digest> = (0..5u8).map(|i| sha256(&[i])).collect();
        let mut acc = MerkleAccumulator::new();
        for leaf in batch_leaves(&digests) {
            acc.push(leaf);
        }
        let tree = MerkleTree::from_leaf_hashes(batch_leaves(&digests));
        assert_eq!(acc.root(), tree.root());
    }

    #[test]
    fn batch_signature_codec_roundtrip() {
        use crate::mss::MssSigner;
        use crate::rng::SecureRandom;
        let mut rng = SecureRandom::from_seed(7);
        let mut signer = MssSigner::generate(3, &mut rng);
        let digests: Vec<Digest> = (0..4u8).map(|i| sha256(&[i])).collect();
        let tree = MerkleTree::from_leaf_hashes(batch_leaves(&digests));
        let sig = signer.sign(&batch_digest(&tree.root())).unwrap();
        let batch = BatchSignature {
            mss_sig: sig,
            leaf_index: 2,
            leaf_count: 4,
            auth_path: tree.auth_path(2),
        };
        let back = BatchSignature::decode_from_slice(&batch.encode_to_vec()).unwrap();
        assert_eq!(back, batch);
        assert!(back.verify(&signer.public_key(), &digests[2]));
        assert!(!back.verify(&signer.public_key(), &digests[1]));
    }
}
