//! A SHA-256-based stream cipher (counter-mode keystream).
//!
//! Used by the offline-TTP fair-exchange protocol: the server sends the
//! response *encrypted* and escrows the key with the TTP, so the client can
//! recover the key from the TTP if the server defects after collecting its
//! receipt. Keystream block `i` is `SHA-256(0x04 ‖ key ‖ i)`; with a
//! fresh random key per protocol run this is a standard PRF-counter
//! construction.

use crate::digest::Sha256;

const STREAM_TAG: u8 = 0x04;

/// XORs `data` with the keystream derived from `key`.
///
/// Encryption and decryption are the same operation.
///
/// # Example
///
/// ```
/// use nonrep_crypto::stream::xor_keystream;
///
/// let key = [7u8; 32];
/// let ct = xor_keystream(&key, b"secret response");
/// assert_ne!(ct, b"secret response");
/// assert_eq!(xor_keystream(&key, &ct), b"secret response");
/// ```
pub fn xor_keystream(key: &[u8; 32], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut counter: u64 = 0;
    let mut block = [0u8; 32];
    let mut block_used = 32usize;
    for &byte in data {
        if block_used == 32 {
            let mut h = Sha256::new();
            h.update(&[STREAM_TAG]);
            h.update(key);
            h.update(&counter.to_le_bytes());
            block = *h.finalize().as_bytes();
            counter += 1;
            block_used = 0;
        }
        out.push(byte ^ block[block_used]);
        block_used += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let key = [1u8; 32];
        let msg = b"the response to your request".to_vec();
        let ct = xor_keystream(&key, &msg);
        assert_ne!(ct, msg);
        assert_eq!(xor_keystream(&key, &ct), msg);
    }

    #[test]
    fn wrong_key_garbles() {
        let ct = xor_keystream(&[1u8; 32], b"hello");
        assert_ne!(xor_keystream(&[2u8; 32], &ct), b"hello");
    }

    #[test]
    fn empty_input() {
        assert!(xor_keystream(&[0u8; 32], b"").is_empty());
    }

    #[test]
    fn long_input_crosses_block_boundaries() {
        let key = [9u8; 32];
        let msg: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        assert_eq!(xor_keystream(&key, &xor_keystream(&key, &msg)), msg);
    }

    #[test]
    fn keystream_blocks_differ() {
        // Encrypting zeros reveals the keystream; successive blocks differ.
        let ks = xor_keystream(&[3u8; 32], &[0u8; 64]);
        assert_ne!(&ks[..32], &ks[32..]);
    }
}
