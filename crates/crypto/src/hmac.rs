//! HMAC-SHA-256 (RFC 2104), verified against RFC 4231 test vectors.

use crate::digest::{mb, Digest, Sha256};

const BLOCK: usize = 64;

/// Expands `key` into its xored inner/outer pad blocks.
fn pad_blocks(key: &[u8]) -> ([u8; BLOCK], [u8; BLOCK]) {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let hashed = crate::digest::sha256(key);
        key_block[..32].copy_from_slice(hashed.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    (ipad, opad)
}

/// Computes HMAC-SHA-256 of `msg` under `key`.
///
/// # Example
///
/// ```
/// use nonrep_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"shared-secret", b"message");
/// assert_eq!(tag, hmac_sha256(b"shared-secret", b"message"));
/// assert_ne!(tag, hmac_sha256(b"other-secret", b"message"));
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    let (ipad, opad) = pad_blocks(key);
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// HMAC-SHA-256 of many *short* (≤ 55-byte) messages under one key,
/// lane-batched: the key's inner and outer pad blocks are compressed
/// once into [`mb::Midstate`]s, then every message's inner and outer
/// finishing blocks run through the multi-buffer engine in lockstep —
/// two batched compressions per message instead of four sequential
/// ones. Bit-identical to mapping [`hmac_sha256`] over `msgs`.
///
/// This is the W-OTS secret-derivation shape: 67 two-byte chain indices
/// MACed under one leaf seed.
///
/// # Panics
///
/// Panics if any message exceeds 55 bytes or `d` is unavailable on
/// this host.
pub fn hmac_short_lanes_with(d: mb::Dispatch, key: &[u8], msgs: &[&[u8]]) -> Vec<Digest> {
    let (ipad, opad) = pad_blocks(key);
    let inner_mid = mb::Midstate::new(&ipad);
    let inner = mb::finish_short_lanes_with(d, &inner_mid, msgs);
    let outer_mid = mb::Midstate::new(&opad);
    let inner_refs: Vec<&[u8]> = inner
        .iter()
        .map(|digest| digest.as_bytes().as_slice())
        .collect();
    mb::finish_short_lanes_with(d, &outer_mid, &inner_refs)
}

/// Constant-time comparison of two digests.
///
/// MAC verification must not leak how many prefix bytes matched.
pub fn verify_mac(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(actual.as_bytes()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn short_lanes_match_sequential_for_every_tier() {
        let key = [0x42u8; 32];
        let msgs: Vec<Vec<u8>> = (0..11u16)
            .map(|i| i.to_le_bytes().to_vec())
            .chain([vec![], vec![7u8; 55]])
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        for tier in mb::Dispatch::all() {
            if !tier.is_available() {
                continue;
            }
            let got = hmac_short_lanes_with(tier, &key, &refs);
            for (msg, tag) in msgs.iter().zip(&got) {
                assert_eq!(*tag, hmac_sha256(&key, msg), "tier {tier:?}");
            }
        }
    }

    #[test]
    fn verify_mac_constant_time_semantics() {
        let a = hmac_sha256(b"k", b"m");
        let b = hmac_sha256(b"k", b"m");
        let c = hmac_sha256(b"k", b"x");
        assert!(verify_mac(&a, &b));
        assert!(!verify_mac(&a, &c));
    }
}
