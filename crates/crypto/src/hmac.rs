//! HMAC-SHA-256 (RFC 2104), verified against RFC 4231 test vectors.

use crate::digest::{Digest, Sha256};

const BLOCK: usize = 64;

/// Computes HMAC-SHA-256 of `msg` under `key`.
///
/// # Example
///
/// ```
/// use nonrep_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"shared-secret", b"message");
/// assert_eq!(tag, hmac_sha256(b"shared-secret", b"message"));
/// assert_ne!(tag, hmac_sha256(b"other-secret", b"message"));
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let hashed = crate::digest::sha256(key);
        key_block[..32].copy_from_slice(hashed.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Constant-time comparison of two digests.
///
/// MAC verification must not leak how many prefix bytes matched.
pub fn verify_mac(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(actual.as_bytes()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_mac_constant_time_semantics() {
        let a = hmac_sha256(b"k", b"m");
        let b = hmac_sha256(b"k", b"m");
        let c = hmac_sha256(b"k", b"x");
        assert!(verify_mac(&a, &b));
        assert!(!verify_mac(&a, &c));
    }
}
