//! The crash kill-point matrix: a journalled party killed at every
//! choreography step of every variant either **resumes to the same
//! facts** as an uninterrupted run or **aborts safely**, and no kill
//! point ever manufactures an accusation against an honest peer.
//!
//! "Kill" means the driving code stops mid-choreography (the session is
//! dropped); the party's evidence log — progress markers included —
//! survives, exactly as a durable log would across a process crash.
//! "Recovery" reopens the log with [`RunJournal::open_runs`] and acts on
//! what it finds:
//!
//! - last completed step < the variant's commitment point → the run is
//!   re-driven from the top (server caches make redelivery idempotent)
//!   or aborted, whichever the recovering party prefers — both are safe
//!   because nothing irrevocable happened yet;
//! - last completed step ≥ the final wire step → the run is materially
//!   complete, recovery just closes and seals it;
//! - a fair *server* recovering with an open receipt window escalates
//!   to the TTP's abort choreography, which is safe precisely because
//!   the receipt never arrived.

use std::sync::Arc;

use nonrep_crypto::digest::sha256;
use nonrep_net::bus::LocalBus;
use nonrep_net::retry::{ReliableRequester, RetryPolicy};
use nonrep_protocols::invocation::direct::{
    DirectChoreography, DirectClient, DirectServerHandler, Step1, Step2, Step3,
};
use nonrep_protocols::invocation::fair_offline::{
    FairChoreography, FairClient, FairServerHandler, FairServerRuntime, FairStep2, KeySource,
    OfflineTtpHandler, ResolveChoreography, ServerConduct, STEP_KEY, STEP_RECEIPT, STEP_RESOLVE,
};
use nonrep_protocols::invocation::inline_ttp::{
    InlineChoreography, InlineStep1, InlineTtpClient, InlineTtpHandler,
};
use nonrep_protocols::invocation::voluntary::{
    VoluntaryChoreography, VoluntaryClient, VoluntaryServerHandler,
};
use nonrep_protocols::invocation::{direct, voluntary};
use nonrep_protocols::party::{Party, StaticKeyDirectory};
use nonrep_protocols::session::{Branch, Client, Session};
use nonrep_protocols::tokens::TokenKind;
use nonrep_protocols::{B2BCoordinator, ExchangeSupervisor, RunJournal};
use nonrep_types::codec::Encode;
use nonrep_types::ids::OrgId;
use nonrep_types::time::LogicalClock;

/// One process-wide fixture: client, server and TTP parties wired over
/// a local bus, with every variant's server handler registered and a
/// journal on the client party.
struct World {
    clock: LogicalClock,
    client_party: Arc<Party>,
    server_party: Arc<Party>,
    client_coord: Arc<B2BCoordinator>,
    journal: Arc<RunJournal>,
    server_journal: Arc<RunJournal>,
    fair_server: Arc<FairServerHandler>,
    ttp_handler: Arc<OfflineTtpHandler>,
    supervisor: Arc<ExchangeSupervisor>,
    server: OrgId,
    ttp: OrgId,
}

const RECEIPT_WINDOW_MS: u64 = 200;

fn world() -> World {
    let bus = LocalBus::new();
    let clock = LogicalClock::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let client_party = Party::quick("client", 1, &clock, &dir);
    let server_party = Party::quick("server", 2, &clock, &dir);
    let ttp_party = Party::quick("ttp", 3, &clock, &dir);
    let supervisor = ExchangeSupervisor::new(Arc::new(clock.clone()));

    let mk = |org: &str| {
        let c = B2BCoordinator::new(
            org,
            ReliableRequester::new(bus.clone(), RetryPolicy::new(4)),
        );
        bus.register(OrgId::new(org), c.clone());
        c
    };
    let client_coord = mk("client");
    let server_coord = mk("server");
    let ttp_coord = mk("ttp");

    let echo = || -> Arc<dyn nonrep_protocols::invocation::RequestExecutor> {
        Arc::new(|_: &OrgId, req: &[u8]| Ok([b"res:".as_slice(), req].concat()))
    };
    server_coord.register_handler(DirectServerHandler::new(server_party.clone(), echo()));
    server_coord.register_handler(VoluntaryServerHandler::new(server_party.clone(), echo()));
    let server_journal = RunJournal::new(server_party.clone());
    let fair_server = FairServerHandler::with_runtime(
        server_party.clone(),
        server_coord.clone(),
        echo(),
        OrgId::new("ttp"),
        ServerConduct::Honest,
        FairServerRuntime {
            supervision: Some((supervisor.clone(), RECEIPT_WINDOW_MS)),
            journal: Some(server_journal.clone()),
        },
    );
    server_coord.register_handler(fair_server.clone());
    let ttp_handler = OfflineTtpHandler::new(ttp_party.clone());
    ttp_coord.register_handler(ttp_handler.clone());
    ttp_coord.register_handler(InlineTtpHandler::terminal(ttp_party, ttp_coord.clone()));

    let journal = RunJournal::new(client_party.clone());
    World {
        clock,
        client_party,
        server_party,
        client_coord,
        journal,
        server_journal,
        fair_server,
        ttp_handler,
        supervisor,
        server: OrgId::new("server"),
        ttp: OrgId::new("ttp"),
    }
}

impl World {
    fn direct_client(&self) -> DirectClient {
        DirectClient::new(self.client_party.clone(), self.client_coord.clone())
            .with_journal(self.journal.clone())
    }

    fn voluntary_client(&self) -> VoluntaryClient {
        VoluntaryClient::new(self.client_party.clone(), self.client_coord.clone())
            .with_journal(self.journal.clone())
    }

    fn inline_client(&self) -> InlineTtpClient {
        InlineTtpClient::new(
            self.client_party.clone(),
            self.client_coord.clone(),
            self.ttp.clone(),
        )
        .with_journal(self.journal.clone())
    }

    fn fair_client(&self) -> FairClient {
        FairClient::new(
            self.client_party.clone(),
            self.client_coord.clone(),
            self.ttp.clone(),
        )
        .with_journal(self.journal.clone())
    }

    /// The single open run the client journal reports, asserting there
    /// is exactly one.
    fn sole_open_run(&self) -> nonrep_protocols::OpenRun {
        let open = self.journal.recovered_open_runs();
        assert_eq!(open.len(), 1, "exactly one in-flight run expected");
        open.into_iter().next().unwrap()
    }

    fn assert_recovered_clean(&self) {
        assert!(
            self.journal.recovered_open_runs().is_empty(),
            "recovery must leave no open runs"
        );
        self.client_party.log().verify().unwrap();
    }
}

// ---------------------------------------------------------------- direct

#[test]
fn direct_killed_after_step1_resumes_to_the_same_facts() {
    let w = world();
    let client = w.direct_client();
    // Control: an uninterrupted run.
    let control = client
        .invoke_with(w.client_party.new_run_id(), &w.server, b"req".to_vec())
        .unwrap();

    // Crash run: the step-1/2 round completes, then the process dies
    // before the receipt is sent.
    let run = w.client_party.new_run_id();
    let engine = client.engine();
    let session = engine.session::<Client, DirectChoreography>(run);
    let nro_req = engine
        .issue_and_store(TokenKind::NroReq, run, sha256(b"req"))
        .unwrap();
    let (_msg2, session) = session
        .call(
            &w.server,
            Step1 {
                request: b"req".to_vec(),
                nro_req,
            }
            .encode_to_vec(),
        )
        .unwrap();
    drop(session); // crash

    // Recovery: the journal shows the run open at step 1; before the
    // receipt is committed a re-drive is safe — the server's run cache
    // replays step 2 instead of re-executing.
    let open = w.sole_open_run();
    assert_eq!(open.run, run);
    assert_eq!(open.last_step, 1);
    assert_eq!(open.variant.as_str(), direct::PROTOCOL_ID);
    let recovered = client.invoke_with(run, &w.server, b"req".to_vec()).unwrap();
    assert_eq!(recovered.response, control.response);
    assert_eq!(recovered.nrr_req.kind, TokenKind::NrrReq);
    assert!(recovered.receipt_acked);
    w.assert_recovered_clean();
}

#[test]
fn direct_killed_after_step3_closes_on_recovery() {
    let w = world();
    let client = w.direct_client();
    let run = w.client_party.new_run_id();
    let engine = client.engine();
    let session = engine.session::<Client, DirectChoreography>(run);
    let req_digest = sha256(b"req");
    let nro_req = engine
        .issue_and_store(TokenKind::NroReq, run, req_digest)
        .unwrap();
    let (msg2, session) = session
        .call(
            &w.server,
            Step1 {
                request: b"req".to_vec(),
                nro_req,
            }
            .encode_to_vec(),
        )
        .unwrap();
    let step2: Step2 = engine.decode_body(&msg2.body).unwrap();
    engine
        .absorb(&step2.nrr_req, TokenKind::NrrReq, run, Some(&req_digest))
        .unwrap();
    let resp_digest = sha256(&step2.response.encode_to_vec());
    engine
        .absorb(&step2.nro_resp, TokenKind::NroResp, run, Some(&resp_digest))
        .unwrap();
    let nrr_resp = engine
        .issue_and_store(TokenKind::NrrResp, run, resp_digest)
        .unwrap();
    let (_acked, session) = session
        .call_lossy(&w.server, Step3 { nrr_resp }.encode_to_vec())
        .unwrap();
    drop(session); // crash before the seal

    // Recovery: the final wire step completed — the evidence set is
    // whole, the run just closes.
    let open = w.sole_open_run();
    assert_eq!(open.last_step, 3);
    client.engine().journal_close(run, 3).unwrap();
    client.engine().seal_run().unwrap();
    w.assert_recovered_clean();
    // The server saw the receipt: no party has grounds to accuse.
    assert!(w
        .server_party
        .log()
        .by_run(&run)
        .iter()
        .any(|r| r.draft.kind == TokenKind::NrrResp.label()));
}

// ------------------------------------------------------------- voluntary

#[test]
fn voluntary_killed_after_its_single_round_closes_on_recovery() {
    let w = world();
    let client = w.voluntary_client();
    let run = w.client_party.new_run_id();
    let engine = client.engine();
    let session = engine.session::<Client, VoluntaryChoreography>(run);
    let nro_req = engine
        .issue_and_store(TokenKind::NroReq, run, sha256(b"req"))
        .unwrap();
    let (_msg2, session) = session
        .call_open(
            &w.server,
            Step1 {
                request: b"req".to_vec(),
                nro_req,
            }
            .encode_to_vec(),
        )
        .unwrap();
    drop(session); // crash before the seal

    let open = w.sole_open_run();
    assert_eq!(open.last_step, 1);
    assert_eq!(open.variant.as_str(), voluntary::PROTOCOL_ID);
    client.engine().journal_close(run, 1).unwrap();
    client.engine().seal_run().unwrap();
    w.assert_recovered_clean();
}

#[test]
fn voluntary_killed_before_any_step_leaves_nothing_behind() {
    // The degenerate kill point: the process died before any wire step
    // completed. No journal entry, no open run, nothing to recover.
    let w = world();
    let client = w.voluntary_client();
    let run = w.client_party.new_run_id();
    let engine = client.engine();
    let session = engine.session::<Client, VoluntaryChoreography>(run);
    let _nro_req = engine
        .issue_and_store(TokenKind::NroReq, run, sha256(b"req"))
        .unwrap();
    drop(session); // crash before step 1 even went out
    assert!(w.journal.recovered_open_runs().is_empty());
    // The issued token is still in the tamper-evident log — a dangling
    // NRO_req accuses nobody.
    w.client_party.log().verify().unwrap();
}

// ------------------------------------------------------------ inline TTP

#[test]
fn inline_killed_after_its_relayed_round_closes_on_recovery() {
    let w = world();
    let client = w.inline_client();
    let run = w.client_party.new_run_id();
    let engine = client.engine();
    let session = engine.session::<Client, InlineChoreography>(run);
    let nro_req = engine
        .issue_and_store(TokenKind::NroReq, run, sha256(b"req"))
        .unwrap();
    let (_msg2, session) = session
        .call_relayed(
            &w.ttp,
            InlineStep1 {
                server: w.server.clone(),
                request: b"req".to_vec(),
                nro_req,
            }
            .encode_to_vec(),
        )
        .unwrap();
    drop(session); // crash before the seal

    let open = w.sole_open_run();
    assert_eq!(open.last_step, 1);
    client.engine().journal_close(run, 1).unwrap();
    client.engine().seal_run().unwrap();
    w.assert_recovered_clean();
}

// ---------------------------------------------------------- fair client

#[test]
fn fair_client_killed_before_receipt_aborts_with_no_accusation() {
    // Killed after the step-1/2 round but before committing the
    // receipt: the commitment point was never crossed, so recovery
    // declines to resume and closes the run. Nobody can be accused —
    // and the *server's* supervisor independently reclaims its side.
    let w = world();
    let client = w.fair_client();
    let run = w.client_party.new_run_id();
    // invoke_stalling is exactly "drive to step 2 and die".
    client
        .invoke_stalling(run, &w.server, b"req".to_vec())
        .unwrap();

    let open = w.sole_open_run();
    assert_eq!(open.run, run);
    assert_eq!(open.last_step, 1);
    client.engine().journal_abort(run, STEP_RECEIPT).unwrap();
    w.assert_recovered_clean();

    // The server's receipt window expires; its supervisor aborts at the
    // TTP. No NRR_resp ever reached it, so no false accusation arises.
    w.clock.advance(RECEIPT_WINDOW_MS);
    let reports = w.supervisor.sweep();
    assert_eq!(reports.len(), 1);
    assert!(w.ttp_handler.is_aborted(&run));
    let server_records = w.server_party.log().by_run(&run);
    assert!(!server_records.iter().any(
        |r| r.draft.kind == TokenKind::NrrResp.label() && r.draft.actor == OrgId::new("client")
    ));
}

#[test]
fn fair_client_killed_after_key_arrival_closes_on_recovery() {
    let w = world();
    let client = w.fair_client();
    let run = w.client_party.new_run_id();
    let engine = client.engine();
    let session = engine.session::<Client, FairChoreography>(run);
    let req_digest = sha256(b"req");
    let nro_req = engine
        .issue_and_store(TokenKind::NroReq, run, req_digest)
        .unwrap();
    let (msg2, session) = session
        .call(
            &w.server,
            Step1 {
                request: b"req".to_vec(),
                nro_req,
            }
            .encode_to_vec(),
        )
        .unwrap();
    let step2: FairStep2 = engine.decode_body(&msg2.body).unwrap();
    engine
        .absorb(&step2.nrr_req, TokenKind::NrrReq, run, Some(&req_digest))
        .unwrap();
    engine
        .absorb(
            &step2.nro_resp,
            TokenKind::NroResp,
            run,
            Some(&step2.resp_digest),
        )
        .unwrap();
    let nrr_resp = engine
        .issue_and_store(TokenKind::NrrResp, run, step2.resp_digest)
        .unwrap();
    let branch: Branch<Client, _, _> = session
        .call_or(&w.server, nrr_resp.encode_to_vec(), |m| m.body.len() == 32)
        .unwrap();
    let session: Session<Client, nonrep_protocols::session::End> = match branch {
        Branch::Primary(_msg4, s) => s,
        Branch::Diverted(_) => panic!("honest server must deliver the key"),
    };
    drop(session); // crash after the key arrived, before the seal

    let open = w.sole_open_run();
    assert_eq!(open.last_step, STEP_RECEIPT);
    client.engine().journal_close(run, STEP_KEY).unwrap();
    client.engine().seal_run().unwrap();
    w.assert_recovered_clean();
    // Both items changed hands before the kill: receipt at the server,
    // key at the client — fairness held through the crash.
    assert!(w.fair_server.receipt_received(&run));
}

#[test]
fn fair_client_killed_mid_resolve_still_holds_the_conviction() {
    // Crash inside the dispute sub-protocol, after the TTP answered but
    // before the seal: the Decision token is already in the log, so
    // recovery closes the run and the conviction survives.
    let w = world();
    // A second, defecting fair server on its own org.
    let bus_server = {
        let dir_entry = w.client_party.key_of(&w.server).is_ok();
        assert!(dir_entry);
        &w.server
    };
    let _ = bus_server;
    let w2 = {
        // Rebuild a world whose fair server withholds the key.
        let bus = LocalBus::new();
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let client_party = Party::quick("client", 1, &clock, &dir);
        let server_party = Party::quick("server", 2, &clock, &dir);
        let ttp_party = Party::quick("ttp", 3, &clock, &dir);
        let mk = |org: &str| {
            let c = B2BCoordinator::new(
                org,
                ReliableRequester::new(bus.clone(), RetryPolicy::new(4)),
            );
            bus.register(OrgId::new(org), c.clone());
            c
        };
        let client_coord = mk("client");
        let server_coord = mk("server");
        let ttp_coord = mk("ttp");
        server_coord.register_handler(FairServerHandler::new(
            server_party.clone(),
            server_coord.clone(),
            Arc::new(|_: &OrgId, req: &[u8]| Ok([b"res:".as_slice(), req].concat())),
            OrgId::new("ttp"),
            ServerConduct::WithholdKey,
        ));
        let ttp_handler = OfflineTtpHandler::new(ttp_party);
        ttp_coord.register_handler(ttp_handler);
        let journal = RunJournal::new(client_party.clone());
        (
            FairClient::new(client_party.clone(), client_coord, OrgId::new("ttp"))
                .with_journal(journal.clone()),
            client_party,
            journal,
            server_party,
        )
    };
    let (client, client_party, journal, _server_party) = w2;

    let run = client_party.new_run_id();
    let engine = client.engine();
    let session = engine.session::<Client, FairChoreography>(run);
    let req_digest = sha256(b"req");
    let nro_req = engine
        .issue_and_store(TokenKind::NroReq, run, req_digest)
        .unwrap();
    let (msg2, session) = session
        .call(
            &OrgId::new("server"),
            Step1 {
                request: b"req".to_vec(),
                nro_req,
            }
            .encode_to_vec(),
        )
        .unwrap();
    let step2: FairStep2 = engine.decode_body(&msg2.body).unwrap();
    let nrr_resp = engine
        .issue_and_store(TokenKind::NrrResp, run, step2.resp_digest)
        .unwrap();
    // The withholding server answers step 3 with a useless frame → the
    // session diverts into the dispute sub-protocol.
    let branch: Branch<Client, _, _> = session
        .call_or(&OrgId::new("server"), nrr_resp.encode_to_vec(), |m| {
            m.body.len() == 32
        })
        .unwrap();
    let dispute: Session<Client, ResolveChoreography> = match branch {
        Branch::Diverted(d) => d,
        Branch::Primary(..) => panic!("withholding server must not deliver the key"),
    };
    let (_reply, session) = dispute
        .call_open(&OrgId::new("ttp"), nrr_resp.encode_to_vec())
        .unwrap();
    drop(session); // crash after the TTP resolved, before the seal

    let open = journal.recovered_open_runs();
    assert_eq!(open.len(), 1);
    assert_eq!(open[0].last_step, STEP_RESOLVE);
    engine.journal_close(run, STEP_RESOLVE).unwrap();
    engine.seal_run().unwrap();
    assert!(journal.recovered_open_runs().is_empty());
    client_party.log().verify().unwrap();
}

// ---------------------------------------------------------- fair server

#[test]
fn fair_server_recovering_an_open_receipt_window_aborts_safely() {
    // The server crashes after step 2 went out (receipt window open,
    // supervisor state lost with the process). On reopen its journal
    // shows the run in flight; recovery escalates to the TTP's abort
    // choreography rather than waiting on a receipt that may never
    // come — safe, because the receipt never arrived.
    let w = world();
    let client = w.fair_client();
    let run = w.client_party.new_run_id();
    client
        .invoke_stalling(run, &w.server, b"req".to_vec())
        .unwrap();

    // "Restart": read the server journal as a fresh process would.
    let open = w.server_journal.recovered_open_runs();
    assert_eq!(open.len(), 1);
    assert_eq!(open[0].run, run);
    // Recovery action: abort at the TTP (journal_abort inside closes
    // the server's journal entry and seals).
    w.fair_server.abort(run).unwrap();
    assert!(w.ttp_handler.is_aborted(&run));
    assert!(w.server_journal.recovered_open_runs().is_empty());
    w.server_party.log().verify().unwrap();

    // No false accusation: Abort present, client NRR_resp absent.
    let records = w.server_party.log().by_run(&run);
    assert!(records
        .iter()
        .any(|r| r.draft.kind == TokenKind::Abort.label()));
    assert!(!records.iter().any(
        |r| r.draft.kind == TokenKind::NrrResp.label() && r.draft.actor == OrgId::new("client")
    ));
}

#[test]
fn fair_recovery_composes_with_a_full_honest_rerun() {
    // After a crash-and-abort cycle the parties are not poisoned: a
    // fresh run between the same parties completes normally.
    let w = world();
    let client = w.fair_client();
    let crashed = w.client_party.new_run_id();
    client
        .invoke_stalling(crashed, &w.server, b"req".to_vec())
        .unwrap();
    client
        .engine()
        .journal_abort(crashed, STEP_RECEIPT)
        .unwrap();
    w.clock.advance(RECEIPT_WINDOW_MS);
    assert_eq!(w.supervisor.sweep().len(), 1);

    let out = client
        .invoke_with(w.client_party.new_run_id(), &w.server, b"again".to_vec())
        .unwrap();
    assert_eq!(out.key_source, KeySource::Server);
    w.assert_recovered_clean();
}

#[test]
fn all_variant_traces_have_kill_coverage() {
    // Structural guard: the matrix above kills at every wire step the
    // four client choreographies can take. If a choreography grows a
    // step, this inventory breaks before the matrix silently thins.
    use nonrep_protocols::session::State;
    let step_counts: Vec<usize> = DirectChoreography::traces()
        .iter()
        .chain(VoluntaryChoreography::traces().iter())
        .chain(InlineChoreography::traces().iter())
        .chain(FairChoreography::traces().iter())
        .map(Vec::len)
        .collect();
    // direct: one 2-step trace; voluntary/inline: one 1-step trace
    // each; fair: the 2-step primary and 3-step dispute traces.
    assert_eq!(step_counts, vec![2, 1, 1, 2, 3]);
}
