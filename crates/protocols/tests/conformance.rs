//! Conformance suite generated from the session types.
//!
//! For every protocol variant the *choreography type* is the source of
//! truth: each test enumerates [`State::traces`] and, for every legal
//! trace, drives a live multi-party fixture configured to elicit exactly
//! that trace, then asserts the evidence records the run must leave in
//! each participant's log. Adding a state to a choreography makes the
//! corresponding test fail ("no conformance driver for trace …") until a
//! driver and an evidence expectation exist for the new trace — the
//! suite is generated from the types, not maintained in parallel with
//! them.

use std::sync::Arc;

use nonrep_net::bus::LocalBus;
use nonrep_net::retry::{ReliableRequester, RetryPolicy};
use nonrep_protocols::invocation::direct::{DirectChoreography, DirectClient, DirectServerHandler};
use nonrep_protocols::invocation::fair_offline::{
    FairChoreography, FairClient, FairServerHandler, KeySource, OfflineTtpHandler,
    ResolveChoreography, ServerConduct, STEP_RECEIPT, STEP_REQUEST, STEP_RESOLVE,
};
use nonrep_protocols::invocation::inline_ttp::{
    InlineChoreography, InlineTtpClient, InlineTtpHandler, RelayChoreography,
};
use nonrep_protocols::invocation::voluntary::{
    VoluntaryChoreography, VoluntaryClient, VoluntaryServerHandler,
};
use nonrep_protocols::invocation::{RequestExecutor, ServerResponse};
use nonrep_protocols::party::{Party, StaticKeyDirectory};
use nonrep_protocols::session::{State, TraceStep, WireMode};
use nonrep_protocols::tokens::{defection_digest, NrToken, TokenKind};
use nonrep_protocols::B2BCoordinator;
use nonrep_types::codec::Decode;
use nonrep_types::ids::{OrgId, RunId};
use nonrep_types::time::LogicalClock;

/// A three-party fixture (client, server, offline/inline TTP) with every
/// variant's server-side handler registered.
struct World {
    client_party: Arc<Party>,
    server_party: Arc<Party>,
    ttp_party: Arc<Party>,
    client_coord: Arc<B2BCoordinator>,
    ttp_handler: Arc<OfflineTtpHandler>,
    server: OrgId,
    ttp: OrgId,
}

fn world(conduct: ServerConduct) -> World {
    let bus = LocalBus::new();
    let clock = LogicalClock::new();
    let dir = Arc::new(StaticKeyDirectory::new());
    let client_party = Party::quick("client", 1, &clock, &dir);
    let server_party = Party::quick("server", 2, &clock, &dir);
    let ttp_party = Party::quick("ttp", 3, &clock, &dir);
    let coord = |name: &str| {
        B2BCoordinator::new(
            name,
            ReliableRequester::new(bus.clone(), RetryPolicy::new(4)),
        )
    };
    let client_coord = coord("client");
    let server_coord = coord("server");
    let ttp_coord = coord("ttp");
    let executor: Arc<dyn RequestExecutor> =
        Arc::new(|_: &OrgId, req: &[u8]| Ok([b"res:".as_slice(), req].concat()));
    server_coord.register_handler(DirectServerHandler::new(
        server_party.clone(),
        executor.clone(),
    ));
    server_coord.register_handler(VoluntaryServerHandler::new(
        server_party.clone(),
        executor.clone(),
    ));
    server_coord.register_handler(FairServerHandler::new(
        server_party.clone(),
        server_coord.clone(),
        executor,
        OrgId::new("ttp"),
        conduct,
    ));
    ttp_coord.register_handler(InlineTtpHandler::terminal(
        ttp_party.clone(),
        ttp_coord.clone(),
    ));
    let ttp_handler = OfflineTtpHandler::new(ttp_party.clone());
    ttp_coord.register_handler(ttp_handler.clone());
    bus.register(OrgId::new("client"), client_coord.clone());
    bus.register(OrgId::new("server"), server_coord);
    bus.register(OrgId::new("ttp"), ttp_coord);
    World {
        client_party,
        server_party,
        ttp_party,
        client_coord,
        ttp_handler,
        server: OrgId::new("server"),
        ttp: OrgId::new("ttp"),
    }
}

/// The record kinds `party` logged for `run`, in log order.
fn kinds(party: &Party, run: RunId) -> Vec<String> {
    party
        .log()
        .by_run(&run)
        .iter()
        .map(|r| r.draft.kind.clone())
        .collect()
}

fn labels(kinds: &[TokenKind]) -> Vec<String> {
    kinds.iter().map(|k| k.label().to_string()).collect()
}

#[test]
fn direct_conformance_covers_every_legal_trace() {
    let traces = DirectChoreography::traces();
    assert_eq!(
        traces,
        vec![vec![
            TraceStep::new(1, 2, WireMode::Signed),
            TraceStep::new(3, 4, WireMode::Lossy),
        ]]
    );
    for trace in traces {
        let steps: Vec<u32> = trace.iter().map(|t| t.step).collect();
        match steps.as_slice() {
            [1, 3] => {
                let w = world(ServerConduct::Honest);
                let client = DirectClient::new(w.client_party.clone(), w.client_coord.clone());
                let out = client.invoke(&w.server, b"req".to_vec()).unwrap();
                assert!(out.receipt_acked);
                assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
                // Both sides hold the complete §3.2 evidence set.
                let expected = labels(&[
                    TokenKind::NroReq,
                    TokenKind::NrrReq,
                    TokenKind::NroResp,
                    TokenKind::NrrResp,
                ]);
                assert_eq!(kinds(&w.client_party, out.run_id), expected);
                assert_eq!(kinds(&w.server_party, out.run_id), expected);
            }
            other => panic!("no conformance driver for direct trace {other:?}"),
        }
    }
}

#[test]
fn voluntary_conformance_covers_every_legal_trace() {
    let traces = VoluntaryChoreography::traces();
    assert_eq!(traces, vec![vec![TraceStep::new(1, 2, WireMode::Open)]]);
    for trace in traces {
        let steps: Vec<u32> = trace.iter().map(|t| t.step).collect();
        match steps.as_slice() {
            [1] => {
                let w = world(ServerConduct::Honest);
                let client = VoluntaryClient::new(w.client_party.clone(), w.client_coord.clone());
                let out = client.invoke(&w.server, b"req".to_vec()).unwrap();
                assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
                // The voluntary baseline leaves exactly one token on each
                // side: the client's NRO, nothing from the server.
                let expected = labels(&[TokenKind::NroReq]);
                assert_eq!(kinds(&w.client_party, out.run_id), expected);
                assert_eq!(kinds(&w.server_party, out.run_id), expected);
            }
            other => panic!("no conformance driver for voluntary trace {other:?}"),
        }
    }
}

#[test]
fn inline_ttp_conformance_covers_every_legal_trace() {
    // Client leg and the TTP's relay leg are separate (per-role)
    // choreographies of the same protocol.
    assert_eq!(
        RelayChoreography::traces(),
        vec![vec![TraceStep::new(1, 2, WireMode::Forwarded)]]
    );
    let traces = InlineChoreography::traces();
    assert_eq!(traces, vec![vec![TraceStep::new(1, 2, WireMode::Relayed)]]);
    for trace in traces {
        let steps: Vec<u32> = trace.iter().map(|t| t.step).collect();
        match steps.as_slice() {
            [1] => {
                let w = world(ServerConduct::Honest);
                let client = InlineTtpClient::new(
                    w.client_party.clone(),
                    w.client_coord.clone(),
                    w.ttp.clone(),
                );
                let out = client.invoke(&w.server, b"req".to_vec()).unwrap();
                assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
                // Two TTP receipts (request + response), both bound to
                // the outer run alongside the client's NRO.
                assert_eq!(out.receipts.len(), 2);
                let expected = labels(&[
                    TokenKind::NroReq,
                    TokenKind::TtpReceipt,
                    TokenKind::TtpReceipt,
                ]);
                assert_eq!(kinds(&w.client_party, out.run_id), expected);
                assert_eq!(kinds(&w.ttp_party, out.run_id), expected);
                // The TTP↔server inner leg ran the full direct exchange.
                assert_eq!(w.server_party.log().len(), 4);
            }
            other => panic!("no conformance driver for inline-ttp trace {other:?}"),
        }
    }
}

#[test]
fn fair_offline_conformance_covers_every_legal_trace() {
    // The dispute sub-choreography is one open resolve round at the TTP.
    assert_eq!(
        ResolveChoreography::traces(),
        vec![vec![TraceStep::new(20, 21, WireMode::Open)]]
    );
    let traces = FairChoreography::traces();
    assert_eq!(traces.len(), 2, "primary path and dispute path");
    for trace in traces {
        let steps: Vec<u32> = trace.iter().map(|t| t.step).collect();
        match steps.as_slice() {
            // Primary path: the server sends the key at step 4.
            [STEP_REQUEST, STEP_RECEIPT] => {
                let w = world(ServerConduct::Honest);
                let client = FairClient::new(
                    w.client_party.clone(),
                    w.client_coord.clone(),
                    w.ttp.clone(),
                );
                let out = client.invoke(&w.server, b"req".to_vec()).unwrap();
                assert_eq!(out.key_source, KeySource::Server);
                assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
                let expected = labels(&[
                    TokenKind::NroReq,
                    TokenKind::NrrReq,
                    TokenKind::NroResp,
                    TokenKind::Escrow,
                    TokenKind::NrrResp,
                ]);
                assert_eq!(kinds(&w.client_party, out.run_id), expected);
                // No dispute: the TTP never resolved the run and no
                // decision exists anywhere.
                assert!(!w.ttp_handler.is_resolved(&out.run_id));
                assert!(!kinds(&w.client_party, out.run_id)
                    .contains(&TokenKind::Decision.label().to_string()));
            }
            // Dispute path: the server withholds the key; the client
            // resolves at the TTP and walks away with the key *and* the
            // TTP's signed decision against the defector.
            [STEP_REQUEST, STEP_RECEIPT, STEP_RESOLVE] => {
                let w = world(ServerConduct::WithholdKey);
                let client = FairClient::new(
                    w.client_party.clone(),
                    w.client_coord.clone(),
                    w.ttp.clone(),
                );
                let out = client.invoke(&w.server, b"req".to_vec()).unwrap();
                assert_eq!(out.key_source, KeySource::TtpResolve);
                assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
                let expected = labels(&[
                    TokenKind::NroReq,
                    TokenKind::NrrReq,
                    TokenKind::NroResp,
                    TokenKind::Escrow,
                    TokenKind::NrrResp,
                    TokenKind::Decision,
                    TokenKind::Resolve,
                ]);
                assert_eq!(kinds(&w.client_party, out.run_id), expected);
                assert!(w.ttp_handler.is_resolved(&out.run_id));
                // The decision is ledger-free evidence: any verifier can
                // recompute its subject from (accused, run) and check the
                // TTP's signature.
                let records = w.client_party.log().by_run(&out.run_id);
                let decision = records
                    .iter()
                    .find(|r| r.draft.kind == TokenKind::Decision.label())
                    .expect("client logged the TTP decision");
                assert_eq!(
                    decision.draft.content_digest,
                    defection_digest(&w.server, out.run_id)
                );
                let token = NrToken::decode_from_slice(&decision.draft.payload).unwrap();
                let ttp_key = w.client_party.key_of(&w.ttp).unwrap();
                assert!(token.verify(
                    &ttp_key,
                    Some(TokenKind::Decision),
                    Some(out.run_id),
                    Some(&defection_digest(&w.server, out.run_id)),
                ));
            }
            other => panic!("no conformance driver for fair-offline trace {other:?}"),
        }
    }
}
