//! Protocol messages.
//!
//! [`ProtocolMessage`] is the Rust rendering of the paper's
//! `B2BProtocolMessage` (§4.1): "an interface to information common to
//! non-repudiation protocol messages — request (protocol run) identifier,
//! sender, protocol step, signed content, payload etc." Step-specific
//! content lives in `body` (canonically encoded by each protocol); the
//! optional signature covers the whole frame.

use nonrep_crypto::digest::{sha256, Digest};
use nonrep_crypto::sig::{Signature, VerifyingKey};
use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};
use nonrep_types::ids::{OrgId, ProtocolId, RunId};

/// A framed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolMessage {
    /// Which protocol this message belongs to.
    pub protocol: ProtocolId,
    /// The protocol run it is part of.
    pub run_id: RunId,
    /// Step number within the run (1-based).
    pub step: u32,
    /// The sending organisation.
    pub sender: OrgId,
    /// Step-specific encoded content.
    pub body: Vec<u8>,
    /// Optional sender signature over the frame.
    pub signature: Option<Signature>,
}

impl ProtocolMessage {
    /// Creates an unsigned message.
    pub fn new(
        protocol: impl Into<ProtocolId>,
        run_id: RunId,
        step: u32,
        sender: impl Into<OrgId>,
        body: Vec<u8>,
    ) -> Self {
        Self {
            protocol: protocol.into(),
            run_id,
            step,
            sender: sender.into(),
            body,
            signature: None,
        }
    }

    /// The bytes covered by the frame signature.
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("nonrep.pmsg.v1");
        self.protocol.encode(&mut w);
        self.run_id.encode(&mut w);
        w.put_u32(self.step);
        self.sender.encode(&mut w);
        w.put_bytes(&self.body);
        w.into_vec()
    }

    /// Digest of the signed frame (for evidence records).
    pub fn frame_digest(&self) -> Digest {
        sha256(&self.signed_bytes())
    }

    /// Signs the frame with `keys` (builder).
    ///
    /// # Errors
    ///
    /// Returns [`nonrep_crypto::sig::SignError`] if the key is exhausted.
    pub fn signed(
        mut self,
        keys: &nonrep_crypto::sig::KeyPair,
    ) -> Result<Self, nonrep_crypto::sig::SignError> {
        self.signature = Some(keys.sign(&self.signed_bytes())?);
        Ok(self)
    }

    /// Verifies the frame signature under `key`.
    ///
    /// Returns `false` if the message is unsigned.
    pub fn verify_frame(&self, key: &VerifyingKey) -> bool {
        match &self.signature {
            Some(sig) => key.verify(&self.signed_bytes(), sig),
            None => false,
        }
    }

    /// Serialized size in bytes (communication-overhead accounting).
    pub fn byte_len(&self) -> usize {
        self.encode_to_vec().len()
    }
}

impl Encode for ProtocolMessage {
    fn encode(&self, w: &mut Writer) {
        self.protocol.encode(w);
        self.run_id.encode(w);
        w.put_u32(self.step);
        self.sender.encode(w);
        w.put_bytes(&self.body);
        self.signature.encode(w);
    }
}

impl Decode for ProtocolMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            protocol: ProtocolId::decode(r)?,
            run_id: RunId::decode(r)?,
            step: r.get_u32()?,
            sender: OrgId::decode(r)?,
            body: r.get_bytes()?.to_vec(),
            signature: Option::<Signature>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonrep_crypto::rng::SecureRandom;
    use nonrep_crypto::sig::{KeyPair, SignatureScheme};

    fn keys(seed: u64) -> KeyPair {
        KeyPair::generate(
            SignatureScheme::Mss { height: 2 },
            &mut SecureRandom::from_seed(seed),
        )
    }

    fn msg() -> ProtocolMessage {
        ProtocolMessage::new(
            "direct",
            RunId::from_u128(5),
            1,
            "client",
            b"payload".to_vec(),
        )
    }

    #[test]
    fn sign_and_verify_frame() {
        let kp = keys(1);
        let m = msg().signed(&kp).unwrap();
        assert!(m.verify_frame(&kp.verifying_key()));
        assert!(
            !msg().verify_frame(&kp.verifying_key()),
            "unsigned frame must not verify"
        );
    }

    #[test]
    fn tampered_fields_break_signature() {
        let kp = keys(2);
        let signed = msg().signed(&kp).unwrap();
        for tamper in 0..4 {
            let mut m = signed.clone();
            match tamper {
                0 => m.step = 99,
                1 => m.sender = OrgId::new("mallory"),
                2 => m.body = b"forged".to_vec(),
                _ => m.run_id = RunId::from_u128(6),
            }
            assert!(
                !m.verify_frame(&kp.verifying_key()),
                "tamper {tamper} passed"
            );
        }
    }

    #[test]
    fn codec_roundtrip_signed_and_unsigned() {
        let kp = keys(3);
        for m in [msg(), msg().signed(&kp).unwrap()] {
            let back = ProtocolMessage::decode_from_slice(&m.encode_to_vec()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn frame_digest_is_stable_and_signature_independent() {
        let kp = keys(4);
        let unsigned = msg();
        let signed = msg().signed(&kp).unwrap();
        assert_eq!(unsigned.frame_digest(), signed.frame_digest());
    }

    #[test]
    fn byte_len_counts_encoding() {
        let m = msg();
        assert_eq!(m.byte_len(), m.encode_to_vec().len());
    }
}
