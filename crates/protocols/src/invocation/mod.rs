//! NR-Invocation protocols.
//!
//! All variants exchange the same *logical* evidence set from §3.2 —
//! `NRO_req`, `NRR_req`, `NRO_resp`, `NRR_resp` — but differ in who signs,
//! who relays, and what happens when a party defects:
//!
//! | module | trust model | messages | evidence held by client |
//! |---|---|---|---|
//! | [`voluntary`] | server trusts client's NRO only (ref \[23\] baseline) | 2 | none |
//! | [`direct`] | direct trust domain (Fig 3c) | 3 (+ack) | NRR_req, NRO_resp |
//! | [`inline_ttp`] | inline TTP(s) relay everything (Fig 3a/b) | 2×hops | TTP receipts |
//! | [`fair_offline`] | offline TTP for resolve/abort | 4 (+TTP) | key or TTP resolution |

pub mod direct;
pub mod fair_offline;
pub mod inline_ttp;
pub mod voluntary;

use std::collections::HashMap;

use parking_lot::Mutex;

use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};
use nonrep_types::ids::{OrgId, RunId};

use crate::message::ProtocolMessage;

/// Executes the actual application request on the server side once the
/// protocol says it should run.
///
/// In a full deployment this is the container invoking the component
/// ("the client's request is actually passed through the interceptor chain
/// to the EJB component for execution", §4.2); tests use closures.
pub trait RequestExecutor: Send + Sync {
    /// Executes `request` on behalf of `caller`, returning the encoded
    /// result.
    ///
    /// # Errors
    ///
    /// A human-readable business failure, which becomes
    /// [`ServerResponse::Failed`] — itself evidenced, as §3.2 requires
    /// ("interceptor-generated evidence that the request failed").
    fn execute(&self, caller: &OrgId, request: &[u8]) -> Result<Vec<u8>, String>;
}

impl<F> RequestExecutor for F
where
    F: Fn(&OrgId, &[u8]) -> Result<Vec<u8>, String> + Send + Sync,
{
    fn execute(&self, caller: &OrgId, request: &[u8]) -> Result<Vec<u8>, String> {
        self(caller, request)
    }
}

/// The server-side result carried in step 2.
///
/// §3.2: "resp is either the result of normal execution of the request at
/// the server or interceptor-generated evidence that the request failed".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerResponse {
    /// The request executed; payload is the encoded result.
    Executed(Vec<u8>),
    /// The request was delivered but execution failed.
    Failed(String),
}

impl ServerResponse {
    /// `true` if the request executed successfully.
    pub fn is_executed(&self) -> bool {
        matches!(self, ServerResponse::Executed(_))
    }
}

impl Encode for ServerResponse {
    fn encode(&self, w: &mut Writer) {
        match self {
            ServerResponse::Executed(bytes) => {
                w.put_u8(0);
                w.put_bytes(bytes);
            }
            ServerResponse::Failed(msg) => {
                w.put_u8(1);
                w.put_str(msg);
            }
        }
    }
}

impl Decode for ServerResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(ServerResponse::Executed(r.get_bytes()?.to_vec())),
            1 => Ok(ServerResponse::Failed(r.get_string()?)),
            tag => Err(CodecError::InvalidTag {
                ty: "ServerResponse",
                tag,
            }),
        }
    }
}

/// Per-run server state: caches the step-2 response for idempotent retries
/// (at-most-once semantics, §3.2) and tracks receipt arrival.
#[derive(Debug, Default)]
pub struct RunRegistry {
    runs: Mutex<HashMap<RunId, RunEntry>>,
}

#[derive(Debug, Clone)]
struct RunEntry {
    response: ProtocolMessage,
    receipt_received: bool,
}

impl RunRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached response for `run`, if the request was already
    /// executed (duplicate delivery).
    pub fn cached_response(&self, run: &RunId) -> Option<ProtocolMessage> {
        self.runs.lock().get(run).map(|e| e.response.clone())
    }

    /// Records the response produced for `run`.
    pub fn record_response(&self, run: RunId, response: ProtocolMessage) {
        self.runs.lock().insert(
            run,
            RunEntry {
                response,
                receipt_received: false,
            },
        );
    }

    /// Marks the client receipt as received for `run`. Returns `false` if
    /// the run is unknown.
    pub fn mark_receipt(&self, run: &RunId) -> bool {
        match self.runs.lock().get_mut(run) {
            Some(e) => {
                e.receipt_received = true;
                true
            }
            None => false,
        }
    }

    /// `true` if the client's receipt arrived for `run`.
    pub fn receipt_received(&self, run: &RunId) -> bool {
        self.runs
            .lock()
            .get(run)
            .map(|e| e.receipt_received)
            .unwrap_or(false)
    }

    /// Number of runs tracked.
    pub fn len(&self) -> usize {
        self.runs.lock().len()
    }

    /// `true` if no runs are tracked.
    pub fn is_empty(&self) -> bool {
        self.runs.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_response_roundtrip() {
        for resp in [
            ServerResponse::Executed(b"result".to_vec()),
            ServerResponse::Failed("no stock".into()),
        ] {
            let back = ServerResponse::decode_from_slice(&resp.encode_to_vec()).unwrap();
            assert_eq!(back, resp);
        }
        assert!(ServerResponse::Executed(vec![]).is_executed());
        assert!(!ServerResponse::Failed("x".into()).is_executed());
    }

    #[test]
    fn run_registry_dedup_and_receipt() {
        let reg = RunRegistry::new();
        let run = RunId::from_u128(1);
        assert!(reg.cached_response(&run).is_none());
        assert!(reg.is_empty());
        let resp = ProtocolMessage::new("direct", run, 2, "server", vec![1]);
        reg.record_response(run, resp.clone());
        assert_eq!(reg.cached_response(&run).unwrap(), resp);
        assert_eq!(reg.len(), 1);
        assert!(!reg.receipt_received(&run));
        assert!(reg.mark_receipt(&run));
        assert!(reg.receipt_received(&run));
        assert!(!reg.mark_receipt(&RunId::from_u128(9)));
    }
}
