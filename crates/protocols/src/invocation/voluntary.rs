//! The asymmetric "voluntary" baseline protocol.
//!
//! Reproduces the CORBA-filter approach of Wichert et al (paper §5, ref
//! \[23\]): "the client provides the server with non-repudiation of origin of
//! a request but there is no exchange to provide corresponding evidence to
//! the client."
//!
//! ```text
//! client → server : req, NRO_req      (step 1)
//! server → client : resp              (step 2, no evidence)
//! ```
//!
//! The client side is the single-round [`VoluntaryChoreography`]: an
//! *open* reply, because the bare response carries no evidence to
//! verify. The comparison baseline for experiments E8/E11: half the
//! messages and a fraction of the evidence bytes of the direct protocol
//! — and none of the client-side guarantees.
//!
//! Repeating the only round is a compile error — the session is consumed:
//!
//! ```compile_fail
//! use nonrep_protocols::invocation::voluntary::VoluntaryChoreography;
//! use nonrep_protocols::session::{Client, Session};
//! use nonrep_types::ids::OrgId;
//!
//! fn double_send(s: Session<Client, VoluntaryChoreography>, server: &OrgId) {
//!     let _ = s.call_open(server, vec![]);
//!     let _ = s.call_open(server, vec![]); // error[E0382]: use of moved value
//! }
//! ```

use std::fmt;
use std::sync::Arc;

use nonrep_crypto::digest::sha256;
use nonrep_types::ids::{OrgId, ProtocolId, RunId};

use crate::handler::ProtocolHandler;
use crate::invocation::direct::Step1;
use crate::invocation::{RequestExecutor, RunRegistry, ServerResponse};
use crate::message::ProtocolMessage;
use crate::party::Party;
use crate::session::{CallOpen, Client, End, ExchangeEngine, ExchangeError, RunJournal};
use crate::tokens::TokenKind;
use crate::{B2BCoordinator, ProtocolError};
use nonrep_types::codec::Encode;

/// Protocol id of the voluntary protocol.
pub const PROTOCOL_ID: &str = "voluntary";

/// The client's choreography: one open request/response round, then
/// seal. The reply frame is deliberately unverified — the baseline
/// offers the client no evidence at all.
pub type VoluntaryChoreography = CallOpen<1, 2, End>;

/// Client side: sends NRO, receives a bare response.
pub struct VoluntaryClient {
    engine: ExchangeEngine,
}

impl fmt::Debug for VoluntaryClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VoluntaryClient({})", self.engine.party().org())
    }
}

/// The client's view of a completed voluntary exchange: a response and the
/// run id — *no* evidence about the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoluntaryOutcome {
    /// The run identifier.
    pub run_id: RunId,
    /// The server's response (unauthenticated at the protocol level).
    pub response: ServerResponse,
}

impl VoluntaryClient {
    /// Creates a client executing through `coordinator`.
    pub fn new(party: Arc<Party>, coordinator: Arc<B2BCoordinator>) -> Self {
        Self {
            engine: ExchangeEngine::new(party, coordinator, PROTOCOL_ID),
        }
    }

    /// Enables crash-recovery journalling: completed steps leave
    /// progress markers in this party's evidence log for
    /// [`RunJournal::open_runs`] to find on reopen.
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<RunJournal>) -> Self {
        self.engine = self.engine.with_journal(journal);
        self
    }

    /// The engine driving this client.
    pub fn engine(&self) -> &ExchangeEngine {
        &self.engine
    }

    /// Sends `request` with an NRO token and returns the bare response.
    ///
    /// # Errors
    ///
    /// [`ExchangeError`] on communication or signing failure.
    pub fn invoke(
        &self,
        server: &OrgId,
        request: Vec<u8>,
    ) -> Result<VoluntaryOutcome, ExchangeError> {
        self.invoke_with(self.engine.party().new_run_id(), server, request)
    }

    /// [`VoluntaryClient::invoke`] under a caller-chosen run identifier
    /// (deterministic scenario harnesses).
    ///
    /// # Errors
    ///
    /// As [`VoluntaryClient::invoke`].
    pub fn invoke_with(
        &self,
        run_id: RunId,
        server: &OrgId,
        request: Vec<u8>,
    ) -> Result<VoluntaryOutcome, ExchangeError> {
        let req_digest = sha256(&request);
        let session = self.engine.session::<Client, VoluntaryChoreography>(run_id);
        let nro_req = self
            .engine
            .issue_and_store(TokenKind::NroReq, run_id, req_digest)?;
        let (msg2, session) =
            session.call_open(server, Step1 { request, nro_req }.encode_to_vec())?;
        let response: ServerResponse = self.engine.decode_body(&msg2.body)?;
        // Run complete: seal pending evidence if the policy asks for it.
        session.finish()?;
        Ok(VoluntaryOutcome { run_id, response })
    }
}

/// Server side: verifies + stores the client's NRO, executes, answers with
/// a bare response.
pub struct VoluntaryServerHandler {
    engine: ExchangeEngine,
    executor: Arc<dyn RequestExecutor>,
    runs: RunRegistry,
}

impl fmt::Debug for VoluntaryServerHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VoluntaryServerHandler({})", self.engine.party().org())
    }
}

impl VoluntaryServerHandler {
    /// Creates the handler.
    pub fn new(party: Arc<Party>, executor: Arc<dyn RequestExecutor>) -> Arc<Self> {
        Arc::new(Self {
            engine: ExchangeEngine::local(party, PROTOCOL_ID),
            executor,
            runs: RunRegistry::new(),
        })
    }
}

impl ProtocolHandler for VoluntaryServerHandler {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::new(PROTOCOL_ID)
    }

    fn process(&self, _from: &OrgId, _msg: ProtocolMessage) -> Result<(), ProtocolError> {
        Err(ProtocolError::BadMessage(
            "voluntary protocol has no one-way steps".into(),
        ))
    }

    fn process_request(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        if msg.step != 1 {
            return Err(ProtocolError::BadMessage(format!(
                "unexpected step {}",
                msg.step
            )));
        }
        if let Some(cached) = self.runs.cached_response(&msg.run_id) {
            return Ok(cached);
        }
        self.engine.verify_frame_from(&msg, from)?;
        let step1: Step1 = self.engine.decode_body(&msg.body)?;
        let req_digest = sha256(&step1.request);
        self.engine.absorb(
            &step1.nro_req,
            TokenKind::NroReq,
            msg.run_id,
            Some(&req_digest),
        )?;
        let response = match self.executor.execute(from, &step1.request) {
            Ok(result) => ServerResponse::Executed(result),
            Err(reason) => ServerResponse::Failed(reason),
        };
        let msg2 = self
            .engine
            .open_frame(msg.run_id, 2, response.encode_to_vec());
        self.runs.record_response(msg.run_id, msg2.clone());
        // The server holds all the evidence it will ever get for this
        // one-sided run; seal it if the commitment policy asks for it.
        self.engine.seal_run()?;
        Ok(msg2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::StaticKeyDirectory;
    use nonrep_net::bus::LocalBus;
    use nonrep_net::retry::{ReliableRequester, RetryPolicy};
    use nonrep_types::time::LogicalClock;

    fn fixture() -> (VoluntaryClient, Arc<Party>, Arc<Party>, OrgId) {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let client_party = Party::quick("client", 1, &clock, &dir);
        let server_party = Party::quick("server", 2, &clock, &dir);
        let bus = LocalBus::new();
        let coord_c = B2BCoordinator::new(
            "client",
            ReliableRequester::new(bus.clone(), RetryPolicy::new(4)),
        );
        let coord_s = B2BCoordinator::new(
            "server",
            ReliableRequester::new(bus.clone(), RetryPolicy::new(4)),
        );
        let handler = VoluntaryServerHandler::new(
            server_party.clone(),
            Arc::new(|_: &OrgId, req: &[u8]| Ok([b"ok:", req].concat())),
        );
        coord_s.register_handler(handler);
        bus.register(OrgId::new("client"), coord_c.clone());
        bus.register(OrgId::new("server"), coord_s);
        (
            VoluntaryClient::new(client_party.clone(), coord_c),
            client_party,
            server_party,
            OrgId::new("server"),
        )
    }

    #[test]
    fn exchange_completes_with_one_sided_evidence() {
        let (client, client_party, server_party, server) = fixture();
        let out = client.invoke(&server, b"req".to_vec()).unwrap();
        assert_eq!(out.response, ServerResponse::Executed(b"ok:req".to_vec()));
        // The asymmetry: server holds the client's NRO; client holds only
        // its own NRO copy — no token *about the server* at all.
        let server_kinds: Vec<String> = server_party
            .log()
            .by_run(&out.run_id)
            .iter()
            .map(|r| r.draft.kind.clone())
            .collect();
        assert_eq!(server_kinds, vec!["NRO_req"]);
        let client_kinds: Vec<String> = client_party
            .log()
            .by_run(&out.run_id)
            .iter()
            .map(|r| r.draft.kind.clone())
            .collect();
        assert_eq!(client_kinds, vec!["NRO_req"]);
    }

    #[test]
    fn forged_nro_rejected() {
        let (client, client_party, _server_party, server) = fixture();
        drop(client);
        // Build a message whose NRO subject doesn't match the request.
        let run = client_party.new_run_id();
        let nro = client_party
            .issue_token(TokenKind::NroReq, run, sha256(b"other"))
            .unwrap();
        let msg = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            1,
            "client",
            Step1 {
                request: b"real".to_vec(),
                nro_req: nro,
            }
            .encode_to_vec(),
        )
        .signed(client_party.keys())
        .unwrap();
        // Dispatch directly at a fresh handler.
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        dir.insert(OrgId::new("client"), client_party.keys().verifying_key());
        let sp = Party::quick("server", 5, &clock, &dir);
        let handler = VoluntaryServerHandler::new(sp, Arc::new(|_: &OrgId, _: &[u8]| Ok(vec![])));
        let err = handler
            .process_request(&OrgId::new("client"), msg)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::BadSignature { .. }));
        drop(server);
    }

    #[test]
    fn duplicate_requests_are_deduplicated() {
        let (client, _cp, server_party, server) = fixture();
        let out1 = client.invoke(&server, b"a".to_vec()).unwrap();
        let out2 = client.invoke(&server, b"a".to_vec()).unwrap();
        // Distinct runs (fresh run ids), both logged once each.
        assert_ne!(out1.run_id, out2.run_id);
        assert_eq!(server_party.log().len(), 2);
    }
}
