//! Inline-TTP NR-invocation (paper Fig 3(a) and 3(b)).
//!
//! All communication between client and server is routed through one or
//! more trusted third parties. Each TTP hop verifies the client's evidence,
//! issues its own signed receipts (request and response), logs everything,
//! and forwards. The *terminal* TTP invokes the server using the ordinary
//! [direct protocol](crate::invocation::direct) — the server needs no
//! inline-TTP-specific code, which is exactly the paper's point about
//! interceptor composability.
//!
//! * Fig 3(a): `client → TTP → server` — one [`InlineTtpHandler`] in
//!   terminal mode.
//! * Fig 3(b): `client → TTP_A → TTP_B → server` — TTP_A relays to TTP_B
//!   (relay mode), TTP_B is terminal.
//!
//! The client drives the [`InlineChoreography`] (the step-2 reply is
//! verified under its *sender*'s key — the first hop answers, not the
//! server); a relay TTP drives the [`crate::session::Ttp`]-role
//! [`RelayChoreography`], forwarding the client's pre-signed frame
//! unchanged so the originator's signature travels end-to-end.
//!
//! Relaying anything but the due step is a compile *and* run-time
//! impossibility — and the client cannot re-enter its only round:
//!
//! ```compile_fail
//! use nonrep_protocols::invocation::inline_ttp::InlineChoreography;
//! use nonrep_protocols::session::{Client, Session};
//! use nonrep_types::ids::OrgId;
//!
//! fn replay_round(s: Session<Client, InlineChoreography>, ttp: &OrgId) {
//!     let _ = s.call_relayed(ttp, vec![]);
//!     let _ = s.call_relayed(ttp, vec![]); // error[E0382]: use of moved value
//! }
//! ```

use std::fmt;
use std::sync::Arc;

use nonrep_crypto::digest::sha256;
use nonrep_types::codec::{decode_seq, encode_seq, CodecError, Decode, Encode, Reader, Writer};
use nonrep_types::ids::{OrgId, ProtocolId, RunId};

use crate::handler::ProtocolHandler;
use crate::invocation::direct::DirectClient;
use crate::invocation::{RunRegistry, ServerResponse};
use crate::message::ProtocolMessage;
use crate::party::Party;
use crate::session::{
    CallRelayed, Client, End, ExchangeEngine, ExchangeError, Forward, PeerFault, RunJournal, Ttp,
};
use crate::tokens::{NrToken, TokenKind};
use crate::{B2BCoordinator, ProtocolError};

/// Protocol id of the inline-TTP protocol.
pub const PROTOCOL_ID: &str = "inline-ttp";

/// The client's choreography: one relayed request/response round (the
/// reply frame is signed by the first TTP hop), then seal.
pub type InlineChoreography = CallRelayed<1, 2, End>;

/// A relay TTP's choreography: forward the client's pre-signed step 1
/// unchanged to the next hop and take its signed step-2 reply.
pub type RelayChoreography = Forward<1, 2, End>;

/// Step-1 body: the request, its NRO, and the ultimate destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineStep1 {
    /// The server that should ultimately execute the request.
    pub server: OrgId,
    /// Encoded application request.
    pub request: Vec<u8>,
    /// Client's NRO over the request digest.
    pub nro_req: NrToken,
}

impl Encode for InlineStep1 {
    fn encode(&self, w: &mut Writer) {
        self.server.encode(w);
        w.put_bytes(&self.request);
        self.nro_req.encode(w);
    }
}

impl Decode for InlineStep1 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            server: OrgId::decode(r)?,
            request: r.get_bytes()?.to_vec(),
            nro_req: NrToken::decode(r)?,
        })
    }
}

/// Step-2 body: the response, the server's origin token, and the
/// accumulated TTP receipts (outermost relay first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineResp {
    /// The server-side outcome.
    pub response: ServerResponse,
    /// The server's NRO over the response (forwarded by the terminal TTP).
    pub server_nro_resp: NrToken,
    /// TTP receipts accumulated along the path.
    pub receipts: Vec<NrToken>,
}

impl Encode for InlineResp {
    fn encode(&self, w: &mut Writer) {
        self.response.encode(w);
        self.server_nro_resp.encode(w);
        encode_seq(&self.receipts, w);
    }
}

impl Decode for InlineResp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            response: ServerResponse::decode(r)?,
            server_nro_resp: NrToken::decode(r)?,
            receipts: decode_seq(r)?,
        })
    }
}

/// What the client ends up holding after an inline-TTP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineOutcome {
    /// The run identifier.
    pub run_id: RunId,
    /// The server's response.
    pub response: ServerResponse,
    /// The server's NRO over the response.
    pub server_nro_resp: NrToken,
    /// Verified TTP receipts (request and response, per hop).
    pub receipts: Vec<NrToken>,
}

/// Client side of the inline-TTP protocol.
pub struct InlineTtpClient {
    engine: ExchangeEngine,
    /// First TTP hop.
    ttp: OrgId,
}

impl fmt::Debug for InlineTtpClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InlineTtpClient({} via {})",
            self.engine.party().org(),
            self.ttp
        )
    }
}

impl InlineTtpClient {
    /// Creates a client that routes through `ttp`.
    pub fn new(party: Arc<Party>, coordinator: Arc<B2BCoordinator>, ttp: OrgId) -> Self {
        Self {
            engine: ExchangeEngine::new(party, coordinator, PROTOCOL_ID),
            ttp,
        }
    }

    /// Enables crash-recovery journalling: completed steps leave
    /// progress markers in this party's evidence log for
    /// [`RunJournal::open_runs`] to find on reopen.
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<RunJournal>) -> Self {
        self.engine = self.engine.with_journal(journal);
        self
    }

    /// The engine driving this client.
    pub fn engine(&self) -> &ExchangeEngine {
        &self.engine
    }

    /// Invokes `request` on `server` via the TTP path.
    ///
    /// # Errors
    ///
    /// [`ExchangeError`] on communication failure or bad evidence.
    pub fn invoke(&self, server: &OrgId, request: Vec<u8>) -> Result<InlineOutcome, ExchangeError> {
        self.invoke_with(self.engine.party().new_run_id(), server, request)
    }

    /// [`InlineTtpClient::invoke`] under a caller-chosen run identifier
    /// (deterministic scenario harnesses).
    ///
    /// # Errors
    ///
    /// As [`InlineTtpClient::invoke`].
    pub fn invoke_with(
        &self,
        run_id: RunId,
        server: &OrgId,
        request: Vec<u8>,
    ) -> Result<InlineOutcome, ExchangeError> {
        let req_digest = sha256(&request);
        let session = self.engine.session::<Client, InlineChoreography>(run_id);
        let nro_req = self
            .engine
            .issue_and_store(TokenKind::NroReq, run_id, req_digest)?;
        let step1 = InlineStep1 {
            server: server.clone(),
            request,
            nro_req,
        };
        // The reply frame is signed by the first TTP hop, so the relayed
        // round verifies it under the reply *sender*'s key.
        let (msg2, session) = session.call_relayed(&self.ttp, step1.encode_to_vec())?;
        let resp: InlineResp = self.engine.decode_body(&msg2.body)?;
        // Verify every receipt under its issuer key and persist it.
        for receipt in &resp.receipts {
            self.engine
                .absorb(receipt, TokenKind::TtpReceipt, run_id, None)?;
        }
        // Verify the server's own response-origin token. It is bound to the
        // *inner* run id of the TTP↔server direct exchange (the TTP acts as
        // the protocol client there), so only kind and subject are pinned;
        // the TTP receipts bind the inner exchange to this outer run.
        let resp_digest = sha256(&resp.response.encode_to_vec());
        let server_key = self.engine.party().key_of(&resp.server_nro_resp.issuer)?;
        if !resp.server_nro_resp.verify(
            &server_key,
            Some(TokenKind::NroResp),
            None,
            Some(&resp_digest),
        ) {
            return Err(ExchangeError::Peer(PeerFault::BadSignature {
                org: resp.server_nro_resp.issuer.clone(),
                what: "server NRO_resp".into(),
            }));
        }
        self.engine.party().store_token(&resp.server_nro_resp)?;
        // Run complete: seal pending evidence if the policy asks for it.
        session.finish()?;
        Ok(InlineOutcome {
            run_id,
            response: resp.response,
            server_nro_resp: resp.server_nro_resp,
            receipts: resp.receipts,
        })
    }
}

/// An inline TTP node: relay or terminal.
pub struct InlineTtpHandler {
    engine: ExchangeEngine,
    /// `Some(next)` = relay to the next TTP; `None` = terminal (invoke the
    /// server directly).
    next_hop: Option<OrgId>,
    runs: RunRegistry,
}

impl fmt::Debug for InlineTtpHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InlineTtpHandler({}, next={:?})",
            self.engine.party().org(),
            self.next_hop
        )
    }
}

impl InlineTtpHandler {
    /// Creates a terminal TTP: verifies, receipts, and invokes the server
    /// with the direct protocol.
    pub fn terminal(party: Arc<Party>, coordinator: Arc<B2BCoordinator>) -> Arc<Self> {
        Arc::new(Self {
            engine: ExchangeEngine::new(party, coordinator, PROTOCOL_ID),
            next_hop: None,
            runs: RunRegistry::new(),
        })
    }

    /// Creates a relay TTP forwarding to `next` (distributed inline TTP,
    /// Fig 3(b)).
    pub fn relay(party: Arc<Party>, coordinator: Arc<B2BCoordinator>, next: OrgId) -> Arc<Self> {
        Arc::new(Self {
            engine: ExchangeEngine::new(party, coordinator, PROTOCOL_ID),
            next_hop: Some(next),
            runs: RunRegistry::new(),
        })
    }

    fn handle_step1(
        &self,
        _from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        if let Some(cached) = self.runs.cached_response(&msg.run_id) {
            return Ok(cached);
        }
        // The frame is signed by the *originating client* (msg.sender), not
        // necessarily the bus-level previous hop.
        self.engine.verify_sender_frame(&msg)?;
        let step1: InlineStep1 = self.engine.decode_body(&msg.body)?;
        let req_digest = sha256(&step1.request);
        self.engine.absorb(
            &step1.nro_req,
            TokenKind::NroReq,
            msg.run_id,
            Some(&req_digest),
        )?;
        // Receipt for the request passing through this TTP.
        let receipt_req =
            self.engine
                .issue_and_store(TokenKind::TtpReceipt, msg.run_id, req_digest)?;

        let (response, server_nro_resp, mut receipts) = match &self.next_hop {
            None => {
                // Terminal: invoke the server with the direct protocol,
                // acting as the client's proxy.
                let direct = DirectClient::new(
                    Arc::clone(self.engine.party()),
                    Arc::clone(
                        self.engine
                            .coordinator()
                            .expect("ttp engine has a coordinator"),
                    ),
                );
                let outcome = direct.invoke(&step1.server, step1.request.clone())?;
                (outcome.response, outcome.nro_resp, Vec::new())
            }
            Some(next) => {
                // Relay: forward the original message unchanged — a
                // TTP-role session, so the originator's signature travels
                // end-to-end.
                let relay = self.engine.session::<Ttp, RelayChoreography>(msg.run_id);
                let (reply, _end) = relay.forward(next, &msg)?;
                let inner: InlineResp = self.engine.decode_body(&reply.body)?;
                (inner.response, inner.server_nro_resp, inner.receipts)
            }
        };
        let resp_digest = sha256(&response.encode_to_vec());
        let receipt_resp =
            self.engine
                .issue_and_store(TokenKind::TtpReceipt, msg.run_id, resp_digest)?;
        // This hop's receipts go in front of any inner receipts.
        let mut all = vec![receipt_req, receipt_resp];
        all.append(&mut receipts);
        let body = InlineResp {
            response,
            server_nro_resp,
            receipts: all,
        };
        let msg2 = self
            .engine
            .request_frame(msg.run_id, 2, body.encode_to_vec())?;
        self.runs.record_response(msg.run_id, msg2.clone());
        Ok(msg2)
    }
}

impl ProtocolHandler for InlineTtpHandler {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::new(PROTOCOL_ID)
    }

    fn process(&self, _from: &OrgId, _msg: ProtocolMessage) -> Result<(), ProtocolError> {
        Err(ProtocolError::BadMessage(
            "inline-ttp has no one-way steps".into(),
        ))
    }

    fn process_request(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        match msg.step {
            1 => self.handle_step1(from, msg),
            step => Err(ProtocolError::BadMessage(format!("unexpected step {step}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::direct::DirectServerHandler;
    use crate::party::StaticKeyDirectory;
    use nonrep_net::bus::LocalBus;
    use nonrep_net::retry::{ReliableRequester, RetryPolicy};
    use nonrep_types::time::LogicalClock;

    struct World {
        bus: Arc<LocalBus>,
        clock: LogicalClock,
        dir: Arc<StaticKeyDirectory>,
    }

    impl World {
        fn new() -> Self {
            Self {
                bus: LocalBus::new(),
                clock: LogicalClock::new(),
                dir: Arc::new(StaticKeyDirectory::new()),
            }
        }

        fn coordinator(&self, org: &str) -> Arc<B2BCoordinator> {
            let c = B2BCoordinator::new(
                org,
                ReliableRequester::new(self.bus.clone(), RetryPolicy::new(6)),
            );
            self.bus.register(OrgId::new(org), c.clone());
            c
        }
    }

    fn echo_server(world: &World, name: &str, seed: u64) -> Arc<Party> {
        let party = Party::quick(name, seed, &world.clock, &world.dir);
        let coord = world.coordinator(name);
        let handler = DirectServerHandler::new(
            party.clone(),
            Arc::new(|_: &OrgId, req: &[u8]| Ok([b"res:", req].concat())),
        );
        coord.register_handler(handler);
        party
    }

    #[test]
    fn single_inline_ttp_fig3a() {
        let world = World::new();
        let client_party = Party::quick("client", 1, &world.clock, &world.dir);
        let ttp_party = Party::quick("ttp", 2, &world.clock, &world.dir);
        let _server_party = echo_server(&world, "server", 3);

        let ttp_coord = world.coordinator("ttp");
        ttp_coord.register_handler(InlineTtpHandler::terminal(
            ttp_party.clone(),
            ttp_coord.clone(),
        ));
        let client_coord = world.coordinator("client");
        let client = InlineTtpClient::new(client_party.clone(), client_coord, OrgId::new("ttp"));

        let out = client
            .invoke(&OrgId::new("server"), b"req".to_vec())
            .unwrap();
        assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
        // Two TTP receipts (request + response).
        assert_eq!(out.receipts.len(), 2);
        assert!(out.receipts.iter().all(|r| r.issuer == OrgId::new("ttp")));
        // Client log: own NRO + 2 receipts bound to the outer run, plus the
        // server's NRO_resp (bound to the TTP↔server inner run).
        assert_eq!(client_party.log().by_run(&out.run_id).len(), 3);
        assert_eq!(client_party.log().len(), 4);
        // TTP log holds the full audit trail of both legs: client NRO +
        // 2 own receipts (outer run) + 4 direct-leg tokens (inner run).
        assert_eq!(ttp_party.log().by_run(&out.run_id).len(), 3);
        assert_eq!(ttp_party.log().len(), 7);
    }

    #[test]
    fn distributed_inline_ttp_fig3b() {
        let world = World::new();
        let client_party = Party::quick("client", 1, &world.clock, &world.dir);
        let ttp_a_party = Party::quick("ttp-a", 2, &world.clock, &world.dir);
        let ttp_b_party = Party::quick("ttp-b", 3, &world.clock, &world.dir);
        let _server_party = echo_server(&world, "server", 4);

        let coord_b = world.coordinator("ttp-b");
        coord_b.register_handler(InlineTtpHandler::terminal(
            ttp_b_party.clone(),
            coord_b.clone(),
        ));
        let coord_a = world.coordinator("ttp-a");
        coord_a.register_handler(InlineTtpHandler::relay(
            ttp_a_party.clone(),
            coord_a.clone(),
            OrgId::new("ttp-b"),
        ));
        let client_coord = world.coordinator("client");
        let client = InlineTtpClient::new(client_party.clone(), client_coord, OrgId::new("ttp-a"));

        let out = client
            .invoke(&OrgId::new("server"), b"req".to_vec())
            .unwrap();
        assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
        // Four receipts: A(req, resp), B(req, resp).
        assert_eq!(out.receipts.len(), 4);
        assert_eq!(out.receipts[0].issuer, OrgId::new("ttp-a"));
        assert_eq!(out.receipts[2].issuer, OrgId::new("ttp-b"));
        // Both TTPs logged their legs.
        assert!(ttp_a_party.log().len() >= 3);
        assert!(ttp_b_party.log().len() >= 3);
    }

    #[test]
    fn ttp_rejects_forged_client_message() {
        let world = World::new();
        let client_party = Party::quick("client", 1, &world.clock, &world.dir);
        let ttp_party = Party::quick("ttp", 2, &world.clock, &world.dir);
        let _server = echo_server(&world, "server", 3);
        let ttp_coord = world.coordinator("ttp");
        let handler = InlineTtpHandler::terminal(ttp_party, ttp_coord);

        // NRO over a different request than the one sent.
        let run = client_party.new_run_id();
        let nro = client_party
            .issue_token(TokenKind::NroReq, run, sha256(b"other"))
            .unwrap();
        let msg = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            1,
            "client",
            InlineStep1 {
                server: OrgId::new("server"),
                request: b"real".to_vec(),
                nro_req: nro,
            }
            .encode_to_vec(),
        )
        .signed(client_party.keys())
        .unwrap();
        let err = handler
            .process_request(&OrgId::new("client"), msg)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::BadSignature { .. }));
    }

    #[test]
    fn duplicate_request_uses_cached_response() {
        let world = World::new();
        let client_party = Party::quick("client", 1, &world.clock, &world.dir);
        let ttp_party = Party::quick("ttp", 2, &world.clock, &world.dir);
        let _server = echo_server(&world, "server", 3);
        let ttp_coord = world.coordinator("ttp");
        let handler = InlineTtpHandler::terminal(ttp_party, ttp_coord);

        let run = client_party.new_run_id();
        let request = b"dup".to_vec();
        let nro = client_party
            .issue_token(TokenKind::NroReq, run, sha256(&request))
            .unwrap();
        let msg = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            1,
            "client",
            InlineStep1 {
                server: OrgId::new("server"),
                request,
                nro_req: nro,
            }
            .encode_to_vec(),
        )
        .signed(client_party.keys())
        .unwrap();
        let r1 = handler
            .process_request(&OrgId::new("client"), msg.clone())
            .unwrap();
        let r2 = handler.process_request(&OrgId::new("client"), msg).unwrap();
        assert_eq!(r1, r2);
    }
}
