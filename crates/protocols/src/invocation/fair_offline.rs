//! Fair NR-invocation with an *offline* TTP.
//!
//! The paper's stronger trust domain (§3.1): the TTP is "not directly
//! involved in all communication between the parties but may be called upon
//! to resolve or abort a protocol run to deliver fairness and/or liveness
//! guarantees to honest parties". The construction follows the
//! Zhou–Gollmann key-escrow idea (paper refs \[12\]/\[26\]):
//!
//! ```text
//! main protocol
//!   1  C → S : req, NRO_req
//!      S → T : escrow(run, K)            — key deposited before commitment
//!      T → S : escrow_ack (signed)
//!   2  S → C : enc_K(resp), NRR_req, NRO_resp, escrow_ack
//!   3  C → S : NRR_resp                  — client commits; it can now
//!                                          always recover K from T
//!   4  S → C : K                         — normal completion
//!
//! recovery sub-protocols at T
//!   resolve (C) : present NRR_resp  → T stores it for S, releases K and a
//!                                     signed dispute *decision* naming the
//!                                     defecting server
//!   abort   (S) : if not resolved   → run dead; future resolve refused
//!   fetch   (S) : retrieve the NRR_resp deposited by a resolving client
//! ```
//!
//! **Fairness**: after step 3 the server can always obtain `NRR_resp`
//! (from C or T), and the client can obtain `K` from S or T — a wrong
//! key at step 4 counts as a withheld one (the acceptance check decrypts
//! against the committed digest before believing it), so garbage diverts
//! to the TTP exactly like silence. One race is inherent to an *offline*
//! TTP: a server that collects the receipt directly and then wins an
//! abort race at T leaves the client without `K`. That interleaving is
//! not prevented but it is **adjudicable**: pulling it off plants the
//! client's `NRR_resp` next to the TTP's `Abort` token in the server's
//! own evidence log, and the core adjudicator's
//! `Verdict::abort_after_receipt` convicts exactly that combination —
//! the server cannot use the receipt without self-incrimination. An
//! honest server never trips the rule: once it aborts, a late receipt is
//! refused. Before step 3 neither party holds the other's item —
//! aborting is harmless.
//!
//! The client side is the [`FairChoreography`]: a signed opening round,
//! then a *branching* step — the receipt round either completes normally
//! (step 4 delivers the key) or diverts into the
//! [`ResolveChoreography`], the optimistic **dispute sub-protocol**. A
//! TTP resolution is itself evidence: the resolve ack carries a signed
//! [`TokenKind::Decision`] over [`defection_digest`]`(server, run)`,
//! convicting the defector from the sealed record alone.
//!
//! The branch order is fixed by the types — escalating to the TTP before
//! the exchange even starts is a compile error:
//!
//! ```compile_fail
//! use nonrep_protocols::invocation::fair_offline::FairChoreography;
//! use nonrep_protocols::session::{Client, Session};
//! use nonrep_types::ids::OrgId;
//!
//! fn dispute_first(s: Session<Client, FairChoreography>, ttp: &OrgId) {
//!     // The opening state only offers `call`; the dispute branch is
//!     // reachable only through the receipt round.
//!     let _ = s.call_or(ttp, vec![], |_| true); // error: no method `call_or`
//! }
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use nonrep_crypto::digest::{sha256, Digest};
use nonrep_crypto::stream::xor_keystream;
use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};
use nonrep_types::ids::{OrgId, ProtocolId, RunId};

use crate::handler::ProtocolHandler;
use crate::invocation::direct::Step1;
use crate::invocation::{RequestExecutor, RunRegistry, ServerResponse};
use crate::message::ProtocolMessage;
use crate::party::Party;
use crate::session::{
    Branch, Call, CallOpen, CallOr, Client, End, EscalationAction, EscalationOutcome,
    ExchangeEngine, ExchangeError, ExchangeSupervisor, PeerFault, RunJournal, Server, Session,
};
use crate::tokens::{defection_digest, NrToken, TokenKind};
use crate::{B2BCoordinator, ProtocolError};

/// Protocol id of the fair offline-TTP protocol.
pub const PROTOCOL_ID: &str = "fair-offline";

// Step numbers. 1–4 are the main exchange; 10+ are TTP sub-protocols.
/// Step 1: client's request + `NRO_req`.
pub const STEP_REQUEST: u32 = 1;
/// Step 2: encrypted response + evidence + escrow ack.
pub const STEP_RESPONSE: u32 = 2;
/// Step 3: client's `NRR_resp` (the commitment point).
pub const STEP_RECEIPT: u32 = 3;
/// Step 4: the decryption key, in the honest completion.
pub const STEP_KEY: u32 = 4;
/// Server deposits the key with the TTP.
pub const STEP_ESCROW: u32 = 10;
/// TTP acknowledges the escrow (signed token in the body).
pub const STEP_ESCROW_ACK: u32 = 11;
/// Client escalates: presents the receipt, demands the key.
pub const STEP_RESOLVE: u32 = 20;
/// TTP releases the key and its signed dispute decision.
pub const STEP_RESOLVE_ACK: u32 = 21;
/// Server asks the TTP to kill an unresolved run.
pub const STEP_ABORT: u32 = 30;
/// TTP confirms the abort (signed token in the body).
pub const STEP_ABORT_ACK: u32 = 31;
/// Server fetches the receipt a resolving client deposited.
pub const STEP_FETCH: u32 = 40;
/// TTP returns the deposited receipt.
pub const STEP_FETCH_ACK: u32 = 41;

/// The dispute sub-protocol: one open round at the TTP. The ack frame is
/// unsigned — the [`ResolveAck`] payload carries the TTP's signed
/// [`TokenKind::Decision`], which is the evidence that matters.
pub type ResolveChoreography = CallOpen<STEP_RESOLVE, STEP_RESOLVE_ACK, End>;

/// The client's choreography: signed request round, then the receipt
/// round branches — an acceptable step-4 key completes normally, any
/// defection diverts into the [`ResolveChoreography`].
pub type FairChoreography =
    Call<STEP_REQUEST, STEP_RESPONSE, CallOr<STEP_RECEIPT, STEP_KEY, End, ResolveChoreography>>;

/// The server's escrow leg: deposit the key, collect the signed ack.
pub type EscrowChoreography = CallOpen<STEP_ESCROW, STEP_ESCROW_ACK, End>;

/// The server's abort sub-protocol at the TTP.
pub type AbortChoreography = CallOpen<STEP_ABORT, STEP_ABORT_ACK, End>;

/// The server's fetch sub-protocol at the TTP.
pub type FetchChoreography = CallOpen<STEP_FETCH, STEP_FETCH_ACK, End>;

/// Step-2 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairStep2 {
    /// The response encrypted under the escrowed key.
    pub enc_response: Vec<u8>,
    /// Digest of the *plaintext* encoded response.
    pub resp_digest: Digest,
    /// Server's receipt for the request.
    pub nrr_req: NrToken,
    /// Server's origin token over the plaintext response digest.
    pub nro_resp: NrToken,
    /// TTP's escrow acknowledgement (proof the key is recoverable).
    pub escrow_ack: NrToken,
}

impl Encode for FairStep2 {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.enc_response);
        self.resp_digest.encode(w);
        self.nrr_req.encode(w);
        self.nro_resp.encode(w);
        self.escrow_ack.encode(w);
    }
}

impl Decode for FairStep2 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            enc_response: r.get_bytes()?.to_vec(),
            resp_digest: Digest::decode(r)?,
            nrr_req: NrToken::decode(r)?,
            nro_resp: NrToken::decode(r)?,
            escrow_ack: NrToken::decode(r)?,
        })
    }
}

/// Escrow deposit body (server → TTP).
#[derive(Debug, Clone, PartialEq, Eq)]
struct EscrowBody {
    key: [u8; 32],
    resp_digest: Digest,
    client: OrgId,
}

impl Encode for EscrowBody {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.key);
        self.resp_digest.encode(w);
        self.client.encode(w);
    }
}

impl Decode for EscrowBody {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let raw = r.get_raw(32)?;
        let mut key = [0u8; 32];
        key.copy_from_slice(raw);
        Ok(Self {
            key,
            resp_digest: Digest::decode(r)?,
            client: OrgId::decode(r)?,
        })
    }
}

/// Resolve-ack body (TTP → client): the escrowed key plus the TTP's
/// signed dispute decision naming the server that failed to complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveAck {
    /// The escrowed decryption key.
    pub key: [u8; 32],
    /// Signed [`TokenKind::Decision`] over
    /// [`defection_digest`]`(server, run)`.
    pub decision: NrToken,
}

impl Encode for ResolveAck {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(&self.key);
        self.decision.encode(w);
    }
}

impl Decode for ResolveAck {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let raw = r.get_raw(32)?;
        let mut key = [0u8; 32];
        key.copy_from_slice(raw);
        Ok(Self {
            key,
            decision: NrToken::decode(r)?,
        })
    }
}

/// The client's view of a fair exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairOutcome {
    /// The run identifier.
    pub run_id: RunId,
    /// The decrypted server response.
    pub response: ServerResponse,
    /// Server's receipt for the request.
    pub nrr_req: NrToken,
    /// Server's origin token over the response.
    pub nro_resp: NrToken,
    /// How the client obtained the decryption key.
    pub key_source: KeySource,
}

/// Where the decryption key came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySource {
    /// The server completed step 4 normally.
    Server,
    /// The server defected; the TTP resolved the run and issued a signed
    /// dispute decision against it.
    TtpResolve,
}

/// Client side of the fair offline-TTP protocol.
pub struct FairClient {
    engine: ExchangeEngine,
    ttp: OrgId,
}

impl fmt::Debug for FairClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FairClient({} ttp={})",
            self.engine.party().org(),
            self.ttp
        )
    }
}

impl FairClient {
    /// Creates a client whose recovery TTP is `ttp`.
    pub fn new(party: Arc<Party>, coordinator: Arc<B2BCoordinator>, ttp: OrgId) -> Self {
        Self {
            engine: ExchangeEngine::new(party, coordinator, PROTOCOL_ID),
            ttp,
        }
    }

    /// Enables crash-recovery journalling: every completed step of an
    /// invocation leaves a progress marker in this party's evidence
    /// log, so a crashed client finds the run via
    /// [`RunJournal::open_runs`] on reopen.
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<RunJournal>) -> Self {
        self.engine = self.engine.with_journal(journal);
        self
    }

    /// The engine driving this client (kill-point harnesses journal
    /// recovery decisions through it).
    pub fn engine(&self) -> &ExchangeEngine {
        &self.engine
    }

    /// Runs the fair exchange against `server`.
    ///
    /// If the server defects after collecting the receipt — step 4 never
    /// arrives, or arrives carrying a key that does not decrypt the
    /// committed ciphertext — the session diverts into the dispute
    /// sub-protocol with the TTP; [`FairOutcome::key_source`] records
    /// which path delivered the key, and on the dispute path the TTP's
    /// signed decision against the defector lands in this party's
    /// evidence log.
    ///
    /// # Errors
    ///
    /// [`PeerFault::Aborted`] if the server aborted the run at the TTP —
    /// normally before the client's receipt was committed (harmless), but
    /// a malicious server can also win an abort race *after* collecting
    /// the receipt; that interleaving is convicted at adjudication (see
    /// the module docs). Other [`ExchangeError`]s on bad evidence or
    /// unreachable peers.
    pub fn invoke(&self, server: &OrgId, request: Vec<u8>) -> Result<FairOutcome, ExchangeError> {
        self.invoke_with(self.engine.party().new_run_id(), server, request)
    }

    /// [`FairClient::invoke`] under a caller-chosen run identifier
    /// (deterministic scenario harnesses).
    ///
    /// # Errors
    ///
    /// As [`FairClient::invoke`].
    pub fn invoke_with(
        &self,
        run_id: RunId,
        server: &OrgId,
        request: Vec<u8>,
    ) -> Result<FairOutcome, ExchangeError> {
        self.invoke_paced(run_id, server, request, || ())
    }

    /// [`FairClient::invoke_with`] with a pause hook fired after the
    /// server's step-2 evidence is verified and *before* the receipt is
    /// committed — exactly the window the server's receipt deadline
    /// covers. Harnesses model a slow-but-live client by advancing the
    /// logical clock (and sweeping the supervisor) inside `pause`: a
    /// client that resumes inside the window completes normally and
    /// must never be treated as a staller.
    ///
    /// # Errors
    ///
    /// As [`FairClient::invoke`]; additionally, if the pause outlasted
    /// the server's receipt window the server will have timeout-aborted
    /// the run, surfacing here as [`PeerFault::Aborted`].
    pub fn invoke_paced(
        &self,
        run_id: RunId,
        server: &OrgId,
        request: Vec<u8>,
        pause: impl FnOnce(),
    ) -> Result<FairOutcome, ExchangeError> {
        let req_digest = sha256(&request);
        let session = self.engine.session::<Client, FairChoreography>(run_id);
        let nro_req = self
            .engine
            .issue_and_store(TokenKind::NroReq, run_id, req_digest)?;

        let (msg2, session) = session.call(server, Step1 { request, nro_req }.encode_to_vec())?;
        let step2: FairStep2 = self.engine.decode_body(&msg2.body)?;
        // Verify all evidence before committing.
        self.engine
            .absorb(&step2.nrr_req, TokenKind::NrrReq, run_id, Some(&req_digest))?;
        self.engine.absorb(
            &step2.nro_resp,
            TokenKind::NroResp,
            run_id,
            Some(&step2.resp_digest),
        )?;
        // The escrow ack must come from *our* TTP and cover this run.
        if step2.escrow_ack.issuer != self.ttp {
            return Err(ExchangeError::Peer(PeerFault::BadMessage(
                "escrow ack not from the agreed TTP".into(),
            )));
        }
        self.engine.absorb(
            &step2.escrow_ack,
            TokenKind::Escrow,
            run_id,
            Some(&step2.resp_digest),
        )?;

        // The receipt window: the server is now committed (key escrowed,
        // evidence issued) and waiting on step 3.
        pause();

        // Step 3: commit the receipt. From here the exchange must end
        // fairly: K from the server, or K + a conviction from the TTP.
        let nrr_resp =
            self.engine
                .issue_and_store(TokenKind::NrrResp, run_id, step2.resp_digest)?;
        // Accept a step-4 body only if it actually decrypts the committed
        // ciphertext: 32 bytes of garbage is a withheld key with extra
        // steps, and diverts to the TTP exactly like silence.
        let branch = session.call_or(server, nrr_resp.encode_to_vec(), |m| {
            m.body.len() == 32 && {
                let mut key = [0u8; 32];
                key.copy_from_slice(&m.body);
                sha256(&xor_keystream(&key, &step2.enc_response)) == step2.resp_digest
            }
        })?;
        let (key, key_source, session) = match branch {
            Branch::Primary(msg4, session) => {
                let mut key = [0u8; 32];
                key.copy_from_slice(&msg4.body);
                (key, KeySource::Server, session)
            }
            // Server defected or vanished: the dispute sub-protocol.
            Branch::Diverted(dispute) => {
                let (key, session) = self.resolve(dispute, server, &nrr_resp)?;
                (key, KeySource::TtpResolve, session)
            }
        };

        let plain = xor_keystream(&key, &step2.enc_response);
        // Primary-path keys were vetted by the branch predicate; this
        // recheck guards the resolve path against a server that escrowed
        // garbage (the client still holds the TTP's signed decision
        // against it by the time this fires).
        if sha256(&plain) != step2.resp_digest {
            return Err(ExchangeError::Peer(PeerFault::BadMessage(
                "decrypted response does not match committed digest".into(),
            )));
        }
        let response: ServerResponse = self.engine.decode_body(&plain)?;
        // Run complete (key in hand, evidence stored): let the commitment
        // policy seal it.
        session.finish()?;
        Ok(FairOutcome {
            run_id,
            response,
            nrr_req: step2.nrr_req,
            nro_resp: step2.nro_resp,
            key_source,
        })
    }

    /// The stalling adversary's driver: runs the exchange only through
    /// step 2 — request sent, server evidence collected and verified —
    /// then goes silent forever, never committing the receipt. The
    /// server is left holding an escrowed key and an open receipt
    /// window; its supervisor must timeout-abort the run at the TTP.
    /// Harmless before step 3 by construction: neither party holds the
    /// other's item, so the abort closes the run with no winner and no
    /// false conviction.
    ///
    /// # Errors
    ///
    /// As [`FairClient::invoke`] for steps 1–2.
    pub fn invoke_stalling(
        &self,
        run_id: RunId,
        server: &OrgId,
        request: Vec<u8>,
    ) -> Result<(), ExchangeError> {
        let req_digest = sha256(&request);
        let session = self.engine.session::<Client, FairChoreography>(run_id);
        let nro_req = self
            .engine
            .issue_and_store(TokenKind::NroReq, run_id, req_digest)?;
        let (msg2, session) = session.call(server, Step1 { request, nro_req }.encode_to_vec())?;
        let step2: FairStep2 = self.engine.decode_body(&msg2.body)?;
        self.engine
            .absorb(&step2.nrr_req, TokenKind::NrrReq, run_id, Some(&req_digest))?;
        self.engine.absorb(
            &step2.nro_resp,
            TokenKind::NroResp,
            run_id,
            Some(&step2.resp_digest),
        )?;
        // Silence: the session is dropped mid-choreography (legal at
        // runtime — typestate forbids wrong orders, not walking away).
        drop(session);
        Ok(())
    }

    /// The dispute sub-protocol: deposit the receipt with the TTP, get
    /// the key and the TTP's signed decision against `server` back.
    fn resolve(
        &self,
        dispute: Session<Client, ResolveChoreography>,
        server: &OrgId,
        nrr_resp: &NrToken,
    ) -> Result<([u8; 32], Session<Client, End>), ExchangeError> {
        let run = dispute.run();
        let (reply, session) = match dispute.call_open(&self.ttp, nrr_resp.encode_to_vec()) {
            Ok(ok) => ok,
            Err(ExchangeError::Transport(e)) => return Err(ExchangeError::Transport(e)),
            // A refusal (aborted run, bad receipt) surfaces as a
            // wrong-step reply: the run is dead for this client.
            Err(_) => return Err(ExchangeError::Peer(PeerFault::Aborted(run))),
        };
        let ack: ResolveAck = self
            .engine
            .decode_body(&reply.body)
            .map_err(|_| ExchangeError::Peer(PeerFault::Aborted(run)))?;
        // The decision must be the agreed TTP's signed conviction of the
        // server we were exchanging with, for *this* run.
        if ack.decision.issuer != self.ttp {
            return Err(ExchangeError::Peer(PeerFault::BadMessage(
                "dispute decision not from the agreed TTP".into(),
            )));
        }
        self.engine.absorb(
            &ack.decision,
            TokenKind::Decision,
            run,
            Some(&defection_digest(server, run)),
        )?;
        // Record the TTP's involvement in our own log too.
        self.engine
            .issue_and_store(TokenKind::Resolve, run, sha256(&ack.key))?;
        Ok((ack.key, session))
    }
}

/// Server behaviour knobs for testing defection scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerConduct {
    /// Follow the protocol.
    #[default]
    Honest,
    /// Collect the client's receipt at step 3 but never send the key —
    /// the defection the dispute sub-protocol exists for; a resolving
    /// client walks away with the key *and* the TTP's signed decision
    /// against this server.
    WithholdKey,
    /// Collect the receipt and answer step 4 with a well-formed but
    /// wrong key. The client's acceptance check decrypts against the
    /// committed digest before taking the primary branch, so this is
    /// treated as a withheld key and diverts to the TTP.
    GarbageKey,
    /// Go silent before the key release: the server never answers step
    /// 3 at all — the client's round dies on the wire (transport
    /// fault), which diverts it into the dispute sub-protocol exactly
    /// like a withheld key. Distinct from [`ServerConduct::WithholdKey`]
    /// (which answers promptly with a useless frame): a staller makes
    /// the client burn its whole retry budget first.
    Stall,
}

#[derive(Debug)]
struct FairRunState {
    key: [u8; 32],
    /// The committed response digest: the step-3 receipt must cover it,
    /// or the key is not released (a receipt over an arbitrary digest is
    /// worthless as non-repudiation-of-receipt evidence).
    resp_digest: Digest,
    receipt_received: bool,
    /// Set once this server aborted the run at the TTP; a receipt
    /// arriving afterwards is refused, so an honest server's log never
    /// holds the client's `NRR_resp` alongside an `Abort` token.
    aborted: bool,
}

/// Optional runtime attachments for a fair server: deadline supervision
/// of the receipt window and crash-recovery journalling.
#[derive(Clone, Default)]
pub struct FairServerRuntime {
    /// Supervisor plus the receipt window in clock milliseconds: once
    /// step 2 is sent, the client has this long to commit its receipt
    /// before the server escalates to the TTP's abort choreography.
    pub supervision: Option<(Arc<ExchangeSupervisor>, u64)>,
    /// Crash-recovery journal for the server's own log.
    pub journal: Option<Arc<RunJournal>>,
}

struct Supervision {
    supervisor: Arc<ExchangeSupervisor>,
    receipt_window_ms: u64,
    me: Weak<FairServerHandler>,
}

/// The supervisor's escalation for a fair server whose client went
/// silent after the receipt window opened: run the TTP's abort
/// choreography. Re-checks run state first — a receipt that raced the
/// sweep means nothing is aborted, so the timeout path can never pair
/// the client's `NRR_resp` with an `Abort` token in an honest server's
/// log (the combination `Verdict::abort_after_receipt` convicts).
struct FairTimeoutAbort {
    handler: Weak<FairServerHandler>,
}

impl EscalationAction for FairTimeoutAbort {
    fn escalate(&self, run: RunId) -> EscalationOutcome {
        let Some(handler) = self.handler.upgrade() else {
            return EscalationOutcome::Failed("fair server handler dropped".into());
        };
        if handler.receipt_received(&run) {
            return EscalationOutcome::AlreadyComplete;
        }
        match handler.abort(run) {
            Ok(_) => EscalationOutcome::Aborted,
            Err(e) => EscalationOutcome::Failed(e.to_string()),
        }
    }
}

/// Server side of the fair offline-TTP protocol.
pub struct FairServerHandler {
    engine: ExchangeEngine,
    executor: Arc<dyn RequestExecutor>,
    ttp: OrgId,
    conduct: ServerConduct,
    runs: RunRegistry,
    keys: Mutex<HashMap<RunId, FairRunState>>,
    supervision: Option<Supervision>,
}

impl fmt::Debug for FairServerHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FairServerHandler({})", self.engine.party().org())
    }
}

impl FairServerHandler {
    /// Creates the handler (escrowing keys with `ttp`).
    pub fn new(
        party: Arc<Party>,
        coordinator: Arc<B2BCoordinator>,
        executor: Arc<dyn RequestExecutor>,
        ttp: OrgId,
        conduct: ServerConduct,
    ) -> Arc<Self> {
        Self::with_runtime(
            party,
            coordinator,
            executor,
            ttp,
            conduct,
            FairServerRuntime::default(),
        )
    }

    /// [`FairServerHandler::new`] with runtime attachments: a
    /// supervisor watching the receipt window (escalating to the TTP's
    /// abort choreography on expiry) and/or a crash-recovery journal.
    pub fn with_runtime(
        party: Arc<Party>,
        coordinator: Arc<B2BCoordinator>,
        executor: Arc<dyn RequestExecutor>,
        ttp: OrgId,
        conduct: ServerConduct,
        runtime: FairServerRuntime,
    ) -> Arc<Self> {
        let mut engine = ExchangeEngine::new(party, coordinator, PROTOCOL_ID);
        if let Some(journal) = runtime.journal {
            engine = engine.with_journal(journal);
        }
        Arc::new_cyclic(|me| Self {
            engine,
            executor,
            ttp,
            conduct,
            runs: RunRegistry::new(),
            keys: Mutex::new(HashMap::new()),
            supervision: runtime
                .supervision
                .map(|(supervisor, receipt_window_ms)| Supervision {
                    supervisor,
                    receipt_window_ms,
                    me: me.clone(),
                }),
        })
    }

    /// The engine driving this handler (kill-point harnesses journal
    /// recovery decisions through it).
    pub fn engine(&self) -> &ExchangeEngine {
        &self.engine
    }

    /// `true` if the client's receipt arrived directly for `run`.
    pub fn receipt_received(&self, run: &RunId) -> bool {
        self.keys
            .lock()
            .get(run)
            .map(|s| s.receipt_received)
            .unwrap_or(false)
    }

    /// Runs the abort sub-protocol for `run` at the TTP.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Rejected`] if the run was already resolved (the
    /// TTP then holds the client's receipt — fetch it instead).
    pub fn abort(&self, run: RunId) -> Result<NrToken, ProtocolError> {
        let session = self.engine.session::<Server, AbortChoreography>(run);
        let (reply, _done) = match session.call_open(&self.ttp, Vec::new()) {
            Ok(ok) => ok,
            Err(ExchangeError::Transport(e)) => return Err(ProtocolError::Net(e)),
            Err(_) => {
                return Err(ProtocolError::Rejected(
                    "run already resolved at TTP".into(),
                ));
            }
        };
        let token: NrToken = self.engine.decode_body(&reply.body)?;
        self.engine.absorb(&token, TokenKind::Abort, run, None)?;
        // The run is dead from our side: refuse any receipt that arrives
        // late, so this log never pairs an Abort with the client's
        // NRR_resp (the combination `Verdict::abort_after_receipt`
        // convicts a racing server of).
        if let Some(state) = self.keys.lock().get_mut(&run) {
            state.aborted = true;
        }
        // Journalled servers close the run and seal: the abort decision
        // itself must survive a crash.
        self.engine.journal_abort(run, STEP_RECEIPT)?;
        Ok(token)
    }

    /// Fetches the client's receipt from the TTP after a resolve.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownRun`] if the TTP holds no receipt for `run`.
    pub fn fetch_receipt(&self, run: RunId) -> Result<NrToken, ProtocolError> {
        let session = self.engine.session::<Server, FetchChoreography>(run);
        let (reply, _done) = match session.call_open(&self.ttp, Vec::new()) {
            Ok(ok) => ok,
            Err(ExchangeError::Transport(e)) => return Err(ProtocolError::Net(e)),
            Err(_) => return Err(ProtocolError::UnknownRun(run)),
        };
        let token: NrToken = self.engine.decode_body(&reply.body)?;
        self.engine.absorb(&token, TokenKind::NrrResp, run, None)?;
        Ok(token)
    }

    fn handle_step1(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        if let Some(cached) = self.runs.cached_response(&msg.run_id) {
            return Ok(cached);
        }
        self.engine.verify_frame_from(&msg, from)?;
        let step1: Step1 = self.engine.decode_body(&msg.body)?;
        let req_digest = sha256(&step1.request);
        self.engine.absorb(
            &step1.nro_req,
            TokenKind::NroReq,
            msg.run_id,
            Some(&req_digest),
        )?;

        let response = match self.executor.execute(from, &step1.request) {
            Ok(result) => ServerResponse::Executed(result),
            Err(reason) => ServerResponse::Failed(reason),
        };
        let plain = response.encode_to_vec();
        let resp_digest = sha256(&plain);
        let key = self.engine.party().fresh_secret();
        let enc_response = xor_keystream(&key, &plain);

        // Escrow the key with the TTP *before* committing to step 2.
        let escrow = EscrowBody {
            key,
            resp_digest,
            client: from.clone(),
        };
        let session = self
            .engine
            .session::<Server, EscrowChoreography>(msg.run_id);
        let (ack, _escrowed) = match session.call_open(&self.ttp, escrow.encode_to_vec()) {
            Ok(ok) => ok,
            Err(ExchangeError::Transport(e)) => return Err(ProtocolError::Net(e)),
            Err(_) => return Err(ProtocolError::BadMessage("TTP refused escrow".into())),
        };
        let escrow_ack: NrToken = self.engine.decode_body(&ack.body)?;
        self.engine.absorb(
            &escrow_ack,
            TokenKind::Escrow,
            msg.run_id,
            Some(&resp_digest),
        )?;

        // The shared seal hook: one scheduler call for the pair (a single
        // batch signature in batched commitment mode).
        let (nrr_req, nro_resp) =
            self.engine
                .issue_paired_tokens(msg.run_id, req_digest, resp_digest)?;

        let msg2 = self.engine.request_frame(
            msg.run_id,
            STEP_RESPONSE,
            FairStep2 {
                enc_response,
                resp_digest,
                nrr_req,
                nro_resp,
                escrow_ack,
            }
            .encode_to_vec(),
        )?;
        self.keys.lock().insert(
            msg.run_id,
            FairRunState {
                key,
                resp_digest,
                receipt_received: false,
                aborted: false,
            },
        );
        self.runs.record_response(msg.run_id, msg2.clone());
        // Step 2 is committed: the receipt window opens. A supervised
        // server arms the timeout-abort escalation here — if the client
        // never commits its receipt, the TTP abort choreography closes
        // the run.
        self.engine.journal_progress(msg.run_id, STEP_RESPONSE)?;
        if let Some(sup) = &self.supervision {
            sup.supervisor.watch_for(
                msg.run_id,
                self.engine.protocol(),
                STEP_RECEIPT,
                sup.receipt_window_ms,
                Arc::new(FairTimeoutAbort {
                    handler: sup.me.clone(),
                }),
            );
        }
        Ok(msg2)
    }

    fn handle_step3(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        self.engine.verify_frame_from(&msg, from)?;
        let nrr_resp: NrToken = self.engine.decode_body(&msg.body)?;
        let (key, resp_digest) = {
            let keys = self.keys.lock();
            let state = keys
                .get(&msg.run_id)
                .ok_or(ProtocolError::UnknownRun(msg.run_id))?;
            if state.aborted {
                // We already killed this run at the TTP; accepting the
                // receipt now would leave this log holding the client's
                // NRR_resp next to an Abort token — the combination
                // `Verdict::abort_after_receipt` convicts.
                return Err(ProtocolError::Aborted(msg.run_id));
            }
            (state.key, state.resp_digest)
        };
        // The receipt must cover the committed response digest — the key
        // is exchanged for evidence that is actually worth something.
        self.engine.absorb(
            &nrr_resp,
            TokenKind::NrrResp,
            msg.run_id,
            Some(&resp_digest),
        )?;
        if let Some(state) = self.keys.lock().get_mut(&msg.run_id) {
            state.receipt_received = true;
        }
        // The receipt arrived: discharge the deadline watch. Done before
        // replying, so a sweep racing this handler sees the run complete.
        if let Some(sup) = &self.supervision {
            sup.supervisor.complete(msg.run_id);
        }
        match self.conduct {
            ServerConduct::Honest => {
                self.engine.journal_close(msg.run_id, STEP_KEY)?;
                Ok(self.engine.open_frame(msg.run_id, STEP_KEY, key.to_vec()))
            }
            // Defection: acknowledge nothing useful (wrong step forces the
            // client down the dispute path).
            ServerConduct::WithholdKey => Ok(self.engine.open_frame(msg.run_id, 99, Vec::new())),
            // Defection with a fig leaf: a well-formed but useless key.
            // The client's acceptance check decrypts before believing it,
            // so this diverts to the TTP exactly like silence.
            ServerConduct::GarbageKey => {
                Ok(self.engine.open_frame(msg.run_id, STEP_KEY, vec![0x5a; 32]))
            }
            // Silence: no reply at all. The coordinator surfaces this as
            // an endpoint fault, so the client's round fails like a dead
            // host rather than a wrong-step frame.
            ServerConduct::Stall => Err(ProtocolError::Rejected(
                "server went silent before key release".into(),
            )),
        }
    }
}

impl ProtocolHandler for FairServerHandler {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::new(PROTOCOL_ID)
    }

    fn process(&self, _from: &OrgId, _msg: ProtocolMessage) -> Result<(), ProtocolError> {
        Err(ProtocolError::BadMessage(
            "fair-offline has no one-way steps".into(),
        ))
    }

    fn process_request(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        match msg.step {
            STEP_REQUEST => self.handle_step1(from, msg),
            STEP_RECEIPT => self.handle_step3(from, msg),
            step => Err(ProtocolError::BadMessage(format!("unexpected step {step}"))),
        }
    }
}

/// One escrowed key, with the parties it binds.
#[derive(Debug, Clone)]
struct EscrowedKey {
    key: [u8; 32],
    resp_digest: Digest,
    client: OrgId,
    server: OrgId,
}

#[derive(Debug, Default)]
struct EscrowEntry {
    key: Option<EscrowedKey>,
    aborted: bool,
    resolved: bool,
    receipt: Option<NrToken>,
}

/// The offline TTP: escrow ledger plus resolve/abort/fetch sub-protocols.
///
/// A resolve is adjudication, not just recovery: the TTP releases the key
/// *and* issues a signed [`TokenKind::Decision`] over
/// [`defection_digest`]`(server, run)` — durable, third-party evidence
/// that the escrowing server failed to complete the run.
pub struct OfflineTtpHandler {
    engine: ExchangeEngine,
    ledger: Mutex<HashMap<RunId, EscrowEntry>>,
}

impl fmt::Debug for OfflineTtpHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OfflineTtpHandler({})", self.engine.party().org())
    }
}

impl OfflineTtpHandler {
    /// Creates the TTP handler.
    pub fn new(party: Arc<Party>) -> Arc<Self> {
        Arc::new(Self {
            engine: ExchangeEngine::local(party, PROTOCOL_ID),
            ledger: Mutex::new(HashMap::new()),
        })
    }

    /// `true` if `run` is marked aborted.
    pub fn is_aborted(&self, run: &RunId) -> bool {
        self.ledger
            .lock()
            .get(run)
            .map(|e| e.aborted)
            .unwrap_or(false)
    }

    /// `true` if `run` was resolved for the client.
    pub fn is_resolved(&self, run: &RunId) -> bool {
        self.ledger
            .lock()
            .get(run)
            .map(|e| e.resolved)
            .unwrap_or(false)
    }

    fn handle_escrow(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        self.engine.verify_frame_from(&msg, from)?;
        let body: EscrowBody = self.engine.decode_body(&msg.body)?;
        {
            let mut ledger = self.ledger.lock();
            let entry = ledger.entry(msg.run_id).or_default();
            if entry.aborted {
                return Err(ProtocolError::Aborted(msg.run_id));
            }
            entry.key = Some(EscrowedKey {
                key: body.key,
                resp_digest: body.resp_digest,
                client: body.client.clone(),
                server: from.clone(),
            });
        }
        let ack = self
            .engine
            .issue_and_store(TokenKind::Escrow, msg.run_id, body.resp_digest)?;
        Ok(self
            .engine
            .open_frame(msg.run_id, STEP_ESCROW_ACK, ack.encode_to_vec()))
    }

    fn handle_resolve(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        self.engine.verify_frame_from(&msg, from)?;
        let client_key = self.engine.party().key_of(from)?;
        let nrr_resp: NrToken = self.engine.decode_body(&msg.body)?;
        let escrowed = {
            let mut ledger = self.ledger.lock();
            let entry = ledger
                .get_mut(&msg.run_id)
                .ok_or(ProtocolError::UnknownRun(msg.run_id))?;
            if entry.aborted {
                return Err(ProtocolError::Aborted(msg.run_id));
            }
            let escrowed = entry
                .key
                .clone()
                .ok_or(ProtocolError::UnknownRun(msg.run_id))?;
            if escrowed.client != *from {
                return Err(ProtocolError::Rejected(
                    "resolver is not the escrowed client".into(),
                ));
            }
            // The receipt must cover the escrowed response digest.
            if !nrr_resp.verify(
                &client_key,
                Some(TokenKind::NrrResp),
                Some(msg.run_id),
                Some(&escrowed.resp_digest),
            ) {
                return Err(ProtocolError::BadSignature {
                    org: from.clone(),
                    what: "NRR_resp presented at resolve".into(),
                });
            }
            entry.resolved = true;
            entry.receipt = Some(nrr_resp.clone());
            escrowed
        };
        self.engine.party().store_token(&nrr_resp)?;
        // Adjudicate: the escrowing server failed to complete a run its
        // client committed to. The decision is signed evidence any
        // verifier can check by recomputing the defection digest.
        let decision = self.engine.issue_and_store(
            TokenKind::Decision,
            msg.run_id,
            defection_digest(&escrowed.server, msg.run_id),
        )?;
        self.engine
            .issue_and_store(TokenKind::Resolve, msg.run_id, sha256(&escrowed.key))?;
        Ok(self.engine.open_frame(
            msg.run_id,
            STEP_RESOLVE_ACK,
            ResolveAck {
                key: escrowed.key,
                decision,
            }
            .encode_to_vec(),
        ))
    }

    fn handle_abort(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        self.engine.verify_frame_from(&msg, from)?;
        let mut ledger = self.ledger.lock();
        let entry = ledger.entry(msg.run_id).or_default();
        if entry.resolved {
            // Resolve won the race: the server should fetch the receipt.
            return Err(ProtocolError::Rejected("already resolved".into()));
        }
        // Only the party that escrowed the key may kill the run — a
        // stranger (or the client itself) cannot abort someone else's
        // exchange out from under them.
        if let Some(escrowed) = &entry.key {
            if escrowed.server != *from {
                return Err(ProtocolError::Rejected(
                    "aborter is not the escrowed server".into(),
                ));
            }
        }
        entry.aborted = true;
        drop(ledger);
        let token = self
            .engine
            .issue_and_store(TokenKind::Abort, msg.run_id, Digest::ZERO)?;
        Ok(self
            .engine
            .open_frame(msg.run_id, STEP_ABORT_ACK, token.encode_to_vec()))
    }

    fn handle_fetch(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        self.engine.verify_frame_from(&msg, from)?;
        let receipt = self
            .ledger
            .lock()
            .get(&msg.run_id)
            .and_then(|e| e.receipt.clone())
            .ok_or(ProtocolError::UnknownRun(msg.run_id))?;
        Ok(self
            .engine
            .open_frame(msg.run_id, STEP_FETCH_ACK, receipt.encode_to_vec()))
    }
}

impl ProtocolHandler for OfflineTtpHandler {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::new(PROTOCOL_ID)
    }

    fn process(&self, _from: &OrgId, _msg: ProtocolMessage) -> Result<(), ProtocolError> {
        Err(ProtocolError::BadMessage(
            "TTP sub-protocols are request/response".into(),
        ))
    }

    fn process_request(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        match msg.step {
            STEP_ESCROW => self.handle_escrow(from, msg),
            STEP_RESOLVE => self.handle_resolve(from, msg),
            STEP_ABORT => self.handle_abort(from, msg),
            STEP_FETCH => self.handle_fetch(from, msg),
            step => Err(ProtocolError::BadMessage(format!(
                "unexpected TTP step {step}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::StaticKeyDirectory;
    use nonrep_net::bus::LocalBus;
    use nonrep_net::retry::{ReliableRequester, RetryPolicy};
    use nonrep_types::time::LogicalClock;

    struct World {
        client: FairClient,
        client_party: Arc<Party>,
        server_handler: Arc<FairServerHandler>,
        server_party: Arc<Party>,
        ttp_handler: Arc<OfflineTtpHandler>,
        server: OrgId,
        clock: LogicalClock,
        supervisor: Arc<ExchangeSupervisor>,
    }

    fn world(conduct: ServerConduct) -> World {
        world_with(conduct, None)
    }

    /// `receipt_window_ms: Some(w)` builds a *supervised* server whose
    /// receipt deadline is `w` ms on the shared logical clock.
    fn world_with(conduct: ServerConduct, receipt_window_ms: Option<u64>) -> World {
        let bus = LocalBus::new();
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let client_party = Party::quick("client", 1, &clock, &dir);
        let server_party = Party::quick("server", 2, &clock, &dir);
        let ttp_party = Party::quick("ttp", 3, &clock, &dir);
        let supervisor = ExchangeSupervisor::new(Arc::new(clock.clone()));

        let mk = |org: &str| {
            let c = B2BCoordinator::new(
                org,
                ReliableRequester::new(bus.clone(), RetryPolicy::new(4)),
            );
            bus.register(OrgId::new(org), c.clone());
            c
        };
        let coord_c = mk("client");
        let coord_s = mk("server");
        let coord_t = mk("ttp");

        let server_handler = FairServerHandler::with_runtime(
            server_party.clone(),
            coord_s.clone(),
            Arc::new(|_: &OrgId, req: &[u8]| Ok([b"res:".as_slice(), req].concat())),
            OrgId::new("ttp"),
            conduct,
            FairServerRuntime {
                supervision: receipt_window_ms.map(|w| (supervisor.clone(), w)),
                journal: None,
            },
        );
        coord_s.register_handler(server_handler.clone());
        let ttp_handler = OfflineTtpHandler::new(ttp_party);
        coord_t.register_handler(ttp_handler.clone());

        World {
            client: FairClient::new(client_party.clone(), coord_c, OrgId::new("ttp")),
            client_party,
            server_handler,
            server_party,
            ttp_handler,
            server: OrgId::new("server"),
            clock,
            supervisor,
        }
    }

    #[test]
    fn honest_exchange_completes_via_server_key() {
        let w = world(ServerConduct::Honest);
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
        assert_eq!(out.key_source, KeySource::Server);
        assert!(w.server_handler.receipt_received(&out.run_id));
        assert!(!w.ttp_handler.is_resolved(&out.run_id));
        // Evidence set complete on both sides.
        assert!(w.client_party.log().by_run(&out.run_id).len() >= 5);
        assert!(w.server_party.log().by_run(&out.run_id).len() >= 4);
    }

    #[test]
    fn defecting_server_is_defeated_by_resolve() {
        let w = world(ServerConduct::WithholdKey);
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        // The client still got the plaintext — via the TTP.
        assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
        assert_eq!(out.key_source, KeySource::TtpResolve);
        assert!(w.ttp_handler.is_resolved(&out.run_id));
        // Fairness: the server can fetch the receipt the client deposited.
        let receipt = w.server_handler.fetch_receipt(out.run_id).unwrap();
        assert_eq!(receipt.kind, TokenKind::NrrResp);
        assert_eq!(receipt.issuer, OrgId::new("client"));
    }

    #[test]
    fn resolve_yields_signed_decision_against_defector() {
        let w = world(ServerConduct::WithholdKey);
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        assert_eq!(out.key_source, KeySource::TtpResolve);
        // The dispute left a TTP-signed decision in the *client's* log,
        // checkable without the TTP ledger: its subject is the
        // recomputable defection digest of (server, run).
        let expected = defection_digest(&w.server, out.run_id);
        let records = w.client_party.log().by_run(&out.run_id);
        let decision = records
            .iter()
            .find(|r| r.draft.kind == TokenKind::Decision.label())
            .expect("decision recorded at the client");
        assert_eq!(decision.draft.content_digest, expected);
        let token = NrToken::decode_from_slice(&decision.draft.payload).unwrap();
        assert_eq!(token.issuer, OrgId::new("ttp"));
        assert!(token.verify(
            &w.client_party.key_of(&OrgId::new("ttp")).unwrap(),
            Some(TokenKind::Decision),
            Some(out.run_id),
            Some(&expected),
        ));
    }

    #[test]
    fn garbage_key_is_a_defection_not_an_error() {
        // A well-formed 32-byte key that fails to decrypt is a withheld
        // key with extra steps: the client must divert to the TTP, not
        // die on a decode error with its receipt already committed.
        let w = world(ServerConduct::GarbageKey);
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
        assert_eq!(out.key_source, KeySource::TtpResolve);
        assert!(w.ttp_handler.is_resolved(&out.run_id));
        // The defector was convicted just like a silent one.
        let expected = defection_digest(&w.server, out.run_id);
        let records = w.client_party.log().by_run(&out.run_id);
        assert!(records
            .iter()
            .any(|r| r.draft.kind == TokenKind::Decision.label()
                && r.draft.content_digest == expected));
    }

    #[test]
    fn receipt_over_wrong_digest_does_not_release_the_key() {
        // The server only exchanges K for a receipt covering the
        // committed response digest; a receipt over garbage is refused
        // and never marks the run as receipted.
        let w = world(ServerConduct::Honest);
        let run = w.client_party.new_run_id();
        let request = b"req".to_vec();
        let nro = w
            .client_party
            .issue_token(TokenKind::NroReq, run, sha256(&request))
            .unwrap();
        let msg1 = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            STEP_REQUEST,
            "client",
            Step1 {
                request,
                nro_req: nro,
            }
            .encode_to_vec(),
        )
        .signed(w.client_party.keys())
        .unwrap();
        w.server_handler
            .process_request(&OrgId::new("client"), msg1)
            .unwrap();

        let bogus = w
            .client_party
            .issue_token(TokenKind::NrrResp, run, sha256(b"not the response"))
            .unwrap();
        let msg3 = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            STEP_RECEIPT,
            "client",
            bogus.encode_to_vec(),
        )
        .signed(w.client_party.keys())
        .unwrap();
        let err = w
            .server_handler
            .process_request(&OrgId::new("client"), msg3)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::BadSignature { .. }));
        assert!(!w.server_handler.receipt_received(&run));
    }

    #[test]
    fn receipt_then_abort_race_is_self_incriminating() {
        // The one unfair interleaving an offline TTP cannot prevent: the
        // server collects the step-3 receipt directly, then wins the
        // abort race at the TTP before the client's resolve arrives.
        let w = world(ServerConduct::WithholdKey);
        let run = w.client_party.new_run_id();
        let request = b"req".to_vec();
        let nro = w
            .client_party
            .issue_token(TokenKind::NroReq, run, sha256(&request))
            .unwrap();
        let msg1 = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            STEP_REQUEST,
            "client",
            Step1 {
                request,
                nro_req: nro,
            }
            .encode_to_vec(),
        )
        .signed(w.client_party.keys())
        .unwrap();
        let msg2 = w
            .server_handler
            .process_request(&OrgId::new("client"), msg1)
            .unwrap();
        let step2 = FairStep2::decode_from_slice(&msg2.body).unwrap();
        let nrr = w
            .client_party
            .issue_token(TokenKind::NrrResp, run, step2.resp_digest)
            .unwrap();
        w.client_party.store_token(&nrr).unwrap();
        let msg3 = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            STEP_RECEIPT,
            "client",
            nrr.encode_to_vec(),
        )
        .signed(w.client_party.keys())
        .unwrap();
        w.server_handler
            .process_request(&OrgId::new("client"), msg3)
            .unwrap();
        assert!(w.server_handler.receipt_received(&run));

        // The server aborts; the client's resolve loses the race.
        w.server_handler.abort(run).unwrap();
        let dispute = w.client.engine.session::<Client, ResolveChoreography>(run);
        let err = w.client.resolve(dispute, &w.server, &nrr).unwrap_err();
        assert!(matches!(
            err,
            ExchangeError::Peer(PeerFault::Aborted(_)) | ExchangeError::Transport(_)
        ));

        // The race is self-incriminating: the server's own evidence log
        // now pairs the client's NRR_resp with the TTP's Abort token —
        // the combination `Verdict::abort_after_receipt` convicts.
        let records = w.server_party.log().by_run(&run);
        assert!(records
            .iter()
            .any(|r| r.draft.kind == TokenKind::NrrResp.label()
                && r.draft.actor == OrgId::new("client")));
        assert!(records.iter().any(
            |r| r.draft.kind == TokenKind::Abort.label() && r.draft.actor == OrgId::new("ttp")
        ));

        // And a receipt arriving after the abort is refused, so an
        // *honest* aborting server never produces that pairing.
        let late = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            STEP_RECEIPT,
            "client",
            nrr.encode_to_vec(),
        )
        .signed(w.client_party.keys())
        .unwrap();
        let err = w
            .server_handler
            .process_request(&OrgId::new("client"), late)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Aborted(_)));
    }

    #[test]
    fn stranger_cannot_abort_someone_elses_run() {
        // Only the escrowed server may kill a run: the client (or anyone
        // else) racing an abort against its own exchange is refused.
        let w = world(ServerConduct::Honest);
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        let msg = ProtocolMessage::new(PROTOCOL_ID, out.run_id, STEP_ABORT, "client", Vec::new())
            .signed(w.client_party.keys())
            .unwrap();
        let err = w
            .ttp_handler
            .process_request(&OrgId::new("client"), msg)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Rejected(_)));
        assert!(!w.ttp_handler.is_aborted(&out.run_id));
    }

    #[test]
    fn abort_before_receipt_blocks_resolve() {
        let w = world(ServerConduct::Honest);
        // Simulate: server escrows, but client never sends step 3; server
        // aborts; a later resolve attempt by the client must fail.
        // Drive the protocol manually up to step 2.
        let run = w.client_party.new_run_id();
        let request = b"req".to_vec();
        let nro = w
            .client_party
            .issue_token(TokenKind::NroReq, run, sha256(&request))
            .unwrap();
        let msg1 = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            STEP_REQUEST,
            "client",
            Step1 {
                request,
                nro_req: nro,
            }
            .encode_to_vec(),
        )
        .signed(w.client_party.keys())
        .unwrap();
        let msg2 = w
            .server_handler
            .process_request(&OrgId::new("client"), msg1)
            .unwrap();
        let step2 = FairStep2::decode_from_slice(&msg2.body).unwrap();

        // Server aborts (client went silent).
        let abort_token = w.server_handler.abort(run).unwrap();
        assert_eq!(abort_token.kind, TokenKind::Abort);
        assert!(w.ttp_handler.is_aborted(&run));

        // Client belatedly tries to resolve: refused, and it never gets K.
        let nrr = w
            .client_party
            .issue_token(TokenKind::NrrResp, run, step2.resp_digest)
            .unwrap();
        let dispute = w.client.engine.session::<Client, ResolveChoreography>(run);
        let err = w.client.resolve(dispute, &w.server, &nrr).unwrap_err();
        assert!(matches!(
            err,
            ExchangeError::Peer(PeerFault::Aborted(_)) | ExchangeError::Transport(_)
        ));
    }

    #[test]
    fn abort_after_resolve_is_refused() {
        let w = world(ServerConduct::WithholdKey);
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        assert_eq!(out.key_source, KeySource::TtpResolve);
        let err = w.server_handler.abort(out.run_id).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Rejected(_) | ProtocolError::Net(nonrep_net::NetError::Endpoint(_))
        ));
        // But fetch works.
        assert!(w.server_handler.fetch_receipt(out.run_id).is_ok());
    }

    #[test]
    fn resolve_with_forged_receipt_refused() {
        let w = world(ServerConduct::Honest);
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        // A receipt over the wrong digest cannot resolve.
        let bogus = w
            .client_party
            .issue_token(TokenKind::NrrResp, out.run_id, sha256(b"wrong"))
            .unwrap();
        let dispute = w
            .client
            .engine
            .session::<Client, ResolveChoreography>(out.run_id);
        let err = w.client.resolve(dispute, &w.server, &bogus).unwrap_err();
        assert!(matches!(
            err,
            ExchangeError::Peer(PeerFault::Aborted(_)) | ExchangeError::Transport(_)
        ));
        // And no conviction was minted against the honest server.
        assert!(!w.ttp_handler.is_resolved(&out.run_id));
    }

    #[test]
    fn stranger_cannot_resolve_someone_elses_run() {
        let w = world(ServerConduct::Honest);
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        // The server itself tries to "resolve" as if it were the client.
        let msg = ProtocolMessage::new(
            PROTOCOL_ID,
            out.run_id,
            STEP_RESOLVE,
            "server",
            w.server_party
                .issue_token(TokenKind::NrrResp, out.run_id, sha256(b"x"))
                .unwrap()
                .encode_to_vec(),
        )
        .signed(w.server_party.keys())
        .unwrap();
        let err = w
            .ttp_handler
            .process_request(&OrgId::new("server"), msg)
            .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Rejected(_) | ProtocolError::BadSignature { .. }
        ));
    }

    #[test]
    fn stalling_client_is_timeout_aborted_without_false_accusation() {
        // The client goes silent after the receipt window opens; the
        // supervised server escalates to the TTP's abort choreography.
        let w = world_with(ServerConduct::Honest, Some(100));
        let run = w.client_party.new_run_id();
        w.client
            .invoke_stalling(run, &w.server, b"req".to_vec())
            .unwrap();
        assert_eq!(w.supervisor.in_flight(), 1, "receipt window armed");

        // Inside the window nothing fires.
        w.clock.advance(99);
        assert!(w.supervisor.sweep().is_empty());

        // Past the window the abort choreography closes the run.
        w.clock.advance(1);
        let reports = w.supervisor.sweep();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].outcome, EscalationOutcome::Aborted);
        assert_eq!(reports[0].awaiting_step, STEP_RECEIPT);
        assert!(w.ttp_handler.is_aborted(&run));
        assert_eq!(w.supervisor.in_flight(), 0, "no run left in flight");

        // The stalled client can no longer recover the key.
        let nrr = w
            .client_party
            .issue_token(TokenKind::NrrResp, run, sha256(b"whatever"))
            .unwrap();
        let dispute = w.client.engine.session::<Client, ResolveChoreography>(run);
        assert!(w.client.resolve(dispute, &w.server, &nrr).is_err());

        // No false accusation: the server's log holds the TTP's Abort
        // but NOT the client's NRR_resp, so `abort_after_receipt` has
        // nothing to convict.
        let records = w.server_party.log().by_run(&run);
        assert!(records
            .iter()
            .any(|r| r.draft.kind == TokenKind::Abort.label()));
        assert!(!records
            .iter()
            .any(|r| r.draft.kind == TokenKind::NrrResp.label()
                && r.draft.actor == OrgId::new("client")));
    }

    #[test]
    fn slow_client_inside_the_window_is_never_aborted() {
        // A client that answers just under the deadline completes
        // normally: slowness is not defection.
        let w = world_with(ServerConduct::Honest, Some(100));
        let run = w.client_party.new_run_id();
        let clock = w.clock.clone();
        let supervisor = w.supervisor.clone();
        let out = w
            .client
            .invoke_paced(run, &w.server, b"req".to_vec(), || {
                clock.advance(99);
                assert!(supervisor.sweep().is_empty(), "window not yet expired");
            })
            .unwrap();
        assert_eq!(out.key_source, KeySource::Server);
        assert!(!w.ttp_handler.is_aborted(&run));
        assert_eq!(w.supervisor.in_flight(), 0, "watch discharged on receipt");
        // Late sweeps stay quiet: the watch is gone.
        w.clock.advance(1000);
        assert!(w.supervisor.sweep().is_empty());
    }

    #[test]
    fn receipt_racing_the_sweep_reports_already_complete() {
        // The awaited receipt arrives between the deadline passing and
        // the escalation firing: the action re-checks and aborts nothing.
        let w = world_with(ServerConduct::Honest, Some(50));
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        // Re-arm a watch on the already-complete run (the race window).
        w.supervisor.watch_for(
            out.run_id,
            &ProtocolId::new(PROTOCOL_ID),
            STEP_RECEIPT,
            5,
            Arc::new(FairTimeoutAbort {
                handler: Arc::downgrade(&w.server_handler),
            }),
        );
        w.clock.advance(10);
        let reports = w.supervisor.sweep();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].outcome, EscalationOutcome::AlreadyComplete);
        assert!(!w.ttp_handler.is_aborted(&out.run_id));
    }

    #[test]
    fn stalling_server_is_defeated_by_resolve() {
        // Silence before the key release is a transport fault at the
        // client, which diverts into the dispute sub-protocol exactly
        // like a withheld key — and convicts the same way.
        let w = world(ServerConduct::Stall);
        let out = w.client.invoke(&w.server, b"req".to_vec()).unwrap();
        assert_eq!(out.response, ServerResponse::Executed(b"res:req".to_vec()));
        assert_eq!(out.key_source, KeySource::TtpResolve);
        assert!(w.ttp_handler.is_resolved(&out.run_id));
        let expected = defection_digest(&w.server, out.run_id);
        let records = w.client_party.log().by_run(&out.run_id);
        assert!(records
            .iter()
            .any(|r| r.draft.kind == TokenKind::Decision.label()
                && r.draft.content_digest == expected));
    }

    #[test]
    fn journalled_exchange_leaves_no_open_runs() {
        // A journalled client that completes a run leaves a closed
        // journal: recovery on reopen finds nothing to do.
        let w = world(ServerConduct::Honest);
        let journal = RunJournal::new(w.client_party.clone());
        let client = FairClient::new(
            w.client_party.clone(),
            w.client
                .engine
                .coordinator()
                .expect("client engine has a coordinator")
                .clone(),
            OrgId::new("ttp"),
        )
        .with_journal(journal.clone());
        let out = client.invoke(&w.server, b"req".to_vec()).unwrap();
        assert!(journal.recovered_open_runs().is_empty());
        // The markers are in the chain and the chain still verifies.
        assert!(w
            .client_party
            .log()
            .by_run(&out.run_id)
            .iter()
            .any(|r| r.is_run_marker()));
        w.client_party.log().verify().unwrap();
    }

    #[test]
    fn ciphertext_alone_reveals_nothing_useful() {
        // Construction-level check: a wrong key fails the digest check.
        let key = [1u8; 32];
        let plain = ServerResponse::Executed(b"secret".to_vec()).encode_to_vec();
        let enc = xor_keystream(&key, &plain);
        let wrong = xor_keystream(&[2u8; 32], &enc);
        assert_ne!(sha256(&wrong), sha256(&plain));
    }
}
