//! The direct three-message NR-invocation protocol (paper §3.2).
//!
//! ```text
//! client interceptor → server interceptor : req,  NRO_req          (step 1)
//! server interceptor → client interceptor : resp, NRR_req, NRO_resp (step 2)
//! client interceptor → server interceptor : NRR_resp               (step 3)
//! server interceptor → client interceptor : ack                    (step 4)
//! ```
//!
//! The client side is the [`DirectChoreography`] session type — a
//! signed request/reply round followed by a lossy receipt/ack round —
//! driven by the shared [`ExchangeEngine`]: steps 1/2 ride one
//! `deliverRequest`, steps 3/4 a second. The server caches step 2 per
//! run, so a client retry after a lost response re-collects the
//! identical message without re-executing the request (at-most-once,
//! §3.2). Each side verifies every peer token before persisting it; a
//! bad token aborts the exchange (interceptor assumption 4:
//! well-constructed messages only).
//!
//! Sending the receipt before the request is a compile error:
//!
//! ```compile_fail
//! use nonrep_protocols::invocation::direct::DirectChoreography;
//! use nonrep_protocols::session::{Client, Session};
//! use nonrep_types::ids::OrgId;
//!
//! fn receipt_first(s: Session<Client, DirectChoreography>, server: &OrgId) {
//!     // Step 3 before step 1: the opening state has no `call_lossy`.
//!     let _ = s.call_lossy(server, vec![]);
//! }
//! ```

use std::fmt;
use std::sync::Arc;

use nonrep_crypto::digest::sha256;
use nonrep_types::codec::{CodecError, Decode, Encode, Reader, Writer};
use nonrep_types::ids::{OrgId, ProtocolId, RunId};

use crate::handler::ProtocolHandler;
use crate::invocation::{RequestExecutor, RunRegistry, ServerResponse};
use crate::message::ProtocolMessage;
use crate::party::Party;
use crate::session::{Call, CallLossy, Client, End, ExchangeEngine, ExchangeError, RunJournal};
use crate::tokens::{NrToken, TokenKind};
use crate::{B2BCoordinator, ProtocolError};

/// Protocol id of the direct protocol.
pub const PROTOCOL_ID: &str = "direct";

/// The client's choreography: signed request/evidence round (steps
/// 1/2), then a lossy receipt/ack round (steps 3/4), then seal.
pub type DirectChoreography = Call<1, 2, CallLossy<3, 4, End>>;

/// Step-1 body: the request and the client's NRO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step1 {
    /// Encoded application request (e.g. a container `Invocation`).
    pub request: Vec<u8>,
    /// Client's non-repudiation of origin over the request digest.
    pub nro_req: NrToken,
}

impl Encode for Step1 {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.request);
        self.nro_req.encode(w);
    }
}

impl Decode for Step1 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            request: r.get_bytes()?.to_vec(),
            nro_req: NrToken::decode(r)?,
        })
    }
}

/// Step-2 body: the response plus the server's two tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step2 {
    /// The server-side outcome.
    pub response: ServerResponse,
    /// Server's non-repudiation of receipt of the request.
    pub nrr_req: NrToken,
    /// Server's non-repudiation of origin of the response.
    pub nro_resp: NrToken,
}

impl Encode for Step2 {
    fn encode(&self, w: &mut Writer) {
        self.response.encode(w);
        self.nrr_req.encode(w);
        self.nro_resp.encode(w);
    }
}

impl Decode for Step2 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            response: ServerResponse::decode(r)?,
            nrr_req: NrToken::decode(r)?,
            nro_resp: NrToken::decode(r)?,
        })
    }
}

/// Step-3 body: the client's receipt for the response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step3 {
    /// Client's non-repudiation of receipt of the response.
    pub nrr_resp: NrToken,
}

impl Encode for Step3 {
    fn encode(&self, w: &mut Writer) {
        self.nrr_resp.encode(w);
    }
}

impl Decode for Step3 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            nrr_resp: NrToken::decode(r)?,
        })
    }
}

/// The client's view of a completed exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectOutcome {
    /// The run identifier.
    pub run_id: RunId,
    /// The server's response.
    pub response: ServerResponse,
    /// Server's receipt for the request (client evidence).
    pub nrr_req: NrToken,
    /// Server's origin token for the response (client evidence).
    pub nro_resp: NrToken,
    /// `true` if the server acknowledged the client's final receipt.
    pub receipt_acked: bool,
}

/// Client side of the direct protocol.
pub struct DirectClient {
    engine: ExchangeEngine,
}

impl fmt::Debug for DirectClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DirectClient({})", self.engine.party().org())
    }
}

impl DirectClient {
    /// Creates a client executing through `coordinator`.
    pub fn new(party: Arc<Party>, coordinator: Arc<B2BCoordinator>) -> Self {
        Self {
            engine: ExchangeEngine::new(party, coordinator, PROTOCOL_ID),
        }
    }

    /// Enables crash-recovery journalling: completed steps leave
    /// progress markers in this party's evidence log for
    /// [`RunJournal::open_runs`] to find on reopen.
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<RunJournal>) -> Self {
        self.engine = self.engine.with_journal(journal);
        self
    }

    /// The engine driving this client.
    pub fn engine(&self) -> &ExchangeEngine {
        &self.engine
    }

    /// Runs the full exchange for `request` against `server`.
    ///
    /// On success the client holds verified `NRR_req` and `NRO_resp`
    /// tokens, and its own `NRO_req`/`NRR_resp` are persisted — the
    /// complete §3.2 evidence set.
    ///
    /// # Errors
    ///
    /// [`ExchangeError::Transport`] on communication failure (after
    /// retries), [`ExchangeError::Peer`] on bad peer evidence,
    /// [`ExchangeError::Local`] on signing/persistence failure. If the
    /// error occurs after step 2 the client has already persisted the
    /// server's evidence.
    pub fn invoke(&self, server: &OrgId, request: Vec<u8>) -> Result<DirectOutcome, ExchangeError> {
        self.invoke_with(self.engine.party().new_run_id(), server, request)
    }

    /// [`DirectClient::invoke`] under a caller-chosen run identifier.
    ///
    /// Scenario harnesses derive run ids from their seed so that replays
    /// and schedule permutations adjudicate identical runs.
    ///
    /// # Errors
    ///
    /// As [`DirectClient::invoke`].
    pub fn invoke_with(
        &self,
        run_id: RunId,
        server: &OrgId,
        request: Vec<u8>,
    ) -> Result<DirectOutcome, ExchangeError> {
        let req_digest = sha256(&request);
        let session = self.engine.session::<Client, DirectChoreography>(run_id);

        // Step 1: NRO_req + request; steps 1/2 ride one deliverRequest
        // (with retries; the server caches its reply per run).
        let nro_req = self
            .engine
            .issue_and_store(TokenKind::NroReq, run_id, req_digest)?;
        let step1 = Step1 { request, nro_req };
        let (msg2, session) = session.call(server, step1.encode_to_vec())?;
        let step2: Step2 = self.engine.decode_body(&msg2.body)?;

        // Verify and persist the server's evidence.
        self.engine
            .absorb(&step2.nrr_req, TokenKind::NrrReq, run_id, Some(&req_digest))?;
        let resp_digest = sha256(&step2.response.encode_to_vec());
        self.engine.absorb(
            &step2.nro_resp,
            TokenKind::NroResp,
            run_id,
            Some(&resp_digest),
        )?;

        // Step 3: client receipt for the response. The exchange is
        // already complete for the client; a lost ack only means the
        // server may chase the receipt (it has evidence that the
        // response was produced, §3.2).
        let nrr_resp = self
            .engine
            .issue_and_store(TokenKind::NrrResp, run_id, resp_digest)?;
        let (receipt_acked, session) =
            session.call_lossy(server, Step3 { nrr_resp }.encode_to_vec())?;

        // The run is complete for the client: let the commitment policy
        // seal its evidence (no-op in per-record mode).
        session.finish()?;

        Ok(DirectOutcome {
            run_id,
            response: step2.response,
            nrr_req: step2.nrr_req,
            nro_resp: step2.nro_resp,
            receipt_acked,
        })
    }
}

/// Server side of the direct protocol: a [`ProtocolHandler`].
pub struct DirectServerHandler {
    engine: ExchangeEngine,
    executor: Arc<dyn RequestExecutor>,
    runs: RunRegistry,
}

impl fmt::Debug for DirectServerHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DirectServerHandler({})", self.engine.party().org())
    }
}

impl DirectServerHandler {
    /// Creates the handler; register it with the server's coordinator.
    pub fn new(party: Arc<Party>, executor: Arc<dyn RequestExecutor>) -> Arc<Self> {
        Arc::new(Self {
            engine: ExchangeEngine::local(party, PROTOCOL_ID),
            executor,
            runs: RunRegistry::new(),
        })
    }

    /// `true` if the client's final receipt arrived for `run`.
    pub fn receipt_received(&self, run: &RunId) -> bool {
        self.runs.receipt_received(run)
    }

    fn handle_step1(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        // Duplicate delivery (client retry): return the cached response
        // without re-executing (at-most-once semantics).
        if let Some(cached) = self.runs.cached_response(&msg.run_id) {
            return Ok(cached);
        }
        self.engine.verify_frame_from(&msg, from)?;
        let step1: Step1 = self.engine.decode_body(&msg.body)?;
        if step1.nro_req.issuer != *from {
            return Err(ProtocolError::BadMessage(
                "NRO_req issuer is not the sender".into(),
            ));
        }
        let req_digest = sha256(&step1.request);
        self.engine.absorb(
            &step1.nro_req,
            TokenKind::NroReq,
            msg.run_id,
            Some(&req_digest),
        )?;

        // NRO verified: the request is "made available" to the server.
        // Execute it, turning business failure into evidenced failure.
        let response = match self.executor.execute(from, &step1.request) {
            Ok(result) => ServerResponse::Executed(result),
            Err(reason) => ServerResponse::Failed(reason),
        };
        let resp_digest = sha256(&response.encode_to_vec());

        // The shared seal hook issues the server's token pair in one
        // scheduler call (a single batch signature in batched mode).
        let (nrr_req, nro_resp) =
            self.engine
                .issue_paired_tokens(msg.run_id, req_digest, resp_digest)?;

        let msg2 = self.engine.request_frame(
            msg.run_id,
            2,
            Step2 {
                response,
                nrr_req,
                nro_resp,
            }
            .encode_to_vec(),
        )?;
        self.runs.record_response(msg.run_id, msg2.clone());
        Ok(msg2)
    }

    fn handle_step3(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        let cached = self
            .runs
            .cached_response(&msg.run_id)
            .ok_or(ProtocolError::UnknownRun(msg.run_id))?;
        self.engine.verify_frame_from(&msg, from)?;
        let step3: Step3 = self.engine.decode_body(&msg.body)?;
        // The receipt must cover the digest of the response we actually sent.
        let step2: Step2 = self.engine.decode_body(&cached.body)?;
        let resp_digest = sha256(&step2.response.encode_to_vec());
        if !self.runs.receipt_received(&msg.run_id) {
            self.engine.absorb(
                &step3.nrr_resp,
                TokenKind::NrrResp,
                msg.run_id,
                Some(&resp_digest),
            )?;
            self.runs.mark_receipt(&msg.run_id);
            // The server's evidence set for this run is complete.
            self.engine.seal_run()?;
        }
        Ok(self.engine.open_frame(msg.run_id, 4, Vec::new()))
    }
}

impl ProtocolHandler for DirectServerHandler {
    fn protocol(&self) -> ProtocolId {
        ProtocolId::new(PROTOCOL_ID)
    }

    fn process(&self, from: &OrgId, msg: ProtocolMessage) -> Result<(), ProtocolError> {
        match msg.step {
            3 => self.handle_step3(from, msg).map(|_| ()),
            step => Err(ProtocolError::BadMessage(format!(
                "unexpected one-way step {step}"
            ))),
        }
    }

    fn process_request(
        &self,
        from: &OrgId,
        msg: ProtocolMessage,
    ) -> Result<ProtocolMessage, ProtocolError> {
        match msg.step {
            1 => self.handle_step1(from, msg),
            3 => self.handle_step3(from, msg),
            step => Err(ProtocolError::BadMessage(format!(
                "unexpected request step {step}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::StaticKeyDirectory;
    use nonrep_net::bus::LocalBus;
    use nonrep_net::fault::FaultPlan;
    use nonrep_net::latency::LatencyModel;
    use nonrep_net::retry::{ReliableRequester, RetryPolicy};
    use nonrep_types::time::LogicalClock;
    use parking_lot::Mutex;

    struct Fixture {
        bus: Arc<LocalBus>,
        client: DirectClient,
        client_party: Arc<Party>,
        server_party: Arc<Party>,
        server_handler: Arc<DirectServerHandler>,
        server: OrgId,
        exec_count: Arc<Mutex<u32>>,
    }

    fn fixture_with_bus(bus: Arc<LocalBus>) -> Fixture {
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let client_party = Party::quick("client", 1, &clock, &dir);
        let server_party = Party::quick("server", 2, &clock, &dir);
        let server = OrgId::new("server");

        let coord_client = B2BCoordinator::new(
            "client",
            ReliableRequester::new(bus.clone(), RetryPolicy::new(8)),
        );
        let coord_server = B2BCoordinator::new(
            "server",
            ReliableRequester::new(bus.clone(), RetryPolicy::new(8)),
        );
        let exec_count = Arc::new(Mutex::new(0u32));
        let counter = Arc::clone(&exec_count);
        let executor = Arc::new(move |_caller: &OrgId, req: &[u8]| {
            *counter.lock() += 1;
            Ok([b"echo:", req].concat())
        });
        let handler = DirectServerHandler::new(server_party.clone(), executor);
        coord_server.register_handler(handler.clone());
        bus.register(OrgId::new("client"), coord_client.clone());
        bus.register(server.clone(), coord_server);

        Fixture {
            bus,
            client: DirectClient::new(client_party.clone(), coord_client),
            client_party,
            server_party,
            server_handler: handler,
            server,
            exec_count,
        }
    }

    fn fixture() -> Fixture {
        fixture_with_bus(LocalBus::new())
    }

    #[test]
    fn full_exchange_produces_all_four_tokens() {
        let fx = fixture();
        let out = fx
            .client
            .invoke(&fx.server, b"order gearbox".to_vec())
            .unwrap();
        assert!(out.receipt_acked);
        assert_eq!(
            out.response,
            ServerResponse::Executed(b"echo:order gearbox".to_vec())
        );
        // Client log: own NRO_req + NRR_resp, server's NRR_req + NRO_resp.
        let client_kinds: Vec<String> = fx
            .client_party
            .log()
            .by_run(&out.run_id)
            .iter()
            .map(|r| r.draft.kind.clone())
            .collect();
        assert_eq!(
            client_kinds,
            vec!["NRO_req", "NRR_req", "NRO_resp", "NRR_resp"]
        );
        // Server log: client's NRO_req + NRR_resp, own NRR_req + NRO_resp.
        let server_kinds: Vec<String> = fx
            .server_party
            .log()
            .by_run(&out.run_id)
            .iter()
            .map(|r| r.draft.kind.clone())
            .collect();
        assert_eq!(
            server_kinds,
            vec!["NRO_req", "NRR_req", "NRO_resp", "NRR_resp"]
        );
        assert!(fx.server_handler.receipt_received(&out.run_id));
        // Both chains verify.
        fx.client_party.log().verify().unwrap();
        fx.server_party.log().verify().unwrap();
        assert_eq!(*fx.exec_count.lock(), 1);
    }

    #[test]
    fn tokens_cross_verify_between_parties() {
        let fx = fixture();
        let out = fx.client.invoke(&fx.server, b"req".to_vec()).unwrap();
        let server_key = fx.client_party.key_of(&fx.server).unwrap();
        assert!(out
            .nrr_req
            .verify(&server_key, Some(TokenKind::NrrReq), Some(out.run_id), None));
        assert!(out.nro_resp.verify(
            &server_key,
            Some(TokenKind::NroResp),
            Some(out.run_id),
            None
        ));
    }

    #[test]
    fn business_failure_is_still_evidenced() {
        let fx = fixture();
        // Replace executor behaviour by deploying a new handler is overkill;
        // instead invoke a request the echo executor cannot fail on — so
        // build a second fixture with a failing executor.
        let clock = LogicalClock::new();
        let dir = Arc::new(StaticKeyDirectory::new());
        let client_party = Party::quick("client", 11, &clock, &dir);
        let server_party = Party::quick("server", 12, &clock, &dir);
        let bus = LocalBus::new();
        let coord_client = B2BCoordinator::new(
            "client",
            ReliableRequester::new(bus.clone(), RetryPolicy::new(4)),
        );
        let coord_server = B2BCoordinator::new(
            "server",
            ReliableRequester::new(bus.clone(), RetryPolicy::new(4)),
        );
        let handler = DirectServerHandler::new(
            server_party.clone(),
            Arc::new(|_: &OrgId, _: &[u8]| Err("out of stock".to_string())),
        );
        coord_server.register_handler(handler);
        bus.register(OrgId::new("client"), coord_client.clone());
        bus.register(OrgId::new("server"), coord_server);
        let client = DirectClient::new(client_party.clone(), coord_client);
        let out = client
            .invoke(&OrgId::new("server"), b"order".to_vec())
            .unwrap();
        assert_eq!(out.response, ServerResponse::Failed("out of stock".into()));
        // Failure outcome still has the full evidence set.
        assert_eq!(client_party.log().by_run(&out.run_id).len(), 4);
        drop(fx);
    }

    #[test]
    fn lossy_channel_exchange_completes_without_double_execution() {
        // 50% drops bounded at 3 consecutive; 8 retry attempts.
        let bus = LocalBus::with_config(
            FaultPlan::lossy(0.5, 3, 77).with_response_drop_share(0.5),
            LatencyModel::Zero,
            0,
        );
        let fx = fixture_with_bus(bus);
        for i in 0..10 {
            let out = fx
                .client
                .invoke(&fx.server, format!("req-{i}").into_bytes())
                .unwrap();
            assert!(out.response.is_executed());
        }
        // At-most-once: despite retried deliveries, each request executed once.
        assert_eq!(*fx.exec_count.lock(), 10);
        assert!(
            fx.bus.stats().dropped > 0,
            "fault injection must have fired"
        );
    }

    #[test]
    fn unknown_client_rejected_as_transport_fault() {
        let fx = fixture();
        // A party whose key the server does not know.
        let clock = LogicalClock::new();
        let rogue_dir = Arc::new(StaticKeyDirectory::new());
        let rogue = Party::quick("rogue", 99, &clock, &rogue_dir);
        // Rogue knows the server key (copies the directory entry) but not
        // vice versa.
        rogue_dir.insert(
            fx.server.clone(),
            fx.client_party.key_of(&fx.server).unwrap(),
        );
        let coord = B2BCoordinator::new(
            "rogue",
            ReliableRequester::new(fx.bus.clone(), RetryPolicy::new(2)),
        );
        fx.bus.register(OrgId::new("rogue"), coord.clone());
        let client = DirectClient::new(rogue, coord);
        let err = client.invoke(&fx.server, b"req".to_vec()).unwrap_err();
        // The remote handler's refusal surfaces through the bus as an
        // endpoint error — a transport-class fault for the caller.
        assert!(matches!(
            err,
            ExchangeError::Transport(nonrep_net::NetError::Endpoint(_))
        ));
        assert_eq!(*fx.exec_count.lock(), 0, "request must not execute");
    }

    #[test]
    fn duplicate_step1_returns_cached_response() {
        let fx = fixture();
        let run = fx.client_party.new_run_id();
        let request = b"idempotent".to_vec();
        let nro = fx
            .client_party
            .issue_token(TokenKind::NroReq, run, sha256(&request))
            .unwrap();
        let msg1 = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            1,
            "client",
            Step1 {
                request,
                nro_req: nro,
            }
            .encode_to_vec(),
        )
        .signed(fx.client_party.keys())
        .unwrap();
        let from = OrgId::new("client");
        let r1 = fx
            .server_handler
            .process_request(&from, msg1.clone())
            .unwrap();
        let r2 = fx.server_handler.process_request(&from, msg1).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(*fx.exec_count.lock(), 1);
    }

    #[test]
    fn receipt_for_unknown_run_rejected() {
        let fx = fixture();
        let run = fx.client_party.new_run_id();
        let token = fx
            .client_party
            .issue_token(TokenKind::NrrResp, run, sha256(b"x"))
            .unwrap();
        let msg3 = ProtocolMessage::new(
            PROTOCOL_ID,
            run,
            3,
            "client",
            Step3 { nrr_resp: token }.encode_to_vec(),
        )
        .signed(fx.client_party.keys())
        .unwrap();
        assert!(matches!(
            fx.server_handler
                .process_request(&OrgId::new("client"), msg3),
            Err(ProtocolError::UnknownRun(_))
        ));
    }

    #[test]
    fn bad_step_rejected() {
        let fx = fixture();
        let msg = ProtocolMessage::new(PROTOCOL_ID, RunId::from_u128(1), 9, "client", vec![]);
        assert!(matches!(
            fx.server_handler
                .process_request(&OrgId::new("client"), msg),
            Err(ProtocolError::BadMessage(_))
        ));
    }
}
